"""Per-redshift neighbor counting and the weighted-max selection."""

import numpy as np
import pytest

from repro.core.neighbors import (
    best_weighted_redshift,
    count_friends_per_redshift,
)


class TestCounting:
    def test_no_friends(self, kcorr, config):
        counts = count_friends_per_redshift(
            np.empty(0), np.empty(0), np.empty(0), np.empty(0),
            18.0, np.array([3, 4]), kcorr, config,
        )
        assert counts.tolist() == [0, 0]

    def test_no_passing_redshifts(self, kcorr, config):
        counts = count_friends_per_redshift(
            np.array([0.01]), np.array([18.5]), np.array([1.0]),
            np.array([0.5]), 18.0, np.empty(0, dtype=np.int64), kcorr, config,
        )
        assert counts.size == 0

    def test_perfect_friend_counted(self, kcorr, config):
        zid = 10
        counts = count_friends_per_redshift(
            friend_distance=np.array([float(kcorr.radius[zid]) * 0.5]),
            friend_i=np.array([float(kcorr.i[zid]) + 0.5]),
            friend_gr=np.array([float(kcorr.gr[zid])]),
            friend_ri=np.array([float(kcorr.ri[zid])]),
            candidate_i=float(kcorr.i[zid]),
            passing_zids=np.array([zid]),
            kcorr=kcorr,
            config=config,
        )
        assert counts.tolist() == [1]

    def test_distance_window_strict(self, kcorr, config):
        zid = 10
        radius = float(kcorr.radius[zid])
        base = dict(
            friend_i=np.array([float(kcorr.i[zid]) + 0.5]),
            friend_gr=np.array([float(kcorr.gr[zid])]),
            friend_ri=np.array([float(kcorr.ri[zid])]),
            candidate_i=float(kcorr.i[zid]),
            passing_zids=np.array([zid]),
            kcorr=kcorr,
            config=config,
        )
        inside = count_friends_per_redshift(
            friend_distance=np.array([radius * 0.999]), **base
        )
        outside = count_friends_per_redshift(
            friend_distance=np.array([radius]), **base
        )
        assert inside.tolist() == [1]
        assert outside.tolist() == [0]  # strict <

    def test_magnitude_window(self, kcorr, config):
        zid = 10
        candidate_i = float(kcorr.i[zid])
        base = dict(
            friend_distance=np.array([0.001]),
            friend_gr=np.array([float(kcorr.gr[zid])]),
            friend_ri=np.array([float(kcorr.ri[zid])]),
            candidate_i=candidate_i,
            passing_zids=np.array([zid]),
            kcorr=kcorr,
            config=config,
        )
        brighter = count_friends_per_redshift(
            friend_i=np.array([candidate_i - 0.1]), **base
        )
        too_faint = count_friends_per_redshift(
            friend_i=np.array([float(kcorr.ilim[zid]) + 0.1]), **base
        )
        assert brighter.tolist() == [0]  # friends must be >= candidate i
        assert too_faint.tolist() == [0]

    def test_color_window_inclusive_pop_sigma(self, kcorr, config):
        zid = 10
        base = dict(
            friend_distance=np.array([0.001]),
            friend_i=np.array([float(kcorr.i[zid]) + 0.5]),
            friend_ri=np.array([float(kcorr.ri[zid])]),
            candidate_i=float(kcorr.i[zid]),
            passing_zids=np.array([zid]),
            kcorr=kcorr,
            config=config,
        )
        at_edge = count_friends_per_redshift(
            friend_gr=np.array(
                [float(kcorr.gr[zid]) + 0.999 * config.gr_pop_sigma]
            ),
            **base,
        )
        beyond = count_friends_per_redshift(
            friend_gr=np.array([float(kcorr.gr[zid]) + config.gr_pop_sigma * 1.01]),
            **base,
        )
        assert at_edge.tolist() == [1]  # BETWEEN is inclusive
        assert beyond.tolist() == [0]

    def test_counts_vary_per_redshift(self, kcorr, config):
        # a friend that qualifies at low z but not high z (radius shrinks)
        z_lo, z_hi = 2, len(kcorr) - 3
        distance = float(kcorr.radius[z_lo]) * 0.9  # outside radius at z_hi
        assert distance > float(kcorr.radius[z_hi])
        counts = count_friends_per_redshift(
            friend_distance=np.array([distance]),
            friend_i=np.array([20.0]),
            friend_gr=np.array([float(kcorr.gr[z_lo])]),
            friend_ri=np.array([float(kcorr.ri[z_lo])]),
            candidate_i=14.0,
            passing_zids=np.array([z_lo, z_hi]),
            kcorr=kcorr,
            config=config,
        )
        assert counts[0] >= counts[1]


class TestBestWeighted:
    def test_requires_at_least_one_neighbor(self):
        result = best_weighted_redshift(
            np.array([0, 0]), np.array([1.0, 2.0]), np.array([3, 4])
        )
        assert result is None

    def test_maximizes_weighted_statistic(self):
        counts = np.array([1, 10, 2])
        chisq = np.array([0.5, 3.0, 0.2])
        zids = np.array([7, 8, 9])
        zid, ngal, weighted = best_weighted_redshift(counts, chisq, zids)
        expected = np.log(counts + 1.0) - chisq
        assert weighted == pytest.approx(float(expected.max()))
        assert zid == zids[int(np.argmax(expected))]
        assert ngal == counts[int(np.argmax(expected))]

    def test_zero_count_rows_excluded(self):
        counts = np.array([0, 1])
        chisq = np.array([0.0, 5.0])  # row 0 would win if eligible
        zid, ngal, weighted = best_weighted_redshift(
            counts, chisq, np.array([1, 2])
        )
        assert zid == 2 and ngal == 1

    def test_tie_resolves_to_lowest_redshift(self):
        counts = np.array([3, 3])
        chisq = np.array([1.0, 1.0])
        zid, _, _ = best_weighted_redshift(counts, chisq, np.array([5, 6]))
        assert zid == 5
