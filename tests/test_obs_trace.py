"""Tracing core: spans, parenting, propagation, the disabled path."""

import os
import pickle
import threading

import pytest

from repro.engine.stats import IOCounters, use_cpu_clock
from repro.obs.trace import (
    TraceContext,
    activate,
    current_context,
    enabled,
    finish_span,
    get_tracer,
    span,
    start_span,
    tracing,
    wrap,
    _NOOP_SPAN,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts disabled with an empty tracer."""
    get_tracer().clear()
    yield
    get_tracer().clear()


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not enabled()

    def test_disabled_span_is_shared_noop(self):
        with span("anything") as sp:
            assert sp is _NOOP_SPAN
        sp.set("key", "value")  # swallowed, never raises
        assert sp.context() is None
        assert len(get_tracer()) == 0

    def test_disabled_records_nothing(self):
        with span("outer"):
            with span("inner"):
                pass
        assert get_tracer().spans() == []

    def test_current_context_is_none_when_disabled(self):
        assert current_context() is None


class TestSpanRecording:
    def test_span_measures_wall_and_ids(self):
        with tracing():
            with span("work", layer="engine") as sp:
                pass
        spans = get_tracer().spans()
        assert len(spans) == 1
        recorded = spans[0]
        assert recorded is sp
        assert recorded.name == "work"
        assert recorded.layer == "engine"
        assert recorded.wall_s >= 0.0
        assert recorded.trace_id and recorded.span_id
        assert recorded.parent_id is None
        assert recorded.pid == os.getpid()

    def test_nested_spans_parent_correctly(self):
        with tracing():
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id

    def test_sibling_roots_get_distinct_traces(self):
        with tracing():
            with span("first") as first:
                pass
            with span("second") as second:
                pass
        assert first.trace_id != second.trace_id

    def test_span_captures_io_delta(self):
        counters = IOCounters()
        with tracing():
            with span("io-work", counters=counters) as sp:
                counters.add_logical(7)
                counters.add_write(3)
        assert sp.io_ops == 10  # logical + writes (the Table 1 rule)

    def test_span_reads_selected_cpu_clock(self):
        reads = []

        def fake_clock():
            reads.append(True)
            return 1.25

        with tracing():
            with use_cpu_clock(fake_clock):
                with span("clocked") as sp:
                    pass
        assert reads  # the span consulted the per-thread clock
        assert sp.cpu_s == 0.0  # same reading at start and finish

    def test_attrs_and_set(self):
        with tracing():
            with span("attrs", attrs={"a": 1}) as sp:
                sp.set("b", 2)
        assert sp.attrs == {"a": 1, "b": 2}

    def test_finished_span_pickles(self):
        """Finished spans cross process boundaries inside outcomes."""
        with tracing():
            with span("shippable", counters=IOCounters()) as sp:
                pass
        clone = pickle.loads(pickle.dumps(sp))
        assert clone.span_id == sp.span_id
        assert not hasattr(clone, "_t0")  # live state removed at finish

    def test_exception_still_finishes_span(self):
        with tracing():
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        assert len(get_tracer()) == 1


class TestExplicitLifetime:
    def test_start_finish_without_with_block(self):
        with tracing():
            sp = start_span("long-lived", layer="casjobs")
            assert len(get_tracer()) == 0  # not recorded until finished
            finish_span(sp)
        assert get_tracer().spans() == [sp]

    def test_start_span_does_not_set_current_context(self):
        with tracing():
            sp = start_span("job")
            assert current_context() is None
            finish_span(sp)


class TestPropagation:
    def test_activate_adopts_foreign_context(self):
        ctx = TraceContext(trace_id="t" * 16, span_id="s" * 16)
        with tracing():
            with activate(ctx):
                with span("child") as child:
                    pass
        assert child.trace_id == ctx.trace_id
        assert child.parent_id == ctx.span_id

    def test_activate_none_is_noop(self):
        with tracing():
            with activate(None):
                with span("orphan") as sp:
                    pass
        assert sp.parent_id is None

    def test_context_pickles(self):
        ctx = TraceContext(trace_id="abc", span_id="def")
        assert pickle.loads(pickle.dumps(ctx)) == ctx
        assert ctx.pid == os.getpid()

    def test_spans_from_worker_thread_reparent_via_activate(self):
        """Pool threads don't inherit contextvars; activate() is the fix."""
        with tracing():
            with span("dispatcher") as parent:
                ctx = current_context()
                results = []

                def worker():
                    with activate(ctx):
                        with span("worker-side") as sp:
                            results.append(sp)

                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        worker_span = results[0]
        assert worker_span.trace_id == parent.trace_id
        assert worker_span.parent_id == parent.span_id

    def test_drain_and_absorb_round_trip(self):
        """The process-boundary protocol: drain in the child, ship, absorb."""
        with tracing():
            with span("child-side"):
                pass
            shipped = get_tracer().drain()
            assert len(get_tracer()) == 0
            get_tracer().absorb(shipped)
            assert get_tracer().spans() == shipped


class TestWrap:
    def test_wrap_traces_each_call(self):
        def add(a, b):
            return a + b

        traced = wrap("math.add", add, layer="app")
        with tracing():
            assert traced(2, 3) == 5
            assert traced(4, 5) == 9
        names = [s.name for s in get_tracer().spans()]
        assert names == ["math.add", "math.add"]

    def test_wrap_is_free_when_disabled(self):
        traced = wrap("noop", lambda: 42)
        assert traced() == 42
        assert len(get_tracer()) == 0
