"""K-correction table construction and lookups."""

import numpy as np
import pytest

from repro.core.config import MaxBCGConfig, sql_config
from repro.core.kcorrection import (
    KCorrectionTable,
    build_kcorrection_table,
)
from repro.errors import ConfigError


class TestTableShape:
    def test_row_count_matches_config(self, kcorr, config):
        assert len(kcorr) == config.n_redshifts

    def test_paper_config_has_300_rows(self):
        table = build_kcorrection_table(sql_config())
        assert len(table) == 300

    def test_grid_regular(self, kcorr, config):
        steps = np.diff(kcorr.z)
        assert np.allclose(steps, config.z_step)

    def test_z_step_property(self, kcorr, config):
        assert kcorr.z_step == pytest.approx(config.z_step)


class TestPhysicalShape:
    def test_bcg_magnitude_increases_with_z(self, kcorr):
        assert np.all(np.diff(kcorr.i) > 0)

    def test_colors_redden_with_z(self, kcorr):
        assert np.all(np.diff(kcorr.gr) > 0)
        assert np.all(np.diff(kcorr.ri) > 0)

    def test_radius_shrinks_with_z(self, kcorr):
        assert np.all(np.diff(kcorr.radius) < 0)

    def test_ilim_at_least_bcg_magnitude(self, kcorr):
        assert np.all(kcorr.ilim >= kcorr.i)

    def test_ilim_capped_at_survey_limit(self, kcorr):
        from repro.core.kcorrection import SURVEY_I_LIMIT

        assert np.all(kcorr.ilim <= SURVEY_I_LIMIT)

    def test_max_radius_fits_in_buffer(self, kcorr, config):
        # the SQL design guarantees 0.5 deg searches; the largest 1 Mpc
        # aperture must fit or the buffer geometry breaks
        assert float(kcorr.radius.max()) < config.buffer_deg


class TestLookups:
    def test_nearest_zid_on_grid(self, kcorr):
        for zid in (0, len(kcorr) // 2, len(kcorr) - 1):
            assert kcorr.nearest_zid(float(kcorr.z[zid])) == zid

    def test_nearest_zid_off_grid(self, kcorr, config):
        z = float(kcorr.z[5]) + 0.4 * config.z_step
        assert kcorr.nearest_zid(z) == 5
        z = float(kcorr.z[5]) + 0.6 * config.z_step
        assert kcorr.nearest_zid(z) == 6

    def test_nearest_zids_vectorized(self, kcorr):
        zs = kcorr.z[[3, 7, 11]]
        assert kcorr.nearest_zids(zs).tolist() == [3, 7, 11]

    def test_nearest_zids_matches_scalar(self, kcorr):
        rng = np.random.default_rng(0)
        zs = rng.uniform(kcorr.z[0], kcorr.z[-1], 50)
        vectorized = kcorr.nearest_zids(zs)
        scalar = [kcorr.nearest_zid(float(z)) for z in zs]
        assert vectorized.tolist() == scalar

    def test_radius_at(self, kcorr):
        assert kcorr.radius_at(float(kcorr.z[2])) == pytest.approx(
            float(kcorr.radius[2])
        )

    def test_row_dict(self, kcorr):
        row = kcorr.row(0)
        assert set(row) == {
            "zid", "z", "i", "ilim", "ug", "gr", "ri", "iz", "radius"
        }
        with pytest.raises(ConfigError):
            kcorr.row(len(kcorr))

    def test_as_columns_includes_zid(self, kcorr):
        columns = kcorr.as_columns()
        assert columns["zid"].tolist() == list(range(len(kcorr)))


class TestValidation:
    def test_mismatched_columns_rejected(self):
        z = np.linspace(0.05, 0.3, 10)
        good = {name: np.ones(10) for name in
                ("i", "ilim", "ug", "gr", "ri", "iz", "radius")}
        bad = dict(good)
        bad["radius"] = np.ones(9)
        with pytest.raises(ConfigError):
            KCorrectionTable(z=z, **bad)

    def test_non_monotone_grid_rejected(self):
        z = np.array([0.1, 0.1, 0.2])
        cols = {name: np.ones(3) for name in
                ("i", "ilim", "ug", "gr", "ri", "iz", "radius")}
        with pytest.raises(ConfigError):
            KCorrectionTable(z=z, **cols)

    def test_config_beyond_cosmology_rejected(self):
        from repro.skyserver.cosmology import Cosmology

        tight = Cosmology(z_max=0.2)
        with pytest.raises(ConfigError):
            build_kcorrection_table(MaxBCGConfig(z_max=0.349), tight)
