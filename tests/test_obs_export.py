"""Trace exporters: JSONL, Chrome trace_event, text tree, validation."""

import json

import pytest

from repro.errors import ObsError
from repro.obs.export import (
    render_tree,
    span_to_dict,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import Span


def make_span(name="work", span_id="s1", parent_id=None, *, pid=100,
              thread="MainThread", start=1000.0, wall=0.5, layer="engine",
              attrs=None):
    return Span(
        name=name, trace_id="t1", span_id=span_id, parent_id=parent_id,
        layer=layer, start_wall=start, wall_s=wall, cpu_s=0.25, io_ops=12,
        pid=pid, thread=thread, attrs=attrs or {},
    )


class TestJsonl:
    def test_one_line_per_span(self):
        text = to_jsonl([make_span("a"), make_span("b", span_id="s2")])
        lines = text.splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"

    def test_span_to_dict_has_no_live_state(self):
        d = span_to_dict(make_span())
        assert "_t0" not in d
        assert d["io_ops"] == 12

    def test_write_jsonl(self, tmp_path):
        path = write_jsonl([make_span()], tmp_path / "spans.jsonl")
        assert json.loads(path.read_text().splitlines()[0])["name"] == "work"


class TestChromeTrace:
    def test_complete_events_with_microsecond_times(self):
        doc = to_chrome_trace([make_span(start=2.0, wall=0.5)])
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 1
        assert xs[0]["ts"] == pytest.approx(2e6)
        assert xs[0]["dur"] == pytest.approx(5e5)
        assert xs[0]["cat"] == "engine"

    def test_thread_name_metadata_and_integer_tids(self):
        doc = to_chrome_trace([
            make_span("a", thread="MainThread"),
            make_span("b", span_id="s2", thread="worker-1"),
            make_span("c", span_id="s3", pid=200, thread="MainThread"),
        ])
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {
            "MainThread", "worker-1",
        }
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(isinstance(e["tid"], int) for e in xs)
        # tids restart per pid; same (pid, thread) shares a tid
        assert xs[0]["tid"] != xs[1]["tid"]
        assert xs[2]["tid"] == 1

    def test_args_carry_ids_and_attrs(self):
        doc = to_chrome_trace(
            [make_span(parent_id="p9", attrs={"sql": "SELECT 1", "n": 3})]
        )
        args = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["parent_id"] == "p9"
        assert args["sql"] == "SELECT 1"
        assert args["n"] == "3"  # attrs stringified for the viewer

    def test_round_trips_through_json(self):
        doc = to_chrome_trace([make_span()])
        reparsed = json.loads(json.dumps(doc))
        assert validate_chrome_trace(reparsed) == len(doc["traceEvents"])

    def test_write_validates_and_writes(self, tmp_path):
        path = write_chrome_trace([make_span()], tmp_path / "trace.json")
        assert validate_chrome_trace(json.loads(path.read_text())) >= 1


class TestCounterEvents:
    def test_timestamped_samples_become_counter_events(self):
        doc = to_chrome_trace(
            [make_span(start=1.0, wall=0.5)],
            counter_samples=[(1.2, {"engine.cache.hits": 3.0,
                                    "engine.memo.hits": 1.0})],
        )
        cs = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(cs) == 2
        assert [e["name"] for e in cs] == sorted(e["name"] for e in cs)
        assert all(e["cat"] == "metrics" for e in cs)
        assert all(e["ts"] == pytest.approx(1.2e6) for e in cs)
        assert cs[0]["args"] == {"value": 3.0}
        assert all(e["pid"] == 100 for e in cs)  # the spans' pid

    def test_bare_dict_stamped_at_trace_end(self):
        doc = to_chrome_trace(
            [make_span(start=1.0, wall=0.5),
             make_span("b", span_id="s2", start=2.0, wall=1.0)],
            counter_samples={"engine.slow_queries": 2.0},
        )
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert event["ts"] == pytest.approx(3e6)  # max span end
        assert event["args"]["value"] == 2.0

    def test_counter_documents_validate_and_round_trip(self, tmp_path):
        path = write_chrome_trace(
            [make_span()], tmp_path / "trace.json",
            counter_samples={"engine.pool.hits": 7},
        )
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])
        assert any(e["ph"] == "C" for e in doc["traceEvents"])

    def test_no_samples_emits_no_counter_events(self):
        doc = to_chrome_trace([make_span()])
        assert not any(e["ph"] == "C" for e in doc["traceEvents"])


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ObsError, match="object"):
            validate_chrome_trace([1, 2])

    def test_rejects_empty_events(self):
        with pytest.raises(ObsError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_missing_fields(self):
        with pytest.raises(ObsError, match="pid"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "tid": 1}]}
            )

    def test_rejects_negative_duration(self):
        event = {"name": "x", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0.0, "dur": -1.0}
        with pytest.raises(ObsError, match="dur"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_metadata_only_documents(self):
        meta = {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
                "args": {"name": "t"}}
        with pytest.raises(ObsError, match="complete"):
            validate_chrome_trace({"traceEvents": [meta]})

    def test_rejects_counter_without_numeric_args(self):
        x = {"name": "s", "ph": "X", "pid": 1, "tid": 1,
             "ts": 0.0, "dur": 1.0}
        bad = {"name": "m", "ph": "C", "pid": 1, "tid": 0,
               "ts": 0.0, "args": {"value": "three"}}
        with pytest.raises(ObsError, match="numeric"):
            validate_chrome_trace({"traceEvents": [x, bad]})

    def test_rejects_counter_with_negative_ts(self):
        x = {"name": "s", "ph": "X", "pid": 1, "tid": 1,
             "ts": 0.0, "dur": 1.0}
        bad = {"name": "m", "ph": "C", "pid": 1, "tid": 0,
               "ts": -5.0, "args": {"value": 1.0}}
        with pytest.raises(ObsError, match="ts"):
            validate_chrome_trace({"traceEvents": [x, bad]})


class TestRenderTree:
    def test_indents_children_under_parents(self):
        root = make_span("casjobs.job", span_id="root", layer="casjobs",
                         start=1.0)
        child = make_span("cluster.run", span_id="kid", parent_id="root",
                          layer="cluster", start=2.0)
        grandchild = make_span("engine.task", span_id="gk", parent_id="kid",
                               start=3.0)
        lines = render_tree([grandchild, root, child]).splitlines()
        assert lines[0].startswith("casjobs.job")
        assert lines[1].startswith("  cluster.run")
        assert lines[2].startswith("    engine.task")

    def test_unknown_parent_roots_its_subtree(self):
        orphan = make_span("lonely", span_id="o1", parent_id="missing")
        lines = render_tree([orphan]).splitlines()
        assert lines[0].startswith("lonely")

    def test_attrs_rendered_sorted(self):
        sp = make_span(attrs={"b": 2, "a": 1})
        assert "{a=1, b=2}" in render_tree([sp])
