"""The acceptance path: one trace across all four layers.

A CasJobs job, the scheduler attempt that served it, the cluster
partitions it fanned out to (in worker *processes*), and the engine
tasks each partition ran must land in a single trace with parent/child
links intact — and the exported Chrome trace must survive a JSON
round-trip and schema validation.
"""

import json

import pytest

from repro.casjobs.queue import JobQueue, QueueClass
from repro.casjobs.scheduler import Scheduler, SchedulerConfig
from repro.cluster.executor import run_partitioned
from repro.core.config import fast_config
from repro.core.kcorrection import build_kcorrection_table
from repro.obs import (
    get_metrics,
    get_tracer,
    render_tree,
    to_chrome_trace,
    tracing,
    validate_chrome_trace,
)
from repro.skyserver.generator import SkyConfig, SkySimulator
from repro.skyserver.regions import RegionBox


@pytest.fixture(scope="module")
def tiny_setup():
    config = fast_config()
    kcorr = build_kcorrection_table(config)
    target = RegionBox(180.0, 181.0, 0.0, 1.0)
    simulator = SkySimulator(
        kcorr, config,
        SkyConfig(field_density=150.0, cluster_density=3.0, seed=11),
    )
    sky = simulator.generate(target.expand(1.0))
    return config, kcorr, target, sky


def run_traced_job(tiny_setup, backend):
    config, kcorr, target, sky = tiny_setup

    def executor(job):
        return run_partitioned(
            sky.catalog, target, kcorr, config,
            n_servers=2, backend=backend, compute_members=False,
        )

    with tracing():
        queue = JobQueue()
        scheduler = Scheduler(
            queue, executor,
            SchedulerConfig(pool="sequential", max_workers=1),
        )
        scheduler.submit("alice", "EXEC maxbcg", "dr1",
                         queue_class=QueueClass.LONG)
        scheduler.run_until_idle(timeout_s=120)
        scheduler.close()
        return get_tracer().spans()


def ancestor_names(span, by_id):
    names = []
    while span.parent_id is not None:
        span = by_id[span.parent_id]
        names.append(span.name)
    return names


@pytest.fixture(scope="module")
def traced_spans(tiny_setup):
    """One partitioned run under the process backend, traced."""
    return run_traced_job(tiny_setup, "processes")


class TestFourLayerTrace:
    def test_single_trace_id(self, traced_spans):
        assert len({s.trace_id for s in traced_spans}) == 1

    def test_all_four_layers_present(self, traced_spans):
        layers = {s.layer for s in traced_spans}
        assert {"casjobs", "cluster", "engine"} <= layers
        names = {s.name for s in traced_spans}
        assert "casjobs.job" in names
        assert "scheduler.attempt" in names
        assert "cluster.run" in names
        assert "cluster.partition" in names
        assert any(n.startswith("engine.task:") for n in names)

    def test_engine_spans_chain_up_to_the_job(self, traced_spans):
        by_id = {s.span_id: s for s in traced_spans}
        engine_spans = [s for s in traced_spans
                        if s.name.startswith("engine.task:")]
        assert engine_spans
        for sp in engine_spans:
            chain = ancestor_names(sp, by_id)
            assert chain == [
                "cluster.partition", "cluster.run",
                "scheduler.attempt", "casjobs.job",
            ]

    def test_one_partition_span_per_server(self, traced_spans):
        partitions = [s for s in traced_spans if s.name == "cluster.partition"]
        assert len(partitions) == 2
        assert {p.attrs["server"] for p in partitions} == {0, 1}

    def test_child_process_spans_crossed_the_boundary(self, traced_spans):
        """Process workers have a different pid than the dispatcher."""
        job = next(s for s in traced_spans if s.name == "casjobs.job")
        partitions = [s for s in traced_spans if s.name == "cluster.partition"]
        assert all(p.pid != job.pid for p in partitions)

    def test_job_span_status_attr(self, traced_spans):
        job = next(s for s in traced_spans if s.name == "casjobs.job")
        assert job.attrs["status"] == "finished"

    def test_chrome_export_round_trips(self, traced_spans):
        document = json.loads(json.dumps(to_chrome_trace(traced_spans)))
        assert validate_chrome_trace(document) >= len(traced_spans)

    def test_tree_renders_every_span_once(self, traced_spans):
        assert len(render_tree(traced_spans).splitlines()) == len(traced_spans)


class TestThreadBackendTrace:
    def test_thread_partitions_share_the_trace(self, tiny_setup):
        spans = run_traced_job(tiny_setup, "threads")
        assert len({s.trace_id for s in spans}) == 1
        partitions = [s for s in spans if s.name == "cluster.partition"]
        assert len(partitions) == 2


class TestDisabledPath:
    def test_disabled_run_records_nothing(self, tiny_setup):
        config, kcorr, target, sky = tiny_setup
        get_tracer().clear()
        run_partitioned(sky.catalog, target, kcorr, config,
                        n_servers=2, backend="sequential",
                        compute_members=False)
        assert len(get_tracer()) == 0


class TestMetricsFlow:
    def test_cluster_run_feeds_the_registry(self, tiny_setup):
        config, kcorr, target, sky = tiny_setup
        metrics = get_metrics()
        partitions_before = metrics.counter("cluster.partitions").value
        io_before = metrics.counter("cluster.partition.io_ops").value
        run_partitioned(sky.catalog, target, kcorr, config,
                        n_servers=2, backend="sequential",
                        compute_members=False)
        assert metrics.counter("cluster.partitions").value == (
            partitions_before + 2
        )
        assert metrics.counter("cluster.partition.io_ops").value > io_before
        assert metrics.histogram("cluster.partition.wall_s").count >= 2

    def test_scheduler_feeds_the_registry(self, tiny_setup):
        metrics = get_metrics()
        finished_before = metrics.counter("casjobs.finished").value
        run_traced_job(tiny_setup, "sequential")
        assert metrics.counter("casjobs.finished").value == finished_before + 1
        assert metrics.histogram("casjobs.run_s").count >= 1

    def test_grid_scheduler_feeds_the_registry(self):
        from repro.grid.jobs import Job
        from repro.grid.resources import ClusterSpec, Node
        from repro.grid.scheduler import CondorScheduler
        from repro.grid.transfer import TransferModel

        metrics = get_metrics()
        completed_before = metrics.counter("grid.jobs.completed").value
        cluster = ClusterSpec("obs", (Node("n0", 2600.0, n_cpus=2),))
        scheduler = CondorScheduler(cluster, TransferModel())
        jobs = [
            Job(job_id=n, name=f"job{n}", cpu_seconds=10.0,
                input_bytes=10**6, input_files=2, output_bytes=10**5,
                ram_bytes=10**6)
            for n in range(3)
        ]
        with tracing():
            result = scheduler.run(jobs)
            spans = get_tracer().spans()
        assert result.completed == 3
        assert metrics.counter("grid.jobs.completed").value == (
            completed_before + 3
        )
        assert metrics.counter("grid.transfer.bytes").value > 0
        assert any(s.name == "grid.schedule" for s in spans)
