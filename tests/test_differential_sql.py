"""Differential testing: the SQL engine vs a straight-numpy oracle.

Two hundred seeded random queries — SELECTs with arithmetic and
predicates, whole-table and grouped aggregates, inner joins, DISTINCT,
ORDER BY/LIMIT — run twice: once through the full lexer → parser →
planner → executor stack, once through an independent numpy reference
implementation that never touches the SQL layer.  The answers must
match row for row.  The whole corpus runs under both planner modes
(``optimizer="cost"`` with ANALYZEd statistics, and ``"syntactic"``),
so the cost-based optimizer's reorderings are differentially checked
against the oracle too.

The point is breadth the hand-written dialect tests can't reach: each
template draws its literals, columns and thresholds from a seeded RNG,
so every seed explores a different corner of the
predicate/projection/aggregation space while staying deterministic and
replayable (a failure names the exact query text).

Numeric comparisons use ``np.isclose(rtol=1e-9)``: both sides do the
same float arithmetic, but the engine may sum in a different order.
Templates deliberately avoid division (divide-by-zero), LEFT JOIN
(NULL-padding semantics live in test_engine_sql_dialect) and empty
aggregate inputs (thresholds are drawn from the data's own range).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database

#: dataset seeds x queries-per-template: 4 * 50 = 200 queries total.
DATASET_SEEDS = (11, 23, 47, 91)
QUERIES_PER_TEMPLATE = 7  # 7 templates x 7 draws = 49, +1 fixed = 50/seed

#: Every query runs under both planner modes: the cost-based optimizer
#: may reorder joins and pick different access paths, but the answers
#: must stay row-for-row identical to the syntactic plan's (and to the
#: numpy oracle's).
OPTIMIZER_MODES = ("cost", "syntactic")


# ---------------------------------------------------------------------------
# dataset
# ---------------------------------------------------------------------------


def make_tables(seed: int) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Two small related tables with integer keys and float measures."""
    rng = np.random.default_rng(seed)
    n1 = int(rng.integers(60, 120))
    n2 = int(rng.integers(40, 90))
    t1 = {
        "id": np.arange(n1, dtype=np.int64),
        "k": rng.integers(0, 8, n1).astype(np.int64),
        "a": rng.integers(-50, 50, n1).astype(np.int64),
        "b": rng.uniform(-10.0, 10.0, n1),
    }
    t2 = {
        "k": rng.integers(0, 8, n2).astype(np.int64),
        "c": rng.uniform(0.0, 100.0, n2),
    }
    return t1, t2


def make_database(t1: dict, t2: dict, optimizer: str = "cost",
                  result_cache: bool = False) -> Database:
    config = EngineConfig(optimizer=optimizer, result_cache=result_cache)
    db = Database("diff", config=config)
    db.create_table("t1", dict(t1), primary_key="id")
    db.create_table("t2", dict(t2))
    if optimizer == "cost":
        db.sql("ANALYZE")  # give the estimator real statistics to chew on
    return db


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


def _canonical(rows: list[dict]) -> list[tuple]:
    """Rows as tuples sorted by a total order usable across floats/ints."""
    if not rows:
        return []
    keys = sorted(rows[0].keys())
    out = [tuple(row[k] for k in keys) for row in rows]
    return sorted(out, key=lambda t: tuple(
        (float(v) if isinstance(v, (int, float, np.number)) else str(v))
        for v in t
    ))


def assert_rows_equal(engine_rows: list[dict], oracle_rows: list[dict],
                      query: str, ordered: bool = False) -> None:
    assert len(engine_rows) == len(oracle_rows), (
        f"row count {len(engine_rows)} != oracle {len(oracle_rows)}\n{query}"
    )
    if not engine_rows:
        return
    assert sorted(engine_rows[0].keys()) == sorted(oracle_rows[0].keys()), (
        f"columns differ\n{query}"
    )
    left = ([tuple(r[k] for k in sorted(r)) for r in engine_rows]
            if ordered else _canonical(engine_rows))
    right = ([tuple(r[k] for k in sorted(r)) for r in oracle_rows]
             if ordered else _canonical(oracle_rows))
    for i, (er, orr) in enumerate(zip(left, right)):
        for ev, ov in zip(er, orr):
            if isinstance(ev, float) or isinstance(ov, float):
                assert np.isclose(float(ev), float(ov), rtol=1e-9, atol=1e-12), (
                    f"row {i}: {ev!r} != {ov!r}\n{query}"
                )
            else:
                assert ev == ov, f"row {i}: {ev!r} != {ov!r}\n{query}"


# ---------------------------------------------------------------------------
# query templates: each returns (sql, oracle_rows, ordered)
# ---------------------------------------------------------------------------


def q_filter_project(rng, t1, t2):
    """Projection with arithmetic over a random conjunctive predicate."""
    a_cut = int(rng.integers(-40, 40))
    b_cut = float(np.round(rng.uniform(-8.0, 8.0), 3))
    scale = int(rng.integers(2, 5))
    sql = (
        f"SELECT id, a * {scale} + k AS s, b FROM t1 "
        f"WHERE a > {a_cut} AND b < {b_cut}"
    )
    mask = (t1["a"] > a_cut) & (t1["b"] < b_cut)
    rows = [
        {"id": int(i), "s": int(a) * scale + int(k), "b": float(b)}
        for i, a, k, b in zip(t1["id"][mask], t1["a"][mask],
                              t1["k"][mask], t1["b"][mask])
    ]
    return sql, rows, False


def q_whole_table_aggregate(rng, t1, t2):
    """Scalar aggregates; threshold drawn from the data so input is non-empty."""
    cut = float(np.round(np.quantile(t1["b"], rng.uniform(0.1, 0.7)), 3))
    sql = (
        "SELECT COUNT(*) AS n, SUM(a) AS sa, MIN(b) AS lo, MAX(b) AS hi, "
        f"AVG(b) AS mean_b FROM t1 WHERE b >= {cut}"
    )
    mask = t1["b"] >= cut
    b = t1["b"][mask]
    rows = [{
        "n": int(mask.sum()),
        "sa": int(t1["a"][mask].sum()),
        "lo": float(b.min()),
        "hi": float(b.max()),
        "mean_b": float(b.mean()),
    }]
    return sql, rows, False


def q_group_by_having(rng, t1, t2):
    """GROUP BY the key with a HAVING floor, ordered by the key."""
    h = int(rng.integers(1, 6))
    sql = (
        "SELECT k, COUNT(*) AS n, SUM(a) AS sa, MAX(b) AS hi FROM t1 "
        f"GROUP BY k HAVING COUNT(*) > {h} ORDER BY k"
    )
    rows = []
    for key in sorted(set(t1["k"].tolist())):
        mask = t1["k"] == key
        n = int(mask.sum())
        if n > h:
            rows.append({
                "k": int(key),
                "n": n,
                "sa": int(t1["a"][mask].sum()),
                "hi": float(t1["b"][mask].max()),
            })
    return sql, rows, True


def q_inner_join(rng, t1, t2):
    """Equality join on the shared key under a filter on each side."""
    a_cut = int(rng.integers(-30, 30))
    c_cut = float(np.round(rng.uniform(20.0, 80.0), 3))
    sql = (
        "SELECT t1.id AS id, t1.k AS k, t2.c AS c "
        "FROM t1 INNER JOIN t2 ON t1.k = t2.k "
        f"WHERE t1.a > {a_cut} AND t2.c < {c_cut}"
    )
    rows = []
    for i, k, a in zip(t1["id"], t1["k"], t1["a"]):
        if a <= a_cut:
            continue
        for k2, c in zip(t2["k"], t2["c"]):
            if k2 == k and c < c_cut:
                rows.append({"id": int(i), "k": int(k), "c": float(c)})
    return sql, rows, False


def q_join_aggregate(rng, t1, t2):
    """The join feeding a grouped aggregate — the paper's spatial-join shape."""
    a_cut = int(rng.integers(-30, 20))
    sql = (
        "SELECT t1.k AS k, COUNT(*) AS n, SUM(t2.c) AS sc "
        "FROM t1 INNER JOIN t2 ON t1.k = t2.k "
        f"WHERE t1.a > {a_cut} GROUP BY t1.k ORDER BY k"
    )
    rows = []
    for key in sorted(set(t1["k"].tolist())):
        left = int(((t1["k"] == key) & (t1["a"] > a_cut)).sum())
        right = t2["c"][t2["k"] == key]
        if left and len(right):
            rows.append({
                "k": int(key),
                "n": left * len(right),
                "sc": float(left * right.sum()),
            })
    return sql, rows, True


def q_distinct(rng, t1, t2):
    """DISTINCT over the group key under a random predicate."""
    b_cut = float(np.round(rng.uniform(-6.0, 6.0), 3))
    sql = f"SELECT DISTINCT k FROM t1 WHERE b > {b_cut}"
    keys = sorted(set(t1["k"][t1["b"] > b_cut].tolist()))
    return sql, [{"k": int(k)} for k in keys], False


def q_order_limit(rng, t1, t2):
    """ORDER BY the unique primary key (deterministic) with a LIMIT."""
    limit = int(rng.integers(3, 15))
    a_cut = int(rng.integers(-40, 30))
    direction = "DESC" if rng.random() < 0.5 else "ASC"
    sql = (
        f"SELECT id, a FROM t1 WHERE a > {a_cut} "
        f"ORDER BY id {direction} LIMIT {limit}"
    )
    mask = t1["a"] > a_cut
    ids = t1["id"][mask]
    order = np.argsort(ids)
    if direction == "DESC":
        order = order[::-1]
    order = order[:limit]
    rows = [
        {"id": int(i), "a": int(a)}
        for i, a in zip(ids[order], t1["a"][mask][order])
    ]
    return sql, rows, True


TEMPLATES = (
    q_filter_project,
    q_whole_table_aggregate,
    q_group_by_having,
    q_inner_join,
    q_join_aggregate,
    q_distinct,
    q_order_limit,
)


def q_count_distinct(t1):
    """The one fixed (non-random) query per dataset: COUNT(DISTINCT k)."""
    sql = "SELECT COUNT(DISTINCT k) AS nk, COUNT(*) AS n FROM t1"
    rows = [{"nk": len(set(t1["k"].tolist())), "n": len(t1["id"])}]
    return sql, rows, False


# ---------------------------------------------------------------------------
# the differential run
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("optimizer", OPTIMIZER_MODES)
@pytest.mark.parametrize("seed", DATASET_SEEDS)
def test_differential_queries(seed, optimizer):
    t1, t2 = make_tables(seed)
    db = make_database(t1, t2, optimizer=optimizer)
    rng = np.random.default_rng(seed * 1000 + 7)

    ran = 0
    for template in TEMPLATES:
        for _ in range(QUERIES_PER_TEMPLATE):
            sql, oracle_rows, ordered = template(rng, t1, t2)
            engine_rows = db.sql(sql).rows()
            assert_rows_equal(engine_rows, oracle_rows, sql, ordered=ordered)
            ran += 1
    sql, oracle_rows, ordered = q_count_distinct(t1)
    assert_rows_equal(db.sql(sql).rows(), oracle_rows, sql, ordered=ordered)
    ran += 1
    assert ran == 50  # 4 seeds x 50 = 200 differential queries overall


def test_corpus_size():
    """The suite really is ~200 queries: 4 datasets x 50 queries each."""
    per_seed = len(TEMPLATES) * QUERIES_PER_TEMPLATE + 1
    assert per_seed == 50
    assert per_seed * len(DATASET_SEEDS) == 200


@pytest.mark.parametrize("seed", DATASET_SEEDS[:2])
def test_differential_queries_with_result_cache(seed):
    """The semantic result cache must never change an answer.

    Every query runs twice against a cache-enabled database — the
    second execution is answered from the cache — and both answers are
    checked against the numpy oracle.  A third run against a cache-off
    database closes the loop: cached rows equal uncached rows.
    """
    t1, t2 = make_tables(seed)
    cached_db = make_database(t1, t2, result_cache=True)
    plain_db = make_database(t1, t2, result_cache=False)
    rng = np.random.default_rng(seed * 1000 + 7)

    cache_hits = 0
    for template in TEMPLATES:
        for _ in range(QUERIES_PER_TEMPLATE):
            sql, oracle_rows, ordered = template(rng, t1, t2)
            warm = cached_db.sql(sql)
            hit = cached_db.sql(sql)
            if hit.plan.startswith("[answered from cache]"):
                cache_hits += 1
            for rows in (warm.rows(), hit.rows(), plain_db.sql(sql).rows()):
                assert_rows_equal(rows, oracle_rows, sql, ordered=ordered)
    # the corpus avoids TVFs, so essentially everything is cacheable
    assert cache_hits == len(TEMPLATES) * QUERIES_PER_TEMPLATE


def test_engine_matches_oracle_on_empty_result():
    """A predicate no row satisfies: both sides must agree on emptiness."""
    t1, t2 = make_tables(5)
    db = make_database(t1, t2)
    rows = db.sql("SELECT id, b FROM t1 WHERE a > 1000").rows()
    assert rows == []
