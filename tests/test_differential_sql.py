"""Differential testing: the SQL engine vs a straight-numpy oracle.

Three-hundred-odd seeded random queries — SELECTs with arithmetic and
predicates, whole-table and grouped aggregates, inner joins, DISTINCT,
ORDER BY/LIMIT, and the rewrite-triggering shapes (derived tables,
IN/EXISTS subqueries, CTEs, constant-foldable predicates, HAVING on
group keys, aggregates over PK joins, unreferenced LEFT joins) — run
twice: once through the full lexer → parser → planner → executor
stack, once through an independent numpy reference implementation that
never touches the SQL layer.  The answers must match row for row.  The
whole corpus runs under both planner modes (``optimizer="cost"`` with
ANALYZEd statistics, and ``"syntactic"``), so the cost-based
optimizer's reorderings are differentially checked against the oracle
too; a slow-marked leg re-runs everything with the logical rewrite
pass disabled and demands row identity with the rewritten answers.

The point is breadth the hand-written dialect tests can't reach: each
template draws its literals, columns and thresholds from a seeded RNG,
so every seed explores a different corner of the
predicate/projection/aggregation space while staying deterministic and
replayable (a failure names the exact query text).

Numeric comparisons use ``np.isclose(rtol=1e-9)``: both sides do the
same float arithmetic, but the engine may sum in a different order.
Templates deliberately avoid division (divide-by-zero), LEFT JOIN
(NULL-padding semantics live in test_engine_sql_dialect) and empty
aggregate inputs (thresholds are drawn from the data's own range).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database

#: dataset seeds x queries-per-template: 4 * 81 = 324 queries total.
DATASET_SEEDS = (11, 23, 47, 91)
QUERIES_PER_TEMPLATE = 5  # 16 templates x 5 draws = 80, +1 fixed = 81/seed

#: Every query runs under both planner modes: the cost-based optimizer
#: may reorder joins and pick different access paths, but the answers
#: must stay row-for-row identical to the syntactic plan's (and to the
#: numpy oracle's).
OPTIMIZER_MODES = ("cost", "syntactic")


# ---------------------------------------------------------------------------
# dataset
# ---------------------------------------------------------------------------


def make_tables(seed: int) -> tuple[dict, dict, dict]:
    """Three related tables: fact ``t1``, bag ``t2``, dimension ``t3``.

    ``t3`` is keyed on ``k`` (primary key, one row per key value) so the
    PK-dependent rewrites — LEFT-join elimination and aggregate pushdown
    below a keyed join — have a legal target.
    """
    rng = np.random.default_rng(seed)
    n1 = int(rng.integers(60, 120))
    n2 = int(rng.integers(40, 90))
    t1 = {
        "id": np.arange(n1, dtype=np.int64),
        "k": rng.integers(0, 8, n1).astype(np.int64),
        "a": rng.integers(-50, 50, n1).astype(np.int64),
        "b": rng.uniform(-10.0, 10.0, n1),
    }
    t2 = {
        "k": rng.integers(0, 8, n2).astype(np.int64),
        "c": rng.uniform(0.0, 100.0, n2),
    }
    t3 = {
        "k": np.arange(8, dtype=np.int64),
        "w": rng.uniform(1.0, 5.0, 8),
    }
    return t1, t2, t3


def make_database(t1: dict, t2: dict, t3: dict, optimizer: str = "cost",
                  result_cache: bool = False,
                  rewrites: bool = True,
                  compiled: bool = True,
                  page_compression: bool = True,
                  workers: int = 1) -> Database:
    config = EngineConfig(optimizer=optimizer, result_cache=result_cache,
                          rewrites=rewrites,
                          compiled_expressions=compiled,
                          page_compression=page_compression,
                          intra_query_workers=workers)
    db = Database("diff", config=config)
    db.create_table("t1", dict(t1), primary_key="id")
    db.create_table("t2", dict(t2))
    db.create_table("t3", dict(t3), primary_key="k")
    if optimizer == "cost":
        db.sql("ANALYZE")  # give the estimator real statistics to chew on
    return db


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


def _canonical(rows: list[dict]) -> list[tuple]:
    """Rows as tuples sorted by a total order usable across floats/ints."""
    if not rows:
        return []
    keys = sorted(rows[0].keys())
    out = [tuple(row[k] for k in keys) for row in rows]
    return sorted(out, key=lambda t: tuple(
        (float(v) if isinstance(v, (int, float, np.number)) else str(v))
        for v in t
    ))


def assert_rows_equal(engine_rows: list[dict], oracle_rows: list[dict],
                      query: str, ordered: bool = False) -> None:
    assert len(engine_rows) == len(oracle_rows), (
        f"row count {len(engine_rows)} != oracle {len(oracle_rows)}\n{query}"
    )
    if not engine_rows:
        return
    assert sorted(engine_rows[0].keys()) == sorted(oracle_rows[0].keys()), (
        f"columns differ\n{query}"
    )
    left = ([tuple(r[k] for k in sorted(r)) for r in engine_rows]
            if ordered else _canonical(engine_rows))
    right = ([tuple(r[k] for k in sorted(r)) for r in oracle_rows]
             if ordered else _canonical(oracle_rows))
    for i, (er, orr) in enumerate(zip(left, right)):
        for ev, ov in zip(er, orr):
            if isinstance(ev, float) or isinstance(ov, float):
                assert np.isclose(float(ev), float(ov), rtol=1e-9, atol=1e-12), (
                    f"row {i}: {ev!r} != {ov!r}\n{query}"
                )
            else:
                assert ev == ov, f"row {i}: {ev!r} != {ov!r}\n{query}"


# ---------------------------------------------------------------------------
# query templates: each returns (sql, oracle_rows, ordered)
# ---------------------------------------------------------------------------


def q_filter_project(rng, t1, t2, t3):
    """Projection with arithmetic over a random conjunctive predicate."""
    a_cut = int(rng.integers(-40, 40))
    b_cut = float(np.round(rng.uniform(-8.0, 8.0), 3))
    scale = int(rng.integers(2, 5))
    sql = (
        f"SELECT id, a * {scale} + k AS s, b FROM t1 "
        f"WHERE a > {a_cut} AND b < {b_cut}"
    )
    mask = (t1["a"] > a_cut) & (t1["b"] < b_cut)
    rows = [
        {"id": int(i), "s": int(a) * scale + int(k), "b": float(b)}
        for i, a, k, b in zip(t1["id"][mask], t1["a"][mask],
                              t1["k"][mask], t1["b"][mask])
    ]
    return sql, rows, False


def q_whole_table_aggregate(rng, t1, t2, t3):
    """Scalar aggregates; threshold drawn from the data so input is non-empty."""
    cut = float(np.round(np.quantile(t1["b"], rng.uniform(0.1, 0.7)), 3))
    sql = (
        "SELECT COUNT(*) AS n, SUM(a) AS sa, MIN(b) AS lo, MAX(b) AS hi, "
        f"AVG(b) AS mean_b FROM t1 WHERE b >= {cut}"
    )
    mask = t1["b"] >= cut
    b = t1["b"][mask]
    rows = [{
        "n": int(mask.sum()),
        "sa": int(t1["a"][mask].sum()),
        "lo": float(b.min()),
        "hi": float(b.max()),
        "mean_b": float(b.mean()),
    }]
    return sql, rows, False


def q_group_by_having(rng, t1, t2, t3):
    """GROUP BY the key with a HAVING floor, ordered by the key."""
    h = int(rng.integers(1, 6))
    sql = (
        "SELECT k, COUNT(*) AS n, SUM(a) AS sa, MAX(b) AS hi FROM t1 "
        f"GROUP BY k HAVING COUNT(*) > {h} ORDER BY k"
    )
    rows = []
    for key in sorted(set(t1["k"].tolist())):
        mask = t1["k"] == key
        n = int(mask.sum())
        if n > h:
            rows.append({
                "k": int(key),
                "n": n,
                "sa": int(t1["a"][mask].sum()),
                "hi": float(t1["b"][mask].max()),
            })
    return sql, rows, True


def q_inner_join(rng, t1, t2, t3):
    """Equality join on the shared key under a filter on each side."""
    a_cut = int(rng.integers(-30, 30))
    c_cut = float(np.round(rng.uniform(20.0, 80.0), 3))
    sql = (
        "SELECT t1.id AS id, t1.k AS k, t2.c AS c "
        "FROM t1 INNER JOIN t2 ON t1.k = t2.k "
        f"WHERE t1.a > {a_cut} AND t2.c < {c_cut}"
    )
    rows = []
    for i, k, a in zip(t1["id"], t1["k"], t1["a"]):
        if a <= a_cut:
            continue
        for k2, c in zip(t2["k"], t2["c"]):
            if k2 == k and c < c_cut:
                rows.append({"id": int(i), "k": int(k), "c": float(c)})
    return sql, rows, False


def q_join_aggregate(rng, t1, t2, t3):
    """The join feeding a grouped aggregate — the paper's spatial-join shape."""
    a_cut = int(rng.integers(-30, 20))
    sql = (
        "SELECT t1.k AS k, COUNT(*) AS n, SUM(t2.c) AS sc "
        "FROM t1 INNER JOIN t2 ON t1.k = t2.k "
        f"WHERE t1.a > {a_cut} GROUP BY t1.k ORDER BY k"
    )
    rows = []
    for key in sorted(set(t1["k"].tolist())):
        left = int(((t1["k"] == key) & (t1["a"] > a_cut)).sum())
        right = t2["c"][t2["k"] == key]
        if left and len(right):
            rows.append({
                "k": int(key),
                "n": left * len(right),
                "sc": float(left * right.sum()),
            })
    return sql, rows, True


def q_distinct(rng, t1, t2, t3):
    """DISTINCT over the group key under a random predicate."""
    b_cut = float(np.round(rng.uniform(-6.0, 6.0), 3))
    sql = f"SELECT DISTINCT k FROM t1 WHERE b > {b_cut}"
    keys = sorted(set(t1["k"][t1["b"] > b_cut].tolist()))
    return sql, [{"k": int(k)} for k in keys], False


def q_order_limit(rng, t1, t2, t3):
    """ORDER BY the unique primary key (deterministic) with a LIMIT."""
    limit = int(rng.integers(3, 15))
    a_cut = int(rng.integers(-40, 30))
    direction = "DESC" if rng.random() < 0.5 else "ASC"
    sql = (
        f"SELECT id, a FROM t1 WHERE a > {a_cut} "
        f"ORDER BY id {direction} LIMIT {limit}"
    )
    mask = t1["a"] > a_cut
    ids = t1["id"][mask]
    order = np.argsort(ids)
    if direction == "DESC":
        order = order[::-1]
    order = order[:limit]
    rows = [
        {"id": int(i), "a": int(a)}
        for i, a in zip(ids[order], t1["a"][mask][order])
    ]
    return sql, rows, True


# ---------------------------------------------------------------------------
# rewrite-triggering templates: every shape below makes one of the
# logical rewrite rules fire, so the corpus differentially proves the
# rewritten plans against an oracle that never saw the rewrite.
# ---------------------------------------------------------------------------


def q_derived_pushdown(rng, t1, t2, t3):
    """Outer filter over a bare derived table (predicate pushdown)."""
    a_cut = int(rng.integers(-40, 40))
    sql = (
        "SELECT * FROM (SELECT id, k, a FROM t1) d "
        f"WHERE d.a > {a_cut} ORDER BY id"
    )
    mask = t1["a"] > a_cut
    rows = [
        {"id": int(i), "k": int(k), "a": int(a)}
        for i, k, a in zip(t1["id"][mask], t1["k"][mask], t1["a"][mask])
    ]
    return sql, rows, True


def q_derived_merge(rng, t1, t2, t3):
    """Computed column in a derived table, filtered outside (merge)."""
    a_cut = int(rng.integers(-30, 30))
    s_cut = int(rng.integers(-20, 20))
    sql = (
        f"SELECT d.id, d.s FROM "
        f"(SELECT id, a + k AS s FROM t1 WHERE a > {a_cut}) d "
        f"WHERE d.s > {s_cut} ORDER BY d.id"
    )
    mask = (t1["a"] > a_cut) & (t1["a"] + t1["k"] > s_cut)
    rows = [
        {"id": int(i), "s": int(a) + int(k)}
        for i, a, k in zip(t1["id"][mask], t1["a"][mask], t1["k"][mask])
    ]
    return sql, rows, True


def q_in_subquery(rng, t1, t2, t3):
    """Uncorrelated IN over the shared key (semi-join decorrelation)."""
    c_cut = float(np.round(rng.uniform(10.0, 90.0), 3))
    sql = (
        "SELECT id, k FROM t1 "
        f"WHERE k IN (SELECT k FROM t2 WHERE c > {c_cut}) ORDER BY id"
    )
    inner = set(t2["k"][t2["c"] > c_cut].tolist())
    rows = [
        {"id": int(i), "k": int(k)}
        for i, k in zip(t1["id"], t1["k"]) if int(k) in inner
    ]
    return sql, rows, True


def q_exists_subquery(rng, t1, t2, t3):
    """Correlated EXISTS over the shared key (decorrelation)."""
    c_cut = float(np.round(rng.uniform(10.0, 90.0), 3))
    sql = (
        "SELECT id, a FROM t1 WHERE EXISTS "
        f"(SELECT 1 FROM t2 WHERE t2.k = t1.k AND t2.c > {c_cut}) "
        "ORDER BY id"
    )
    inner = set(t2["k"][t2["c"] > c_cut].tolist())
    rows = [
        {"id": int(i), "a": int(a)}
        for i, k, a in zip(t1["id"], t1["k"], t1["a"]) if int(k) in inner
    ]
    return sql, rows, True


def q_cte(rng, t1, t2, t3):
    """WITH-bound subset filtered again outside (CTE inline + merge)."""
    a_cut = int(rng.integers(-40, 30))
    b_cut = float(np.round(rng.uniform(-6.0, 6.0), 3))
    sql = (
        f"WITH f AS (SELECT id, a, b FROM t1 WHERE a > {a_cut}) "
        f"SELECT id, b FROM f WHERE b < {b_cut} ORDER BY id"
    )
    mask = (t1["a"] > a_cut) & (t1["b"] < b_cut)
    rows = [
        {"id": int(i), "b": float(b)}
        for i, b in zip(t1["id"][mask], t1["b"][mask])
    ]
    return sql, rows, True


def q_constant_fold(rng, t1, t2, t3):
    """Tautologies and literal arithmetic around a real predicate."""
    a_cut = int(rng.integers(-40, 40))
    scale = int(rng.integers(2, 5))
    sql = (
        f"SELECT id, a * {scale} + 1 - 1 AS s FROM t1 "
        f"WHERE 1 = 1 AND a > {a_cut} AND 2 + 2 = 4 ORDER BY id"
    )
    mask = t1["a"] > a_cut
    rows = [
        {"id": int(i), "s": int(a) * scale}
        for i, a in zip(t1["id"][mask], t1["a"][mask])
    ]
    return sql, rows, True


def q_having_on_group_key(rng, t1, t2, t3):
    """HAVING conjunct on the group key (filter-before-aggregate)."""
    k_cut = int(rng.integers(1, 7))
    h = int(rng.integers(1, 5))
    sql = (
        "SELECT k, COUNT(*) AS n, SUM(a) AS sa FROM t1 GROUP BY k "
        f"HAVING k >= {k_cut} AND COUNT(*) > {h} ORDER BY k"
    )
    rows = []
    for key in sorted(set(t1["k"].tolist())):
        if key < k_cut:
            continue
        mask = t1["k"] == key
        n = int(mask.sum())
        if n > h:
            rows.append({"k": int(key), "n": n,
                         "sa": int(t1["a"][mask].sum())})
    return sql, rows, True


def q_aggregate_pushdown(rng, t1, t2, t3):
    """Grouped SUM/MIN/MAX over a PK-keyed join (eager aggregation).

    COUNT is deliberately absent: the rewrite rule refuses it (grouped
    COUNT is int64 but re-aggregated partials would be float64), so a
    COUNT here would just disarm the template.
    """
    a_cut = int(rng.integers(-40, 20))
    sql = (
        "SELECT t3.k, SUM(t1.a) AS sa, MIN(t1.b) AS lo, MAX(t1.b) AS hi "
        "FROM t3 INNER JOIN t1 ON t1.k = t3.k "
        f"WHERE t1.a > {a_cut} GROUP BY t3.k ORDER BY t3.k"
    )
    rows = []
    for key in t3["k"].tolist():
        mask = (t1["k"] == key) & (t1["a"] > a_cut)
        if mask.any():
            rows.append({
                "k": int(key),
                "sa": int(t1["a"][mask].sum()),
                "lo": float(t1["b"][mask].min()),
                "hi": float(t1["b"][mask].max()),
            })
    return sql, rows, True


def q_left_join_elimination(rng, t1, t2, t3):
    """LEFT JOIN to an unreferenced PK-keyed table (join elimination)."""
    a_cut = int(rng.integers(-40, 30))
    sql = (
        "SELECT t1.id, t1.a FROM t1 LEFT JOIN t3 ON t3.k = t1.k "
        f"WHERE t1.a > {a_cut} ORDER BY t1.id"
    )
    mask = t1["a"] > a_cut
    rows = [
        {"id": int(i), "a": int(a)}
        for i, a in zip(t1["id"][mask], t1["a"][mask])
    ]
    return sql, rows, True


TEMPLATES = (
    q_filter_project,
    q_whole_table_aggregate,
    q_group_by_having,
    q_inner_join,
    q_join_aggregate,
    q_distinct,
    q_order_limit,
    q_derived_pushdown,
    q_derived_merge,
    q_in_subquery,
    q_exists_subquery,
    q_cte,
    q_constant_fold,
    q_having_on_group_key,
    q_aggregate_pushdown,
    q_left_join_elimination,
)


def q_count_distinct(t1):
    """The one fixed (non-random) query per dataset: COUNT(DISTINCT k)."""
    sql = "SELECT COUNT(DISTINCT k) AS nk, COUNT(*) AS n FROM t1"
    rows = [{"nk": len(set(t1["k"].tolist())), "n": len(t1["id"])}]
    return sql, rows, False


# ---------------------------------------------------------------------------
# the differential run
# ---------------------------------------------------------------------------


def iter_corpus(seed: int):
    """Yield every (sql, oracle_rows, ordered) triple of one dataset."""
    t1, t2, t3 = make_tables(seed)
    rng = np.random.default_rng(seed * 1000 + 7)
    for template in TEMPLATES:
        for _ in range(QUERIES_PER_TEMPLATE):
            yield template(rng, t1, t2, t3)
    yield q_count_distinct(t1)


@pytest.mark.parametrize("optimizer", OPTIMIZER_MODES)
@pytest.mark.parametrize("seed", DATASET_SEEDS)
def test_differential_queries(seed, optimizer):
    t1, t2, t3 = make_tables(seed)
    db = make_database(t1, t2, t3, optimizer=optimizer)

    ran = 0
    for sql, oracle_rows, ordered in iter_corpus(seed):
        engine_rows = db.sql(sql).rows()
        assert_rows_equal(engine_rows, oracle_rows, sql, ordered=ordered)
        ran += 1
    assert ran == 81  # 4 seeds x 81 = 324 differential queries overall


def test_corpus_size():
    """The suite really is 324 queries: 4 datasets x 81 queries each."""
    per_seed = len(TEMPLATES) * QUERIES_PER_TEMPLATE + 1
    assert per_seed == 81
    assert per_seed * len(DATASET_SEEDS) == 324


@pytest.mark.slow
@pytest.mark.parametrize("seed", DATASET_SEEDS)
def test_differential_rewrites_off_row_identity(seed):
    """The whole corpus, logical rewrites disabled.

    Every query must match both the numpy oracle and the rewrites-on
    engine's answer row for row — the rewrite pass may change plans,
    never results.
    """
    t1, t2, t3 = make_tables(seed)
    db_on = make_database(t1, t2, t3, rewrites=True)
    db_off = make_database(t1, t2, t3, rewrites=False)

    for sql, oracle_rows, ordered in iter_corpus(seed):
        rows_off = db_off.sql(sql).rows()
        assert_rows_equal(rows_off, oracle_rows, sql, ordered=ordered)
        assert_rows_equal(db_on.sql(sql).rows(), rows_off, sql,
                          ordered=ordered)


def test_rewrite_differential_smoke():
    """CI smoke subset: one draw per template, both rewrite modes.

    Fast enough to run on every push; the slow-marked test above covers
    the full corpus.
    """
    seed = DATASET_SEEDS[0]
    t1, t2, t3 = make_tables(seed)
    db_on = make_database(t1, t2, t3, rewrites=True)
    db_off = make_database(t1, t2, t3, rewrites=False)
    rng = np.random.default_rng(seed * 1000 + 7)

    ran = 0
    for template in TEMPLATES:
        for draw in range(2):
            sql, oracle_rows, ordered = template(rng, t1, t2, t3)
            rows_on = db_on.sql(sql).rows()
            assert_rows_equal(rows_on, oracle_rows, sql, ordered=ordered)
            assert_rows_equal(db_off.sql(sql).rows(), rows_on, sql,
                              ordered=ordered)
            ran += 1
    assert ran == 2 * len(TEMPLATES)


@pytest.mark.parametrize("seed", DATASET_SEEDS[:2])
def test_differential_queries_with_result_cache(seed):
    """The semantic result cache must never change an answer.

    Every query runs twice against a cache-enabled database — the
    second execution is answered from the cache — and both answers are
    checked against the numpy oracle.  A third run against a cache-off
    database closes the loop: cached rows equal uncached rows.
    """
    t1, t2, t3 = make_tables(seed)
    cached_db = make_database(t1, t2, t3, result_cache=True)
    plain_db = make_database(t1, t2, t3, result_cache=False)
    rng = np.random.default_rng(seed * 1000 + 7)

    cache_hits = 0
    for template in TEMPLATES:
        for _ in range(QUERIES_PER_TEMPLATE):
            sql, oracle_rows, ordered = template(rng, t1, t2, t3)
            warm = cached_db.sql(sql)
            hit = cached_db.sql(sql)
            if hit.plan.startswith("[answered from cache]"):
                cache_hits += 1
            for rows in (warm.rows(), hit.rows(), plain_db.sql(sql).rows()):
                assert_rows_equal(rows, oracle_rows, sql, ordered=ordered)
    # the corpus avoids TVFs, so essentially everything is cacheable
    assert cache_hits == len(TEMPLATES) * QUERIES_PER_TEMPLATE


def assert_rows_byte_identical(a: list[dict], b: list[dict],
                               query: str) -> None:
    """Exact equality, row order included — no isclose tolerance.

    The compiled-kernel and page-compression paths promise *byte*
    identity with the interpreted/raw paths: same float arithmetic in
    the same order, so even the last ulp must agree.
    """
    assert len(a) == len(b), f"row count {len(a)} != {len(b)}\n{query}"
    for row_a, row_b in zip(a, b):
        assert row_a.keys() == row_b.keys(), query
        for key in row_a:
            va, vb = row_a[key], row_b[key]
            if isinstance(va, float) and isinstance(vb, float) \
                    and np.isnan(va) and np.isnan(vb):
                continue
            assert va == vb, f"{key}: {va!r} != {vb!r}\n{query}"


#: (compiled_expressions, page_compression) — all four mode corners.
KERNEL_MODES = ((True, True), (True, False), (False, True), (False, False))


@pytest.mark.slow
@pytest.mark.parametrize("seed", DATASET_SEEDS)
def test_differential_compiled_modes_byte_identity(seed):
    """The whole corpus across all four compiled x compression corners.

    Every corner must match the numpy oracle row for row, and every
    corner must be *byte-identical* (exact equality, ordering included)
    to the all-off baseline — fused kernels and compressed pages change
    cost, never answers.
    """
    t1, t2, t3 = make_tables(seed)
    dbs = {mode: make_database(t1, t2, t3, compiled=mode[0],
                               page_compression=mode[1])
           for mode in KERNEL_MODES}

    for sql, oracle_rows, ordered in iter_corpus(seed):
        baseline = dbs[(False, False)].sql(sql).rows()
        assert_rows_equal(baseline, oracle_rows, sql, ordered=ordered)
        for mode in KERNEL_MODES[:-1]:
            assert_rows_byte_identical(dbs[mode].sql(sql).rows(),
                                       baseline, sql)


def test_compiled_differential_smoke():
    """CI smoke subset: two draws per template, all four kernel modes,
    plus a morsel-parallel compiled leg — byte identity throughout."""
    seed = DATASET_SEEDS[0]
    t1, t2, t3 = make_tables(seed)
    dbs = [make_database(t1, t2, t3, compiled=c, page_compression=p)
           for c, p in KERNEL_MODES]
    parallel = make_database(t1, t2, t3, workers=4)
    rng = np.random.default_rng(seed * 1000 + 7)

    ran = 0
    for template in TEMPLATES:
        for _ in range(2):
            sql, oracle_rows, ordered = template(rng, t1, t2, t3)
            baseline = dbs[-1].sql(sql).rows()
            assert_rows_equal(baseline, oracle_rows, sql, ordered=ordered)
            for db in [*dbs[:-1], parallel]:
                assert_rows_byte_identical(db.sql(sql).rows(), baseline, sql)
            ran += 1
    assert ran == 2 * len(TEMPLATES)


def test_engine_matches_oracle_on_empty_result():
    """A predicate no row satisfies: both sides must agree on emptiness."""
    t1, t2, t3 = make_tables(5)
    db = make_database(t1, t2, t3)
    rows = db.sql("SELECT id, b FROM t1 WHERE a > 1000").rows()
    assert rows == []
