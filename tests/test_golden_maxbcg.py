"""Golden-run regression: the seeded MaxBCG answer, pinned byte-for-byte.

``tests/golden/maxbcg_2server_seed42.json`` holds the SHA-256
fingerprint (:func:`repro.cluster.verify.run_fingerprint`) of one fully
seeded end-to-end run: the session sky (seed 42), ``fast_config()``,
two partitions.  Every execution path must keep reproducing it exactly:

* ``run_partitioned`` on the sequential backend (the reference);
* the thread backend, checked two ways — byte-identity against the
  sequential run via :func:`assert_backends_equivalent` AND against the
  committed golden file, so a bug that shifts *both* backends together
  still trips the alarm;
* the scheduler-driven federation of CasJobs sites, on both the
  sequential and the thread job pool.

If an intentional algorithm change moves the numbers, regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_maxbcg.py

and commit the diff — the point is that drift is always a decision,
never an accident.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.casjobs.federation import DataGridFederation
from repro.casjobs.scheduler import SchedulerConfig
from repro.cluster.executor import run_partitioned
from repro.cluster.verify import (
    assert_backends_equivalent,
    assert_matches_golden,
    run_fingerprint,
)
from repro.errors import PartitionError

GOLDEN_PATH = Path(__file__).parent / "golden" / "maxbcg_2server_seed42.json"
N_SERVERS = 2


def load_golden() -> dict:
    golden = json.loads(GOLDEN_PATH.read_text())
    golden.pop("description", None)
    return golden


@pytest.fixture(scope="module")
def runs(sky, target_region, kcorr, config):
    """The same seeded workload through both execution backends."""
    return {
        backend: run_partitioned(
            sky.catalog, target_region, kcorr, config,
            n_servers=N_SERVERS, backend=backend,
        )
        for backend in ("sequential", "threads")
    }


@pytest.fixture(scope="module")
def federation_fingerprints(sky, target_region, kcorr, config):
    """Scheduler-driven federated runs on both job pools."""
    fingerprints = {}
    for pool in ("sequential", "threads"):
        federation = DataGridFederation(kcorr, config)
        federation.deploy_sites(["fermilab", "jhu"], sky.catalog, target_region)
        report = federation.submit_maxbcg(
            scheduler_config=SchedulerConfig(pool=pool, max_workers=N_SERVERS)
        )
        fingerprints[pool] = run_fingerprint(
            report.candidates, report.clusters, report.members
        )
    return fingerprints


def test_regenerate_golden_if_requested(runs):
    """With REPRO_REGEN_GOLDEN=1, rewrite the fixture from the sequential run."""
    if not os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("set REPRO_REGEN_GOLDEN=1 to regenerate the golden file")
    result = runs["sequential"]
    fingerprint = run_fingerprint(result.candidates, result.clusters,
                                  result.members)
    payload = {
        "description": (
            "Golden MaxBCG fingerprint: fast_config(), sky seed 42 "
            "(field_density=700, cluster_density=9), target "
            "RegionBox(180, 182, 0, 2), 2 servers/sites. Regenerate with "
            "REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest "
            "tests/test_golden_maxbcg.py"
        ),
        **fingerprint,
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_sequential_matches_golden(runs):
    result = runs["sequential"]
    fingerprint = run_fingerprint(result.candidates, result.clusters,
                                  result.members)
    assert_matches_golden(fingerprint, load_golden(), label="sequential run")


def test_thread_backend_matches_sequential_and_golden(runs):
    assert_backends_equivalent(runs)
    result = runs["threads"]
    fingerprint = run_fingerprint(result.candidates, result.clusters,
                                  result.members)
    assert_matches_golden(fingerprint, load_golden(), label="thread backend")


@pytest.mark.parametrize("pool", ["sequential", "threads"])
def test_federation_matches_golden(federation_fingerprints, pool):
    """The CasJobs-scheduler route reproduces the partitioned answer."""
    assert_matches_golden(
        federation_fingerprints[pool], load_golden(),
        label=f"federated run ({pool} pool)",
    )


def test_federation_pools_agree(federation_fingerprints):
    assert (federation_fingerprints["sequential"]
            == federation_fingerprints["threads"])


def test_golden_drift_is_loud(runs):
    """A single flipped count must name the divergent field."""
    result = runs["sequential"]
    fingerprint = run_fingerprint(result.candidates, result.clusters,
                                  result.members)
    tampered = {**load_golden(), "n_clusters": -1}
    with pytest.raises(PartitionError, match="n_clusters"):
        assert_matches_golden(fingerprint, tampered, label="tampered")
