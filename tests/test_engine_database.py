"""Database catalog, indexes, planner integration, stats."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.errors import EngineError, TableNotFoundError


@pytest.fixture()
def db() -> Database:
    d = Database("cat")
    rng = np.random.default_rng(2)
    n = 2000
    d.create_table(
        "galaxy",
        {
            "objid": np.arange(n),
            "zoneid": rng.integers(0, 50, n),
            "ra": rng.uniform(0, 360, n),
        },
        primary_key="objid",
    )
    return d


class TestCatalog:
    def test_create_and_lookup(self, db):
        assert db.has_table("galaxy")
        assert db.table("GALAXY").row_count == 2000

    def test_table_names(self, db):
        assert db.table_names() == ["galaxy"]

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(EngineError):
            db.create_table("galaxy", {"a": np.array([1])})

    def test_drop(self, db):
        db.drop_table("galaxy")
        assert not db.has_table("galaxy")
        with pytest.raises(TableNotFoundError):
            db.drop_table("galaxy")
        db.drop_table("galaxy", if_exists=True)  # no raise

    def test_create_empty_table(self, db):
        db.create_table("empty", {"a": np.empty(0, dtype=np.int64)})
        assert db.table("empty").row_count == 0


class TestIndexes:
    def test_clustered_index_used_by_planner(self, db):
        db.create_clustered_index("galaxy", "zoneid", "ra")
        plan = db.explain("SELECT objid FROM galaxy WHERE zoneid BETWEEN 3 AND 5")
        assert "IndexRangeScan" in plan

    def test_no_index_means_seqscan(self, db):
        plan = db.explain("SELECT objid FROM galaxy WHERE zoneid BETWEEN 3 AND 5")
        assert "SeqScan" in plan and "IndexRangeScan" not in plan

    def test_index_range_results_match_scan(self, db):
        want = db.sql(
            "SELECT COUNT(*) AS c FROM galaxy WHERE zoneid BETWEEN 3 AND 5"
        ).scalar()
        db.create_clustered_index("galaxy", "zoneid", "ra")
        got = db.sql(
            "SELECT COUNT(*) AS c FROM galaxy WHERE zoneid BETWEEN 3 AND 5"
        ).scalar()
        assert got == want

    def test_index_invalidated_by_dml(self, db):
        db.create_clustered_index("galaxy", "zoneid")
        db.sql("INSERT INTO galaxy VALUES (99999, 0, 1.0)")
        assert db.clustered_index("galaxy") is None

    def test_index_range_cheaper_than_scan(self, db):
        db.create_clustered_index("galaxy", "zoneid", "ra")
        before = db.pool.counters.logical_reads
        db.sql("SELECT objid FROM galaxy WHERE zoneid BETWEEN 3 AND 4")
        ranged = db.pool.counters.logical_reads - before
        before = db.pool.counters.logical_reads
        db.sql("SELECT objid FROM galaxy")
        full = db.pool.counters.logical_reads - before
        assert ranged < full

    def test_hash_index(self, db):
        index = db.create_hash_index("galaxy", "zoneid")
        rows = index.lookup(7)
        assert np.all(rows["zoneid"] == 7)
        assert db.hash_index("galaxy", "zoneid") is index
        assert db.hash_index("galaxy", "nothere") is None


class TestStats:
    def test_stats_summary(self, db):
        stats = db.stats_summary()
        assert stats["tables"] == 1
        assert stats["rows"] == 2000
        assert stats["pages"] == db.table("galaxy").page_count
        assert stats["writes"] > 0

    def test_explain_rejects_non_select(self, db):
        with pytest.raises(EngineError):
            db.explain("DELETE FROM galaxy")
