"""The CasJobs service: contexts, batch queries, groups."""

import numpy as np
import pytest

from repro.casjobs.queue import JobStatus
from repro.casjobs.server import CasJobsService
from repro.engine.database import Database
from repro.errors import CasJobsError


@pytest.fixture()
def service():
    svc = CasJobsService("skyserver")
    catalog = Database("dr1")
    catalog.create_table(
        "galaxy",
        {"objid": np.arange(10), "i": np.linspace(15.0, 20.0, 10)},
        primary_key="objid",
    )
    svc.add_context("dr1", catalog)
    svc.register_user("alice")
    svc.register_user("bob")
    return svc


class TestQueries:
    def test_submit_and_fetch(self, service):
        job = service.submit("alice", "SELECT COUNT(*) AS c FROM galaxy", "dr1")
        service.process_queue()
        result = service.fetch("alice", job.job_id)
        assert result.scalar() == 10

    def test_output_into_mydb(self, service):
        job = service.submit(
            "alice", "SELECT objid, i FROM galaxy WHERE i < 17", "dr1",
            output_table="bright",
        )
        service.process_queue()
        assert service.mydb("alice").database.table("bright").row_count == 4
        assert service.fetch("alice", job.job_id).row_count == 4

    def test_query_against_mydb(self, service):
        service.mydb("alice").upload("mine", {"x": np.arange(5)})
        job = service.submit("alice", "SELECT COUNT(*) AS c FROM mine", "mydb")
        service.process_queue()
        assert service.fetch("alice", job.job_id).scalar() == 5

    def test_failed_query_recorded(self, service):
        job = service.submit("alice", "SELECT * FROM nope", "dr1")
        service.process_queue()
        assert service.queue.get(job.job_id).status is JobStatus.FAILED
        with pytest.raises(CasJobsError, match="failed"):
            service.fetch("alice", job.job_id)

    def test_jobs_are_private(self, service):
        job = service.submit("alice", "SELECT COUNT(*) AS c FROM galaxy", "dr1")
        service.process_queue()
        with pytest.raises(CasJobsError):
            service.fetch("bob", job.job_id)

    def test_unknown_context(self, service):
        with pytest.raises(CasJobsError):
            service.submit("alice", "SELECT 1", "dr9")

    def test_unregistered_user(self, service):
        with pytest.raises(CasJobsError):
            service.submit("mallory", "SELECT 1", "dr1")


class TestAdministration:
    def test_duplicate_context(self, service):
        with pytest.raises(CasJobsError):
            service.add_context("dr1", Database("again"))

    def test_duplicate_user(self, service):
        with pytest.raises(CasJobsError):
            service.register_user("alice")


class TestGroups:
    def test_share_and_read(self, service):
        service.mydb("alice").upload("clusters", {"objid": np.array([1, 2])})
        service.create_group("collab", "alice")
        service.join_group("collab", "bob")
        service.share_table("alice", "clusters", "collab")
        shared = service.read_shared("bob", "collab", "alice", "clusters")
        assert shared["objid"].tolist() == [1, 2]

    def test_non_member_cannot_read(self, service):
        service.mydb("alice").upload("t", {"x": np.array([1])})
        service.create_group("collab", "alice")
        service.share_table("alice", "t", "collab")
        with pytest.raises(CasJobsError):
            service.read_shared("bob", "collab", "alice", "t")

    def test_unshared_table_not_readable(self, service):
        service.mydb("alice").upload("t", {"x": np.array([1])})
        service.create_group("collab", "alice")
        service.join_group("collab", "bob")
        with pytest.raises(CasJobsError):
            service.read_shared("bob", "collab", "alice", "t")

    def test_non_member_cannot_share(self, service):
        service.mydb("bob").upload("t", {"x": np.array([1])})
        service.create_group("collab", "alice")
        with pytest.raises(CasJobsError):
            service.share_table("bob", "t", "collab")

    def test_duplicate_group(self, service):
        service.create_group("g", "alice")
        with pytest.raises(CasJobsError):
            service.create_group("g", "bob")
