"""The flat-file store."""

import numpy as np
import pytest

from repro.errors import TamError
from repro.skyserver.regions import RegionBox
from repro.tam.fields import tile_fields
from repro.tam.files import FileStore


@pytest.fixture()
def store(tmp_path):
    return FileStore(tmp_path / "das")


@pytest.fixture()
def one_field():
    return tile_fields(RegionBox(0.0, 0.5, 0.0, 0.5))[0]


class TestCatalogFiles:
    def test_roundtrip(self, store, one_field, sky):
        subset = sky.catalog.take(np.arange(100))
        store.write_catalog(one_field, "target", subset)
        back = store.read_catalog(one_field, "target")
        assert back.objid.tolist() == subset.objid.tolist()
        assert np.allclose(back.ra, subset.ra)

    def test_missing_file(self, store, one_field):
        with pytest.raises(TamError):
            store.read_catalog(one_field, "buffer")

    def test_unknown_kind(self, store, one_field, sky):
        with pytest.raises(TamError):
            store.write_catalog(one_field, "bonus", sky.catalog)

    def test_has_file(self, store, one_field, sky):
        assert not store.has_file(one_field, "target")
        store.write_catalog(one_field, "target", sky.catalog.take([0]))
        assert store.has_file(one_field, "target")


class TestStats:
    def test_traffic_counters(self, store, one_field, sky):
        subset = sky.catalog.take(np.arange(50))
        store.write_catalog(one_field, "target", subset)
        assert store.stats.files_written == 1
        assert store.stats.bytes_written > 0
        store.read_catalog(one_field, "target")
        assert store.stats.files_read == 1
        assert store.stats.bytes_read == store.stats.bytes_written

    def test_file_count(self, store, one_field, sky):
        store.write_catalog(one_field, "target", sky.catalog.take([0]))
        store.write_catalog(one_field, "buffer", sky.catalog.take([1]))
        assert store.file_count() == 2


class TestRowFiles:
    def test_rows_roundtrip(self, store, one_field):
        rows = {"objid": np.array([1, 2]), "chi2": np.array([0.5, 1.5])}
        store.write_rows(one_field, "candidates", rows)
        back = store.read_rows(one_field, "candidates")
        assert back["objid"].tolist() == [1, 2]
        assert back["chi2"].tolist() == [0.5, 1.5]

    def test_missing_rows_file(self, store, one_field):
        with pytest.raises(TamError):
            store.read_rows(one_field, "candidates")
