"""The command-line interface."""

import pytest

from repro.cli import main


def small_args(*extra):
    return [
        "--target", "180.2,181.0,0.2,1.0",
        "--density", "250", "--clusters", "8", "--seed", "4",
        "--z-step", "0.01",
        *extra,
    ]


class TestRun:
    def test_run_reports(self, capsys):
        assert main(["run", *small_args()]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out
        assert "fBCGCandidate" in out

    def test_run_cursor_method(self, capsys):
        assert main(["run", *small_args(), "--method", "cursor"]) == 0

    def test_run_with_members(self, capsys):
        assert main(["run", *small_args(), "--members"]) == 0
        assert "member links:" in capsys.readouterr().out


class TestPartition:
    def test_partition_checks_invariant(self, capsys):
        assert main(["partition", *small_args(), "--servers", "2"]) == 0
        out = capsys.readouterr().out
        assert "invariant OK" in out
        assert "speedup" in out


class TestCompare:
    def test_compare_sql_wins(self, capsys):
        assert main(["compare", *small_args()]) == 0
        out = capsys.readouterr().out
        assert "TAM" in out and "SQL" in out and "speedup" in out


class TestSql:
    def test_execute_statement(self, capsys):
        code = main([
            "sql", *small_args(),
            "-e", "SELECT COUNT(*) AS n FROM galaxy_source",
        ])
        assert code == 0
        assert "n" in capsys.readouterr().out

    def test_script_file(self, tmp_path, capsys):
        script = tmp_path / "demo.sql"
        script.write_text(
            "EXEC spImportGalaxy 179, 182, -1, 2;\n"
            "EXEC spZone;\n"
            "SELECT COUNT(*) AS n FROM Galaxy;\n"
        )
        assert main(["sql", *small_args(), "--script", str(script)]) == 0

    def test_bad_region_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--target", "not-a-box"])


class TestAnalyze:
    def test_explain_analyze_output(self, capsys):
        code = main([
            "analyze", *small_args(),
            "-e", "SELECT COUNT(*) AS c FROM Galaxy WHERE i < 18",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows=" in out and "total:" in out


class TestWorkloads:
    def test_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "small" in out and "paper" in out
