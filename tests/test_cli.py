"""The command-line interface."""

import pytest

from repro.cli import main


def small_args(*extra):
    return [
        "--target", "180.2,181.0,0.2,1.0",
        "--density", "250", "--clusters", "8", "--seed", "4",
        "--z-step", "0.01",
        *extra,
    ]


class TestRun:
    def test_run_reports(self, capsys):
        assert main(["run", *small_args()]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out
        assert "fBCGCandidate" in out

    def test_run_cursor_method(self, capsys):
        assert main(["run", *small_args(), "--method", "cursor"]) == 0

    def test_run_with_members(self, capsys):
        assert main(["run", *small_args(), "--members"]) == 0
        assert "member links:" in capsys.readouterr().out


class TestPartition:
    def test_partition_checks_invariant(self, capsys):
        assert main(["partition", *small_args(), "--servers", "2"]) == 0
        out = capsys.readouterr().out
        assert "invariant OK" in out
        assert "speedup" in out


class TestCompare:
    def test_compare_sql_wins(self, capsys):
        assert main(["compare", *small_args()]) == 0
        out = capsys.readouterr().out
        assert "TAM" in out and "SQL" in out and "speedup" in out


class TestSql:
    def test_execute_statement(self, capsys):
        code = main([
            "sql", *small_args(),
            "-e", "SELECT COUNT(*) AS n FROM galaxy_source",
        ])
        assert code == 0
        assert "n" in capsys.readouterr().out

    def test_script_file(self, tmp_path, capsys):
        script = tmp_path / "demo.sql"
        script.write_text(
            "EXEC spImportGalaxy 179, 182, -1, 2;\n"
            "EXEC spZone;\n"
            "SELECT COUNT(*) AS n FROM Galaxy;\n"
        )
        assert main(["sql", *small_args(), "--script", str(script)]) == 0

    def test_bad_region_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--target", "not-a-box"])


class TestEngineFlags:
    """The shared --workers/--optimizer/--backend/--cache parent parser."""

    def test_sql_accepts_cache_flag(self, capsys):
        code = main([
            "sql", *small_args(), "--cache",
            "-e", "SELECT COUNT(*) AS n FROM galaxy_source",
        ])
        assert code == 0
        assert "n" in capsys.readouterr().out

    def test_sql_script_materialized_view(self, tmp_path, capsys):
        script = tmp_path / "matview.sql"
        script.write_text(
            "EXEC spImportGalaxy 179, 182, -1, 2;\n"
            "EXEC spZone;\n"
            "CREATE MATERIALIZED VIEW galaxy_total AS "
            "SELECT COUNT(*) AS n FROM Galaxy;\n"
            "SELECT n FROM galaxy_total;\n"
        )
        assert main(["sql", *small_args(), "--script", str(script)]) == 0
        assert "n" in capsys.readouterr().out

    def test_explain_accepts_shared_flags(self, capsys):
        code = main([
            "explain", *small_args(), "--workers", "2", "--cache",
            "--optimizer", "cost",
            "SELECT COUNT(*) AS c FROM Galaxy WHERE i < 18",
        ])
        assert code == 0
        assert "est=" in capsys.readouterr().out

    def test_partition_rejects_removed_parallel_flag(self):
        with pytest.raises(SystemExit):
            main(["partition", *small_args(), "--parallel"])

    def test_sql_accepts_feedback_flag(self, capsys):
        code = main([
            "sql", *small_args(), "--feedback",
            "-e", "SELECT COUNT(*) AS n FROM galaxy_source",
        ])
        assert code == 0
        assert "n" in capsys.readouterr().out


class TestMemo:
    def test_memo_reports_decisions(self, capsys):
        assert main(["memo", *small_args(), "--repeat", "3"]) == 0
        out = capsys.readouterr().out
        assert "memo=miss" in out
        assert "memo=hit" in out
        assert "plan memo" in out
        assert "feedback store" in out

    def test_memo_shift_invalidates(self, capsys):
        code = main([
            "memo", *small_args(), "--shift", "--repeat", "3",
            "-e", "SELECT COUNT(*) AS n FROM zone",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shifted" in out
        # the shift's DML bumps the table version: no stale hit on cycle 1
        assert out.count("memo=miss") >= 2 or "memo=replan" in out


class TestAnalyze:
    def test_explain_analyze_output(self, capsys):
        code = main([
            "analyze", *small_args(),
            "-e", "SELECT COUNT(*) AS c FROM Galaxy WHERE i < 18",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows=" in out and "total:" in out


class TestWorkloads:
    def test_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "small" in out and "paper" in out


class TestTraceCommand:
    def test_trace_demo_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        out = tmp_path / "trace.json"
        code = main([
            "trace", *small_args(), "--demo",
            "--backend", "sequential", "--servers", "2",
            "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "casjobs.job" in text
        assert "cluster.partition" in text
        assert "engine.task:fBCGCandidate" in text
        assert validate_chrome_trace(json.loads(out.read_text())) > 0

    def test_trace_tree_format_needs_no_file(self, tmp_path, capsys):
        code = main([
            "trace", *small_args(), "--demo",
            "--backend", "sequential", "--servers", "2",
            "--format", "tree", "--out", str(tmp_path / "unused.json"),
        ])
        assert code == 0
        assert not (tmp_path / "unused.json").exists()
        assert "cluster.run" in capsys.readouterr().out

    def test_trace_jsonl_format(self, tmp_path, capsys):
        import json

        out = tmp_path / "spans.jsonl"
        code = main([
            "trace", *small_args(), "--demo",
            "--backend", "sequential", "--servers", "2",
            "--format", "jsonl", "--out", str(out),
        ])
        assert code == 0
        lines = [json.loads(l) for l in out.read_text().splitlines() if l]
        assert any(d["name"] == "casjobs.job" for d in lines)

    def test_trace_slow_ms_populates_slow_log(self, tmp_path, capsys):
        from repro.obs.slowlog import get_slow_log

        old = get_slow_log().threshold_s
        try:
            code = main([
                "trace", *small_args(), "--demo",
                "--backend", "sequential", "--servers", "2",
                "--slow-ms", "0", "--out", str(tmp_path / "t.json"),
            ])
        finally:
            get_slow_log().set_threshold(old)
            get_slow_log().clear()
        assert code == 0
        assert "slow-query log" in capsys.readouterr().out


class TestMetricsCommand:
    def test_metrics_dumps_registry(self, capsys):
        code = main([
            "metrics", *small_args(), "--demo", "--servers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "casjobs.finished" in out
        assert "cluster.partitions" in out
        assert "engine.pool.hits" in out
