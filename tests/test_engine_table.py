"""Column-store tables: mutation, accounting, primary keys."""

import numpy as np
import pytest

from repro.engine.pages import BufferPool
from repro.engine.schema import schema
from repro.engine.table import Table
from repro.engine.types import ColumnType
from repro.errors import ColumnNotFoundError, SchemaError


@pytest.fixture()
def table() -> Table:
    s = schema(
        "galaxy",
        {"objid": ColumnType.INT64, "ra": ColumnType.FLOAT64},
        primary_key="objid",
    )
    t = Table(s, BufferPool(1000))
    t.insert({"objid": [1, 2, 3], "ra": [10.0, 20.0, 30.0]})
    return t


class TestInsert:
    def test_row_count(self, table):
        assert table.row_count == 3
        assert len(table) == 3

    def test_insert_appends(self, table):
        table.insert({"objid": [4], "ra": [40.0]})
        assert table.row_count == 4
        assert table.column("ra")[-1] == 40.0

    def test_missing_column_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"objid": [9]})

    def test_ragged_insert_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"objid": [4, 5], "ra": [1.0]})

    def test_duplicate_pk_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"objid": [1], "ra": [99.0]})

    def test_insert_counts_writes(self):
        s = schema("t", {"a": ColumnType.INT64})
        pool = BufferPool(1000)
        t = Table(s, pool)
        t.insert({"a": np.arange(5000)})
        assert pool.counters.writes == t.page_count


class TestAccess:
    def test_scan_touches_all_pages(self, table):
        pool = table.file.pool
        before = pool.counters.logical_reads
        result = table.scan()
        assert set(result) == {"objid", "ra"}
        assert pool.counters.logical_reads - before == table.page_count

    def test_column_without_accounting(self, table):
        before = table.file.pool.counters.logical_reads
        table.column("ra")
        assert table.file.pool.counters.logical_reads == before

    def test_unknown_column(self, table):
        with pytest.raises(ColumnNotFoundError):
            table.column("nope")

    def test_read_rows_clamps(self, table):
        rows = table.read_rows(-5, 100)
        assert rows["objid"].size == 3

    def test_read_row_ids(self, table):
        rows = table.read_row_ids(np.array([2, 0]))
        assert rows["objid"].tolist() == [3, 1]

    def test_pk_lookup(self, table):
        assert table.pk_lookup(2) == 1
        assert table.pk_lookup(99) is None

    def test_pk_lookup_without_pk(self):
        t = Table(schema("t", {"a": ColumnType.INT64}), BufferPool(10))
        with pytest.raises(SchemaError):
            t.pk_lookup(1)

    def test_touch_rows_accounting(self, table):
        pool = table.file.pool
        before = pool.counters.logical_reads
        table.touch_rows(np.array([0, 1, 2]))
        assert pool.counters.logical_reads - before == table.page_count


class TestMutation:
    def test_truncate(self, table):
        table.truncate()
        assert table.row_count == 0
        table.insert({"objid": [1], "ra": [5.0]})  # pk index was reset
        assert table.row_count == 1

    def test_delete_rows(self, table):
        assert table.delete_rows(np.array([1])) == 1
        assert table.column("objid").tolist() == [1, 3]
        assert table.pk_lookup(2) is None
        assert table.pk_lookup(3) == 1

    def test_delete_nothing(self, table):
        assert table.delete_rows(np.array([], dtype=np.int64)) == 0

    def test_update_rows(self, table):
        table.update_rows(np.array([0]), {"ra": np.array([99.0])})
        assert table.column("ra")[0] == 99.0

    def test_update_pk_rebuilds_index(self, table):
        table.update_rows(np.array([0]), {"objid": np.array([77])})
        assert table.pk_lookup(77) == 0
        assert table.pk_lookup(1) is None

    def test_reorder(self, table):
        table.reorder(np.array([2, 1, 0]))
        assert table.column("objid").tolist() == [3, 2, 1]
        assert table.pk_lookup(3) == 0

    def test_reorder_bad_length(self, table):
        with pytest.raises(SchemaError):
            table.reorder(np.array([0, 1]))
