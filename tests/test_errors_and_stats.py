"""Exception hierarchy and the TaskStats/TaskTimer machinery."""

import time

import pytest

from repro.engine.stats import IOCounters, TaskStats, TaskTimer, sum_stats
from repro.errors import (
    CasJobsError,
    CatalogError,
    ConfigError,
    EngineError,
    GridError,
    PartitionError,
    RegionError,
    ReproError,
    SchemaError,
    SpatialError,
    SqlPlanError,
    SqlSyntaxError,
    TableNotFoundError,
    TamError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigError, RegionError, CatalogError, EngineError, SpatialError,
        GridError, TamError, PartitionError, CasJobsError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize("exc", [
        SchemaError, TableNotFoundError, SqlSyntaxError, SqlPlanError,
    ])
    def test_engine_errors_nest(self, exc):
        assert issubclass(exc, EngineError)

    def test_syntax_error_position(self):
        err = SqlSyntaxError("bad token", position=17)
        assert "offset 17" in str(err)
        assert err.position == 17


class TestTaskStats:
    def test_merge(self):
        a = TaskStats("a", elapsed_s=1.0, cpu_s=0.5, rows=10)
        a.io.logical_reads = 5
        b = TaskStats("b", elapsed_s=2.0, cpu_s=1.0, rows=20)
        b.io.writes = 3
        merged = a.merged_with(b, name="total")
        assert merged.name == "total"
        assert merged.elapsed_s == 3.0
        assert merged.rows == 30
        assert merged.io.total == 8

    def test_sum_stats(self):
        parts = [TaskStats("x", elapsed_s=1.0), TaskStats("y", elapsed_s=2.0)]
        total = sum_stats("sum", parts)
        assert total.elapsed_s == 3.0
        assert total.name == "sum"

    def test_io_ops_property(self):
        stats = TaskStats("t")
        stats.io.logical_reads = 4
        stats.io.writes = 2
        assert stats.io_ops == 6


class TestTaskTimer:
    def test_measures_elapsed(self):
        with TaskTimer("nap") as timer:
            time.sleep(0.01)
        assert timer.stats.elapsed_s >= 0.01
        assert timer.stats.cpu_s >= 0.0

    def test_captures_io_delta(self):
        counters = IOCounters()
        counters.logical_reads = 100
        with TaskTimer("work", counters) as timer:
            counters.logical_reads += 7
            counters.writes += 2
        assert timer.stats.io.logical_reads == 7
        assert timer.stats.io.writes == 2

    def test_without_counters(self):
        with TaskTimer("plain") as timer:
            pass
        assert timer.stats.io.total == 0


class TestIOCountersThreadSafety:
    def test_concurrent_increments_do_not_drop(self):
        """Plain += drops updates under interleaving; the locked add_*
        methods must count exactly."""
        import threading

        counters = IOCounters()
        n_threads, per_thread = 8, 10_000

        def hammer():
            for _ in range(per_thread):
                counters.add_logical()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.logical_reads == n_threads * per_thread

    def test_add_methods_take_amounts(self):
        counters = IOCounters()
        counters.add_logical(5)
        counters.add_physical(3)
        counters.add_write(2)
        assert (counters.logical_reads, counters.physical_reads,
                counters.writes) == (5, 3, 2)

    def test_snapshot_is_a_consistent_copy(self):
        counters = IOCounters()
        counters.add_logical(9)
        snap = counters.snapshot()
        counters.add_logical(1)
        assert snap.logical_reads == 9
        assert counters.logical_reads == 10

    def test_pickles_without_lock_and_still_works(self):
        import pickle

        counters = IOCounters()
        counters.add_write(4)
        clone = pickle.loads(pickle.dumps(counters))
        assert clone.writes == 4
        clone.add_write(1)  # the restored instance has a fresh lock
        assert clone.writes == 5
