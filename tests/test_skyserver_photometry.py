"""Photometric model: the paper's exact error formulas."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.skyserver.photometry import (
    FieldColorModel,
    MagnitudeDistribution,
    observed_colors,
    sigma_gr,
    sigma_ri,
)


class TestErrorFormulas:
    def test_sigma_gr_formula(self):
        # spImportGalaxy: 2.089 * 10^(0.228*i - 6.0)
        i = 18.0
        assert float(sigma_gr(i)) == pytest.approx(
            2.089 * 10 ** (0.228 * i - 6.0)
        )

    def test_sigma_ri_formula(self):
        i = 20.0
        assert float(sigma_ri(i)) == pytest.approx(
            4.266 * 10 ** (0.206 * i - 6.0)
        )

    def test_errors_grow_with_magnitude(self):
        mags = np.array([15.0, 17.0, 19.0, 21.0])
        assert np.all(np.diff(sigma_gr(mags)) > 0)
        assert np.all(np.diff(sigma_ri(mags)) > 0)

    def test_bright_errors_are_small(self):
        assert float(sigma_gr(15.0)) < 0.01
        assert float(sigma_ri(15.0)) < 0.02


class TestMagnitudeDistribution:
    def test_samples_within_bounds(self):
        rng = np.random.default_rng(0)
        dist = MagnitudeDistribution(bright=14.0, faint=21.0)
        mags = dist.sample(5000, rng)
        assert mags.min() >= 14.0
        assert mags.max() <= 21.0

    def test_faint_dominated(self):
        rng = np.random.default_rng(1)
        mags = MagnitudeDistribution().sample(20000, rng)
        midpoint = (14.0 + 21.0) / 2
        assert (mags > midpoint).mean() > 0.8

    def test_zero_samples(self):
        rng = np.random.default_rng(0)
        assert MagnitudeDistribution().sample(0, rng).size == 0

    def test_negative_samples_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            MagnitudeDistribution().sample(-1, rng)

    def test_invalid_limits(self):
        with pytest.raises(ConfigError):
            MagnitudeDistribution(bright=22.0, faint=21.0)
        with pytest.raises(ConfigError):
            MagnitudeDistribution(slope=0.0)


class TestColors:
    def test_field_colors_shape(self):
        rng = np.random.default_rng(0)
        gr, ri = FieldColorModel().sample(100, rng)
        assert gr.shape == ri.shape == (100,)

    def test_observed_colors_scatter_scales_with_magnitude(self):
        rng = np.random.default_rng(2)
        n = 4000
        true_gr = np.zeros(n)
        true_ri = np.zeros(n)
        bright = observed_colors(true_gr, true_ri, np.full(n, 15.0), rng)
        faint = observed_colors(true_gr, true_ri, np.full(n, 20.5), rng)
        assert bright[0].std() < faint[0].std()
        assert bright[0].std() == pytest.approx(float(sigma_gr(15.0)), rel=0.1)
        assert faint[1].std() == pytest.approx(float(sigma_ri(20.5)), rel=0.1)
