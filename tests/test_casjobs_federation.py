"""The federated, code-to-the-data MaxBCG (Section 4)."""

import numpy as np
import pytest

from repro.casjobs.federation import DataGridFederation
from repro.core.pipeline import run_maxbcg
from repro.errors import CasJobsError

SITES = ["fermilab", "jhu"]


@pytest.fixture(scope="module")
def federation(sky, target_region, kcorr, config):
    fed = DataGridFederation(kcorr, config)
    fed.deploy_sites(SITES, sky.catalog, target_region)
    return fed


@pytest.fixture(scope="module")
def report(federation):
    return federation.submit_maxbcg()


class TestDeployment:
    def test_one_site_per_name(self, federation):
        assert [s.service.site_name for s in federation.sites] == SITES

    def test_each_site_holds_its_stripe(self, federation):
        for site in federation.sites:
            box = site.partition.imported
            assert np.all(box.contains(site.catalog.ra, site.catalog.dec))

    def test_sites_host_cas_context(self, federation):
        for site in federation.sites:
            database = site.service.context("cas")
            assert database.table("galaxy_src").row_count == len(site.catalog)

    def test_no_sites_rejected(self, kcorr, config, sky, target_region):
        fed = DataGridFederation(kcorr, config)
        with pytest.raises(CasJobsError):
            fed.deploy_sites([], sky.catalog, target_region)
        with pytest.raises(CasJobsError):
            fed.submit_maxbcg()


class TestFederatedRun:
    def test_matches_single_node_answer(self, report, sky, target_region,
                                        kcorr, config):
        sequential = run_maxbcg(sky.catalog, target_region, kcorr, config,
                                compute_members=False)
        assert set(report.clusters.objid.tolist()) == set(
            sequential.clusters.objid.tolist()
        )

    def test_per_site_times_recorded(self, report):
        assert set(report.per_site_elapsed_s) == set(SITES)
        assert report.elapsed_s == max(report.per_site_elapsed_s.values())

    def test_code_to_data_beats_data_to_code(self, report):
        # the section-4 argument, quantified: shipping the SQL and the
        # result catalogs is cheaper than shipping the galaxy files —
        # already true on this toy sky, by orders of magnitude at the
        # paper's scale (see next test)
        assert report.code_to_data_seconds < report.data_to_code_seconds

    def test_paper_scale_gap_is_orders_of_magnitude(self, report):
        from repro.tam.fields import ROW_BYTES

        transfer = report.transfer
        paper_rows = 1_574_656          # Table 1's galaxy count
        paper_files = 2 * int(66 / 0.25)  # Target+Buffer per field
        data_s = transfer.seconds(paper_rows * ROW_BYTES, paper_files)
        code_s = transfer.seconds(500 * 60.0 * 3 + 40_000 * 48, 6)
        assert code_s < data_s / 10

    def test_bytes_accounting(self, report, sky):
        from repro.tam.fields import ROW_BYTES

        assert report.data_bytes_avoided >= ROW_BYTES * sky.n_galaxies
        assert report.result_bytes_moved > 0
        assert report.result_bytes_moved < report.data_bytes_avoided
