"""Derived tables, UNION ALL, COUNT(DISTINCT) — the analysis-SQL layer
CasJobs users lean on ("they can correlate data inside MyDB")."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.sql.ast import UnionStatement
from repro.engine.sql.parser import parse
from repro.errors import SqlPlanError, SqlSyntaxError


@pytest.fixture()
def db() -> Database:
    d = Database("ext")
    d.sql("CREATE TABLE g (objid bigint PRIMARY KEY, z float, kind int)")
    d.sql(
        "INSERT INTO g VALUES (1, 0.10, 1), (2, 0.10, 2), (3, 0.20, 1), "
        "(4, 0.30, 1), (5, 0.30, 2)"
    )
    return d


class TestDerivedTables:
    def test_basic(self, db):
        rows = db.sql(
            "SELECT x.z FROM (SELECT z FROM g WHERE kind = 1) x ORDER BY x.z"
        ).rows()
        assert [r["z"] for r in rows] == [0.1, 0.2, 0.3]

    def test_aggregate_inside(self, db):
        # count the distinct-z groups: aggregate over an aggregate
        n = db.sql(
            "SELECT COUNT(*) AS n FROM "
            "(SELECT z, COUNT(*) AS c FROM g GROUP BY z) x"
        ).scalar()
        assert n == 3

    def test_filter_over_aggregate(self, db):
        rows = db.sql(
            "SELECT x.z FROM (SELECT z, COUNT(*) AS c FROM g GROUP BY z) x "
            "WHERE x.c > 1 ORDER BY x.z"
        ).rows()
        assert [r["z"] for r in rows] == [0.1, 0.3]

    def test_join_with_base_table(self, db):
        rows = db.sql(
            "SELECT g.objid FROM (SELECT z FROM g WHERE kind = 2) x "
            "JOIN g ON g.z = x.z ORDER BY g.objid"
        ).rows()
        # kind=2 zs are {0.1, 0.3}; matching base rows: 1,2,4,5
        assert [r["objid"] for r in rows] == [1, 2, 4, 5]

    def test_alias_required(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT z FROM (SELECT z FROM g)")

    def test_star_from_subquery(self, db):
        result = db.sql("SELECT * FROM (SELECT objid, z FROM g) x")
        assert result.column_names == ["objid", "z"]
        assert result.row_count == 5


class TestUnionAll:
    def test_parse(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert isinstance(stmt, UnionStatement)
        assert len(stmt.selects) == 2

    def test_bag_semantics(self, db):
        result = db.sql(
            "SELECT z FROM g WHERE kind = 1 "
            "UNION ALL SELECT z FROM g WHERE z > 0.25"
        )
        # duplicates preserved: three kind-1 plus two z>0.25 rows
        assert result.row_count == 5

    def test_positional_alignment(self, db):
        result = db.sql(
            "SELECT objid, z FROM g WHERE objid = 1 "
            "UNION ALL SELECT objid, z FROM g WHERE objid = 5"
        )
        assert result.column("objid").tolist() == [1, 5]

    def test_three_branches(self, db):
        result = db.sql(
            "SELECT objid FROM g WHERE objid = 1 "
            "UNION ALL SELECT objid FROM g WHERE objid = 2 "
            "UNION ALL SELECT objid FROM g WHERE objid = 3"
        )
        assert result.column("objid").tolist() == [1, 2, 3]

    def test_mismatched_width_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT objid, z FROM g UNION ALL SELECT objid FROM g")

    def test_union_without_all_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT objid FROM g UNION SELECT objid FROM g")

    def test_partition_union_idiom(self, db):
        """The paper's merge: per-partition results UNION ALL'ed."""
        db.sql("CREATE TABLE p1 (objid bigint, chi2 float)")
        db.sql("CREATE TABLE p2 (objid bigint, chi2 float)")
        db.sql("INSERT INTO p1 VALUES (1, 0.5), (2, 0.7)")
        db.sql("INSERT INTO p2 VALUES (3, 0.9)")
        merged = db.sql(
            "SELECT objid, chi2 FROM p1 UNION ALL SELECT objid, chi2 FROM p2"
        )
        assert merged.row_count == 3


class TestCountDistinct:
    def test_scalar(self, db):
        assert db.sql("SELECT COUNT(DISTINCT z) AS c FROM g").scalar() == 3

    def test_grouped(self, db):
        rows = db.sql(
            "SELECT kind, COUNT(DISTINCT z) AS c FROM g GROUP BY kind "
            "ORDER BY kind"
        ).rows()
        assert rows == [{"kind": 1, "c": 3}, {"kind": 2, "c": 2}]

    def test_mixed_with_plain_count(self, db):
        row = db.sql(
            "SELECT COUNT(*) AS n, COUNT(DISTINCT z) AS d FROM g"
        ).rows()[0]
        assert row == {"n": 5, "d": 3}

    def test_distinct_only_for_count(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT SUM(DISTINCT z) AS s FROM g")

    def test_empty_input(self, db):
        db.sql("DELETE FROM g")
        assert db.sql("SELECT COUNT(DISTINCT z) AS c FROM g").scalar() == 0
