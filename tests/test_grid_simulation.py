"""Replaying measured TAM runs on simulated 2004 clusters."""

import pytest

from repro.errors import GridError
from repro.grid.resources import sql_cluster, tam_cluster
from repro.grid.simulation import jobs_from_tam_run, simulate_tam_on_grid
from repro.skyserver.regions import RegionBox
from repro.tam.runner import run_tam


@pytest.fixture(scope="module")
def tam_run(sky, kcorr, config, tmp_path_factory):
    target = RegionBox(180.5, 181.5, 0.5, 1.5)
    return run_tam(sky.catalog, target, kcorr, config,
                   tmp_path_factory.mktemp("grid_tam"))


class TestJobConversion:
    def test_one_job_per_field(self, tam_run):
        jobs = jobs_from_tam_run(tam_run, 2600.0, 2600.0)
        assert len(jobs) == len(tam_run.fields)

    def test_demand_scaling(self, tam_run):
        same = jobs_from_tam_run(tam_run, 2600.0, 2600.0)
        slower_reference = jobs_from_tam_run(tam_run, 1300.0, 2600.0)
        assert slower_reference[0].cpu_seconds == pytest.approx(
            2 * same[0].cpu_seconds
        )

    def test_file_sizes_attached(self, tam_run):
        jobs = jobs_from_tam_run(tam_run, 2600.0, 2600.0)
        assert all(j.input_bytes > 0 for j in jobs)
        assert all(j.input_files == 2 for j in jobs)

    def test_bad_host_speed(self, tam_run):
        with pytest.raises(GridError):
            jobs_from_tam_run(tam_run, 2600.0, 0.0)


class TestReplay:
    def test_tam_cluster_slower_than_sql_nodes(self, tam_run):
        on_tam = simulate_tam_on_grid(tam_run, tam_cluster())
        on_sql = simulate_tam_on_grid(tam_run, sql_cluster())
        # 600 MHz nodes vs 2.6 GHz nodes: the makespan gap must show
        assert on_tam.makespan_s > on_sql.makespan_s

    def test_more_nodes_shorter_makespan(self, sky, kcorr, config,
                                         tmp_path_factory):
        target = RegionBox(180.2, 181.8, 0.2, 1.8)  # more fields
        run = run_tam(sky.catalog, target, kcorr, config,
                      tmp_path_factory.mktemp("grid_tam2"))
        few = simulate_tam_on_grid(run, sql_cluster(1), serialize_transfers=False)
        many = simulate_tam_on_grid(run, sql_cluster(3), serialize_transfers=False)
        assert many.makespan_s < few.makespan_s

    def test_transfer_fraction_reported(self, tam_run):
        report = simulate_tam_on_grid(tam_run, tam_cluster())
        assert 0.0 <= report.transfer_fraction <= 1.0

    def test_all_fields_complete(self, tam_run):
        report = simulate_tam_on_grid(tam_run, tam_cluster())
        assert report.schedule.completed == report.n_fields
