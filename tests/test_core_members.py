"""Cluster membership retrieval (fGetClusterGalaxiesMetric)."""

import numpy as np
import pytest

from repro.core.members import (
    cluster_members,
    cluster_richness,
    make_cluster_members,
)
from repro.spatial.zones import ZoneIndex


@pytest.fixture(scope="module")
def member_setup(sky, pipeline_result, config):
    index = ZoneIndex(sky.catalog.ra, sky.catalog.dec, config.zone_height_deg)
    return sky.catalog, index, pipeline_result.clusters


class TestClusterMembers:
    def test_center_is_first_with_zero_distance(self, member_setup, kcorr, config):
        catalog, index, clusters = member_setup
        assert len(clusters) > 0
        members = cluster_members(
            catalog, index,
            int(clusters.objid[0]), float(clusters.ra[0]),
            float(clusters.dec[0]), float(clusters.z[0]),
            float(clusters.i[0]), float(clusters.ngal[0]),
            kcorr, config,
        )
        assert members.galaxy_objid[0] == clusters.objid[0]
        assert members.distance[0] == 0.0

    def test_members_within_r200_aperture(self, member_setup, kcorr, config):
        catalog, index, clusters = member_setup
        k = 0
        zid = kcorr.nearest_zid(float(clusters.z[k]))
        radius = float(kcorr.radius[zid]) * config.r200_mpc(float(clusters.ngal[k]))
        members = cluster_members(
            catalog, index,
            int(clusters.objid[k]), float(clusters.ra[k]),
            float(clusters.dec[k]), float(clusters.z[k]),
            float(clusters.i[k]), float(clusters.ngal[k]),
            kcorr, config,
        )
        assert np.all(members.distance < max(radius, 1e-12))

    def test_members_magnitude_window(self, member_setup, kcorr, config):
        catalog, index, clusters = member_setup
        k = 0
        zid = kcorr.nearest_zid(float(clusters.z[k]))
        members = cluster_members(
            catalog, index,
            int(clusters.objid[k]), float(clusters.ra[k]),
            float(clusters.dec[k]), float(clusters.z[k]),
            float(clusters.i[k]), float(clusters.ngal[k]),
            kcorr, config,
        )
        others = members.galaxy_objid[1:]
        for objid in others.tolist():
            i_mag = float(catalog.i[catalog.index_of(objid)])
            assert i_mag >= float(clusters.i[k]) - config.member_mag_epsilon
            assert i_mag <= float(kcorr.ilim[zid])

    def test_no_duplicate_members_per_cluster(self, member_setup, kcorr, config):
        catalog, index, clusters = member_setup
        members = make_cluster_members(catalog, clusters, index, kcorr, config)
        pairs = list(zip(members.cluster_objid.tolist(),
                         members.galaxy_objid.tolist()))
        assert len(pairs) == len(set(pairs))


class TestMakeClusterMembers:
    def test_every_cluster_has_a_row(self, member_setup, kcorr, config):
        catalog, index, clusters = member_setup
        members = make_cluster_members(catalog, clusters, index, kcorr, config)
        assert set(np.unique(members.cluster_objid).tolist()) == set(
            clusters.objid.tolist()
        )

    def test_members_of(self, member_setup, kcorr, config):
        catalog, index, clusters = member_setup
        members = make_cluster_members(catalog, clusters, index, kcorr, config)
        first = int(clusters.objid[0])
        mine = members.members_of(first)
        assert first in mine.tolist()

    def test_richness_counts(self, member_setup, kcorr, config):
        catalog, index, clusters = member_setup
        members = make_cluster_members(catalog, clusters, index, kcorr, config)
        richness = cluster_richness(members)
        assert sum(richness.values()) == len(members)
        assert all(count >= 1 for count in richness.values())

    def test_empty_clusters(self, member_setup, kcorr, config):
        from repro.core.results import CandidateCatalog

        catalog, index, _ = member_setup
        members = make_cluster_members(
            catalog, CandidateCatalog.empty(), index, kcorr, config
        )
        assert len(members) == 0

    def test_detected_members_overlap_truth(self, sky, pipeline_result,
                                            kcorr, config):
        # clusters centered on (or near) an injected cluster should pick
        # up a decent share of its true members
        catalog = sky.catalog
        index = ZoneIndex(catalog.ra, catalog.dec, config.zone_height_deg)
        members = make_cluster_members(
            catalog, pipeline_result.clusters, index, kcorr, config
        )
        truth_by_bcg = {c.bcg_objid: set(c.member_objids) for c in sky.clusters}
        matched = [
            objid for objid in pipeline_result.clusters.objid.tolist()
            if objid in truth_by_bcg
        ]
        assert matched, "no detected cluster centered exactly on a truth BCG"
        overlaps = []
        for objid in matched:
            detected = set(members.members_of(objid).tolist()) - {objid}
            truth = truth_by_bcg[objid]
            overlaps.append(len(detected & truth) / len(truth))
        assert np.mean(overlaps) > 0.2
