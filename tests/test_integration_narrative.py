"""Integration: the paper's narrative claims, end to end.

Each test here is one sentence of the paper turned into an assertion,
run at test scale.  The benchmark suite repeats these at larger scales
with full reporting; the tests pin the *direction* of every claim so a
regression that flips a conclusion fails CI, not just a bench report.
"""

import numpy as np
import pytest

from repro.cluster.executor import run_partitioned
from repro.core.pipeline import run_maxbcg
from repro.engine.stats import TaskTimer
from repro.skyserver.regions import RegionBox
from repro.tam.runner import run_tam


@pytest.fixture(scope="module")
def comparison(sky, target_region, kcorr, config, tmp_path_factory):
    """One TAM run and one SQL run over the same 4 deg² region."""
    # warm caches so neither side pays first-touch costs
    run_maxbcg(sky.catalog, RegionBox(180.9, 181.1, 0.9, 1.1), kcorr, config,
               compute_members=False)
    with TaskTimer("tam") as tam_timer:
        tam = run_tam(sky.catalog, target_region, kcorr, config,
                      tmp_path_factory.mktemp("narrative"))
    sql = run_maxbcg(sky.catalog, target_region, kcorr, config,
                     compute_members=False)
    return tam, sql, tam_timer.stats.elapsed_s, target_region


class TestHeadline:
    def test_sql_faster_than_file_based(self, comparison):
        """'The SQL implementation runs an order of magnitude faster
        than the earlier Tcl-C-file-based implementation.'  At test
        scale we require a clear win; the benchmark measures the factor."""
        tam, sql, tam_elapsed, _ = comparison
        assert sql.total_stats.elapsed_s < tam_elapsed

    def test_same_science_interior(self, comparison, config):
        tam, sql, _, target = comparison
        interior = target.shrink(config.buffer_deg)
        tam_in = set(
            tam.clusters.take(
                interior.contains(tam.clusters.ra, tam.clusters.dec)
            ).objid.tolist()
        )
        sql_in = set(
            sql.clusters.take(
                interior.contains(sql.clusters.ra, sql.clusters.dec)
            ).objid.tolist()
        )
        assert tam_in == sql_in

    def test_file_traffic_exists_only_for_tam(self, comparison):
        """The baseline's defining cost: files staged and re-read."""
        tam, _, _, _ = comparison
        assert tam.file_stats.files_written >= 3 * len(tam.fields)
        assert tam.file_stats.files_read >= 2 * len(tam.fields)


class TestPartitioningClaims:
    def test_speedup_at_extra_total_work(self, sky, target_region, kcorr,
                                         config):
        """'Overall the parallel implementation gives a 2x speedup at the
        cost of 25% more CPU and I/O.'  Direction: elapsed down, totals up."""
        sequential = run_maxbcg(sky.catalog, target_region, kcorr, config,
                                compute_members=False)
        partitioned = run_partitioned(sky.catalog, target_region, kcorr,
                                      config, n_servers=2,
                                      compute_members=False)
        assert partitioned.elapsed_s < sequential.total_stats.elapsed_s
        assert partitioned.io_ops > sequential.total_stats.io_ops

    def test_tam_scales_linearly_with_fields(self, sky, kcorr, config,
                                             tmp_path_factory):
        """'TAM performance is expected to scale lineally with the number
        of fields' — the basis of Table 3's extrapolation."""
        small = run_tam(sky.catalog, RegionBox(180.6, 181.1, 0.6, 1.1),
                        kcorr, config, tmp_path_factory.mktemp("lin1"))
        large = run_tam(sky.catalog, RegionBox(180.2, 181.7, 0.2, 1.7),
                        kcorr, config, tmp_path_factory.mktemp("lin2"))
        ratio_fields = len(large.fields) / len(small.fields)
        ratio_time = large.elapsed_s / small.elapsed_s
        # generous band: timing noise at sub-second scales is real, but
        # 9x the fields must land within ~3x of 9x the time
        assert ratio_fields / 3 < ratio_time < ratio_fields * 3


class TestPublicApi:
    def test_quickstart_surface(self):
        """The README quickstart symbols exist and compose."""
        import repro

        config = repro.MaxBCGConfig(z_step=0.01)
        kcorr = repro.build_kcorrection_table(config)
        target = repro.RegionBox(180.0, 180.6, 0.0, 0.6)
        sky = repro.make_sky(
            target.expand(1.0), config, kcorr,
            repro.SkyConfig(field_density=150, cluster_density=6, seed=1),
        )
        result = repro.run_maxbcg(sky.catalog, target, kcorr, config)
        assert isinstance(result, repro.MaxBCGResult)
        assert result.n_galaxies == sky.n_galaxies

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
