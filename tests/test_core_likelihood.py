"""Chi² filter: profiles, windows, vectorized filtering."""

import numpy as np
import pytest

from repro.core.likelihood import (
    chisq_profile,
    filter_catalog,
    weighted_likelihood,
    windows_for,
)


class TestChisqProfile:
    def test_perfect_match_is_zero(self, kcorr, config):
        zid = 10
        chisq = chisq_profile(
            float(kcorr.i[zid]), float(kcorr.gr[zid]), float(kcorr.ri[zid]),
            0.02, 0.03, kcorr, config,
        )
        assert chisq[zid] == pytest.approx(0.0, abs=1e-20)

    def test_magnitude_term_scaling(self, kcorr, config):
        zid = 10
        offset = 0.57  # one population sigma in i
        chisq = chisq_profile(
            float(kcorr.i[zid]) + offset, float(kcorr.gr[zid]),
            float(kcorr.ri[zid]), 0.02, 0.03, kcorr, config,
        )
        assert chisq[zid] == pytest.approx(1.0)

    def test_color_term_uses_measured_and_population_sigma(self, kcorr, config):
        zid = 10
        sigmagr = 0.05
        chisq = chisq_profile(
            float(kcorr.i[zid]), float(kcorr.gr[zid]) + 0.1,
            float(kcorr.ri[zid]), sigmagr, 1e-9, kcorr, config,
        )
        expected = 0.1**2 / (sigmagr**2 + config.gr_pop_sigma**2)
        assert chisq[zid] == pytest.approx(expected, rel=1e-6)

    def test_profile_length(self, kcorr, config):
        chisq = chisq_profile(18.0, 1.0, 0.5, 0.05, 0.05, kcorr, config)
        assert chisq.shape == (len(kcorr),)

    def test_faint_galaxy_fails_everywhere(self, kcorr, config):
        # i = 22 is beyond any BCG magnitude: mag term alone exceeds 7
        chisq = chisq_profile(22.5, 1.0, 0.5, 0.2, 0.3, kcorr, config)
        assert np.all(chisq >= config.chi2_threshold)


class TestWindows:
    def test_windows_span_passing_rows(self, kcorr, config):
        passing = np.array([5, 10, 15])
        windows = windows_for(17.5, passing, kcorr, config)
        assert windows.radius == pytest.approx(float(kcorr.radius[5]))  # max at low z
        assert windows.i_min == 17.5
        assert windows.i_max == pytest.approx(float(kcorr.ilim[passing].max()))
        pad = config.color_window_sigmas * config.gr_pop_sigma
        assert windows.gr_min == pytest.approx(float(kcorr.gr[5]) - pad)
        assert windows.gr_max == pytest.approx(float(kcorr.gr[15]) + pad)

    def test_single_passing_row(self, kcorr, config):
        windows = windows_for(18.0, np.array([7]), kcorr, config)
        assert windows.gr_min < float(kcorr.gr[7]) < windows.gr_max


class TestFilterCatalog:
    def test_matches_per_galaxy_profiles(self, sky, kcorr, config):
        catalog = sky.catalog
        n = min(len(catalog), 600)
        result = filter_catalog(
            catalog.i[:n], catalog.gr[:n], catalog.ri[:n],
            catalog.sigmagr[:n], catalog.sigmari[:n], kcorr, config,
        )
        for row in range(0, n, 37):
            chisq = chisq_profile(
                float(catalog.i[row]), float(catalog.gr[row]),
                float(catalog.ri[row]), float(catalog.sigmagr[row]),
                float(catalog.sigmari[row]), kcorr, config,
            )
            assert result.passed[row] == bool(
                (chisq < config.chi2_threshold).any()
            )

    def test_chunking_invariant(self, sky, kcorr, config):
        catalog = sky.catalog
        n = 500
        args = (
            catalog.i[:n], catalog.gr[:n], catalog.ri[:n],
            catalog.sigmagr[:n], catalog.sigmari[:n], kcorr, config,
        )
        big = filter_catalog(*args, chunk_rows=10_000)
        small = filter_catalog(*args, chunk_rows=64)
        assert np.array_equal(big.passed, small.passed)
        assert np.allclose(big.chisq, small.chisq)

    def test_filter_drops_most_galaxies(self, sky, kcorr, config):
        catalog = sky.catalog
        result = filter_catalog(
            catalog.i, catalog.gr, catalog.ri,
            catalog.sigmagr, catalog.sigmari, kcorr, config,
        )
        fraction = result.n_passed / len(catalog)
        # "About 3% of the galaxies are candidates"; our synthetic sky
        # passes a somewhat larger share, but the filter must still kill
        # the overwhelming majority — that is the early-filtering claim.
        assert fraction < 0.30

    def test_empty_input(self, kcorr, config):
        empty = np.empty(0)
        result = filter_catalog(empty, empty, empty, empty, empty, kcorr, config)
        assert result.n_passed == 0
        assert result.chisq.shape == (0, len(kcorr))

    def test_pass_matrix_consistent(self, sky, kcorr, config):
        catalog = sky.catalog
        result = filter_catalog(
            catalog.i[:300], catalog.gr[:300], catalog.ri[:300],
            catalog.sigmagr[:300], catalog.sigmari[:300], kcorr, config,
        )
        assert np.array_equal(
            result.pass_matrix, result.chisq < config.chi2_threshold
        )
        assert np.all(result.pass_matrix.any(axis=1))


class TestWeightedLikelihood:
    def test_formula(self):
        chisq = np.array([1.0, 2.0])
        ngal = np.array([0, 9])
        out = weighted_likelihood(chisq, ngal)
        assert out[0] == pytest.approx(np.log(1.0) - 1.0)
        assert out[1] == pytest.approx(np.log(10.0) - 2.0)
