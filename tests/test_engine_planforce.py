"""Plan forcing: structural signatures, pins, restarts, failures."""

import numpy as np
import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.optimizer.planforce import PlanForcer, plan_structure
from repro.engine.storage import load_database, save_database
from repro.errors import EngineError

JOIN_SQL = "SELECT COUNT(*) AS n FROM t JOIN u ON t.grp = u.grp"
OTHER_SQL = "SELECT COUNT(*) AS n FROM t WHERE grp = 2"

CONFIG_KW = dict(query_store=True, feedback=True)


def make_db(**extra) -> Database:
    db = Database(
        "pf_test", config=EngineConfig(**{**CONFIG_KW, **extra})
    )
    db.create_table(
        "t",
        {"id": np.arange(60, dtype=np.int64),
         "grp": (np.arange(60) % 5).astype(np.int64)},
        primary_key="id",
    )
    db.create_table(
        "u",
        {"id": np.arange(40, dtype=np.int64),
         "grp": (np.arange(40) % 5).astype(np.int64)},
    )
    db.sql("ANALYZE")
    return db


class TestPlanStructure:
    def test_deterministic_and_shape_sensitive(self):
        db = make_db()
        first = db.sql(JOIN_SQL).plan_node
        second = db.sql(JOIN_SQL).plan_node
        other = db.sql(OTHER_SQL).plan_node
        assert plan_structure(first) == plan_structure(second)
        assert plan_structure(first) != plan_structure(other)

    def test_ignores_row_estimates(self):
        db = make_db()
        node = db.sql(JOIN_SQL).plan_node
        before = plan_structure(node)
        node.est_rows = 123456.0  # estimate churn must not flip the pin
        assert plan_structure(node) == before


class TestForceApi:
    def test_force_requires_known_plan(self):
        db = make_db()
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        with pytest.raises(EngineError, match="no plan 99"):
            db.force_plan(fp, 99)

    def test_force_rejects_fingerprint_mismatch(self):
        db = make_db()
        db.sql(JOIN_SQL)
        db.sql(OTHER_SQL)
        other_fp = db.statement_key(OTHER_SQL)
        join_plan = db.query_store.query(
            db.statement_key(JOIN_SQL)
        ).current_plan_id
        with pytest.raises(EngineError, match="belongs to fingerprint"):
            db.force_plan(other_fp, join_plan)

    def test_forcing_without_store_rejected(self):
        db = Database("plain", config=EngineConfig())
        with pytest.raises(EngineError, match="query_store"):
            db.force_plan("fp", 1)

    def test_unforce_reports_absence(self):
        db = make_db()
        assert db.unforce_plan("nope") is False

    def test_forcer_requires_structure(self):
        with pytest.raises(EngineError, match="structural signature"):
            PlanForcer().force(fingerprint="fp", plan_id=1, structure="",
                               plan_text="p")


class TestForcedExecution:
    def test_forced_plan_runs_and_bypasses_memo(self):
        db = make_db()
        baseline = db.sql(JOIN_SQL)
        db.sql(JOIN_SQL)  # memoize
        fp = db.statement_key(JOIN_SQL)
        pid = db.query_store.query(fp).current_plan_id
        db.force_plan(fp, pid)
        hits_before = db.feedback.memo.summary()["hits"]
        for _ in range(3):
            result = db.sql(JOIN_SQL)
            assert result.memo_decision == "forced"
            assert result.plan_origin == "forced"
            assert result.scalar() == baseline.scalar()
        # forced executions never consult the memo
        assert db.feedback.memo.summary()["hits"] == hits_before
        assert db.plan_forcer.get(fp).executions == 3

    def test_pin_survives_dml_memo_invalidation(self):
        db = make_db()
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        pid = db.query_store.query(fp).current_plan_id
        structure = db.query_store.plan(pid).structure
        db.force_plan(fp, pid)
        db.sql(JOIN_SQL)
        # DML bumps table versions: every memo entry over t is dead,
        # but the pin is not the memo's to invalidate
        db.sql("INSERT INTO t VALUES (1000, 0)")
        result = db.sql(JOIN_SQL)
        assert result.memo_decision == "forced"
        assert plan_structure(result.plan_node) == structure
        # the forced plan still sees the new row: 5 grps x 12 x 8, plus
        # one extra t row in grp 0 matching its 8 u rows
        assert result.scalar() == 5 * 12 * 8 + 8

    def test_unforce_restores_planning(self):
        db = make_db()
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        db.force_plan(fp, db.query_store.query(fp).current_plan_id)
        assert db.sql(JOIN_SQL).memo_decision == "forced"
        assert db.unforce_plan(fp) is True
        assert db.sql(JOIN_SQL).memo_decision in ("miss", "hit")

    def test_forced_fingerprint_skips_feedback_react(self):
        db = make_db(qerror_ceiling=1.01)  # nearly everything breaches
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        db.force_plan(fp, db.query_store.query(fp).current_plan_id)
        overrides_before = len(db.feedback.overrides)
        for _ in range(3):
            assert db.sql(JOIN_SQL).memo_decision == "forced"
        # a pinned statement must not install overrides or demand
        # re-plans however bad its q-error looks
        assert len(db.feedback.overrides) == overrides_before


class TestRestart:
    def test_reestablished_by_structure_after_restore(self, tmp_path):
        db = make_db()
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        db.force_plan(fp, db.query_store.query(fp).current_plan_id)
        baseline = db.sql(JOIN_SQL).scalar()
        save_database(db, tmp_path)

        restored = load_database(tmp_path, config=EngineConfig(**CONFIG_KW))
        entry = restored.plan_forcer.get(fp)
        assert entry is not None
        assert entry.node is None  # live trees do not survive restarts
        result = restored.sql(JOIN_SQL)
        assert result.memo_decision == "forced-reestablished"
        assert result.scalar() == baseline
        entry = restored.plan_forcer.get(fp)
        assert entry.re_established
        assert entry.node is not None
        # subsequent executions run the adopted live node directly
        assert restored.sql(JOIN_SQL).memo_decision == "forced"

    def test_force_failure_is_visible(self):
        db = make_db()
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        # a pin whose structure the planner can never produce (models a
        # catalog that drifted since the plan was forced)
        db.plan_forcer.force(
            fingerprint=fp, plan_id=77, structure="0" * 32,
            plan_text="unreachable plan", node=None,
        )
        result = db.sql(JOIN_SQL)
        assert result.memo_decision == "force-failed"
        entry = db.plan_forcer.get(fp)
        assert entry.failures == 1
        assert "structure" in entry.last_failure
        assert "force-failed" in db.plan_forcer.render() or \
            "failures=1" in db.plan_forcer.render()
