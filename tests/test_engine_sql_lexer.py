"""SQL tokenizer."""

import pytest

from repro.engine.sql.lexer import Token, TokenType, tokenize
from repro.errors import SqlSyntaxError


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT sElEcT select") == [
            (TokenType.KEYWORD, "select")] * 3

    def test_identifiers_lowercased(self):
        assert kinds("Galaxy OBJID") == [
            (TokenType.IDENT, "galaxy"), (TokenType.IDENT, "objid")]

    def test_numbers(self):
        toks = kinds("42 3.14 1e3 2.5E-2 .5")
        assert all(t == TokenType.NUMBER for t, _ in toks)
        assert [v for _, v in toks] == ["42", "3.14", "1e3", "2.5E-2", ".5"]

    def test_number_then_dot_ident(self):
        # "1e" is not an exponent when not followed by digits
        toks = kinds("1easter")
        assert toks[0] == (TokenType.NUMBER, "1")
        assert toks[1] == (TokenType.IDENT, "easter")

    def test_strings_with_escapes(self):
        toks = kinds("'hello' 'it''s'")
        assert toks == [(TokenType.STRING, "hello"), (TokenType.STRING, "it's")]

    def test_operators(self):
        toks = kinds("<= >= != <> = < > + - * / %")
        values = [v for _, v in toks]
        assert values == ["<=", ">=", "!=", "!=", "=", "<", ">", "+", "-", "*", "/", "%"]

    def test_punctuation(self):
        toks = kinds("(a, b);")
        assert [v for _, v in toks] == ["(", "a", ",", "b", ")", ";"]

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestComments:
    def test_line_comment(self):
        assert kinds("select -- the whole row\n x") == [
            (TokenType.KEYWORD, "select"), (TokenType.IDENT, "x")]

    def test_block_comment(self):
        assert kinds("a /* b c */ d") == [
            (TokenType.IDENT, "a"), (TokenType.IDENT, "d")]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a /* oops")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("select ^ from t")
        assert info.value.position == 7

    def test_bracket_identifier(self):
        assert kinds("[My Table]") == [(TokenType.IDENT, "my table")]

    def test_unterminated_bracket(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("[oops")


class TestTokenHelpers:
    def test_is_keyword(self):
        token = tokenize("select")[0]
        assert token.is_keyword("select")
        assert token.is_keyword("select", "from")
        assert not token.is_keyword("from")
