"""The file-transfer cost model."""

import pytest

from repro.errors import GridError
from repro.grid.transfer import TransferModel, wan_model


class TestTransferModel:
    def test_zero_files_is_free(self):
        assert TransferModel().seconds(0.0, 0) == 0.0

    def test_bandwidth_term(self):
        model = TransferModel(
            bandwidth_bytes_per_s=1e6, latency_s=0.0, per_file_overhead_s=0.0
        )
        assert model.seconds(2e6, 1) == pytest.approx(2.0)

    def test_per_file_overhead_dominates_small_files(self):
        model = TransferModel()
        # 1000 x 44 KB files vs one 44 MB stream
        many = model.seconds(44e6, 1000)
        one = model.seconds(44e6, 1)
        assert many > 50 * one or many - one > 100.0

    def test_batching_savings(self):
        model = TransferModel()
        saved = model.seconds_saved_by_batching(44e6, 1000)
        assert saved == pytest.approx(999 * (model.latency_s + model.per_file_overhead_s))

    def test_negative_inputs_rejected(self):
        with pytest.raises(GridError):
            TransferModel().seconds(-1.0, 1)
        with pytest.raises(GridError):
            TransferModel(bandwidth_bytes_per_s=0.0)

    def test_wan_slower_than_lan(self):
        assert wan_model().seconds(1e9, 10) > TransferModel().seconds(1e9, 10)
