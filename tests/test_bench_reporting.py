"""The bench-report formatting helpers."""

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            "demo", ["name", "value"],
            [["alpha", 1], ["b", 123456]],
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1] == "----"
        assert "name" in lines[2] and "value" in lines[2]
        assert "123,456" in text  # thousands separators on ints

    def test_float_formats(self):
        text = format_table("t", ["v"], [[0.123456], [12.34], [12345.6]])
        assert "0.123" in text
        assert "12.3" in text
        assert "12,346" in text

    def test_empty_rows(self):
        text = format_table("t", ["a", "b"], [])
        assert "a" in text and "b" in text

    def test_zero(self):
        assert "0" in format_table("t", ["v"], [[0.0]])


class TestShapeCheck:
    def test_ok_line(self):
        check = ShapeCheck("claim", "x", "y", True)
        assert check.line().startswith("[OK ]")
        assert "paper=x" in check.line()

    def test_fail_line(self):
        assert ShapeCheck("claim", "x", "y", False).line().startswith("[FAIL]")


class TestPrintReport:
    def test_prints_everything(self, capsys):
        print_report(
            "My Bench",
            [format_table("t", ["a"], [[1]])],
            [ShapeCheck("c", "p", "m", True)],
        )
        out = capsys.readouterr().out
        assert "My Bench" in out
        assert "Shape checks" in out
        assert "[OK ]" in out

    def test_no_checks_section_when_empty(self, capsys):
        print_report("Bench", [], [])
        out = capsys.readouterr().out
        assert "Shape checks" not in out
