"""Paged storage and buffer-pool accounting."""

import pytest

from repro.engine.pages import PAGE_BYTES, BufferPool, PagedFile, PageId
from repro.errors import EngineError


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity_pages=10)
        page = PageId(0, 0)
        assert pool.access(page) is False  # cold: physical read
        assert pool.access(page) is True  # warm: hit
        assert pool.counters.logical_reads == 2
        assert pool.counters.physical_reads == 1

    def test_lru_eviction(self):
        pool = BufferPool(capacity_pages=2)
        a, b, c = PageId(0, 0), PageId(0, 1), PageId(0, 2)
        pool.access(a)
        pool.access(b)
        pool.access(c)  # evicts a
        assert pool.access(a) is False  # a was evicted
        assert pool.counters.physical_reads == 4

    def test_access_refreshes_lru(self):
        pool = BufferPool(capacity_pages=2)
        a, b, c = PageId(0, 0), PageId(0, 1), PageId(0, 2)
        pool.access(a)
        pool.access(b)
        pool.access(a)  # a is now most recent
        pool.access(c)  # evicts b, not a
        assert pool.access(a) is True

    def test_write_counts(self):
        pool = BufferPool(10)
        pool.write(PageId(0, 0))
        assert pool.counters.writes == 1
        assert pool.access(PageId(0, 0)) is True  # write made it resident

    def test_evict_file(self):
        pool = BufferPool(10)
        pool.access(PageId(1, 0))
        pool.access(PageId(2, 0))
        pool.evict_file(1)
        assert pool.access(PageId(1, 0)) is False
        assert pool.access(PageId(2, 0)) is True

    def test_zero_capacity_rejected(self):
        with pytest.raises(EngineError):
            BufferPool(0)


class TestPagedFile:
    def test_rows_per_page_from_row_width(self):
        pool = BufferPool(100)
        f = PagedFile(pool, row_byte_width=44)  # the paper's galaxy rows
        assert f.rows_per_page == PAGE_BYTES // 44  # 186

    def test_unique_file_ids(self):
        pool = BufferPool(100)
        a, b = PagedFile(pool, 8), PagedFile(pool, 8)
        assert a.file_id != b.file_id

    def test_page_count(self):
        pool = BufferPool(100)
        f = PagedFile(pool, 8192)  # 1 row per page
        assert f.page_count(0) == 0
        assert f.page_count(1) == 1
        assert f.page_count(5) == 5

    def test_read_range_touches_each_page_once(self):
        pool = BufferPool(100)
        f = PagedFile(pool, 8192 // 4)  # 4 rows/page
        pages = f.read_range(0, 10)  # rows 0..9 -> pages 0,1,2
        assert pages == 3
        assert pool.counters.logical_reads == 3

    def test_read_range_empty(self):
        pool = BufferPool(100)
        f = PagedFile(pool, 8)
        assert f.read_range(5, 5) == 0
        assert pool.counters.logical_reads == 0

    def test_write_range(self):
        pool = BufferPool(100)
        f = PagedFile(pool, 8192)
        assert f.write_range(0, 3) == 3
        assert pool.counters.writes == 3

    def test_invalidate(self):
        pool = BufferPool(100)
        f = PagedFile(pool, 8192)
        f.read_range(0, 2)
        f.invalidate()
        assert pool.access(PageId(f.file_id, 0)) is False

    def test_bad_row_width(self):
        with pytest.raises(EngineError):
            PagedFile(BufferPool(1), 0)


class TestIOCounters:
    def test_snapshot_and_since(self):
        pool = BufferPool(10)
        pool.access(PageId(0, 0))
        before = pool.counters.snapshot()
        pool.access(PageId(0, 0))
        pool.write(PageId(0, 1))
        delta = pool.counters.since(before)
        assert delta.logical_reads == 1
        assert delta.physical_reads == 0
        assert delta.writes == 1
        assert delta.total == 2
