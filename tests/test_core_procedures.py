"""The stored-procedure MaxBCG: EXEC-driven runs match the pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import run_maxbcg
from repro.core.procedures import install_maxbcg
from repro.engine.database import Database
from repro.errors import EngineError, TableNotFoundError
from repro.skyserver.regions import RegionBox


@pytest.fixture(scope="module")
def app_db(sky, kcorr, config):
    db = Database("appendix")
    db.create_table("galaxy_source", sky.catalog.as_columns(),
                    primary_key="objid")
    app = install_maxbcg(db, kcorr, config)
    return db, app


@pytest.fixture(scope="module")
def executed(app_db, import_region, target_region, config):
    """Run the appendix driver script over the session regions."""
    db, app = app_db
    buffer = target_region.expand(config.buffer_deg)
    db.sql(f"EXEC spImportGalaxy {import_region.ra_min}, "
           f"{import_region.ra_max}, {import_region.dec_min}, "
           f"{import_region.dec_max}")
    db.sql("EXEC spZone")
    db.sql(f"EXEC spMakeCandidates {buffer.ra_min}, {buffer.ra_max}, "
           f"{buffer.dec_min}, {buffer.dec_max}")
    return db, app


class TestInstallation:
    def test_schema_tables_created(self, app_db):
        db, _ = app_db
        for name in ("kcorr", "galaxy", "candidates", "clusters",
                     "clustergalaxiesmetric"):
            assert db.has_table(name)

    def test_procedures_registered(self, app_db):
        db, _ = app_db
        assert db.procedure_names() == [
            "spimportgalaxy", "spmakecandidates", "spmakeclusters",
            "spmakegalaxiesmetric", "spzone",
        ]

    def test_kcorr_loaded(self, app_db, kcorr):
        db, _ = app_db
        assert db.sql("SELECT COUNT(*) AS c FROM Kcorr").scalar() == len(kcorr)

    def test_neighbor_search_requires_spzone(self, kcorr, config, sky):
        db = Database("unzoned")
        db.create_table("galaxy_source", sky.catalog.as_columns())
        install_maxbcg(db, kcorr, config)
        with pytest.raises(EngineError, match="spZone"):
            db.sql("SELECT * FROM fGetNearbyObjEqZd(180.0, 1.0, 0.2) n")


class TestImportAndZone:
    def test_import_selects_region(self, executed, sky, import_region):
        db, _ = executed
        expected = int(import_region.contains(sky.catalog.ra,
                                              sky.catalog.dec).sum())
        assert db.sql("SELECT COUNT(*) AS c FROM Galaxy").scalar() == expected

    def test_galaxy_in_zone_order(self, executed, config):
        db, _ = executed
        from repro.spatial.zones import zone_id

        dec = db.table("galaxy").column("dec")
        zones = zone_id(dec, config.zone_height_deg)
        assert np.all(np.diff(zones) >= 0)

    def test_tvf_from_sql(self, executed, sky):
        db, _ = executed
        ra0 = float(sky.catalog.ra[0])
        dec0 = float(sky.catalog.dec[0])
        result = db.sql(
            f"SELECT n.objid, n.distance FROM "
            f"fGetNearbyObjEqZd({ra0}, {dec0}, 0.1) n ORDER BY n.distance"
        )
        assert result.row_count >= 1
        assert result.column("distance")[0] == pytest.approx(0.0, abs=1e-9)

    def test_tvf_join_galaxy(self, executed, sky):
        db, _ = executed
        ra0 = float(sky.catalog.ra[10])
        dec0 = float(sky.catalog.dec[10])
        result = db.sql(
            f"SELECT g.i FROM fGetNearbyObjEqZd({ra0}, {dec0}, 0.2) n "
            "JOIN Galaxy g ON n.objid = g.objid"
        )
        assert result.row_count >= 1


class TestEquivalenceWithPipeline:
    def test_candidates_match_pipeline(self, executed, sky, target_region,
                                       kcorr, config):
        db, _ = executed
        pipeline = run_maxbcg(sky.catalog, target_region, kcorr, config,
                              compute_members=False)
        sql_candidates = db.sql(
            "SELECT objid, z, ngal, chi2 FROM Candidates ORDER BY objid"
        )
        expected = pipeline.candidates.sort_by_objid()
        assert np.array_equal(
            sql_candidates.column("objid"), expected.objid
        )
        assert np.allclose(sql_candidates.column("z"), expected.z)
        assert np.array_equal(
            sql_candidates.column("ngal").astype(np.int64), expected.ngal
        )
        assert np.allclose(sql_candidates.column("chi2"), expected.chi2)

    def test_clusters_match_pipeline(self, executed, sky, target_region,
                                     kcorr, config):
        db, _ = executed
        db.sql("EXEC spMakeClusters")
        pipeline = run_maxbcg(sky.catalog, target_region, kcorr, config,
                              compute_members=False)
        # the procedure tests ALL candidates (like the appendix); the
        # pipeline tests only target candidates — compare on the target
        got = db.sql(
            f"SELECT objid FROM Clusters WHERE ra BETWEEN "
            f"{target_region.ra_min} AND {target_region.ra_max} AND "
            f"dec BETWEEN {target_region.dec_min} AND {target_region.dec_max} "
            "ORDER BY objid"
        )
        assert np.array_equal(
            got.column("objid"),
            pipeline.clusters.sort_by_objid().objid,
        )

    def test_members_populated(self, executed):
        db, _ = executed
        db.sql("EXEC spMakeClusters")
        db.sql("EXEC spMakeGalaxiesMetric")
        n_links = db.sql(
            "SELECT COUNT(*) AS c FROM ClusterGalaxiesMetric"
        ).scalar()
        n_clusters = db.sql("SELECT COUNT(*) AS c FROM Clusters").scalar()
        assert n_links >= n_clusters  # at least the centers themselves


class TestSqlOverResults:
    def test_analysis_queries(self, executed):
        db, _ = executed
        db.sql("EXEC spMakeClusters")
        result = db.sql(
            "SELECT FLOOR(z * 20) AS zbin, COUNT(*) AS n, MAX(ngal) AS maxrich "
            "FROM Clusters GROUP BY FLOOR(z * 20) ORDER BY zbin"
        )
        total = db.sql("SELECT COUNT(*) AS c FROM Clusters").scalar()
        assert int(result.column("n").sum()) == total

    def test_exec_unknown_procedure(self, executed):
        db, _ = executed
        with pytest.raises(TableNotFoundError):
            db.sql("EXEC spNotThere")
