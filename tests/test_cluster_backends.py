"""Execution backends: equivalence, fault tolerance, honest accounting.

The contract under test is the paper's partition-union identity lifted
to backends: *how* partitions execute (in-process, threads, worker
processes) must never change *what* they compute — merged candidate,
cluster and member catalogs are byte-identical across backends — while
wall-clock is measured, worker failures are retried, and exhausted
retries degrade gracefully to in-parent execution.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.cluster.backends import (
    BACKEND_NAMES,
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.cluster.executor import SqlServerCluster
from repro.cluster.partitioning import make_partitions
from repro.cluster.verify import assert_backends_equivalent, members_identical
from repro.cluster.workunit import (
    FaultSpec,
    InjectedWorkerFault,
    execute_workunit,
)
from repro.errors import ClusterExecutionError, ConfigError, PartitionError

N_SERVERS = 2

#: Keep process workers snappy in CI: generous timeout, tiny backoff.
FAST_PROCESS = dict(max_retries=2, backoff_s=0.01)


def make_cluster(kcorr, config, backend, **kwargs):
    return SqlServerCluster(
        kcorr, config, n_servers=N_SERVERS, compute_members=True,
        backend=backend, **kwargs,
    )


@pytest.fixture(scope="module")
def by_backend(sky, target_region, kcorr, config):
    """One full cluster run per backend over the same small sky."""
    results = {}
    for name in BACKEND_NAMES:
        backend = (
            ProcessBackend(**FAST_PROCESS) if name == "processes" else name
        )
        results[name] = make_cluster(kcorr, config, backend).run(
            sky.catalog, target_region
        )
    return results


class TestBackendEquivalence:
    def test_all_backends_byte_identical(self, by_backend):
        assert_backends_equivalent(by_backend)

    def test_members_merged_identically(self, by_backend):
        base = by_backend["sequential"]
        for name in ("threads", "processes"):
            assert members_identical(by_backend[name].members, base.members)
            assert len(by_backend[name].members) > 0

    def test_no_duplicated_catalog_rows(self, by_backend):
        for result in by_backend.values():
            assert np.unique(result.candidates.objid).size == len(
                result.candidates
            )
            assert np.unique(result.clusters.objid).size == len(
                result.clusters
            )

    def test_equivalence_check_catches_divergence(self, by_backend):
        tampered = by_backend["processes"]
        broken = type(tampered)(
            layout=tampered.layout,
            runs=tampered.runs,
            candidates=tampered.candidates,
            clusters=tampered.clusters.take(slice(0, max(1, len(tampered.clusters) - 1))),
            members=tampered.members,
            backend="processes",
        )
        with pytest.raises(PartitionError, match="clusters that differ"):
            assert_backends_equivalent(
                {"sequential": by_backend["sequential"], "processes": broken}
            )

    def test_missing_reference_is_an_error(self, by_backend):
        with pytest.raises(PartitionError, match="reference backend"):
            assert_backends_equivalent({"threads": by_backend["threads"]})


class TestMeasuredWallAndWorkers:
    def test_parallel_backends_measure_wall(self, by_backend):
        assert by_backend["sequential"].wall_s is None
        for name in ("threads", "processes"):
            result = by_backend[name]
            assert result.wall_s is not None and result.wall_s > 0
            assert result.elapsed_s == result.wall_s

    def test_worker_reports_cover_every_server(self, by_backend):
        for name, result in by_backend.items():
            assert [w.server for w in result.workers] == list(range(N_SERVERS))
            assert all(w.attempts == 1 for w in result.workers)
            assert all(w.wall_s > 0 for w in result.workers)
            assert all(w.cpu_s >= 0 for w in result.workers)

    def test_process_workers_are_distinct_processes(self, by_backend):
        import os

        pids = {w.worker for w in by_backend["processes"].workers}
        assert len(pids) == N_SERVERS
        assert f"pid:{os.getpid()}" not in pids

    def test_thread_cpu_not_inflated_by_siblings(self, by_backend):
        # the old bug: process_time spans all threads, so each task's
        # cpu_s could exceed its own elapsed_s by ~n_threads.  With
        # thread_time billing, cpu <= elapsed (+ timer slop) per worker.
        for worker in by_backend["threads"].workers:
            assert worker.cpu_s <= worker.wall_s * 1.5 + 0.05


class TestResolveBackend:
    def test_names_resolve(self):
        assert resolve_backend("sequential").name == "sequential"
        assert resolve_backend("threads").name == "threads"
        assert resolve_backend("processes").name == "processes"

    def test_instances_pass_through(self):
        backend = ThreadBackend(max_workers=2)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown execution backend"):
            resolve_backend("gpu")

    def test_non_backend_rejected(self):
        with pytest.raises(ConfigError, match="must be a name"):
            resolve_backend(42)

    def test_exported_from_top_level(self):
        import repro

        assert repro.BACKEND_NAMES == BACKEND_NAMES
        for name in ("ExecutionBackend", "SequentialBackend", "ThreadBackend",
                     "ProcessBackend", "resolve_backend"):
            assert name in repro.__all__ and hasattr(repro, name)

    def test_invalid_retry_config_rejected(self):
        with pytest.raises(ConfigError, match="max_retries"):
            ProcessBackend(max_retries=-1)


class TestWorkUnits:
    def test_workunit_pickles_roundtrip(self, sky, target_region, kcorr,
                                        config):
        cluster = make_cluster(kcorr, config, "sequential")
        layout = make_partitions(target_region, config.buffer_deg, N_SERVERS)
        units = cluster.make_workunits(sky.catalog, layout)
        for unit in units:
            clone = pickle.loads(pickle.dumps(unit))
            assert clone.server == unit.server
            assert len(clone.catalog) == len(unit.catalog)
            assert np.array_equal(clone.catalog.objid, unit.catalog.objid)

    def test_execute_workunit_matches_partition_run(
        self, sky, target_region, kcorr, config, by_backend
    ):
        cluster = make_cluster(kcorr, config, "sequential")
        layout = make_partitions(target_region, config.buffer_deg, N_SERVERS)
        unit = cluster.make_workunits(sky.catalog, layout)[0]
        outcome = execute_workunit(pickle.loads(pickle.dumps(unit)))
        reference = by_backend["sequential"].runs[0]
        assert np.array_equal(outcome.result.clusters.objid,
                              reference.result.clusters.objid)
        assert outcome.n_galaxies == reference.n_galaxies


class TestFaultTolerance:
    def test_raising_worker_is_retried(self, sky, target_region, kcorr,
                                       config, by_backend, tmp_path):
        fault = FaultSpec(servers=(0,), mode="raise", max_failures=1,
                          counter_dir=str(tmp_path))
        result = make_cluster(
            kcorr, config, ProcessBackend(**FAST_PROCESS), fault=fault
        ).run(sky.catalog, target_region)
        assert result.workers[0].attempts == 2
        assert not result.workers[0].degraded
        assert result.workers[1].attempts == 1
        assert_backends_equivalent(
            {"sequential": by_backend["sequential"], "processes": result}
        )

    def test_killed_worker_is_retried(self, sky, target_region, kcorr,
                                      config, by_backend, tmp_path):
        fault = FaultSpec(servers=(1,), mode="exit", max_failures=1,
                          counter_dir=str(tmp_path))
        result = make_cluster(
            kcorr, config, ProcessBackend(**FAST_PROCESS), fault=fault
        ).run(sky.catalog, target_region)
        assert result.workers[1].attempts == 2
        assert "worker died" in result.workers[1].failures[0]
        assert_backends_equivalent(
            {"sequential": by_backend["sequential"], "processes": result}
        )

    def test_exhausted_retries_degrade_gracefully(self, sky, target_region,
                                                  kcorr, config, by_backend,
                                                  tmp_path):
        # every worker attempt dies; the parent falls back sequentially
        fault = FaultSpec(servers=(0,), mode="exit", max_failures=99,
                          counter_dir=str(tmp_path))
        cluster = make_cluster(
            kcorr, config, ProcessBackend(max_retries=1, backoff_s=0.01),
            fault=fault,
        )
        with pytest.warns(RuntimeWarning, match="degrading to sequential"):
            result = cluster.run(sky.catalog, target_region)
        report = result.workers[0]
        assert report.degraded
        assert report.attempts == 3  # 2 worker attempts + in-parent fallback
        # degradation never corrupts or duplicates the merged catalogs
        assert_backends_equivalent(
            {"sequential": by_backend["sequential"], "processes": result}
        )

    def test_unrecoverable_failure_raises_clear_error(
        self, sky, target_region, kcorr, config, tmp_path
    ):
        # fault fires in workers *and* in the parent fallback
        fault = FaultSpec(servers=(0,), mode="raise", max_failures=99,
                          counter_dir=str(tmp_path), worker_only=False)
        cluster = make_cluster(
            kcorr, config, ProcessBackend(max_retries=1, backoff_s=0.01),
            fault=fault,
        )
        with pytest.warns(RuntimeWarning):
            with pytest.raises(ClusterExecutionError,
                               match="partition 0 .* sequential fallback"):
                cluster.run(sky.catalog, target_region)

    def test_timeout_counts_as_failure(self, sky, target_region, kcorr,
                                       config):
        backend = ProcessBackend(timeout_s=1e-4, max_retries=0,
                                 backoff_s=0.01)
        cluster = make_cluster(kcorr, config, backend)
        with pytest.warns(RuntimeWarning, match="degrading to sequential"):
            result = cluster.run(sky.catalog, target_region)
        assert all(w.degraded for w in result.workers)
        assert all("timed out" in w.failures[0] for w in result.workers)

    def test_fault_spec_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(servers=(0,), mode="explode",
                      counter_dir=str(tmp_path))

    def test_fault_fires_in_worker_context(self, sky, target_region, kcorr,
                                           config, tmp_path):
        # directly executing a unit with a non-worker-only raise fault
        cluster = make_cluster(kcorr, config, "sequential")
        layout = make_partitions(target_region, config.buffer_deg, N_SERVERS)
        unit = cluster.make_workunits(sky.catalog, layout)[0]
        unit.fault = FaultSpec(servers=(0,), mode="raise", max_failures=1,
                               counter_dir=str(tmp_path), worker_only=False)
        with pytest.raises(InjectedWorkerFault):
            execute_workunit(unit)
        # second attempt exceeds max_failures and succeeds
        outcome = execute_workunit(unit)
        assert outcome.server == 0


class TestProgressHooks:
    def test_pipeline_progress_events(self, sky, target_region, kcorr,
                                      config):
        from repro.core.pipeline import run_maxbcg

        events = []
        run_maxbcg(sky.catalog, target_region, kcorr, config,
                   compute_members=True, progress=events.append)
        assert events == ["spZone", "fBCGCandidate", "fIsCluster",
                          "spMakeGalaxiesMetric"]

    def test_cluster_progress_events(self, sky, target_region, kcorr,
                                     config):
        from repro.cluster.executor import run_partitioned

        events = []
        run_partitioned(sky.catalog, target_region, kcorr, config,
                        n_servers=N_SERVERS, compute_members=False,
                        backend="sequential", progress=events.append)
        assert events == [f"server{i}" for i in range(N_SERVERS)]

    def test_tam_progress_events(self, sky, target_region, kcorr, config,
                                 tmp_path):
        from repro.tam.runner import run_tam

        events = []
        run_tam(sky.catalog, target_region, kcorr, config, tmp_path,
                progress=events.append)
        assert events[0] == "stage"
        assert any(e.startswith("field") for e in events)
        assert any(e.startswith("coalesce") for e in events)


class TestCpuClockSelection:
    def test_use_cpu_clock_switches_and_restores(self):
        from repro.engine.stats import current_cpu_clock, use_cpu_clock

        default = current_cpu_clock()
        assert default is time.process_time
        with use_cpu_clock("thread"):
            assert current_cpu_clock() is time.thread_time
            with use_cpu_clock("process"):
                assert current_cpu_clock() is time.process_time
            assert current_cpu_clock() is time.thread_time
        assert current_cpu_clock() is time.process_time

    def test_unknown_clock_rejected(self):
        from repro.engine.stats import use_cpu_clock

        with pytest.raises(ValueError, match="unknown cpu clock"):
            with use_cpu_clock("sundial"):
                pass  # pragma: no cover

    def test_task_timer_reads_selected_clock(self):
        from repro.engine.stats import TaskTimer, use_cpu_clock

        ticks = iter([1.0, 3.5])
        with use_cpu_clock(lambda: next(ticks)):
            with TaskTimer("fake") as timer:
                pass
        assert timer.stats.cpu_s == pytest.approx(2.5)

    def test_clock_selection_is_per_thread(self):
        import threading

        from repro.engine.stats import current_cpu_clock, use_cpu_clock

        seen = {}

        def worker():
            seen["clock"] = current_cpu_clock()

        with use_cpu_clock("thread"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["clock"] is time.process_time
