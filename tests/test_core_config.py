"""MaxBCG configuration."""

import pytest

from repro.core.config import (
    DEFAULT_ZONE_HEIGHT_DEG,
    MaxBCGConfig,
    fast_config,
    sql_config,
    tam_config,
)
from repro.errors import ConfigError


class TestCanonicalConfigs:
    def test_sql_config_matches_paper(self):
        cfg = sql_config()
        assert cfg.z_step == 0.001
        assert cfg.buffer_deg == 0.5
        assert cfg.n_redshifts == 300  # 0.05..0.349 at 0.001

    def test_tam_config_matches_paper(self):
        # the paper's TAM grid: z-steps of 0.01 (10x coarser than SQL)
        # and the RAM-compromised 0.25 deg buffer
        cfg = tam_config()
        assert cfg.z_step == 0.01
        assert cfg.buffer_deg == 0.25
        assert cfg.n_redshifts == 31

    def test_zone_height_is_30_arcsec(self):
        assert DEFAULT_ZONE_HEIGHT_DEG == pytest.approx(30.0 / 3600.0)

    def test_paper_magic_numbers(self):
        cfg = sql_config()
        assert cfg.chi2_threshold == 7.0
        assert cfg.i_pop_sigma == 0.57
        assert cfg.gr_pop_sigma == 0.05
        assert cfg.ri_pop_sigma == 0.06
        assert cfg.z_match_window == 0.05
        assert cfg.r200_coeff == 0.17
        assert cfg.r200_exponent == 0.51

    def test_fast_config_coarser(self):
        assert fast_config().n_redshifts < sql_config().n_redshifts


class TestValidation:
    def test_bad_z_range(self):
        with pytest.raises(ConfigError):
            MaxBCGConfig(z_min=0.3, z_max=0.2)
        with pytest.raises(ConfigError):
            MaxBCGConfig(z_min=0.0)

    def test_bad_z_step(self):
        with pytest.raises(ConfigError):
            MaxBCGConfig(z_step=0.0)
        with pytest.raises(ConfigError):
            MaxBCGConfig(z_step=1.0)

    def test_bad_buffer(self):
        with pytest.raises(ConfigError):
            MaxBCGConfig(buffer_deg=0.0)

    def test_bad_sigmas(self):
        with pytest.raises(ConfigError):
            MaxBCGConfig(i_pop_sigma=0.0)
        with pytest.raises(ConfigError):
            MaxBCGConfig(gr_pop_sigma=-0.1)


class TestBehavior:
    def test_with_changes(self):
        cfg = sql_config().with_(buffer_deg=0.25)
        assert cfg.buffer_deg == 0.25
        assert cfg.z_step == 0.001  # untouched

    def test_r200_paper_anchor(self):
        # paper: "the r200 radius is, at ngal=100, 1.78 [Mpc]"
        assert sql_config().r200_mpc(100) == pytest.approx(1.78, abs=0.03)

    def test_r200_monotone(self):
        cfg = sql_config()
        assert cfg.r200_mpc(10) < cfg.r200_mpc(50) < cfg.r200_mpc(200)

    def test_r200_negative_rejected(self):
        with pytest.raises(ConfigError):
            sql_config().r200_mpc(-1)
