"""Integration: the paper's SQL workflow runs on our engine.

The appendix of the paper is ~500 lines of SQL.  Our engine speaks a
subset (no stored procedures or table-valued functions), but the
*set-oriented statements* — the schema, the zone assignment, the Filter
step's CROSS JOIN with its chi² predicate, the early-filter counts —
execute verbatim-shaped SQL here, and their answers are checked against
the numpy kernels the pipeline uses.  This is the strongest internal
consistency check in the suite: two independent implementations of the
paper's math (a SQL engine and vectorized kernels) must agree.
"""

import numpy as np
import pytest

from repro.core.likelihood import filter_catalog
from repro.engine.database import Database
from repro.spatial.zones import zone_id

PAPER_SCHEMA = """
CREATE TABLE Kcorr (
    zid int PRIMARY KEY NOT NULL,
    z real, i real, ilim real,
    ug real, gr real, ri real, iz real,
    radius float
);
CREATE TABLE Galaxy (
    objid bigint PRIMARY KEY,
    ra float, dec float,
    i real, gr real, ri real,
    sigmagr float, sigmari float
);
CREATE TABLE Candidates (
    objid bigint PRIMARY KEY,
    ra float, dec float, z float, i real,
    ngal int, chi2 float
);
CREATE TABLE Clusters (
    objid bigint PRIMARY KEY,
    ra float, dec float, z float, i real,
    ngal int, chi2 float
);
CREATE TABLE ClusterGalaxiesMetric (
    clusterObjID bigint,
    galaxyObjID bigint,
    distance float
);
"""

# the paper's chi^2, verbatim modulo identifier qualification
FILTER_PREDICATE = (
    "(POWER(g.i - k.i, 2) / POWER(0.57, 2)"
    " + POWER(g.gr - k.gr, 2) / (POWER(sigmagr, 2) + POWER(0.05, 2))"
    " + POWER(g.ri - k.ri, 2) / (POWER(sigmari, 2) + POWER(0.06, 2))) < 7"
)


@pytest.fixture(scope="module")
def paper_db(sky, kcorr):
    db = Database("paper")
    db.run_script(PAPER_SCHEMA)
    db.table("kcorr").insert(kcorr.as_columns())
    db.table("galaxy").insert(sky.catalog.as_columns())
    return db


class TestSchema:
    def test_all_five_tables_created(self, paper_db):
        assert paper_db.table_names() == [
            "candidates", "clustergalaxiesmetric", "clusters", "galaxy",
            "kcorr",
        ]

    def test_kcorr_loaded(self, paper_db, kcorr):
        assert paper_db.sql("SELECT COUNT(*) AS c FROM Kcorr").scalar() == len(kcorr)

    def test_galaxy_loaded(self, paper_db, sky):
        assert (
            paper_db.sql("SELECT COUNT(*) AS c FROM Galaxy").scalar()
            == sky.n_galaxies
        )


class TestZoneAssignment:
    def test_zone_formula_in_sql(self, paper_db, sky):
        # Zone = FLOOR((dec + 90) / h), h = 30 arcsec
        result = paper_db.sql(
            "SELECT objid, FLOOR((dec + 90.0) / 0.00833333333333333333) "
            "AS zoneid FROM Galaxy ORDER BY objid"
        )
        order = np.argsort(sky.catalog.objid)
        want = zone_id(sky.catalog.dec[order])
        assert np.array_equal(result.column("zoneid").astype(np.int64), want)

    def test_clustered_index_on_zone(self, paper_db):
        # spZone: assign ZoneID and create the clustered index
        if not paper_db.has_table("zonetab"):
            paper_db.sql(
                "CREATE TABLE zonetab (objid bigint PRIMARY KEY, zoneid int, "
                "ra float, dec float)"
            )
            paper_db.sql(
                "INSERT INTO zonetab SELECT objid, "
                "FLOOR((dec + 90.0) / 0.00833333333333333333), ra, dec "
                "FROM Galaxy"
            )
            paper_db.create_clustered_index("zonetab", "zoneid", "ra")
        plan = paper_db.explain(
            "SELECT objid FROM zonetab WHERE zoneid BETWEEN 10800 AND 10810"
        )
        assert "IndexRangeScan" in plan


class TestFilterStep:
    def test_sql_filter_matches_numpy_kernel(self, paper_db, sky, kcorr, config):
        """The CROSS JOIN + chi^2 < 7 cut agrees with filter_catalog."""
        # restrict to a slice of galaxies to keep the cross join small
        result = paper_db.sql(
            "SELECT g.objid AS objid, COUNT(*) AS nz "
            "FROM Galaxy g CROSS JOIN Kcorr k "
            f"WHERE g.objid % 97 = 0 AND {FILTER_PREDICATE} "
            "GROUP BY g.objid"
        )
        sql_pass = dict(zip(result.column("objid").tolist(),
                            result.column("nz").tolist()))

        rows = np.flatnonzero(sky.catalog.objid % 97 == 0)
        catalog = sky.catalog
        filtered = filter_catalog(
            catalog.i[rows], catalog.gr[rows], catalog.ri[rows],
            catalog.sigmagr[rows], catalog.sigmari[rows], kcorr, config,
        )
        numpy_pass = {
            int(catalog.objid[rows[k]]): int(filtered.pass_matrix[j].sum())
            for j, k in enumerate(filtered.passed_rows)
        }
        assert sql_pass == numpy_pass

    def test_early_filter_selectivity(self, paper_db, sky):
        """The Filter's whole point: most galaxies never pass."""
        survivors = paper_db.sql(
            "SELECT g.objid AS objid FROM Galaxy g CROSS JOIN Kcorr k "
            f"WHERE g.objid % 31 = 0 AND {FILTER_PREDICATE} "
            "GROUP BY g.objid"
        ).row_count
        total = paper_db.sql(
            "SELECT COUNT(*) AS c FROM Galaxy WHERE objid % 31 = 0"
        ).scalar()
        assert survivors / total < 0.3

    def test_candidate_insert_matches_pipeline(self, paper_db,
                                               pipeline_result):
        """Insert the pipeline's candidates through SQL; counts line up."""
        paper_db.sql("TRUNCATE TABLE Candidates")
        candidates = pipeline_result.candidates
        paper_db.table("candidates").insert(candidates.as_columns())
        count = paper_db.sql("SELECT COUNT(*) AS c FROM Candidates").scalar()
        assert count == len(candidates)
        best = paper_db.sql(
            "SELECT MAX(chi2) AS best FROM Candidates"
        ).scalar()
        assert best == pytest.approx(float(candidates.chi2.max()))


class TestClusterStep:
    def test_cluster_counts_by_redshift_bin(self, paper_db, pipeline_result):
        """A Figure 2-style analysis query over the results."""
        paper_db.sql("TRUNCATE TABLE Clusters")
        paper_db.table("clusters").insert(pipeline_result.clusters.as_columns())
        result = paper_db.sql(
            "SELECT FLOOR(z * 10) AS zbin, COUNT(*) AS n, AVG(ngal) AS richness "
            "FROM Clusters GROUP BY FLOOR(z * 10) ORDER BY zbin"
        )
        assert int(result.column("n").sum()) == len(pipeline_result.clusters)

    def test_members_fraction_query(self, paper_db, pipeline_result):
        paper_db.sql("TRUNCATE TABLE ClusterGalaxiesMetric")
        members = pipeline_result.members
        paper_db.table("clustergalaxiesmetric").insert({
            "clusterobjid": members.cluster_objid,
            "galaxyobjid": members.galaxy_objid,
            "distance": members.distance,
        })
        per_cluster = paper_db.sql(
            "SELECT clusterobjid, COUNT(*) AS n FROM ClusterGalaxiesMetric "
            "GROUP BY clusterobjid"
        )
        assert int(per_cluster.column("n").sum()) == len(members)
        assert int(per_cluster.column("n").min()) >= 1
