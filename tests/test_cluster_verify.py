"""The paper's partitioning invariant: union == sequential, exactly."""

import numpy as np
import pytest

from repro.cluster.executor import run_partitioned
from repro.cluster.verify import (
    CatalogComparison,
    assert_union_equals_sequential,
    compare_catalogs,
)
from repro.core.pipeline import run_maxbcg
from repro.core.results import CandidateCatalog
from repro.errors import PartitionError


@pytest.fixture(scope="module")
def sequential(sky, target_region, kcorr, config):
    return run_maxbcg(sky.catalog, target_region, kcorr, config,
                      compute_members=False)


class TestUnionInvariant:
    @pytest.mark.parametrize("n_servers", [2, 3])
    def test_union_equals_sequential(self, sky, target_region, kcorr, config,
                                     sequential, n_servers):
        partitioned = run_partitioned(
            sky.catalog, target_region, kcorr, config, n_servers=n_servers,
            compute_members=False,
        )
        assert_union_equals_sequential(
            partitioned.candidates, partitioned.clusters,
            sequential.candidates, sequential.clusters,
        )

    def test_values_identical_not_just_ids(self, sky, target_region, kcorr,
                                           config, sequential):
        partitioned = run_partitioned(
            sky.catalog, target_region, kcorr, config, n_servers=2,
            compute_members=False,
        )
        a = partitioned.clusters.sort_by_objid()
        b = sequential.clusters.sort_by_objid()
        assert np.array_equal(a.objid, b.objid)
        assert np.array_equal(a.ngal, b.ngal)
        assert np.allclose(a.z, b.z, rtol=0, atol=0)
        assert np.allclose(a.chi2, b.chi2, rtol=0, atol=0)


class TestCompareCatalogs:
    def make(self, ids, chi2=None):
        n = len(ids)
        return CandidateCatalog(
            objid=np.asarray(ids),
            ra=np.zeros(n), dec=np.zeros(n), z=np.full(n, 0.1),
            i=np.full(n, 17.0), ngal=np.full(n, 3),
            chi2=np.asarray(chi2) if chi2 is not None else np.ones(n),
        )

    def test_equal(self):
        assert compare_catalogs(self.make([1, 2]), self.make([2, 1]))

    def test_missing_rows(self):
        result = compare_catalogs(self.make([1, 2, 3]), self.make([1]))
        assert not result
        assert result.only_left == 2
        assert result.only_right == 0

    def test_value_mismatch(self):
        result = compare_catalogs(
            self.make([1, 2], chi2=[1.0, 2.0]),
            self.make([1, 2], chi2=[1.0, 2.5]),
        )
        assert not result
        assert result.value_mismatches == 1

    def test_duplicates_collapsed_before_compare(self):
        left = self.make([1, 2])
        merged = left.concat(self.make([3]))  # 1,2,3
        # fake duplicates: concat would reject same ids, so go via take
        doubled = merged.take(np.array([0, 1, 2, 0]))
        assert compare_catalogs(doubled, merged)

    def test_assert_raises_with_details(self):
        with pytest.raises(PartitionError, match="clusters"):
            assert_union_equals_sequential(
                self.make([1]), self.make([1]),
                self.make([1]), self.make([1, 2]),
            )
