"""On-disk table and database persistence."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.storage import (
    load_database,
    load_table,
    save_database,
    save_table,
)
from repro.errors import EngineError


@pytest.fixture()
def db() -> Database:
    d = Database("src")
    d.create_table(
        "galaxy",
        {"objid": np.array([1, 2, 3]), "ra": np.array([1.5, 2.5, 3.5])},
        primary_key="objid",
    )
    d.create_table(
        "labels",
        {"objid": np.array([1]), "name": np.array(["bcg"], dtype=object)},
    )
    return d


class TestRoundTrip:
    def test_table_roundtrip(self, db, tmp_path):
        save_table(db.table("galaxy"), tmp_path)
        restored = Database("dst")
        table = load_table(restored, tmp_path, "galaxy")
        assert table.row_count == 3
        assert table.column("ra").tolist() == [1.5, 2.5, 3.5]
        assert table.schema.primary_key == "objid"

    def test_string_columns_roundtrip(self, db, tmp_path):
        save_table(db.table("labels"), tmp_path)
        restored = Database("dst")
        table = load_table(restored, tmp_path, "labels")
        assert table.column("name").tolist() == ["bcg"]
        assert table.column("name").dtype == object

    def test_database_roundtrip(self, db, tmp_path):
        paths = save_database(db, tmp_path)
        assert len(paths) == 2
        restored = load_database(tmp_path, "dst")
        assert restored.table_names() == ["galaxy", "labels"]
        assert restored.sql("SELECT COUNT(*) AS c FROM galaxy").scalar() == 3

    def test_pk_enforced_after_load(self, db, tmp_path):
        save_database(db, tmp_path)
        restored = load_database(tmp_path)
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            restored.table("galaxy").insert(
                {"objid": [1], "ra": [0.0]}
            )

    def test_empty_table_roundtrip(self, tmp_path):
        d = Database("src")
        d.create_table("empty", {"a": np.empty(0, dtype=np.int64)})
        save_table(d.table("empty"), tmp_path)
        restored = Database("dst")
        assert load_table(restored, tmp_path, "empty").row_count == 0


class TestErrors:
    def test_missing_table(self, tmp_path):
        with pytest.raises(EngineError):
            load_table(Database("d"), tmp_path, "ghost")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(EngineError):
            load_database(tmp_path / "nope")
