"""Unified cone-search facade over the three strategies."""

import numpy as np
import pytest

from repro.errors import SpatialError
from repro.spatial.conesearch import (
    STRATEGIES,
    BruteForceIndex,
    build_index,
)
from repro.spatial.htm import HTMIndex
from repro.spatial.zones import ZoneIndex


class TestBuildIndex:
    def test_strategy_types(self, scatter_points):
        ra, dec = scatter_points
        assert isinstance(build_index(ra, dec, "zone"), ZoneIndex)
        assert isinstance(build_index(ra, dec, "htm"), HTMIndex)
        assert isinstance(build_index(ra, dec, "brute"), BruteForceIndex)

    def test_unknown_strategy(self, scatter_points):
        ra, dec = scatter_points
        with pytest.raises(SpatialError):
            build_index(ra, dec, "rtree")

    def test_all_strategies_agree(self, scatter_points):
        ra, dec = scatter_points
        indexes = [build_index(ra, dec, s) for s in STRATEGIES]
        results = [
            set(index.query(181.5, 0.5, 0.75)[0].tolist()) for index in indexes
        ]
        assert results[0] == results[1] == results[2]

    def test_custom_zone_height(self, scatter_points):
        ra, dec = scatter_points
        coarse = build_index(ra, dec, "zone", zone_height_deg=1.0)
        fine = build_index(ra, dec, "zone")
        a = set(coarse.query(181.0, 1.0, 0.5)[0].tolist())
        b = set(fine.query(181.0, 1.0, 0.5)[0].tolist())
        assert a == b

    def test_custom_htm_level(self, scatter_points):
        ra, dec = scatter_points
        index = build_index(ra, dec, "htm", htm_level=7)
        assert index.level == 7


class TestBruteForce:
    def test_len(self, scatter_points):
        ra, dec = scatter_points
        assert len(BruteForceIndex(ra, dec)) == len(ra)

    def test_negative_radius(self, scatter_points):
        ra, dec = scatter_points
        with pytest.raises(SpatialError):
            BruteForceIndex(ra, dec).query(0.0, 0.0, -0.5)

    def test_all_within_big_radius(self, scatter_points):
        ra, dec = scatter_points
        index = BruteForceIndex(ra, dec)
        hits, _ = index.query(180.0, 1.0, 60.0)
        assert hits.size == len(ra)
