"""Synthetic sky generation: densities, determinism, ground truth."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.skyserver.generator import (
    SkyConfig,
    SkySimulator,
    make_sky,
)
from repro.skyserver.regions import RegionBox


class TestSkyConfig:
    def test_defaults_valid(self):
        SkyConfig()

    def test_negative_density_rejected(self):
        with pytest.raises(ConfigError):
            SkyConfig(field_density=-1.0)

    def test_bad_richness(self):
        with pytest.raises(ConfigError):
            SkyConfig(richness_min=0)
        with pytest.raises(ConfigError):
            SkyConfig(richness_min=10, richness_max=5)


class TestGeneration:
    def test_deterministic_with_seed(self, kcorr, config):
        region = RegionBox(180.0, 181.0, 0.0, 1.0)
        sky_config = SkyConfig(field_density=200, cluster_density=5, seed=9)
        a = make_sky(region, config, kcorr, sky_config)
        b = make_sky(region, config, kcorr, sky_config)
        assert a.catalog.objid.tolist() == b.catalog.objid.tolist()
        assert np.allclose(a.catalog.ra, b.catalog.ra)

    def test_different_seeds_differ(self, kcorr, config):
        region = RegionBox(180.0, 181.0, 0.0, 1.0)
        a = make_sky(region, config, kcorr, SkyConfig(field_density=200, seed=1))
        b = make_sky(region, config, kcorr, SkyConfig(field_density=200, seed=2))
        assert a.n_galaxies != b.n_galaxies or not np.allclose(
            a.catalog.ra[: min(10, a.n_galaxies)],
            b.catalog.ra[: min(10, b.n_galaxies)],
        )

    def test_density_approximately_respected(self, kcorr, config):
        region = RegionBox(180.0, 184.0, 0.0, 4.0)  # 16 deg^2
        sky = make_sky(
            region, config, kcorr,
            SkyConfig(field_density=500, cluster_density=0, seed=3),
        )
        expected = 500 * region.area()
        assert sky.n_galaxies == pytest.approx(expected, rel=0.1)

    def test_positions_inside_region(self, sky, import_region, kcorr):
        # cluster *centers* stay inside; members may leak out by at most
        # one cluster aperture (the largest Kcorr radius)
        margin = float(kcorr.radius.max()) * 1.1
        padded = import_region.expand(margin)
        assert np.all(padded.contains(sky.catalog.ra, sky.catalog.dec))
        centers_ra = np.array([c.ra for c in sky.clusters])
        centers_dec = np.array([c.dec for c in sky.clusters])
        assert np.all(import_region.contains(centers_ra, centers_dec))

    def test_unique_objids(self, sky):
        assert np.unique(sky.catalog.objid).size == sky.n_galaxies

    def test_cluster_count_poisson(self, kcorr, config):
        region = RegionBox(180.0, 183.0, 0.0, 3.0)  # 9 deg^2
        sky = make_sky(
            region, config, kcorr,
            SkyConfig(field_density=10, cluster_density=10, seed=4),
        )
        assert sky.n_clusters == pytest.approx(90, rel=0.35)


class TestGroundTruth:
    def test_truth_members_exist_in_catalog(self, sky):
        ids = set(sky.catalog.objid.tolist())
        for cluster in sky.clusters[:20]:
            assert cluster.bcg_objid in ids
            assert set(cluster.member_objids) <= ids

    def test_bcg_on_ridge(self, sky, kcorr, config):
        # every truth BCG passes the chi^2 filter at its own redshift
        from repro.core.likelihood import chisq_profile

        catalog = sky.catalog
        for cluster in sky.clusters[:30]:
            row = catalog.index_of(cluster.bcg_objid)
            chisq = chisq_profile(
                float(catalog.i[row]), float(catalog.gr[row]),
                float(catalog.ri[row]), float(catalog.sigmagr[row]),
                float(catalog.sigmari[row]), kcorr, config,
            )
            zid = kcorr.nearest_zid(cluster.z)
            assert chisq[zid] < config.chi2_threshold

    def test_members_near_center(self, sky, kcorr):
        from repro.spatial.geometry import chord_distance_deg

        catalog = sky.catalog
        for cluster in sky.clusters[:20]:
            radius = kcorr.radius_at(cluster.z)
            for objid in cluster.member_objids:
                row = catalog.index_of(objid)
                d = float(chord_distance_deg(
                    cluster.ra, cluster.dec,
                    float(catalog.ra[row]), float(catalog.dec[row]),
                ))
                assert d <= radius * 1.05

    def test_members_fainter_than_bcg(self, sky):
        catalog = sky.catalog
        for cluster in sky.clusters[:20]:
            bcg_i = float(catalog.i[catalog.index_of(cluster.bcg_objid)])
            member_i = [
                float(catalog.i[catalog.index_of(m)])
                for m in cluster.member_objids
            ]
            assert all(m > bcg_i for m in member_i)

    def test_richness_bounds(self, sky):
        for cluster in sky.clusters:
            assert 8 <= cluster.richness <= 40
            assert len(cluster.member_objids) == cluster.richness


class TestSimulatorReuse:
    def test_objids_unique_across_regions(self, kcorr, config):
        simulator = SkySimulator(kcorr, config, SkyConfig(field_density=100, seed=6))
        a = simulator.generate(RegionBox(10.0, 11.0, 0.0, 1.0))
        b = simulator.generate(RegionBox(20.0, 21.0, 0.0, 1.0))
        overlap = set(a.catalog.objid.tolist()) & set(b.catalog.objid.tolist())
        assert not overlap
