"""Fused expression kernels and compressed pages: the kernel floor.

Two invariants anchor everything here:

* **Byte identity** — compiled kernels (CSE, short-circuit conjunction
  over selection vectors, late materialization) and compressed pages
  must never change an answer, only its cost.  Seeded random expression
  trees, NaN-heavy batches, division, empty batches and morsel-parallel
  execution all compare the compiled path against the interpreted walk
  bit for bit.

* **The work really drops** — the ``engine.compile.*`` tallies show
  fewer node evaluations and fewer allocated temporaries than the
  interpreted walk would make, and compressed pages show fewer logical
  reads for the same scan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.compile import TALLY, CompiledKernel, count_nodes, split_and
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
    batch_length,
    col,
    isin_fast,
    lit,
)
from repro.engine.pages import (
    PAGE_BYTES,
    ColumnCodec,
    CompressionPlan,
    choose_codecs,
    dict_decode,
    dict_encode,
    rle_decode,
    rle_encode,
)


def identical(a, b) -> bool:
    """Bit-for-bit array equality (NaNs equal; dtype kind must agree)."""
    a, b = np.asarray(a), np.asarray(b)
    return a.dtype.kind == b.dtype.kind and np.array_equal(
        a, b, equal_nan=(a.dtype.kind == "f")
    )


class Probe(Expr):
    """Wraps an expression and records the batch sizes it evaluates over.

    The compiler treats unknown node types as interpreted fallbacks over
    the *narrowed* batch, so the recorded sizes expose exactly how many
    rows reached this node — the observable form of short-circuiting
    and of CASE's branch narrowing.
    """

    def __init__(self, inner: Expr):
        self.inner = inner
        self.sizes: list[int] = []

    def children(self):
        return (self.inner,)

    def eval(self, batch):
        self.sizes.append(batch_length(batch))
        return self.inner.eval(batch)

    def __str__(self):
        return str(self.inner)


# ---------------------------------------------------------------------------
# seeded random trees: compiled vs interpreted
# ---------------------------------------------------------------------------
NUMERIC_COLS = ("a", "b", "c")


def random_numeric(rng, depth: int) -> Expr:
    """A random numeric-valued expression tree."""
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return col(str(rng.choice(NUMERIC_COLS)))
        return lit(float(rng.uniform(-5, 5)))
    roll = rng.random()
    if roll < 0.55:
        op = str(rng.choice(["+", "-", "*", "/", "%"]))
        return BinaryOp(op, random_numeric(rng, depth - 1),
                        random_numeric(rng, depth - 1))
    if roll < 0.7:
        return UnaryOp("-", random_numeric(rng, depth - 1))
    if roll < 0.85:
        fn = str(rng.choice(["abs", "sqrt", "floor"]))
        return FuncCall(fn, (random_numeric(rng, depth - 1),))
    return Case(
        whens=((random_bool(rng, depth - 1), random_numeric(rng, depth - 1)),),
        default=random_numeric(rng, depth - 1),
    )


def random_bool(rng, depth: int) -> Expr:
    """A random boolean-valued expression tree."""
    if depth <= 0 or rng.random() < 0.4:
        op = str(rng.choice(["<", "<=", ">", ">=", "=", "!="]))
        return BinaryOp(op, random_numeric(rng, 1), random_numeric(rng, 1))
    roll = rng.random()
    if roll < 0.35:
        op = str(rng.choice(["AND", "OR"]))
        return BinaryOp(op, random_bool(rng, depth - 1),
                        random_bool(rng, depth - 1))
    if roll < 0.5:
        return UnaryOp("NOT", random_bool(rng, depth - 1))
    if roll < 0.7:
        return Between(random_numeric(rng, depth - 1),
                       random_numeric(rng, 1), random_numeric(rng, 1))
    if roll < 0.85:
        options = tuple(lit(float(v)) for v in rng.integers(-3, 4, 3))
        return InList(random_numeric(rng, depth - 1), options)
    return BinaryOp(str(rng.choice(["<", ">"])),
                    random_numeric(rng, depth - 1),
                    random_numeric(rng, depth - 1))


def random_batch(rng, n: int) -> dict:
    """Float columns salted with NaNs plus zeros (division fodder)."""
    batch = {}
    for name in NUMERIC_COLS:
        values = rng.uniform(-10, 10, n)
        values[rng.random(n) < 0.15] = np.nan
        values[rng.random(n) < 0.1] = 0.0
        batch[name] = values
    return batch


@pytest.mark.parametrize("seed", range(12))
def test_random_projection_trees_byte_identical(seed):
    rng = np.random.default_rng(seed)
    batch = random_batch(rng, int(rng.integers(1, 400)))
    exprs = [random_numeric(rng, 4) for _ in range(4)]
    kernel = CompiledKernel(outputs=[(f"o{i}", e) for i, e in enumerate(exprs)])
    values = kernel.project_values(batch)
    for expr, value in zip(exprs, values):
        n = batch_length(batch)
        interp = np.asarray(expr.eval(batch))
        if interp.shape != (n,):
            interp = np.broadcast_to(interp, (n,)).copy()
        assert identical(value, interp), str(expr)


@pytest.mark.parametrize("seed", range(12))
def test_random_predicates_byte_identical(seed):
    rng = np.random.default_rng(1000 + seed)
    batch = random_batch(rng, int(rng.integers(1, 400)))
    conjuncts = [random_bool(rng, 3) for _ in range(int(rng.integers(1, 5)))]
    predicate = conjuncts[0]
    for part in conjuncts[1:]:
        predicate = BinaryOp("AND", predicate, part)
    kernel = CompiledKernel(predicate=predicate)
    interp = np.asarray(predicate.eval(batch), dtype=bool)
    n = batch_length(batch)
    if interp.shape != (n,):
        interp = np.broadcast_to(interp, (n,)).copy()
    assert identical(kernel.mask(batch), interp), str(predicate)


def test_empty_batch_and_empty_selection():
    batch = {"a": np.zeros(0), "b": np.zeros(0), "c": np.zeros(0)}
    predicate = BinaryOp("AND", BinaryOp(">", col("a"), lit(0)),
                         BinaryOp("<", col("b"), lit(1)))
    kernel = CompiledKernel(predicate=predicate,
                            outputs=[("x", BinaryOp("/", col("a"), col("b")))])
    assert kernel.select(batch).size == 0
    assert kernel.fused(batch) == [] or kernel.fused(batch)[0].size == 0
    # a first conjunct nothing survives: the second never runs
    probe = Probe(BinaryOp("<", col("b"), lit(1)))
    dead = CompiledKernel(predicate=BinaryOp(
        "AND", BinaryOp(">", col("a"), lit(np.inf)), probe))
    full = {"a": np.arange(5.0), "b": np.arange(5.0)}
    assert dead.select(full).size == 0
    assert probe.sizes == []  # short-circuited away entirely


def test_short_circuit_narrows_later_conjuncts():
    n = 100
    batch = {"a": np.arange(n, dtype=np.float64), "b": np.ones(n)}
    probe = Probe(BinaryOp("<", col("a"), lit(75)))
    predicate = BinaryOp("AND", BinaryOp(">=", col("a"), lit(50)), probe)
    kernel = CompiledKernel(predicate=predicate)
    survivors = kernel.select(batch)
    assert identical(survivors, np.arange(50, 75))
    # the second conjunct saw only the 50 rows surviving the first
    assert probe.sizes == [50]
    # interpreted evaluation over the full batch agrees bit for bit
    interp = np.asarray(predicate.eval(batch), dtype=bool)
    assert identical(kernel.mask(batch), interp)


def test_cse_shares_repeated_subtrees():
    band = BinaryOp("-", col("g"), col("i"))  # the MaxBCG band term
    chi = BinaryOp("*", band, band)
    predicate = BinaryOp("AND", BinaryOp(">", band, lit(0.2)),
                         BinaryOp("<", chi, lit(4.0)))
    kernel = CompiledKernel(predicate=predicate,
                            outputs=[("band", band), ("chi", chi)])
    assert kernel.n_cse >= 3  # band appears 4x across predicate+outputs
    before = TALLY.snapshot()
    batch = {"g": np.linspace(0, 3, 50), "i": np.linspace(1, 2, 50)}
    values = kernel.fused(batch)
    after = TALLY.snapshot()
    assert after["cse_hits"] > before["cse_hits"]
    # far fewer nodes evaluated than the interpreted walk's one-per-node
    interpreted_nodes = sum(
        count_nodes(c) for c in split_and(predicate)
    ) + count_nodes(band) + count_nodes(chi)
    assert after["nodes_evaluated"] - before["nodes_evaluated"] \
        < interpreted_nodes
    full_band = np.linspace(0, 3, 50) - np.linspace(1, 2, 50)
    keep = (full_band > 0.2) & (full_band * full_band < 4.0)
    assert identical(values[0], full_band[keep])


def test_kernel_is_reusable_across_batches():
    kernel = CompiledKernel(predicate=BinaryOp(">", col("a"), lit(1)))
    for n in (0, 1, 7, 100):
        batch = {"a": np.arange(n, dtype=np.float64)}
        assert identical(kernel.mask(batch),
                         np.arange(n, dtype=np.float64) > 1)


# ---------------------------------------------------------------------------
# satellite regressions: InList and Case
# ---------------------------------------------------------------------------
class TestInListFastPath:
    def test_single_pass_matches_loop(self):
        values = np.array([1.0, 2.0, 3.0, np.nan, 2.0])
        options = (lit(2.0), lit(9), lit(np.nan))
        fast = isin_fast(values, options)
        assert fast is not None
        expr = InList(col("v"), options)
        assert identical(fast, expr.eval({"v": values}))
        assert identical(fast, np.array([False, True, False, False, True]))

    def test_nan_probe_never_matches(self):
        # NaN in the data matches nothing, even a literal NaN option
        # (SQL: NULL IN (...) is not true) — and np.isin's sort-based
        # matching must not be allowed to pair NaNs up.
        values = np.array([np.nan, 5.0])
        fast = isin_fast(values, (lit(np.nan), lit(5.0)))
        assert fast is not None
        assert identical(fast, np.array([False, True]))

    def test_all_nan_options_short_circuits_to_false(self):
        fast = isin_fast(np.array([1.0, np.nan]), (lit(np.nan),))
        assert fast is not None
        assert identical(fast, np.array([False, False]))

    def test_mixed_and_nonliteral_options_fall_back(self):
        values = np.array([1.0, 2.0])
        assert isin_fast(values, (lit(1.0), lit("x"))) is None
        assert isin_fast(values, (lit(1.0), col("a"))) is None
        assert isin_fast(values, (lit(True),)) is None  # bool is not numeric
        assert isin_fast(np.array(["a", "b"], dtype=object),
                         (lit(1.0),)) is None

    def test_fallback_still_correct_via_expression(self):
        # string probe + string options: the loop path answers
        values = np.array(["a", "b", "c"], dtype=object)
        expr = InList(col("v"), (lit("a"), lit("c")))
        assert list(expr.eval({"v": values})) == [True, False, True]

    def test_int_probe_float_options(self):
        values = np.arange(5)
        expr = InList(col("v"), (lit(2.0), lit(4)))
        assert identical(expr.eval({"v": values}),
                         np.array([False, False, True, False, True]))


class TestCaseNarrowedBranches:
    def test_then_branches_see_only_hit_rows(self):
        n = 10
        batch = {"a": np.arange(n, dtype=np.float64)}
        then_probe = Probe(BinaryOp("*", col("a"), lit(2)))
        else_probe = Probe(BinaryOp("+", col("a"), lit(100)))
        expr = Case(whens=((BinaryOp("<", col("a"), lit(3)), then_probe),),
                    default=else_probe)
        result = expr.eval(batch)
        assert then_probe.sizes == [3]   # rows 0, 1, 2
        assert else_probe.sizes == [7]   # the rest
        expected = np.where(np.arange(n) < 3, np.arange(n) * 2.0,
                            np.arange(n) + 100.0)
        assert identical(result, expected)

    def test_all_rows_decided_probes_default_dtype_only(self):
        batch = {"a": np.arange(4, dtype=np.float64)}
        else_probe = Probe(lit(7))
        expr = Case(whens=((BinaryOp(">=", col("a"), lit(0)), lit(1)),),
                    default=else_probe)
        result = expr.eval(batch)
        # the default ran over zero rows — a dtype probe, not real work
        assert else_probe.sizes == [0]
        assert identical(result, np.full(4, 1))

    def test_integer_dtype_preserved(self):
        batch = {"a": np.arange(6, dtype=np.int64)}
        expr = Case(whens=((BinaryOp("<", col("a"), lit(3)), lit(10)),),
                    default=lit(20))
        result = expr.eval(batch)
        assert result.dtype.kind == "i"
        assert list(result) == [10, 10, 10, 20, 20, 20]

    def test_no_default_yields_nan(self):
        batch = {"a": np.arange(4, dtype=np.float64)}
        expr = Case(whens=((BinaryOp("<", col("a"), lit(2)), lit(1.5)),))
        assert identical(expr.eval(batch),
                         np.array([1.5, 1.5, np.nan, np.nan]))

    def test_first_matching_when_wins(self):
        batch = {"a": np.arange(5, dtype=np.float64)}
        expr = Case(whens=(
            (BinaryOp("<", col("a"), lit(3)), lit(1.0)),
            (BinaryOp("<", col("a"), lit(4)), lit(2.0)),
        ), default=lit(3.0))
        assert identical(expr.eval(batch),
                         np.array([1.0, 1.0, 1.0, 2.0, 3.0]))

    def test_case_over_empty_batch(self):
        batch = {"a": np.zeros(0)}
        expr = Case(whens=((BinaryOp("<", col("a"), lit(1)),
                            FuncCall("round", (col("a"), lit(2)))),),
                    default=lit(0.0))
        assert expr.eval(batch).size == 0


# ---------------------------------------------------------------------------
# engine integration: config, EXPLAIN, morsels, cache disjointness
# ---------------------------------------------------------------------------
def build_db(n: int = 4000, **config_kwargs) -> Database:
    db = Database("compiletest", config=EngineConfig(**config_kwargs))
    rng = np.random.default_rng(42)
    zone = np.sort(rng.integers(0, 25, n))
    g = rng.uniform(14, 24, n)
    g[rng.random(n) < 0.05] = np.nan
    db.create_table("galaxy", {
        "objid": np.arange(n, dtype=np.int64),
        "zoneid": zone,
        "ra": np.sort(rng.uniform(0.0, 360.0, n)),
        "g": g,
        "i": rng.uniform(13, 23, n),
    }, primary_key="objid")
    db.sql("ANALYZE")
    return db


KERNEL_SQL = (
    "SELECT objid, g - i AS band, (g - i) * (g - i) AS chi "
    "FROM galaxy WHERE g - i > 0.4 AND zoneid < 18 AND ra < 300.0 "
    "ORDER BY objid"
)


def test_engine_config_knobs_and_signature():
    assert EngineConfig().compiled_expressions is True
    assert EngineConfig().page_compression is True
    sig = EngineConfig().plan_signature()
    assert "compiled=1" in sig and "pages=1" in sig
    off = EngineConfig(compiled_expressions=False, page_compression=False)
    assert "compiled=0" in off.plan_signature()
    assert "pages=0" in off.plan_signature()
    assert not Database("off", config=off).compiled_expressions


def test_explain_shows_fused_annotation():
    db = build_db()
    plan = db.explain(KERNEL_SQL)
    assert "[fused:" in plan and "cse:" in plan
    off = build_db(compiled_expressions=False)
    assert "[fused:" not in off.explain(KERNEL_SQL)


def test_explain_analyze_keeps_compiled_stamp():
    db = build_db()
    report = db.explain_analyze(KERNEL_SQL)
    assert "[fused:" in report.render()


def test_compiled_results_byte_identical_to_interpreted():
    on = build_db()
    off = build_db(compiled_expressions=False, page_compression=False)
    a, b = on.sql(KERNEL_SQL), off.sql(KERNEL_SQL)
    assert a.row_count == b.row_count > 0
    for key in a.columns:
        assert identical(a.columns[key], b.columns[key])


@pytest.mark.parametrize("workers", (2, 4))
def test_morsel_workers_byte_identical(workers):
    base = build_db(n=40000)
    par = build_db(n=40000, intra_query_workers=workers)
    a, b = base.sql(KERNEL_SQL), par.sql(KERNEL_SQL)
    assert a.row_count == b.row_count > 0
    for key in a.columns:
        assert identical(a.columns[key], b.columns[key])


def test_join_residuals_compiled_match():
    sql = (
        "SELECT a.objid AS o1, b.objid AS o2 "
        "FROM galaxy AS a JOIN galaxy AS b ON a.zoneid = b.zoneid "
        "WHERE a.g - b.g > 2.0 AND a.objid < 300 AND b.objid < 300 "
        "ORDER BY o1, o2"
    )
    on, off = build_db(), build_db(compiled_expressions=False)
    a, b = on.sql(sql), off.sql(sql)
    assert a.row_count == b.row_count > 0
    for key in a.columns:
        assert identical(a.columns[key], b.columns[key])


def test_result_cache_entries_disjoint_per_compiled_mode():
    db = build_db(result_cache=True)
    db.sql(KERNEL_SQL)
    assert len(db.result_cache) == 1
    db.compiled_expressions = False
    miss = db.sql(KERNEL_SQL)
    assert not miss.plan.startswith("[answered from cache]")
    assert len(db.result_cache) == 2  # one entry per mode
    db.compiled_expressions = True
    hit = db.sql(KERNEL_SQL)
    assert hit.plan.startswith("[answered from cache]")


def test_compile_metrics_flow_to_registry():
    from repro.obs.metrics import get_metrics

    db = build_db()
    before = get_metrics().snapshot().get("engine.compile.executions", 0.0)
    db.sql(KERNEL_SQL)
    after = get_metrics().snapshot()["engine.compile.executions"]
    assert after > before
    assert "engine.compile.cse_hits" in get_metrics().snapshot()


# ---------------------------------------------------------------------------
# page compression
# ---------------------------------------------------------------------------
class TestCodecs:
    def test_dict_round_trip_int(self):
        values = np.array([3, 1, 3, 3, 2, 1], dtype=np.int64)
        codes, dictionary = dict_encode(values)
        assert dictionary.size == 3
        assert identical(dict_decode(codes, dictionary), values)

    def test_dict_round_trip_float_with_nans(self):
        values = np.array([1.5, np.nan, 1.5, np.nan, 2.5])
        codes, dictionary = dict_encode(values)
        assert dictionary.size == 3  # one shared NaN slot
        assert identical(dict_decode(codes, dictionary), values)

    def test_dict_round_trip_strings(self):
        values = np.array(["u", "g", "u", "r"], dtype=object)
        codes, dictionary = dict_encode(values)
        assert list(dict_decode(codes, dictionary)) == list(values)

    def test_rle_round_trip(self):
        values = np.repeat(np.array([5, 7, 5, 9], dtype=np.int64),
                           [3, 1, 4, 2])
        run_values, run_lengths = rle_encode(values)
        assert run_lengths.tolist() == [3, 1, 4, 2]
        assert identical(rle_decode(run_values, run_lengths), values)

    def test_rle_coalesces_adjacent_nans(self):
        values = np.array([1.0, np.nan, np.nan, 2.0])
        run_values, run_lengths = rle_encode(values)
        assert run_lengths.tolist() == [1, 2, 1]
        assert identical(rle_decode(run_values, run_lengths), values)

    def test_rle_empty(self):
        run_values, run_lengths = rle_encode(np.zeros(0))
        assert run_values.size == 0 and run_lengths.size == 0


class TestCodecChoice:
    def test_low_ndv_takes_dict_clustered_takes_rle(self):
        db = build_db()
        plan = db.table("galaxy").compression
        assert plan is not None
        by_kind = {c.column: c.kind for c in plan.codecs}
        # zoneid: 25 distinct values, sorted -> runs beat even dict codes
        assert by_kind["zoneid"] in ("dict", "rle")
        assert by_kind["zoneid"] != "raw"
        # ra: all-distinct float, unsorted runs -> stays raw
        assert by_kind["ra"] == "raw"
        assert plan.row_bytes < db.table("galaxy").schema.row_byte_width
        assert plan.describe()  # non-empty summary

    def test_incompressible_table_gets_no_plan(self):
        db = Database("raw", config=EngineConfig())
        rng = np.random.default_rng(3)
        db.create_table("noise", {"x": rng.uniform(0, 1, 500),
                                  "y": rng.uniform(0, 1, 500)})
        db.sql("ANALYZE")
        assert db.table("noise").compression is None
        width = db.table("noise").schema.row_byte_width
        assert db.table("noise").file.rows_per_page == \
            max(1, PAGE_BYTES // width)

    def test_page_compression_off_leaves_raw_layout(self):
        db = build_db(page_compression=False)
        table = db.table("galaxy")
        assert table.compression is None
        assert table.file.rows_per_page == \
            max(1, PAGE_BYTES // table.schema.row_byte_width)

    def test_logical_reads_drop_with_compression(self):
        on, off = build_db(), build_db(page_compression=False)
        start_on = on.io_counters.logical_reads
        start_off = off.io_counters.logical_reads
        a = on.sql(KERNEL_SQL)
        b = off.sql(KERNEL_SQL)
        assert a.row_count == b.row_count > 0
        for key in a.columns:
            assert identical(a.columns[key], b.columns[key])
        assert (on.io_counters.logical_reads - start_on) \
            < (off.io_counters.logical_reads - start_off)

    def test_compression_reacts_to_reanalyze(self):
        db = build_db()
        dense = db.table("galaxy").file.rows_per_page
        raw = max(1, PAGE_BYTES // db.table("galaxy").schema.row_byte_width)
        assert dense > raw
        db.page_compression = False
        db.table("galaxy").apply_compression(None)
        assert db.table("galaxy").file.rows_per_page == raw


class TestCompressionPersistence:
    def test_storage_round_trip(self, tmp_path):
        from repro.engine.storage import load_database, save_database

        db = build_db()
        save_database(db, tmp_path)
        restored = load_database(tmp_path)
        src, dst = db.table("galaxy"), restored.table("galaxy")
        assert dst.compression is not None
        assert dst.compression == src.compression
        assert dst.file.rows_per_page == src.file.rows_per_page
        # restored stats keep the run counts the codec choice needs
        assert dst.stats.column("zoneid").n_runs == \
            src.stats.column("zoneid").n_runs

    def test_stats_json_backward_compat(self):
        from repro.engine.optimizer.statistics import (
            stats_from_json,
            stats_to_json,
        )

        db = build_db()
        payload = stats_to_json(db.table("galaxy").stats)
        for column in payload["columns"].values():
            column.pop("n_runs")  # a pre-compression stats file
        legacy = stats_from_json(payload)
        assert legacy.column("zoneid").n_runs is None
        # choosing codecs from legacy stats must not crash: RLE simply
        # never wins without run counts
        plan = choose_codecs(legacy, db.table("galaxy").schema)
        if plan is not None:
            assert all(c.kind != "rle" for c in plan.codecs)

    def test_plan_row_bytes_and_lookup(self):
        plan = CompressionPlan(codecs=(
            ColumnCodec("zoneid", "dict", 1.1),
            ColumnCodec("ra", "raw", 8.0),
        ))
        assert plan.row_bytes == pytest.approx(9.1)
        assert plan.codec_for("ZONEID").kind == "dict"
        assert plan.codec_for("missing") is None
        assert plan.compressed_columns == ("zoneid",)


def test_n_runs_counts_physical_runs():
    from repro.engine.optimizer.statistics import count_runs

    assert count_runs(np.array([1, 1, 2, 2, 2, 1])) == 3
    assert count_runs(np.array([np.nan, np.nan, 1.0])) == 2
    assert count_runs(np.array(["a", "a", "b"], dtype=object)) == 2
    assert count_runs(np.zeros(0)) == 0
    assert count_runs(np.array([7])) == 1
