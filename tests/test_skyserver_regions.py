"""Region algebra: the target/buffer geometry of Figures 1, 4, 5."""

import numpy as np
import pytest

from repro.errors import RegionError
from repro.skyserver.regions import (
    PAPER_BUFFER,
    PAPER_IMPORT,
    PAPER_TARGET,
    RegionBox,
    buffer_overhead,
)


class TestConstruction:
    def test_inverted_ra_rejected(self):
        with pytest.raises(RegionError):
            RegionBox(10.0, 5.0, 0.0, 1.0)

    def test_inverted_dec_rejected(self):
        with pytest.raises(RegionError):
            RegionBox(0.0, 1.0, 5.0, 4.0)

    def test_dec_bounds(self):
        with pytest.raises(RegionError):
            RegionBox(0.0, 1.0, -91.0, 0.0)

    def test_degenerate_allowed(self):
        box = RegionBox(1.0, 1.0, 2.0, 2.0)
        assert box.flat_area() == 0.0


class TestPaperGeometry:
    def test_target_is_66_deg2(self):
        assert PAPER_TARGET.flat_area() == pytest.approx(66.0)

    def test_import_is_104_deg2(self):
        assert PAPER_IMPORT.flat_area() == pytest.approx(104.0)

    def test_import_bounds_match_spimportgalaxy(self):
        assert PAPER_IMPORT.ra_min == 172.0
        assert PAPER_IMPORT.ra_max == 185.0
        assert PAPER_IMPORT.dec_min == -3.0
        assert PAPER_IMPORT.dec_max == 5.0

    def test_buffer_bounds_match_spmakecandidates(self):
        assert PAPER_BUFFER.ra_min == 172.5
        assert PAPER_BUFFER.ra_max == 184.5
        assert PAPER_BUFFER.dec_min == -2.5
        assert PAPER_BUFFER.dec_max == 4.5

    def test_nesting(self):
        assert PAPER_IMPORT.contains_box(PAPER_BUFFER)
        assert PAPER_BUFFER.contains_box(PAPER_TARGET)

    def test_spherical_vs_flat_area_near_equator(self):
        assert PAPER_TARGET.area() == pytest.approx(
            PAPER_TARGET.flat_area(), rel=2e-3
        )


class TestAlgebra:
    def test_expand_shrink_roundtrip(self):
        box = RegionBox(10.0, 20.0, -5.0, 5.0)
        assert box.expand(1.0).shrink(1.0) == box

    def test_expand_clips_at_pole(self):
        box = RegionBox(0.0, 10.0, 85.0, 89.0)
        assert box.expand(5.0).dec_max == 90.0

    def test_negative_margin_rejected(self):
        with pytest.raises(RegionError):
            RegionBox(0, 1, 0, 1).expand(-1.0)

    def test_contains_vectorized_inclusive(self):
        box = RegionBox(10.0, 20.0, 0.0, 5.0)
        ra = np.array([10.0, 15.0, 20.0, 21.0])
        dec = np.array([0.0, 2.0, 5.0, 2.0])
        assert box.contains(ra, dec).tolist() == [True, True, True, False]

    def test_intersect(self):
        a = RegionBox(0.0, 10.0, 0.0, 10.0)
        b = RegionBox(5.0, 15.0, 5.0, 15.0)
        inter = a.intersect(b)
        assert inter == RegionBox(5.0, 10.0, 5.0, 10.0)

    def test_disjoint_intersection(self):
        a = RegionBox(0.0, 1.0, 0.0, 1.0)
        b = RegionBox(2.0, 3.0, 0.0, 1.0)
        assert a.intersect(b) is None
        assert not a.overlaps(b)

    def test_split_dec(self):
        box = RegionBox(0.0, 10.0, 0.0, 6.0)
        stripes = box.split_dec(3)
        assert len(stripes) == 3
        assert all(s.height == pytest.approx(2.0) for s in stripes)
        assert stripes[0].dec_min == 0.0 and stripes[-1].dec_max == 6.0

    def test_split_dec_invalid(self):
        with pytest.raises(RegionError):
            RegionBox(0, 1, 0, 1).split_dec(0)


class TestTiling:
    def test_tiles_cover_exactly(self):
        box = RegionBox(0.0, 2.0, 0.0, 1.5)
        tiles = list(box.tiles(0.5))
        assert len(tiles) == 4 * 3
        assert sum(t.flat_area() for t in tiles) == pytest.approx(box.flat_area())

    def test_edge_tiles_clipped(self):
        box = RegionBox(0.0, 1.3, 0.0, 0.7)
        tiles = list(box.tiles(0.5))
        assert max(t.ra_max for t in tiles) == pytest.approx(1.3)
        assert max(t.dec_max for t in tiles) == pytest.approx(0.7)

    def test_tiles_disjoint(self):
        box = RegionBox(0.0, 1.0, 0.0, 1.0)
        tiles = list(box.tiles(0.5))
        for i, a in enumerate(tiles):
            for b in tiles[i + 1:]:
                inter = a.intersect(b)
                assert inter is None or inter.flat_area() == pytest.approx(0.0)

    def test_bad_tile_size(self):
        with pytest.raises(RegionError):
            list(RegionBox(0, 1, 0, 1).tiles(0.0))


class TestBufferOverhead:
    def test_shrinks_with_target_size(self):
        # Figure 3's monotone claim
        small = buffer_overhead(RegionBox(0, 1, 0, 1), 0.5)
        large = buffer_overhead(RegionBox(0, 10, 0, 10), 0.5)
        assert large < small

    def test_paper_example(self):
        # 66 deg^2 target inside ~84 deg^2 candidate area: ~27% overhead
        overhead = buffer_overhead(PAPER_TARGET, 0.5)
        assert overhead == pytest.approx((12 * 7 - 66) / 66)

    def test_zero_area_rejected(self):
        with pytest.raises(RegionError):
            buffer_overhead(RegionBox(1, 1, 0, 0), 0.5)
