"""Spherical geometry primitives."""

import numpy as np
import pytest

from repro.errors import SpatialError
from repro.spatial.geometry import (
    adjusted_ra_radius,
    chord_distance_deg,
    chord_sq,
    chord_sq_to_deg,
    great_circle_distance_deg,
    normalize_ra,
    radius_to_chord_sq,
    unit_vectors,
    validate_dec,
)


class TestUnitVectors:
    def test_equator_prime(self):
        cx, cy, cz = unit_vectors(0.0, 0.0)
        assert np.allclose([cx, cy, cz], [1.0, 0.0, 0.0])

    def test_north_pole(self):
        cx, cy, cz = unit_vectors(123.0, 90.0)
        assert np.allclose([cx, cy, cz], [0.0, 0.0, 1.0], atol=1e-12)

    def test_ra_90(self):
        cx, cy, cz = unit_vectors(90.0, 0.0)
        assert np.allclose([cx, cy, cz], [0.0, 1.0, 0.0], atol=1e-12)

    def test_norm_is_one_vectorized(self):
        ra = np.linspace(0, 359, 50)
        dec = np.linspace(-89, 89, 50)
        cx, cy, cz = unit_vectors(ra, dec)
        assert np.allclose(cx**2 + cy**2 + cz**2, 1.0)


class TestDistances:
    def test_zero_distance(self):
        assert chord_distance_deg(10.0, 5.0, 10.0, 5.0) == pytest.approx(0.0)

    def test_one_degree_dec_offset(self):
        d = chord_distance_deg(180.0, 0.0, 180.0, 1.0)
        assert d == pytest.approx(1.0, abs=1e-4)

    def test_chord_close_to_arc_at_small_angles(self):
        # The paper's chord-degrees convention agrees with the true arc
        # to < 0.01% at MaxBCG radii (<= 1.5 deg).
        rng = np.random.default_rng(1)
        ra1 = rng.uniform(0, 360, 200)
        dec1 = rng.uniform(-60, 60, 200)
        ra2 = ra1 + rng.uniform(-1, 1, 200)
        dec2 = np.clip(dec1 + rng.uniform(-1, 1, 200), -90, 90)
        chord = chord_distance_deg(ra1, dec1, ra2, dec2)
        arc = great_circle_distance_deg(ra1, dec1, ra2, dec2)
        assert np.allclose(chord, arc, rtol=1e-4)

    def test_chord_below_arc_at_large_angles(self):
        # Chord length underestimates arc length, visibly so at 90 deg.
        chord = float(chord_distance_deg(0.0, 0.0, 90.0, 0.0))
        assert chord < 90.0
        assert chord == pytest.approx(np.sqrt(2.0) * 180.0 / np.pi, rel=1e-12)

    def test_antipodal_great_circle(self):
        assert great_circle_distance_deg(0.0, 0.0, 180.0, 0.0) == pytest.approx(180.0)

    def test_symmetry(self):
        a = chord_distance_deg(12.0, 3.0, 14.0, -2.0)
        b = chord_distance_deg(14.0, -2.0, 12.0, 3.0)
        assert a == pytest.approx(b)


class TestRadiusConversions:
    def test_radius_roundtrip(self):
        # the roundtrip returns the *chord* of r in degrees, which sits
        # a hair below r itself (exact at 0, ~3e-5 relative at 1.5 deg)
        for r in (0.01, 0.25, 0.5, 1.5):
            c2 = radius_to_chord_sq(r)
            back = float(chord_sq_to_deg(c2))
            assert back == pytest.approx(r, rel=1e-4)
            assert back <= r

    def test_negative_radius_rejected(self):
        with pytest.raises(SpatialError):
            radius_to_chord_sq(-0.1)

    def test_chord_sq_matches_distance(self):
        x1, y1, z1 = unit_vectors(180.0, 10.0)
        x2, y2, z2 = unit_vectors(180.4, 10.3)
        c2 = chord_sq(x1, y1, z1, x2, y2, z2)
        assert chord_sq_to_deg(c2) == pytest.approx(
            float(chord_distance_deg(180.0, 10.0, 180.4, 10.3))
        )


class TestCapRaHalfwidth:
    def test_equator_equals_radius(self):
        from repro.spatial.geometry import cap_ra_halfwidth

        assert float(cap_ra_halfwidth(0.5, 0.0)) == pytest.approx(0.5, rel=1e-4)

    def test_exceeds_linear_approximation_at_high_dec(self):
        from repro.spatial.geometry import cap_ra_halfwidth

        exact = float(cap_ra_halfwidth(1.0, 75.0))
        linear = 1.0 / np.cos(np.deg2rad(75.0))
        assert exact > linear  # the paper's formula undershoots here

    def test_polar_wrap(self):
        from repro.spatial.geometry import cap_ra_halfwidth

        assert float(cap_ra_halfwidth(2.0, 89.0)) == 180.0

    def test_interval_version_bounded_by_global(self):
        from repro.spatial.geometry import (
            cap_ra_halfwidth,
            cap_ra_halfwidth_at_dec,
        )

        full = float(cap_ra_halfwidth(1.0, 40.0))
        for lo, hi in [(39.0, 39.2), (40.0, 40.1), (40.8, 41.0)]:
            partial = cap_ra_halfwidth_at_dec(1.0, 40.0, lo, hi)
            assert partial <= full + 1e-12

    def test_interval_outside_cap_is_zero(self):
        from repro.spatial.geometry import cap_ra_halfwidth_at_dec

        assert cap_ra_halfwidth_at_dec(0.5, 10.0, 20.0, 21.0) == 0.0

    def test_zero_radius(self):
        from repro.spatial.geometry import cap_ra_halfwidth_at_dec

        assert cap_ra_halfwidth_at_dec(0.0, 10.0, 9.0, 11.0) == 0.0


class TestRaHelpers:
    def test_adjusted_radius_at_equator(self):
        assert float(adjusted_ra_radius(0.5, 0.0)) == pytest.approx(0.5, rel=1e-6)

    def test_adjusted_radius_widens_toward_pole(self):
        assert float(adjusted_ra_radius(0.5, 60.0)) == pytest.approx(1.0, rel=1e-3)

    def test_adjusted_radius_sign_symmetric(self):
        assert float(adjusted_ra_radius(0.5, -45.0)) == pytest.approx(
            float(adjusted_ra_radius(0.5, 45.0))
        )

    def test_normalize_ra(self):
        assert np.allclose(normalize_ra([-10.0, 370.0, 0.0]), [350.0, 10.0, 0.0])

    def test_validate_dec_rejects_out_of_range(self):
        with pytest.raises(SpatialError):
            validate_dec([0.0, 91.0])
        validate_dec([-90.0, 90.0])  # boundary is fine
