"""The slow-query log, including its wiring into the engine."""

import pytest

from repro.obs.slowlog import SlowQueryLog, get_slow_log


@pytest.fixture
def log():
    return SlowQueryLog(threshold_s=0.1, capacity=3)


class TestSlowQueryLog:
    def test_under_threshold_not_recorded(self, log):
        assert log.record("SELECT 1", 0.05) is None
        assert len(log) == 0

    def test_over_threshold_recorded_with_details(self, log):
        entry = log.record("SELECT * FROM galaxy", 0.5,
                           plan="Scan(galaxy)", max_q_error=3.0,
                           database="maxbcg")
        assert entry is not None
        assert entry.sql == "SELECT * FROM galaxy"
        assert entry.max_q_error == 3.0
        assert log.entries() == [entry]

    def test_threshold_boundary_is_inclusive(self, log):
        assert log.is_slow(0.1)
        assert not log.is_slow(0.0999)

    def test_capacity_is_a_ring(self, log):
        for n in range(5):
            log.record(f"Q{n}", 0.2 + n)
        kept = [e.sql for e in log.entries()]
        assert kept == ["Q2", "Q3", "Q4"]  # oldest evicted

    def test_render_slowest_first_with_plan(self, log):
        log.record("FAST-ISH", 0.2)
        log.record("SLOWEST", 0.9, plan="Scan(x)\n  Filter(y)")
        text = log.render()
        assert text.index("SLOWEST") < text.index("FAST-ISH")
        assert "| Scan(x)" in text
        assert "|   Filter(y)" in text

    def test_render_empty(self):
        assert "empty" in SlowQueryLog().render()

    def test_set_threshold(self, log):
        log.set_threshold(1.0)
        assert log.record("SELECT 1", 0.5) is None

    def test_recording_bumps_metric(self, log):
        from repro.obs.metrics import get_metrics

        before = get_metrics().counter("engine.slow_queries").value
        log.record("SELECT pg_sleep(1)", 5.0)
        assert get_metrics().counter("engine.slow_queries").value == before + 1

    def test_plan_signature_and_decision_fields(self, log):
        entry = log.record(
            "SELECT 1", 0.5, fingerprint="abc123", memo="hit",
            plan_signature="optimizer=cost,workers=1",
            decision="learned-override",
        )
        assert entry.plan_signature == "optimizer=cost,workers=1"
        assert entry.decision == "learned-override"
        # the line joins the entry against the Query Store plan history
        assert "sig=[optimizer=cost,workers=1]" in entry.line
        assert "plan=learned-override" in entry.line
        assert "memo=hit" in entry.line

    def test_decision_suppressed_when_same_as_memo(self, log):
        entry = log.record("SELECT 1", 0.5, memo="miss", decision="miss")
        assert "plan=" not in entry.line


class TestEngineWiring:
    def test_global_log_singleton(self):
        assert get_slow_log() is get_slow_log()

    def test_slow_select_logged_with_sql_and_plan(self):
        """A statement over budget lands in the log with its plan."""
        import numpy as np

        from repro.engine.database import Database

        db = Database("slowtest")
        db.create_table(
            "t", {"a": np.arange(50, dtype=np.int64)}, primary_key="a"
        )
        log = get_slow_log()
        old_threshold = log.threshold_s
        log.clear()
        log.set_threshold(0.0)  # everything is slow now
        try:
            db.sql("SELECT COUNT(*) AS n FROM t WHERE a > 10")
        finally:
            log.set_threshold(old_threshold)
        entries = log.entries()
        assert entries, "over-threshold SELECT was not logged"
        latest = entries[-1]
        assert "SELECT" in latest.sql.upper()
        assert latest.database == "slowtest"
        assert latest.plan  # SELECTs capture the chosen plan
        log.clear()

    def test_fingerprinted_select_logs_signature_and_decision(self):
        import numpy as np

        from repro.engine.config import EngineConfig
        from repro.engine.database import Database

        db = Database(
            "sigtest", config=EngineConfig(query_store=True)
        )
        db.create_table(
            "t", {"a": np.arange(50, dtype=np.int64)}, primary_key="a"
        )
        log = get_slow_log()
        old_threshold = log.threshold_s
        log.clear()
        log.set_threshold(0.0)
        try:
            db.sql("SELECT COUNT(*) AS n FROM t WHERE a > 10")
        finally:
            log.set_threshold(old_threshold)
        latest = log.entries()[-1]
        assert latest.fingerprint is not None
        assert latest.plan_signature == db.config.plan_signature()
        assert latest.decision == "cost"
        log.clear()

    def test_explain_analyze_logs_q_error(self):
        import numpy as np

        from repro.engine.database import Database

        db = Database("qetest")
        db.create_table(
            "t", {"a": np.arange(40, dtype=np.int64)}, primary_key="a"
        )
        log = get_slow_log()
        old_threshold = log.threshold_s
        log.clear()
        log.set_threshold(0.0)
        try:
            db.explain_analyze("SELECT a FROM t WHERE a >= 0")
        finally:
            log.set_threshold(old_threshold)
        entries = log.entries()
        assert entries
        assert entries[-1].max_q_error is not None
        assert entries[-1].max_q_error >= 1.0
        log.clear()
