"""Benchmark workload definitions."""

import pytest

from repro.bench.workloads import (
    SCALE_ENV,
    WORKLOADS,
    active_scale,
    active_workload,
    kcorr_for,
    sky_for,
)
from repro.errors import ConfigError


class TestDefinitions:
    def test_three_scales(self):
        assert set(WORKLOADS) == {"small", "medium", "paper"}

    def test_paper_scale_matches_paper(self):
        paper = WORKLOADS["paper"]
        assert paper.target.flat_area() == pytest.approx(66.0)
        assert paper.field_density == 14_000.0
        assert paper.sql.z_step == 0.001
        assert paper.tam.z_step == 0.01
        assert paper.tam.buffer_deg == 0.25

    def test_import_region_covers_both_configs(self):
        for workload in WORKLOADS.values():
            need = 2 * max(workload.sql.buffer_deg, workload.tam.buffer_deg)
            assert workload.import_region.contains_box(
                workload.target.expand(need)
            )


class TestSelection:
    def test_default_scale_small(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV, raising=False)
        assert active_scale() == "small"
        assert active_workload().name == "small"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV, "medium")
        assert active_workload().name == "medium"

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV, "galactic")
        with pytest.raises(ConfigError):
            active_scale()


class TestCaching:
    def test_kcorr_cached(self):
        workload = WORKLOADS["small"]
        assert kcorr_for(workload.sql) is kcorr_for(workload.sql)

    def test_sky_cached_and_deterministic(self):
        workload = WORKLOADS["small"]
        a = sky_for(workload)
        b = sky_for(workload)
        assert a is b
        assert a.n_galaxies > 1000
