"""The two stage-3 counting kernels: interval-based vs condition-matrix.

The fast kernel exploits the monotone shapes of the standard Kcorr
columns; a custom table without them must fall back to the reference
matrix kernel — and both must always agree with the cursor port.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.candidates import (
    _kcorr_monotone,
    find_candidates_cursor,
    find_candidates_vectorized,
)
from repro.core.kcorrection import KCorrectionTable
from repro.skyserver.regions import RegionBox
from repro.spatial.zones import ZoneIndex


def wiggled(kcorr: KCorrectionTable) -> KCorrectionTable:
    """A physically odd table: one dip in the g-r ridge."""
    gr = kcorr.gr.copy()
    middle = len(kcorr) // 2
    gr[middle] = gr[middle - 1] - 0.001  # breaks strict monotonicity
    return dataclasses.replace(kcorr, gr=gr)


class TestMonotoneDetection:
    def test_standard_table_is_monotone(self, kcorr):
        assert _kcorr_monotone(kcorr)

    def test_wiggled_table_detected(self, kcorr):
        assert not _kcorr_monotone(wiggled(kcorr))


class TestKernelParity:
    @pytest.fixture(scope="class")
    def setup(self, sky, config):
        catalog = sky.catalog
        index = ZoneIndex(catalog.ra, catalog.dec, config.zone_height_deg)
        region = RegionBox(180.6, 181.4, 0.6, 1.4)
        rows = np.flatnonzero(region.contains(catalog.ra, catalog.dec))
        return catalog, index, rows

    def test_fallback_matches_cursor(self, setup, kcorr, config):
        """Non-monotone table: the matrix fallback still equals the
        cursor port, row for row."""
        catalog, index, rows = setup
        table = wiggled(kcorr)
        fast = find_candidates_vectorized(catalog, rows, index, table, config)
        slow = find_candidates_cursor(catalog, rows, index, table, config)
        a, b = fast.sort_by_objid(), slow.sort_by_objid()
        assert np.array_equal(a.objid, b.objid)
        assert np.array_equal(a.ngal, b.ngal)
        assert np.allclose(a.chi2, b.chi2)

    def test_interval_kernel_boundary_semantics(self, setup, kcorr, config):
        """Construct friends sitting exactly on window edges and check
        the interval kernel matches the matrix kernel's inclusive /
        strict boundary treatment (via cursor equality)."""
        catalog, index, rows = setup
        fast = find_candidates_vectorized(catalog, rows, index, kcorr, config)
        slow = find_candidates_cursor(catalog, rows, index, kcorr, config)
        assert np.array_equal(
            fast.sort_by_objid().objid, slow.sort_by_objid().objid
        )
        assert np.array_equal(
            fast.sort_by_objid().ngal, slow.sort_by_objid().ngal
        )
