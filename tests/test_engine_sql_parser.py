"""SQL parser: statements and expression precedence."""

import pytest

from repro.engine.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
)
from repro.engine.sql.ast import (
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    SelectStatement,
    TruncateStatement,
    UpdateStatement,
)
from repro.engine.sql.parser import parse, parse_script
from repro.errors import SqlSyntaxError


class TestSelectParsing:
    def test_simple(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, SelectStatement)
        assert len(stmt.items) == 2
        assert stmt.source.table == "t"

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items[0].star

    def test_qualified_star(self):
        stmt = parse("SELECT g.* FROM galaxy g")
        assert stmt.items[0].star
        assert stmt.items[0].star_qualifier == "g"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.source.alias == "u"

    def test_schema_qualified_table(self):
        stmt = parse("SELECT a FROM MySkyServerDr1.dbo.Zone")
        assert stmt.source.table == "zone"

    def test_joins(self):
        stmt = parse(
            "SELECT * FROM g JOIN k ON g.zid = k.zid CROSS JOIN j"
        )
        assert stmt.joins[0].kind == "inner"
        assert isinstance(stmt.joins[0].condition, BinaryOp)
        assert stmt.joins[1].kind == "cross"
        assert stmt.joins[1].condition is None

    def test_inner_keyword_optional(self):
        stmt = parse("SELECT * FROM a INNER JOIN b ON a.x = b.x")
        assert stmt.joins[0].kind == "inner"

    def test_where_group_having_order_limit(self):
        stmt = parse(
            "SELECT zid, COUNT(*) AS c FROM t WHERE n > 0 "
            "GROUP BY zid HAVING COUNT(*) > 1 ORDER BY zid DESC LIMIT 5"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 5

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, FuncCall) and call.name == "count" and not call.args

    def test_star_arg_outside_aggregate_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT sqrt(*) FROM t")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t bogus extra")


class TestExpressionParsing:
    def expr(self, text):
        return parse(f"SELECT {text} FROM t").items[0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert isinstance(e, BinaryOp) and e.op == "+"
        assert isinstance(e.right, BinaryOp) and e.right.op == "*"

    def test_precedence_and_over_or(self):
        e = self.expr("a OR b AND c")
        assert e.op.upper() == "OR"
        assert e.right.op.upper() == "AND"

    def test_not_binds_tighter_than_and(self):
        e = self.expr("NOT a AND b")
        assert e.op.upper() == "AND"
        assert isinstance(e.left, UnaryOp)

    def test_parentheses(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_between(self):
        e = self.expr("ra BETWEEN 172.5 AND 184.5")
        assert isinstance(e, Between)
        assert e.low == Literal(172.5)

    def test_not_between(self):
        e = self.expr("ra NOT BETWEEN 0 AND 1")
        assert isinstance(e, UnaryOp) and isinstance(e.operand, Between)

    def test_in_list(self):
        e = self.expr("x IN (1, 2, 3)")
        assert isinstance(e, InList) and len(e.options) == 3

    def test_is_null(self):
        e = self.expr("x IS NULL")
        assert isinstance(e, FuncCall) and e.name == "isnull"
        e = self.expr("x IS NOT NULL")
        assert isinstance(e, UnaryOp)

    def test_case(self):
        e = self.expr("CASE WHEN x > 0 THEN 1 ELSE 0 END")
        assert isinstance(e, Case)
        assert e.default == Literal(0)

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT CASE ELSE 0 END FROM t")

    def test_unary_minus(self):
        e = self.expr("-x")
        assert isinstance(e, UnaryOp) and e.op == "-"

    def test_cast_passthrough(self):
        e = self.expr("CAST(2.089 * i AS float)")
        assert isinstance(e, FuncCall) and e.name == "cast"

    def test_function_nesting(self):
        e = self.expr("POWER(SIN(RADIANS(x / 2)), 2)")
        assert isinstance(e, FuncCall) and e.name == "power"

    def test_qualified_column(self):
        e = self.expr("g.ra")
        assert e == ColumnRef("ra", "g")

    def test_number_literals(self):
        assert self.expr("42") == Literal(42)
        assert self.expr("4.5") == Literal(4.5)
        assert self.expr("1e-9") == Literal(1e-9)

    def test_string_literal(self):
        assert self.expr("'abc'") == Literal("abc")

    def test_boolean_literals(self):
        assert self.expr("TRUE") == Literal(True)
        assert self.expr("FALSE") == Literal(False)


class TestDdlDml:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE galaxy (objid bigint PRIMARY KEY NOT NULL, "
            "ra float, name varchar(64))"
        )
        assert isinstance(stmt, CreateTableStatement)
        assert stmt.columns[0].primary_key
        assert stmt.columns[2].type_name == "varchar"

    def test_create_if_not_exists(self):
        stmt = parse("CREATE TABLE IF NOT EXISTS t (a int)")
        assert stmt.if_not_exists

    def test_insert_values(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2.5), (3, -4)")
        assert isinstance(stmt, InsertStatement)
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse("INSERT INTO t SELECT a, b FROM u WHERE a > 0")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = 0 WHERE a < 5")
        assert isinstance(stmt, UpdateStatement)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, DeleteStatement)

    def test_truncate(self):
        assert isinstance(parse("TRUNCATE TABLE t"), TruncateStatement)

    def test_drop(self):
        stmt = parse("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, DropTableStatement) and stmt.if_exists


class TestScripts:
    def test_parse_script(self):
        stmts = parse_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1); "
            "SELECT a FROM t;"
        )
        assert len(stmts) == 3

    def test_script_respects_comments_and_strings(self):
        stmts = parse_script(
            "SELECT 'a;b' AS x FROM t; -- trailing; comment\nSELECT a FROM t"
        )
        assert len(stmts) == 2

    def test_empty_statements_skipped(self):
        assert len(parse_script(";;  SELECT a FROM t ;;")) == 1
