"""Golden-plan regression tests for the rewrite pass.

Each named query's EXPLAIN output — rewrite trace lines plus the
physical operator tree with row estimates — is snapshotted under
``tests/golden/``.  A failing test prints a readable unified diff so CI
logs show exactly which operator or trace line moved.

To regenerate after an intentional planner/rewrite change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_plans.py

The dataset is fully deterministic (fixed seed, fixed sizes, ANALYZE),
so the estimates embedded in the snapshots are stable across runs and
platforms.
"""

from __future__ import annotations

import difflib
import os
from pathlib import Path

import numpy as np
import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))


def build_db(rewrites: bool = True) -> Database:
    db = Database("golden", config=EngineConfig(rewrites=rewrites))
    rng = np.random.default_rng(2005)
    n = 400
    db.create_table("t1", {
        "id": np.arange(n, dtype=np.int64),
        "k": rng.integers(0, 10, n).astype(np.int64),
        "a": rng.integers(-50, 50, n).astype(np.int64),
        "b": rng.uniform(-10.0, 10.0, n),
    }, primary_key="id")
    db.create_table("t2", {
        "k": rng.integers(0, 10, 120).astype(np.int64),
        "c": rng.uniform(0.0, 100.0, 120),
    })
    db.create_table("t3", {
        "k": np.arange(10, dtype=np.int64),
        "w": rng.uniform(1.0, 5.0, 10),
    }, primary_key="k")
    db.sql("ANALYZE")
    return db


#: name -> SQL; each snapshot exists twice, `<name>.txt` (rewrites on)
#: and `<name>.off.txt` (rewrites off, pinning the pre-rewrite plans).
GOLDEN_QUERIES = {
    "constant_fold": "SELECT id, a FROM t1 WHERE 1 = 1 AND a > 5 ORDER BY id",
    "double_negation": "SELECT id FROM t1 WHERE NOT (NOT (a > 5)) ORDER BY id",
    "cte_inline":
        "WITH f AS (SELECT id, a, b FROM t1 WHERE a > 0) "
        "SELECT id, b FROM f WHERE b > 1 ORDER BY id",
    "predicate_pushdown":
        "SELECT * FROM (SELECT id, k, a FROM t1) d WHERE d.a > 10 ORDER BY id",
    "derived_merge":
        "SELECT d.id, d.s FROM (SELECT id, a + k AS s FROM t1 WHERE a > 0) d "
        "WHERE d.s > 5 ORDER BY d.id",
    "in_decorrelate":
        "SELECT id, k FROM t1 WHERE k IN (SELECT k FROM t2 WHERE c > 60) "
        "ORDER BY id",
    "exists_decorrelate":
        "SELECT id FROM t1 WHERE EXISTS "
        "(SELECT 1 FROM t2 WHERE t2.k = t1.k AND t2.c > 60) ORDER BY id",
    "left_join_elim":
        "SELECT t1.id, t1.a FROM t1 LEFT JOIN t3 ON t3.k = t1.k "
        "WHERE t1.a > 0 ORDER BY t1.id",
    "aggregate_pushdown":
        "SELECT t3.k, SUM(t1.a) AS sa, MAX(t1.b) AS hi FROM t3 "
        "INNER JOIN t1 ON t1.k = t3.k GROUP BY t3.k ORDER BY t3.k",
    "having_pushdown":
        "SELECT k, COUNT(*) AS n FROM t1 GROUP BY k "
        "HAVING k > 4 AND COUNT(*) > 2 ORDER BY k",
}


def _check(path: Path, actual: str, context: str) -> None:
    if UPDATE:
        path.write_text(actual + "\n")
        return
    assert path.exists(), (
        f"missing golden snapshot {path.name} — regenerate with "
        f"REPRO_UPDATE_GOLDEN=1"
    )
    expected = path.read_text().rstrip("\n")
    if actual != expected:
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), actual.splitlines(),
            fromfile=f"golden/{path.name}", tofile="actual", lineterm="",
        ))
        pytest.fail(
            f"plan for {context} changed:\n{diff}\n"
            f"(regenerate with REPRO_UPDATE_GOLDEN=1 if intentional)"
        )


@pytest.mark.parametrize("name", sorted(GOLDEN_QUERIES))
def test_golden_plan_rewrites_on(name):
    db = build_db(rewrites=True)
    actual = db.explain(GOLDEN_QUERIES[name])
    _check(GOLDEN_DIR / f"{name}.txt", actual, f"{name} (rewrites on)")


@pytest.mark.parametrize("name", sorted(GOLDEN_QUERIES))
def test_golden_plan_rewrites_off(name):
    """EngineConfig(rewrites=False) must reproduce the unrewritten plans
    exactly — these snapshots are the pre-rewrite baseline."""
    db = build_db(rewrites=False)
    actual = db.explain(GOLDEN_QUERIES[name])
    assert "Rewrite " not in actual
    _check(GOLDEN_DIR / f"{name}.off.txt", actual, f"{name} (rewrites off)")
