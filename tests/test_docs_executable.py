"""The documentation's code blocks must actually run.

Extracts every ```python fence from README.md and docs/TUTORIAL.md and
executes them in one shared namespace per document (the tutorial is a
single progressive session).  Docs that drift from the API fail here.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return _FENCE.findall(path.read_text())


class TestTutorial:
    def test_tutorial_blocks_execute(self, capsys):
        blocks = python_blocks(ROOT / "docs" / "TUTORIAL.md")
        assert len(blocks) >= 6
        namespace: dict = {}
        for position, block in enumerate(blocks):
            try:
                exec(compile(block, f"TUTORIAL.md[{position}]", "exec"),
                     namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(
                    f"tutorial block {position} failed: "
                    f"{type(exc).__name__}: {exc}\n{block[:400]}"
                )


class TestReadme:
    def test_quickstart_block_executes(self, capsys):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README must contain a python quickstart"
        namespace: dict = {}
        exec(compile(blocks[0], "README.md[0]", "exec"), namespace)
        assert "result" in namespace
