"""Property-based tests (hypothesis) for the core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.partitioning import make_partitions
from repro.engine.database import Database
from repro.skyserver.regions import RegionBox
from repro.spatial.conesearch import BruteForceIndex
from repro.spatial.geometry import (
    cap_ra_halfwidth,
    chord_distance_deg,
    great_circle_distance_deg,
)
from repro.spatial.htm import htm_id
from repro.spatial.zonejoin import zone_join
from repro.spatial.zones import ZoneIndex, zone_id

# shared strategies ----------------------------------------------------
ras = st.floats(min_value=5.0, max_value=355.0)
decs = st.floats(min_value=-85.0, max_value=85.0)
radii = st.floats(min_value=0.0, max_value=2.0)

point_clouds = st.lists(
    st.tuples(ras, decs), min_size=1, max_size=60
)


class TestSpatialProperties:
    @given(point_clouds, ras, decs, radii)
    @settings(max_examples=60, deadline=None)
    def test_zone_query_equals_brute_force(self, points, qra, qdec, radius):
        ra = np.array([p[0] for p in points])
        dec = np.array([p[1] for p in points])
        zone = ZoneIndex(ra, dec)
        brute = BruteForceIndex(ra, dec)
        got, _ = zone.query(qra, qdec, radius)
        want, _ = brute.query(qra, qdec, radius)
        assert set(got.tolist()) == set(want.tolist())

    @given(point_clouds, st.lists(st.tuples(ras, decs, radii),
                                  min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_zone_join_equals_per_point(self, points, queries):
        ra = np.array([p[0] for p in points])
        dec = np.array([p[1] for p in points])
        index = ZoneIndex(ra, dec)
        qra = np.array([q[0] for q in queries])
        qdec = np.array([q[1] for q in queries])
        qr = np.array([q[2] for q in queries])
        pairs = zone_join(index, qra, qdec, qr)
        got: dict[int, set[int]] = {}
        for q, c in zip(pairs.query_index.tolist(), pairs.catalog_index.tolist()):
            got.setdefault(q, set()).add(c)
        for k in range(len(queries)):
            want, _ = index.query(float(qra[k]), float(qdec[k]), float(qr[k]))
            assert got.get(k, set()) == set(want.tolist())

    @given(ras, decs, ras, decs)
    @settings(max_examples=100, deadline=None)
    def test_chord_bounded_by_arc(self, ra1, dec1, ra2, dec2):
        chord = float(chord_distance_deg(ra1, dec1, ra2, dec2))
        arc = float(great_circle_distance_deg(ra1, dec1, ra2, dec2))
        assert chord <= arc + 1e-9

    @given(ras, decs, st.integers(min_value=0, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_htm_ids_nest(self, ra, dec, level):
        parent = int(htm_id([ra], [dec], level)[0])
        child = int(htm_id([ra], [dec], level + 1)[0])
        assert child // 4 == parent

    @given(decs)
    @settings(max_examples=100, deadline=None)
    def test_zone_id_bounds(self, dec):
        zid = int(zone_id(dec))
        assert 0 <= zid <= int(180.0 / (30.0 / 3600.0))

    @given(radii, decs)
    @settings(max_examples=100, deadline=None)
    def test_cap_halfwidth_at_least_linear(self, radius, dec):
        # the exact window is never narrower than r (equator value) and
        # never narrower than the paper's linear approximation where
        # that approximation is valid
        exact = float(cap_ra_halfwidth(radius, dec))
        assert exact >= radius - 1e-9
        if abs(dec) + radius < 89.0:
            linear = radius / np.cos(np.deg2rad(abs(dec)))
            assert exact >= min(linear, 180.0) - 1e-6


class TestRegionProperties:
    @given(
        st.floats(min_value=0.0, max_value=300.0),
        st.floats(min_value=0.5, max_value=30.0),
        st.floats(min_value=-60.0, max_value=30.0),
        st.floats(min_value=0.5, max_value=30.0),
        st.floats(min_value=0.01, max_value=3.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_expand_shrink_inverse(self, ra0, width, dec0, height, margin):
        box = RegionBox(ra0, ra0 + width, dec0, dec0 + height)
        expanded = box.expand(margin)
        assert expanded.contains_box(box)
        if (
            expanded.dec_min == box.dec_min - margin
            and expanded.dec_max == box.dec_max + margin
        ):
            back = expanded.shrink(margin)
            for attr in ("ra_min", "ra_max", "dec_min", "dec_max"):
                assert getattr(back, attr) == np.float64(
                    getattr(back, attr)
                )  # sanity: finite
                assert abs(getattr(back, attr) - getattr(box, attr)) < 1e-9

    @given(
        st.floats(min_value=1.0, max_value=20.0),
        st.floats(min_value=1.0, max_value=20.0),
        st.floats(min_value=0.1, max_value=0.5),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_targets_tile_exactly(self, width, height, buffer_deg, n):
        target = RegionBox(100.0, 100.0 + width, 0.0, height)
        layout = make_partitions(target, buffer_deg, n)
        total = sum(p.target.flat_area() for p in layout.partitions)
        assert total == np.float64(total)  # no NaN
        assert abs(total - target.flat_area()) < 1e-9
        for p in layout.partitions:
            assert layout.global_import.contains_box(p.imported)

    @given(
        st.floats(min_value=0.5, max_value=20.0),
        st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_buffer_overhead_positive_and_monotone(self, size, margin):
        from repro.skyserver.regions import buffer_overhead

        small = RegionBox(10.0, 10.0 + size, 0.0, size)
        bigger = RegionBox(10.0, 10.0 + 2 * size, 0.0, 2 * size)
        assert buffer_overhead(small, margin) > 0
        assert buffer_overhead(bigger, margin) < buffer_overhead(small, margin)


class TestEngineProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-1000, max_value=1000),
                st.floats(min_value=-1e6, max_value=1e6),
            ),
            min_size=0,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sql_filter_matches_numpy(self, rows):
        db = Database("prop")
        keys = np.arange(len(rows), dtype=np.int64)
        values = np.array([r[1] for r in rows], dtype=np.float64)
        flags = np.array([r[0] for r in rows], dtype=np.int64)
        db.create_table("t", {"k": keys, "flag": flags, "v": values})
        got = db.sql("SELECT COUNT(*) AS c FROM t WHERE v > 0 AND flag < 5").scalar()
        want = int(((values > 0) & (flags < 5)).sum())
        assert got == want

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                 max_size=80)
    )
    @settings(max_examples=50, deadline=None)
    def test_sql_group_count_matches_numpy(self, groups):
        db = Database("prop2")
        arr = np.asarray(groups, dtype=np.int64)
        db.create_table(
            "t", {"k": np.arange(arr.size), "g": arr}
        )
        result = db.sql("SELECT g, COUNT(*) AS c FROM t GROUP BY g")
        got = dict(zip(result.column("g").tolist(), result.column("c").tolist()))
        unique, counts = np.unique(arr, return_counts=True)
        assert got == dict(zip(unique.tolist(), counts.tolist()))

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_sql_order_by_sorts(self, values):
        db = Database("prop3")
        arr = np.asarray(values, dtype=np.float64)
        db.create_table("t", {"k": np.arange(arr.size), "v": arr})
        result = db.sql("SELECT v FROM t ORDER BY v")
        assert result.column("v").tolist() == sorted(arr.tolist())
