"""The adaptive feedback optimizer: plan memo + q-error closed loop.

Covers the plan-memo layer (hits skip planning, every invalidation
source forces a miss, never a stale cross-serve), the q-error edge
cases the instrumentation can produce (zero and NaN actuals), the
learned-selectivity override path (breach -> re-ANALYZE -> override ->
re-plan -> convergence), the observable surface (slow-query log fields,
``engine.feedback.*`` counters, ``QueryResult`` annotations), and the
cluster plumbing (per-worker memo summaries in ``WorkUnitOutcome``).
"""

import math

import numpy as np
import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.memo import PlanMemo
from repro.engine.optimizer.feedback import (
    MAX_OVERRIDE_RATIO,
    MIN_OVERRIDE_RATIO,
    FeedbackStore,
    SelectivityOverrides,
)
from repro.engine.optimizer.quality import Q_ERROR_CAP, q_error


def batch_digest(result) -> tuple:
    """A comparable, exact digest of a query result's batch."""
    return tuple(
        (name, result.columns[name].tobytes())
        for name in sorted(result.column_names)
    )


def make_db(config: EngineConfig | None = None, seed: int = 7) -> Database:
    db = Database(
        "feedbackdb",
        config=config or EngineConfig(feedback=True),
    )
    rng = np.random.default_rng(seed)
    n_b = 2000
    # b.k2 is skewed: 90% of rows on the hot value 0, the rest uniform;
    # c holds only the hot value, so the uniformity assumption in the
    # estimator underestimates b JOIN c badly even with fresh stats.
    k2 = np.where(np.arange(n_b) % 10 < 9, 0, np.arange(n_b) % 20)
    db.create_table(
        "a",
        {"k1": np.arange(40, dtype=np.int64), "x": rng.normal(size=40)},
        primary_key="k1",
    )
    db.create_table(
        "b",
        {"k1": np.arange(n_b, dtype=np.int64) % 40,
         "k2": k2.astype(np.int64)},
    )
    db.create_table(
        "c",
        {"k2": np.zeros(150, dtype=np.int64),
         "y": rng.normal(size=150)},
    )
    db.sql("ANALYZE")
    return db


SKEW_JOIN = (
    "SELECT COUNT(*) AS n FROM a JOIN b ON a.k1 = b.k1 "
    "JOIN c ON b.k2 = c.k2 WHERE a.x > 1.0"
)
SIMPLE_JOIN = (
    "SELECT COUNT(*) AS n FROM a JOIN b ON a.k1 = b.k1 WHERE a.x > 0"
)


# ---------------------------------------------------------------------------
# q-error edge cases (satellite: zero/NaN clamping)
# ---------------------------------------------------------------------------
class TestQErrorClamp:
    def test_both_zero_is_perfect(self):
        assert q_error(0, 0) == 1.0

    def test_zero_actual_is_finite(self):
        # est=1e6 vs actual=0: clamped actual floor of 1 row
        assert q_error(1e6, 0) == 1e6

    def test_zero_estimate_is_finite(self):
        assert q_error(0, 1e6) == 1e6

    def test_inf_estimate_clamped_to_cap(self):
        # an infinite estimate clamps to the cap before the ratio
        q = q_error(float("inf"), 10)
        assert math.isfinite(q)
        assert q == Q_ERROR_CAP / 10

    def test_nan_either_side_hits_cap(self):
        assert q_error(float("nan"), 10) == Q_ERROR_CAP
        assert q_error(10, float("nan")) == Q_ERROR_CAP

    def test_none_estimate_stays_none(self):
        assert q_error(None, 10) is None

    def test_always_finite_and_bounded(self):
        for est, actual in [(0, 0), (0, 1), (1, 0), (1e300, 1),
                            (1, 1e300), (float("inf"), float("inf"))]:
            q = q_error(est, actual)
            assert math.isfinite(q)
            assert 1.0 <= q <= Q_ERROR_CAP

    def test_sub_row_estimates_floor_at_one(self):
        # fractional estimates below one row must not inflate q-error
        assert q_error(0.01, 1) == 1.0


# ---------------------------------------------------------------------------
# plan memo: hits, planning skipped, structural invalidation
# ---------------------------------------------------------------------------
class TestPlanMemo:
    def test_repeat_execution_hits_memo(self):
        db = make_db()
        first = db.sql(SIMPLE_JOIN)
        second = db.sql(SIMPLE_JOIN)
        assert first.memo_decision == "miss"
        assert second.memo_decision == "hit"
        assert batch_digest(first) == batch_digest(second)
        assert db.feedback.memo.stats.hits == 1

    def test_hit_skips_planning_time(self):
        db = make_db()
        db.sql(SIMPLE_JOIN)
        entry = db.feedback.store.get(db.sql(SIMPLE_JOIN).fingerprint)
        # a hit records zero planning seconds: the plan came from the memo
        assert entry.last_planning_s == 0.0
        assert entry.planning_total_s > 0.0

    def test_fingerprint_is_stable_and_normalized(self):
        db = make_db()
        a = db.sql(SIMPLE_JOIN)
        b = db.sql("select   COUNT( * ) as N from a join b on A.K1=b.k1 "
                   "where a.x>0")
        assert a.fingerprint == b.fingerprint
        assert b.memo_decision == "hit"

    def test_different_statements_do_not_collide(self):
        db = make_db()
        a = db.sql(SIMPLE_JOIN)
        c = db.sql("SELECT COUNT(*) AS n FROM b")
        assert a.fingerprint != c.fingerprint
        assert c.memo_decision == "miss"

    def test_memo_disabled_without_feedback(self):
        db = Database("plain", config=EngineConfig())
        db.create_table("t", {"v": np.arange(5)})
        result = db.sql("SELECT COUNT(*) AS n FROM t")
        assert db.feedback is None
        assert result.fingerprint is None
        assert result.memo_decision is None

    def test_lru_eviction_bounded(self):
        memo = PlanMemo(max_entries=2)
        for i in range(4):
            memo.put((f"fp{i}", "sig"), plan=object(), tables=frozenset(),
                     table_versions={}, stats_versions={},
                     overrides_version=0, planning_s=0.001)
        assert len(memo.entries()) == 2
        assert memo.stats.evictions == 2


class TestMemoInvalidation:
    """Every staleness source must force a miss — never a stale plan."""

    def _assert_miss_after(self, db, mutate):
        before = db.sql(SIMPLE_JOIN)
        assert db.sql(SIMPLE_JOIN).memo_decision == "hit"
        mutate(db)
        after = db.sql(SIMPLE_JOIN)
        assert after.memo_decision in ("miss", "replan", "learned-override")
        return before, after

    def test_insert_bumps_version(self):
        before, after = self._assert_miss_after(
            make_db(),
            lambda db: db.sql("INSERT INTO b SELECT k1, k2 FROM b"),
        )
        assert batch_digest(before) != batch_digest(after)  # data changed

    def test_update_bumps_version(self):
        db = make_db()
        self._assert_miss_after(
            db, lambda d: d.sql("UPDATE b SET k2 = 1 WHERE k2 = 19"))

    def test_delete_bumps_version(self):
        db = make_db()
        before, after = self._assert_miss_after(
            db, lambda d: d.sql("DELETE FROM b WHERE k1 >= 20"))
        assert batch_digest(before) != batch_digest(after)

    def test_analyze_bumps_stats_version(self):
        db = make_db()
        before, after = self._assert_miss_after(
            db, lambda d: d.sql("ANALYZE"))
        # stats refresh must not change the answer, only the plan's basis
        assert batch_digest(before) == batch_digest(after)

    def test_analyze_single_table_invalidates_only_its_plans(self):
        db = make_db()
        db.sql(SIMPLE_JOIN)          # touches a, b
        other = "SELECT COUNT(*) AS n FROM c"
        db.sql(other)                # touches c only
        db.sql("ANALYZE a")
        assert db.sql(SIMPLE_JOIN).memo_decision == "miss"
        assert db.sql(other).memo_decision == "hit"

    def test_truncate_and_drop_invalidate(self):
        db = make_db()
        db.sql(SIMPLE_JOIN)
        db.sql("TRUNCATE TABLE b")
        assert db.sql(SIMPLE_JOIN).memo_decision == "miss"

    def test_matview_refresh_invalidates_reader(self):
        db = make_db()
        db.sql("CREATE MATERIALIZED VIEW hot AS "
               "SELECT k1, COUNT(*) AS cnt FROM b GROUP BY k1")
        query = "SELECT COUNT(*) AS n FROM hot WHERE cnt > 10"
        db.sql(query)
        assert db.sql(query).memo_decision == "hit"
        db.sql("INSERT INTO b SELECT k1, k2 FROM b WHERE k1 = 0")
        db.sql("REFRESH MATERIALIZED VIEW hot")
        after = db.sql(query)
        assert after.memo_decision in ("miss", "replan", "learned-override")

    def test_config_signature_partitions_memo(self):
        # same statement under different EngineConfigs must not share a
        # memo slot: the signature is part of the key
        cost = make_db(EngineConfig(feedback=True, optimizer="cost"))
        syntactic = make_db(
            EngineConfig(feedback=True, optimizer="syntactic"))
        r_cost = cost.sql(SIMPLE_JOIN)
        r_syn = syntactic.sql(SIMPLE_JOIN)
        assert r_cost.memo_decision == "miss"
        assert r_syn.memo_decision == "miss"
        assert batch_digest(r_cost) == batch_digest(r_syn)
        key_cost = cost.feedback.memo.entries()[0].key
        key_syn = syntactic.feedback.memo.entries()[0].key
        assert key_cost != key_syn

    def test_answers_byte_identical_across_hit_and_replan(self):
        db = make_db(EngineConfig(feedback=True, qerror_ceiling=1.5))
        digests = {batch_digest(db.sql(SKEW_JOIN)) for _ in range(5)}
        assert len(digests) == 1


# ---------------------------------------------------------------------------
# the closed loop: breach -> re-analyze -> override -> converge
# ---------------------------------------------------------------------------
class TestFeedbackLoop:
    def test_breach_installs_override_and_converges(self):
        db = make_db(EngineConfig(feedback=True, qerror_ceiling=2.0))
        first = db.sql(SKEW_JOIN)
        entry = db.feedback.store.get(first.fingerprint)
        assert entry.last_max_q > 2.0  # the seeded skew breaches
        second = db.sql(SKEW_JOIN)
        assert second.memo_decision in ("replan", "learned-override")
        entry = db.feedback.store.get(first.fingerprint)
        assert entry.last_max_q <= 2.0  # one cycle was enough here
        assert db.sql(SKEW_JOIN).memo_decision == "hit"
        assert batch_digest(first) == batch_digest(second)

    def test_override_entries_visible(self):
        db = make_db(EngineConfig(feedback=True, qerror_ceiling=2.0))
        db.sql(SKEW_JOIN)
        db.sql(SKEW_JOIN)
        entries = db.feedback.overrides.entries()
        assert entries, "breach should have installed an override"
        kinds = {e.kind for e in entries}
        assert kinds <= {"equi", "band"}
        for e in entries:
            assert MIN_OVERRIDE_RATIO <= e.ratio <= MAX_OVERRIDE_RATIO

    def test_estimator_applies_equi_override(self):
        from repro.engine.expressions import ColumnRef
        from repro.engine.optimizer.cardinality import (
            CardinalityEstimator,
            profile_for_table,
        )

        db = make_db()
        profiles = [profile_for_table(db.table("b"), "b"),
                    profile_for_table(db.table("c"), "c")]
        left = ColumnRef("k2", "b")
        right = ColumnRef("k2", "c")
        bare = CardinalityEstimator(profiles)
        base = bare.equi_selectivity(left, right)
        overrides = SelectivityOverrides()
        overrides.install(
            "equi", SelectivityOverrides.equi_key("b.k2", "c.k2"),
            ratio=5.0, fingerprint="t")
        tuned = CardinalityEstimator(profiles, overrides)
        assert tuned.equi_selectivity(left, right) == \
            pytest.approx(min(base * 5.0, 1.0))
        # aliases resolve to the same table-qualified key
        alias_profiles = [profile_for_table(db.table("b"), "bb"),
                          profile_for_table(db.table("c"), "cc")]
        aliased = CardinalityEstimator(alias_profiles, overrides)
        assert aliased.equi_selectivity(
            ColumnRef("k2", "bb"), ColumnRef("k2", "cc")) == \
            pytest.approx(min(base * 5.0, 1.0))

    def test_override_key_is_order_independent(self):
        assert SelectivityOverrides.equi_key("x.a", "y.b") == \
            SelectivityOverrides.equi_key("y.b", "x.a")

    def test_install_clamps_ratio(self):
        overrides = SelectivityOverrides()
        key = SelectivityOverrides.equi_key("t.a", "t.b")
        overrides.install("equi", key, ratio=1e30, fingerprint="t")
        assert overrides.equi_ratio("t.a", "t.b") == MAX_OVERRIDE_RATIO
        overrides.install("equi", key, ratio=0.0, fingerprint="t")
        assert overrides.equi_ratio("t.a", "t.b") == MIN_OVERRIDE_RATIO

    def test_reanalyze_counter_and_metrics(self):
        from repro.obs.metrics import get_metrics

        db = make_db(EngineConfig(feedback=True, qerror_ceiling=2.0))
        breaches_0 = get_metrics().counter("engine.feedback.breaches").value
        db.sql(SKEW_JOIN)
        db.sql(SKEW_JOIN)
        assert get_metrics().counter(
            "engine.feedback.breaches").value > breaches_0
        summary = db.feedback.summary()
        assert summary["replans"] >= 1
        assert summary["memo_hits"] >= 0
        assert summary["executions"] >= 2

    def test_store_tracks_trajectory(self):
        db = make_db(EngineConfig(feedback=True, qerror_ceiling=2.0))
        for _ in range(4):
            db.sql(SKEW_JOIN)
        fp = db.sql(SKEW_JOIN).fingerprint
        entry = db.feedback.store.get(fp)
        assert len(entry.q_trajectory) == 5
        assert entry.worst_max_q >= entry.last_max_q

    def test_feedback_store_thread_shape(self):
        store = FeedbackStore()
        store.record("fp1", "SELECT 1", max_q=3.0, planning_s=0.01,
                     decision="miss")
        store.record("fp1", "SELECT 1", max_q=1.5, planning_s=0.0,
                     decision="hit")
        entry = store.get("fp1")
        assert entry.executions == 2
        assert entry.worst_max_q == 3.0
        assert entry.last_max_q == 1.5
        assert entry.replans == 0

    def test_pending_consumed_once(self):
        store = FeedbackStore()
        store.record("fp", "SELECT 1", max_q=9.0, planning_s=0.01,
                     decision="miss")
        store.set_pending("fp", "replan")
        assert store.take_pending("fp") == "replan"
        assert store.take_pending("fp") is None


# ---------------------------------------------------------------------------
# observability surface
# ---------------------------------------------------------------------------
class TestObservability:
    def test_slow_log_carries_fingerprint_and_memo(self):
        from repro.obs.slowlog import get_slow_log

        log = get_slow_log()
        log.clear()
        old = log.threshold_s
        log.set_threshold(0.0)
        try:
            db = make_db()
            result = db.sql(SIMPLE_JOIN)
            entries = [e for e in log.entries()
                       if e.fingerprint == result.fingerprint]
            assert entries, "statement should be in the slow log"
            assert entries[-1].memo == "miss"
            assert f"fp={result.fingerprint[:12]}" in entries[-1].line
            assert "memo=miss" in entries[-1].line
        finally:
            log.set_threshold(old)
            log.clear()

    def test_slow_log_fields_default_none(self):
        from repro.obs.slowlog import SlowQuery

        entry = SlowQuery(sql="SELECT 1", elapsed_s=0.5)
        assert entry.fingerprint is None
        assert "fp=" not in entry.line
        assert "memo=" not in entry.line

    def test_render_surfaces(self):
        db = make_db(EngineConfig(feedback=True, qerror_ceiling=2.0))
        db.sql(SKEW_JOIN)
        db.sql(SKEW_JOIN)
        text = db.feedback.render()
        assert "plan memo" in text
        assert "feedback store" in text
        assert "learned overrides" in text


# ---------------------------------------------------------------------------
# config and cluster plumbing
# ---------------------------------------------------------------------------
class TestConfigAndCluster:
    def test_config_validation(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            EngineConfig(qerror_ceiling=1.0)
        with pytest.raises(EngineError):
            EngineConfig(plan_memo_entries=0)

    def test_plan_signature_covers_planning_knobs(self):
        base = EngineConfig()
        assert base.plan_signature() != \
            base.replace(optimizer="syntactic").plan_signature()
        assert base.plan_signature() != \
            base.replace(rewrites=False).plan_signature()
        assert base.plan_signature() != \
            base.replace(band_joins=False).plan_signature()
        # non-planning knobs must not churn the signature
        assert base.plan_signature() == \
            base.replace(result_cache=True).plan_signature()

    def test_workunit_outcome_carries_feedback_summary(self):
        from repro.cluster.executor import run_partitioned
        from repro.core.config import MaxBCGConfig
        from repro.core.kcorrection import build_kcorrection_table
        from repro.skyserver.generator import SkyConfig, SkySimulator
        from repro.skyserver.regions import RegionBox

        config = MaxBCGConfig(z_step=0.01)
        kcorr = build_kcorrection_table(config)
        target = RegionBox(180.0, 181.0, 0.0, 1.0)
        sky = SkySimulator(
            kcorr, config,
            SkyConfig(field_density=60.0, cluster_density=2.0, seed=3),
        ).generate(target.expand(2 * config.buffer_deg))
        result = run_partitioned(
            sky.catalog, target, kcorr, config, n_servers=2,
            compute_members=False, backend="sequential",
            engine_config=EngineConfig(feedback=True),
        )
        assert len(result.runs) == 2
        for run in result.runs:
            assert isinstance(run.feedback, dict)
            assert run.feedback  # feedback on: summary ships home
            assert run.feedback["executions"] >= 0
            assert "memo_hits" in run.feedback
            assert "memo_hit_rate" in run.feedback

    def test_workunit_feedback_empty_without_flag(self):
        from repro.cluster.executor import run_partitioned
        from repro.core.config import MaxBCGConfig
        from repro.core.kcorrection import build_kcorrection_table
        from repro.skyserver.generator import SkyConfig, SkySimulator
        from repro.skyserver.regions import RegionBox

        config = MaxBCGConfig(z_step=0.01)
        kcorr = build_kcorrection_table(config)
        target = RegionBox(180.0, 181.0, 0.0, 1.0)
        sky = SkySimulator(
            kcorr, config,
            SkyConfig(field_density=60.0, cluster_density=2.0, seed=3),
        ).generate(target.expand(2 * config.buffer_deg))
        result = run_partitioned(
            sky.catalog, target, kcorr, config, n_servers=2,
            compute_members=False, backend="sequential",
        )
        assert all(run.feedback == {} for run in result.runs)
