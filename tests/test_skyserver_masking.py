"""Survey-footprint holes: generation and pipeline robustness."""

import numpy as np
import pytest

from repro.core.pipeline import run_maxbcg
from repro.skyserver.generator import SkyConfig, SkySimulator
from repro.skyserver.regions import RegionBox

HOLE = RegionBox(180.8, 181.2, 0.8, 1.2)


@pytest.fixture(scope="module")
def masked_sky(kcorr, config):
    simulator = SkySimulator(
        kcorr, config,
        SkyConfig(field_density=600.0, cluster_density=10.0, seed=31,
                  holes=(HOLE,)),
    )
    return simulator.generate(RegionBox(179.0, 183.0, -1.0, 3.0))


class TestMaskedGeneration:
    def test_no_galaxies_in_hole(self, masked_sky):
        inside = HOLE.contains(masked_sky.catalog.ra, masked_sky.catalog.dec)
        assert int(inside.sum()) == 0

    def test_no_cluster_centers_in_hole(self, masked_sky):
        for cluster in masked_sky.clusters:
            assert not HOLE.contains(cluster.ra, cluster.dec)

    def test_density_preserved_outside(self, kcorr, config):
        region = RegionBox(179.0, 183.0, -1.0, 3.0)
        plain = SkySimulator(
            kcorr, config,
            SkyConfig(field_density=600.0, cluster_density=0.0, seed=31),
        ).generate(region)
        masked = SkySimulator(
            kcorr, config,
            SkyConfig(field_density=600.0, cluster_density=0.0, seed=31,
                      holes=(HOLE,)),
        ).generate(region)
        # rejection sampling keeps the *count* (density integrates over
        # the full box), just relocates the masked draws
        assert masked.n_galaxies == plain.n_galaxies

    def test_truth_richness_consistent(self, masked_sky):
        for cluster in masked_sky.clusters:
            assert len(cluster.member_objids) == cluster.richness

    def test_deterministic(self, kcorr, config):
        def make():
            return SkySimulator(
                kcorr, config,
                SkyConfig(field_density=300.0, seed=5, holes=(HOLE,)),
            ).generate(RegionBox(180.0, 182.0, 0.0, 2.0))

        a, b = make(), make()
        assert a.catalog.objid.tolist() == b.catalog.objid.tolist()


class TestPipelineOnMaskedSky:
    def test_pipeline_runs_and_detects(self, masked_sky, kcorr, config):
        target = RegionBox(180.0, 182.0, 0.0, 2.0)
        result = run_maxbcg(masked_sky.catalog, target, kcorr, config,
                            compute_members=False)
        assert len(result.clusters) > 0
        # nothing detected inside the hole (there is nothing there)
        assert not np.any(
            HOLE.contains(result.clusters.ra, result.clusters.dec)
        )

    def test_clusters_near_hole_edge_still_found(self, masked_sky, kcorr,
                                                 config):
        from repro.core.scoring import match_clusters

        target = RegionBox(180.0, 182.0, 0.0, 2.0)
        result = run_maxbcg(masked_sky.catalog, target, kcorr, config,
                            compute_members=False)
        truth = [c for c in masked_sky.clusters
                 if target.contains(c.ra, c.dec) and c.richness >= 8]
        report = match_clusters(result.clusters, truth, kcorr, config)
        assert report.completeness >= 0.6
