"""Hierarchical Triangular Mesh: ids, covers, exact cone search."""

import numpy as np
import pytest

from repro.errors import SpatialError
from repro.spatial.conesearch import BruteForceIndex
from repro.spatial.htm import HTMIndex, MAX_LEVEL, cone_cover, htm_id


class TestHtmId:
    def test_level0_root_ids(self):
        ra = np.array([0.0, 90.0, 180.0, 270.0, 0.0, 90.0])
        dec = np.array([45.0, 45.0, 45.0, 45.0, -45.0, -45.0])
        ids = htm_id(ra, dec, 0)
        assert np.all((ids >= 8) & (ids <= 15))
        # northern points land in N trixels (12-15), southern in S (8-11)
        assert np.all(ids[:4] >= 12)
        assert np.all(ids[4:] <= 11)

    def test_id_range_at_level(self):
        rng = np.random.default_rng(0)
        ra = rng.uniform(0, 360, 500)
        dec = np.rad2deg(np.arcsin(rng.uniform(-1, 1, 500)))
        for level in (1, 4, 8):
            ids = htm_id(ra, dec, level)
            lo = 8 << (2 * level)
            hi = 16 << (2 * level)
            assert np.all((ids >= lo) & (ids < hi))

    def test_children_nest(self):
        # a point's level-(L+1) id must be a child of its level-L id
        rng = np.random.default_rng(3)
        ra = rng.uniform(0, 360, 200)
        dec = np.rad2deg(np.arcsin(rng.uniform(-1, 1, 200)))
        for level in (0, 3, 6):
            parent = htm_id(ra, dec, level)
            child = htm_id(ra, dec, level + 1)
            assert np.all(child // 4 == parent)

    def test_deterministic(self):
        a = htm_id([123.4], [-12.3], 10)
        b = htm_id([123.4], [-12.3], 10)
        assert a == b

    def test_bad_level(self):
        with pytest.raises(SpatialError):
            htm_id([0.0], [0.0], MAX_LEVEL + 1)
        with pytest.raises(SpatialError):
            htm_id([0.0], [0.0], -1)

    def test_nearby_points_share_prefix(self):
        # two points 1 arcsec apart share all but possibly the last few
        # levels of their trixel path
        a = int(htm_id([180.0], [10.0], 6)[0])
        b = int(htm_id([180.0 + 1 / 3600.0], [10.0], 6)[0])
        assert a == b


class TestConeCover:
    def test_cover_contains_center_trixel(self):
        level = 8
        cover = cone_cover(200.0, 30.0, 0.5, level)
        center = int(htm_id([200.0], [30.0], level)[0])
        assert any(r.lo <= center <= r.hi for r in cover)

    def test_cover_ranges_sorted_disjoint(self):
        cover = cone_cover(10.0, -20.0, 1.0, 9)
        for earlier, later in zip(cover, cover[1:]):
            assert earlier.hi < later.lo

    def test_small_cone_small_cover(self):
        small = cone_cover(180.0, 0.0, 0.01, 10)
        big = cone_cover(180.0, 0.0, 2.0, 10)
        n_small = sum(r.hi - r.lo + 1 for r in small)
        n_big = sum(r.hi - r.lo + 1 for r in big)
        assert n_small < n_big

    def test_full_sphere_cover(self):
        # a 180-deg cone covers everything: all 8 roots collapse to one range
        cover = cone_cover(0.0, 0.0, 180.0, 4)
        total = sum(r.hi - r.lo + 1 for r in cover)
        assert total == 8 * 4**4


class TestHTMIndex:
    def test_matches_brute_force(self, scatter_points, rng):
        ra, dec = scatter_points
        index = HTMIndex(ra, dec, level=9)
        brute = BruteForceIndex(ra, dec)
        for _ in range(20):
            q = int(rng.integers(0, len(ra)))
            radius = float(rng.uniform(0.05, 1.2))
            got, got_d = index.query(ra[q], dec[q], radius)
            want, want_d = brute.query(ra[q], dec[q], radius)
            assert set(got.tolist()) == set(want.tolist())
            assert np.allclose(np.sort(got_d), np.sort(want_d))

    def test_different_levels_same_answers(self, scatter_points):
        ra, dec = scatter_points
        shallow = HTMIndex(ra, dec, level=6)
        deep = HTMIndex(ra, dec, level=12)
        a, _ = shallow.query(181.0, 1.0, 0.6)
        b, _ = deep.query(181.0, 1.0, 0.6)
        assert set(a.tolist()) == set(b.tolist())

    def test_empty_index(self):
        index = HTMIndex(np.empty(0), np.empty(0))
        hits, dist = index.query(0.0, 0.0, 1.0)
        assert hits.size == 0 and dist.size == 0

    def test_trixels_probed_grows_with_radius(self, scatter_points):
        ra, dec = scatter_points
        index = HTMIndex(ra, dec, level=10)
        assert index.trixels_probed(181.0, 1.0, 1.0) > index.trixels_probed(
            181.0, 1.0, 0.1
        )

    def test_mismatched_inputs(self):
        with pytest.raises(SpatialError):
            HTMIndex(np.zeros(2), np.zeros(3))
