"""Join operators."""

import numpy as np
import pytest

from repro.engine.expressions import BinaryOp, col, lit
from repro.engine.join import CrossJoin, HashJoin, NestedLoopJoin, merge_batches
from repro.engine.operators import Materialized
from repro.errors import SqlPlanError


def left_side():
    return Materialized({"l.id": np.array([1, 2, 3]), "l.v": np.array([10.0, 20.0, 30.0])})


def right_side():
    return Materialized({"r.id": np.array([2, 3, 3, 4]), "r.w": np.array([200.0, 300.0, 301.0, 400.0])})


class TestHashJoin:
    def test_inner_matches(self):
        plan = HashJoin(left_side(), right_side(), col("id", "l"), col("id", "r"))
        batch = plan.execute()
        pairs = sorted(zip(batch["l.id"].tolist(), batch["r.w"].tolist()))
        assert pairs == [(2, 200.0), (3, 300.0), (3, 301.0)]

    def test_no_matches(self):
        plan = HashJoin(
            left_side(), right_side(), col("id", "l"),
            BinaryOp("+", col("id", "r"), lit(100)),
        )
        assert plan.execute()["l.id"].size == 0

    def test_residual_applied(self):
        plan = HashJoin(
            left_side(), right_side(), col("id", "l"), col("id", "r"),
            residual=BinaryOp(">", col("w", "r"), lit(300.0)),
        )
        batch = plan.execute()
        assert batch["r.w"].tolist() == [301.0]

    def test_duplicate_output_column_rejected(self):
        left = Materialized({"x.id": np.array([1])})
        right = Materialized({"x.id": np.array([1])})
        with pytest.raises(SqlPlanError):
            HashJoin(left, right, col("id", "x"), col("id", "x")).execute()


class TestNestedLoopJoin:
    def test_matches_hash_join(self):
        nl = NestedLoopJoin(
            left_side(), right_side(),
            BinaryOp("=", col("id", "l"), col("id", "r")),
        ).execute()
        hj = HashJoin(
            left_side(), right_side(), col("id", "l"), col("id", "r")
        ).execute()
        assert sorted(zip(nl["l.id"].tolist(), nl["r.w"].tolist())) == sorted(
            zip(hj["l.id"].tolist(), hj["r.w"].tolist())
        )

    def test_inequality_join(self):
        plan = NestedLoopJoin(
            left_side(), right_side(),
            BinaryOp("<", col("id", "l"), col("id", "r")),
        )
        batch = plan.execute()
        # l=1 beats {2,3,3,4}; l=2 beats {3,3,4}; l=3 beats {4}
        assert len(batch["l.id"]) == 4 + 3 + 1

    def test_blockwise_consistency(self):
        big_left = Materialized({"l.id": np.arange(100)})
        small = NestedLoopJoin(
            big_left, right_side(),
            BinaryOp("=", col("id", "l"), col("id", "r")),
            block_rows=7,
        ).execute()
        assert sorted(small["l.id"].tolist()) == [2, 3, 3, 4]

    def test_empty_side(self):
        empty = Materialized({"l.id": np.empty(0, dtype=np.int64)})
        batch = NestedLoopJoin(empty, right_side(), None).execute()
        assert batch["l.id"].size == 0 and batch["r.id"].size == 0


class TestCrossJoin:
    def test_cardinality(self):
        batch = CrossJoin(left_side(), right_side()).execute()
        assert batch["l.id"].size == 3 * 4

    def test_paper_shape_galaxy_cross_kcorr(self):
        # the Filter step's CROSS JOIN with a chi^2 cut
        galaxies = Materialized({"g.i": np.array([17.0, 25.0])})
        kcorr = Materialized({"k.i": np.array([17.1, 18.0, 19.0])})
        joined = CrossJoin(galaxies, kcorr).execute()
        chisq = (joined["g.i"] - joined["k.i"]) ** 2 / 0.57**2
        # bright galaxy passes at k.i = 17.1 and 18.0; the faint one never
        assert int((chisq < 7).sum()) == 2


class TestMergeBatches:
    def test_merge(self):
        left = {"a": np.array([1, 2])}
        right = {"b": np.array([10, 20])}
        merged = merge_batches(left, np.array([0, 0, 1]), right, np.array([1, 0, 1]))
        assert merged["a"].tolist() == [1, 1, 2]
        assert merged["b"].tolist() == [20, 10, 20]
