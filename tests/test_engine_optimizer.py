"""The cost-based optimizer subsystem: statistics, estimation, search.

Covers the four layers of ``repro.engine.optimizer`` plus their SQL
surface:

* equi-depth histogram construction and CDF interpolation;
* ANALYZE statistics (NDV, min/max, null fractions) and their
  persistence next to the table files;
* selectivity math — equality, ranges, AND/OR/NOT composition, the
  System-R defaults when statistics are missing;
* join-order search — the DP is checked *exactly* against brute-force
  enumeration of every left-deep permutation on 3–5 relation chains
  and stars;
* the est_rows annotation pass, q-error accounting and the
  EXPLAIN ANALYZE plan-quality report;
* the pinned "OR disables the index" fallback (regression: the planner
  must fall back to a scan *and say why* in the plan).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.optimizer.cardinality import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    CardinalityEstimator,
    RelationProfile,
    profile_for_table,
)
from repro.engine.optimizer.cost import DEFAULT_COST_MODEL, CostModel
from repro.engine.optimizer.joinorder import (
    DP_LIMIT,
    JoinPred,
    JoinRel,
    _applicable,
    _step,
    order_relations,
)
from repro.engine.optimizer.quality import (
    NodeQuality,
    PlanQualityReport,
    q_error,
)
from repro.engine.optimizer.statistics import (
    Histogram,
    build_table_stats,
    stats_from_json,
    stats_to_json,
)
from repro.engine.sql.parser import parse
from repro.engine.storage import load_table, save_table
from repro.errors import EngineError, SqlPlanError


# ---------------------------------------------------------------------------
# statistics: histograms and ANALYZE
# ---------------------------------------------------------------------------


def _db_with_stats() -> Database:
    db = Database("stats")
    rng = np.random.default_rng(7)
    n = 1000
    db.create_table("t", {
        "id": np.arange(n, dtype=np.int64),
        "u": np.arange(n, dtype=np.float64),        # uniform 0..999
        "k": (np.arange(n) % 10).astype(np.int64),  # 10 distinct values
        "noisy": np.where(np.arange(n) % 4 == 0, np.nan,
                          rng.uniform(0, 1, n)),    # 25% NULL
    }, primary_key="id")
    return db


class TestHistogram:
    def test_uniform_fractions(self):
        db = _db_with_stats()
        stats = build_table_stats(db.table("t"))
        hist = stats.column("u").histogram
        assert hist is not None
        assert hist.total == 1000
        # uniform data: fraction of a half/quarter range is ~1/2, ~1/4
        assert stats.column("u").ndv == 1000
        assert abs(hist.fraction_between(0, 499) - 0.5) < 0.02
        assert abs(hist.fraction_between(250, 499) - 0.25) < 0.02

    def test_unbounded_ends_and_clamping(self):
        hist = Histogram(bounds=(0.0, 5.0, 10.0), depths=(50, 50))
        assert hist.fraction_between(None, None) == 1.0
        assert hist.fraction_between(None, 5.0) == 0.5
        assert hist.fraction_between(5.0, None) == 0.5
        assert hist.fraction_between(-100, -50) == 0.0
        assert hist.fraction_between(20, 30) == 0.0
        assert hist.fraction_between(-100, 100) == 1.0

    def test_skew_gets_more_buckets_where_the_data_is(self):
        # 90% of rows live in [1, 10]; equi-depth must see that density
        dense = np.linspace(1.0, 10.0, 900)
        sparse = np.linspace(10.0, 1000.0, 100)
        db = Database("skew")
        db.create_table("s", {"x": np.concatenate([dense, sparse])})
        hist = build_table_stats(db.table("s")).column("x").histogram
        assert abs(hist.fraction_between(None, 10.0) - 0.9) < 0.05

    def test_constant_column_has_no_histogram(self):
        db = Database("const")
        db.create_table("c", {"x": np.zeros(10)})
        col = build_table_stats(db.table("c")).column("x")
        assert col.histogram is None
        assert col.ndv == 1
        assert col.min_value == col.max_value == 0.0


class TestColumnStats:
    def test_ndv_and_minmax(self):
        db = _db_with_stats()
        stats = build_table_stats(db.table("t"))
        k = stats.column("k")
        assert k.ndv == 10
        assert (k.min_value, k.max_value) == (0.0, 9.0)
        assert k.null_fraction == 0.0

    def test_null_fraction_counts_nans(self):
        db = _db_with_stats()
        noisy = build_table_stats(db.table("t")).column("noisy")
        assert abs(noisy.null_fraction - 0.25) < 1e-9
        # min/max/histogram built over present values only
        assert 0.0 <= noisy.min_value <= noisy.max_value <= 1.0
        assert noisy.histogram.total == 750

    def test_string_column_minmax_no_histogram(self):
        db = Database("str")
        db.create_table("s", {
            "name": np.array(["m31", "m13", "ngc1", None], dtype=object),
        })
        col = build_table_stats(db.table("s")).column("name")
        assert col.histogram is None
        assert col.ndv == 3
        assert (col.min_value, col.max_value) == ("m13", "ngc1")
        assert col.null_fraction == 0.25


class TestAnalyzeStatement:
    def test_analyze_all_tables(self):
        db = _db_with_stats()
        assert db.table("t").stats is None
        result = db.sql("ANALYZE")
        assert db.table("t").stats is not None
        assert db.table("t").stats.row_count == 1000
        rows = result.rows()
        assert rows == [{"table_name": "t", "n_rows": 1000, "n_columns": 4}]

    def test_analyze_one_table(self):
        db = _db_with_stats()
        db.create_table("other", {"x": np.arange(5)})
        db.sql("ANALYZE t")
        assert db.table("t").stats is not None
        assert db.table("other").stats is None

    def test_parse_shapes(self):
        assert parse("ANALYZE").table is None
        assert parse("analyze galaxy").table == "galaxy"

    def test_stats_are_as_of_analyze_time(self):
        """DML after ANALYZE leaves the statistics untouched."""
        db = _db_with_stats()
        db.sql("ANALYZE t")
        before = db.table("t").stats.row_count
        db.sql("DELETE FROM t WHERE id < 500")
        assert db.table("t").stats.row_count == before
        db.sql("ANALYZE t")
        assert db.table("t").stats.row_count == 500


class TestStatsPersistence:
    def test_roundtrip_through_json(self):
        db = _db_with_stats()
        stats = build_table_stats(db.table("t"))
        restored = stats_from_json(stats_to_json(stats))
        assert restored == stats

    def test_saved_table_keeps_stats(self, tmp_path):
        db = _db_with_stats()
        db.sql("ANALYZE")
        save_table(db.table("t"), tmp_path)
        assert (tmp_path / "t.stats").exists()
        table = load_table(Database("dst"), tmp_path, "t")
        assert table.stats == db.table("t").stats

    def test_resave_without_stats_removes_stale_file(self, tmp_path):
        db = _db_with_stats()
        db.sql("ANALYZE")
        save_table(db.table("t"), tmp_path)
        db.table("t").stats = None
        save_table(db.table("t"), tmp_path)
        assert not (tmp_path / "t.stats").exists()


# ---------------------------------------------------------------------------
# selectivity math
# ---------------------------------------------------------------------------


def _estimator() -> CardinalityEstimator:
    db = _db_with_stats()
    db.sql("ANALYZE")
    return CardinalityEstimator([profile_for_table(db.table("t"), "t")])


def _sel(estimator: CardinalityEstimator, predicate: str) -> float:
    stmt = parse(f"SELECT id FROM t WHERE {predicate}")
    return estimator.selectivity(stmt.where)


class TestSelectivity:
    def test_equality_is_one_over_ndv(self):
        est = _estimator()
        assert _sel(est, "k = 3") == pytest.approx(0.1)
        assert _sel(est, "u = 17") == pytest.approx(1 / 1000)

    def test_equality_outside_minmax_is_zero(self):
        est = _estimator()
        assert _sel(est, "k = 99") == 0.0
        assert _sel(est, "k = -1") == 0.0

    def test_range_uses_histogram(self):
        est = _estimator()
        assert _sel(est, "u < 500") == pytest.approx(0.5, abs=0.02)
        assert _sel(est, "u BETWEEN 100 AND 299") == pytest.approx(0.2, abs=0.02)
        assert _sel(est, "u > 900") == pytest.approx(0.1, abs=0.02)

    def test_flipped_comparison_normalizes(self):
        est = _estimator()
        assert _sel(est, "500 > u") == pytest.approx(_sel(est, "u < 500"))

    def test_and_is_product(self):
        est = _estimator()
        a, b = _sel(est, "k = 3"), _sel(est, "u < 500")
        assert _sel(est, "k = 3 AND u < 500") == pytest.approx(a * b)

    def test_or_is_inclusion_exclusion(self):
        est = _estimator()
        a, b = _sel(est, "k = 3"), _sel(est, "k = 4")
        assert _sel(est, "k = 3 OR k = 4") == pytest.approx(a + b - a * b)

    def test_not_complements(self):
        est = _estimator()
        assert _sel(est, "NOT k = 3") == pytest.approx(0.9)

    def test_in_list_scales_with_options(self):
        est = _estimator()
        assert _sel(est, "k IN (1, 2, 3)") == pytest.approx(0.3)

    def test_defaults_without_stats(self):
        # a profile with no statistics falls back to System-R constants
        est = CardinalityEstimator([
            RelationProfile(alias="t", table_rows=0.0, columns={"id", "k", "u"}),
        ])
        assert _sel(est, "k = 3") == DEFAULT_EQ_SELECTIVITY
        assert _sel(est, "u < 500") == DEFAULT_RANGE_SELECTIVITY

    def test_primary_key_counts_as_fully_distinct(self):
        est = CardinalityEstimator([
            RelationProfile(alias="t", table_rows=1e6, columns={"id"},
                            primary_key="id"),
        ])
        assert _sel(est, "id = 42") == pytest.approx(1e-6)

    def test_equi_join_containment(self):
        db = _db_with_stats()
        db.create_table("d", {"k": (np.arange(40) % 4).astype(np.int64)})
        db.sql("ANALYZE")
        est = CardinalityEstimator([
            profile_for_table(db.table("t"), "t"),
            profile_for_table(db.table("d"), "d"),
        ])
        stmt = parse("SELECT 1 FROM t JOIN d ON t.k = d.k")
        on = stmt.joins[0].condition
        # NDV(t.k)=10, NDV(d.k)=4 -> containment takes the max
        assert est.selectivity(on) == pytest.approx(1 / 10)

    def test_selectivity_is_clamped(self):
        est = _estimator()
        assert 0.0 <= _sel(est, "u > -1e9 OR u < 1e9") <= 1.0


# ---------------------------------------------------------------------------
# join-order search
# ---------------------------------------------------------------------------


def _price_order(order, rels, preds, model=DEFAULT_COST_MODEL) -> float:
    """Total cost of one left-deep permutation (the DP's objective)."""
    first = rels[order[0]]
    cost, rows = first.cost, first.rows
    bound = frozenset([first.alias])
    for idx in order[1:]:
        rel = rels[idx]
        applicable = _applicable(preds, bound, rel.alias)
        rows, cost = _step(rows, cost, rel, applicable, model)
        bound = bound | {rel.alias}
    return cost


def _chain(n: int) -> tuple[list[JoinRel], list[JoinPred]]:
    """r0 - r1 - ... - r_{n-1} with shrinking equi-joins."""
    rels = [
        JoinRel(alias=f"r{i}", rows=10.0 * (i + 1) ** 2, cost=10.0 * (i + 1) ** 2)
        for i in range(n)
    ]
    preds = [
        JoinPred(aliases=frozenset({f"r{i}", f"r{i + 1}"}),
                 selectivity=1.0 / (20.0 * (i + 1)), equi=True)
        for i in range(n - 1)
    ]
    return rels, preds


def _star(n_dims: int) -> tuple[list[JoinRel], list[JoinPred]]:
    """One fact joined to ``n_dims`` dimensions of varying selectivity."""
    rels = [JoinRel(alias="fact", rows=10_000.0, cost=10_000.0)]
    preds = []
    for i in range(n_dims):
        rels.append(JoinRel(alias=f"d{i}", rows=5.0 * (i + 1), cost=50.0))
        preds.append(JoinPred(aliases=frozenset({"fact", f"d{i}"}),
                              selectivity=1.0 / (100.0 * (i + 1)), equi=True))
    return rels, preds


class TestJoinOrderDP:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_chain_matches_bruteforce_optimum(self, n):
        rels, preds = _chain(n)
        order = order_relations(rels, preds)
        assert sorted(order) == list(range(n))
        best = min(
            _price_order(list(p), rels, preds)
            for p in itertools.permutations(range(n))
        )
        assert _price_order(order, rels, preds) == pytest.approx(best)

    @pytest.mark.parametrize("n_dims", [2, 3, 4])
    def test_star_matches_bruteforce_optimum(self, n_dims):
        rels, preds = _star(n_dims)
        order = order_relations(rels, preds)
        n = n_dims + 1
        assert sorted(order) == list(range(n))
        best = min(
            _price_order(list(p), rels, preds)
            for p in itertools.permutations(range(n))
        )
        assert _price_order(order, rels, preds) == pytest.approx(best)

    def test_chain_prefix_stays_connected(self):
        """The chosen order never pays a cross product on a chain."""
        rels, preds = _chain(5)
        order = order_relations(rels, preds)
        bound = {rels[order[0]].alias}
        for idx in order[1:]:
            assert _applicable(preds, frozenset(bound), rels[idx].alias), (
                f"cross product at {rels[idx].alias} in {order}"
            )
            bound.add(rels[idx].alias)

    def test_single_and_empty_inputs(self):
        assert order_relations([], []) == []
        assert order_relations([JoinRel("a", 10.0, 10.0)], []) == [0]

    def test_deterministic(self):
        rels, preds = _star(4)
        assert order_relations(rels, preds) == order_relations(rels, preds)

    def test_greedy_beyond_dp_limit(self):
        rels, preds = _chain(DP_LIMIT + 2)
        order = order_relations(rels, preds)
        assert sorted(order) == list(range(DP_LIMIT + 2))
        # greedy starts from the smallest relation (r0 here)
        assert rels[order[0]].alias == "r0"

    def test_cost_model_weights_feed_through(self):
        """A model that hates nested loops avoids the cross product."""
        rels = [JoinRel("a", 100.0, 100.0), JoinRel("b", 100.0, 100.0),
                JoinRel("c", 2.0, 2.0)]
        preds = [JoinPred(frozenset({"a", "b"}), 0.01, equi=True),
                 JoinPred(frozenset({"b", "c"}), 0.5, equi=True)]
        model = CostModel(loop_pair=100.0)
        order = order_relations(rels, preds, model=model)
        # c alone has no predicate against a: starting (c, a) would be a
        # cross product, which the punitive loop_pair prices out
        first_two = {rels[order[0]].alias, rels[order[1]].alias}
        assert first_two in ({"a", "b"}, {"b", "c"})


# ---------------------------------------------------------------------------
# q-error and the plan-quality report
# ---------------------------------------------------------------------------


class TestQError:
    def test_symmetric(self):
        assert q_error(10.0, 100) == pytest.approx(10.0)
        assert q_error(100.0, 10) == pytest.approx(10.0)
        assert q_error(50.0, 50) == 1.0

    def test_floored_at_one_row(self):
        assert q_error(0.001, 0) == 1.0
        assert q_error(0.5, 1) == 1.0

    def test_none_without_estimate(self):
        assert q_error(None, 42) is None

    def test_report_ranks_worst_offenders(self):
        report = PlanQualityReport(nodes=(
            NodeQuality("SeqScan(a)", 1, est_rows=100.0, actual_rows=100),
            NodeQuality("HashJoin", 0, est_rows=10.0, actual_rows=1000),
            NodeQuality("Filter", 2, est_rows=30.0, actual_rows=10),
        ))
        assert report.max_q_error == pytest.approx(100.0)
        assert [n.description for n in report.worst(2)] == ["HashJoin", "Filter"]
        rendered = report.render()
        assert rendered.startswith("plan quality: max q-error 100.00")
        assert "HashJoin: est=10 actual=1000 q=100.00" in rendered

    def test_empty_report(self):
        report = PlanQualityReport(nodes=())
        assert report.max_q_error == 1.0
        assert report.render() == "plan quality: no estimates recorded"


# ---------------------------------------------------------------------------
# the SQL surface: est_rows, EXPLAIN ANALYZE, planner modes
# ---------------------------------------------------------------------------


def _join_db(optimizer: str = "cost") -> Database:
    db = Database("planner", optimizer=optimizer)
    rng = np.random.default_rng(3)
    db.create_table("big", {
        "id": np.arange(2000, dtype=np.int64),
        "d": rng.integers(0, 50, 2000),
        "v": rng.uniform(0, 1, 2000),
    }, primary_key="id")
    db.create_table("dim", {
        "id": np.arange(50, dtype=np.int64),
        "cat": (np.arange(50) % 5).astype(np.int64),
    }, primary_key="id")
    db.sql("ANALYZE")
    return db


class TestEstRowsAndQuality:
    def test_explain_carries_estimates_in_both_modes(self):
        for mode in ("cost", "syntactic"):
            db = _join_db(optimizer=mode)
            text = db.explain("SELECT id FROM big WHERE v < 0.25")
            assert "[est=" in text

    def test_scan_estimate_is_row_count(self):
        db = _join_db()
        report = db.explain_analyze("SELECT id FROM big")
        scan = report.node("SeqScan(big")
        assert scan.est_rows == 2000
        assert scan.q_error == 1.0

    def test_filter_estimate_tracks_histogram(self):
        db = _join_db()
        report = db.explain_analyze("SELECT id FROM big WHERE v < 0.25")
        node = report.node("Filter")
        assert node.q_error is not None
        assert node.q_error < 1.2  # histogram knows uniform [0,1)

    def test_quality_report_from_explain_analyze(self):
        db = _join_db()
        report = db.explain_analyze(
            "SELECT d.cat AS cat, COUNT(*) AS n FROM big b "
            "JOIN dim d ON b.d = d.id GROUP BY d.cat"
        )
        quality = report.quality_report()
        assert quality.nodes
        assert report.max_q_error == quality.max_q_error >= 1.0
        assert "plan quality: max q-error" in quality.render()

    def test_cost_mode_answers_match_syntactic(self):
        sql = ("SELECT b.id AS id, d.cat AS cat FROM big b "
               "JOIN dim d ON b.d = d.id WHERE d.cat = 2")
        rows_cost = sorted(
            tuple(sorted(r.items())) for r in _join_db("cost").sql(sql).rows()
        )
        rows_syn = sorted(
            tuple(sorted(r.items()))
            for r in _join_db("syntactic").sql(sql).rows()
        )
        assert rows_cost == rows_syn and rows_cost

    def test_unknown_mode_rejected(self):
        with pytest.raises(EngineError):
            Database("bad", optimizer="telepathic")
        db = _join_db()
        with pytest.raises(SqlPlanError):
            db.explain("SELECT id FROM big", optimizer="telepathic")


class TestOrDisablesIndexRegression:
    """Pinned behavior: OR on the index's leading key falls back to a
    full scan — correctly, and with the reason in the plan."""

    @staticmethod
    def _indexed_db() -> Database:
        db = Database("orx")
        n = 500
        db.create_table("pts", {
            "id": np.arange(n, dtype=np.int64),
            "zid": (np.arange(n) // 10).astype(np.int64),
            "ra": np.linspace(0, 360, n),
        }, primary_key="id")
        db.create_clustered_index("pts", "zid", "ra")
        db.sql("ANALYZE")
        return db

    def test_range_predicate_uses_the_index(self):
        db = self._indexed_db()
        plan = db.explain("SELECT id FROM pts WHERE zid BETWEEN 10 AND 12")
        assert "IndexRangeScan(pts.zid" in plan

    def test_or_falls_back_to_scan_with_reason(self):
        db = self._indexed_db()
        plan = db.explain("SELECT id FROM pts WHERE zid = 10 OR zid = 12")
        assert "IndexRangeScan" not in plan
        assert "SeqScan(pts AS pts) [index on zid unused: OR predicate]" in plan

    def test_or_fallback_returns_correct_rows(self):
        db = self._indexed_db()
        rows = db.sql(
            "SELECT id FROM pts WHERE zid = 10 OR zid = 12"
        ).rows()
        got = sorted(r["id"] for r in rows)
        assert got == list(range(100, 110)) + list(range(120, 130))

    def test_unrelated_or_not_blamed(self):
        """An OR that never touches the leading key gives no reason."""
        db = self._indexed_db()
        plan = db.explain("SELECT id FROM pts WHERE ra < 10 OR ra > 350")
        assert "unused" not in plan
