"""MyDB: personal databases with quotas."""

import numpy as np
import pytest

from repro.casjobs.mydb import MyDB
from repro.errors import CasJobsError


@pytest.fixture()
def mydb():
    return MyDB("alice", quota_rows=100)


class TestUploadDownload:
    def test_roundtrip(self, mydb):
        mydb.upload("stars", {"objid": np.array([1, 2]), "mag": np.array([1.5, 2.5])})
        back = mydb.download("stars")
        assert back["objid"].tolist() == [1, 2]

    def test_quota_enforced(self, mydb):
        with pytest.raises(CasJobsError):
            mydb.upload("big", {"x": np.arange(101)})

    def test_quota_cumulative(self, mydb):
        mydb.upload("a", {"x": np.arange(60)})
        with pytest.raises(CasJobsError):
            mydb.upload("b", {"x": np.arange(60)})

    def test_drop_frees_quota(self, mydb):
        mydb.upload("a", {"x": np.arange(60)})
        mydb.drop("a")
        mydb.upload("b", {"x": np.arange(60)})  # fits again

    def test_store_result(self, mydb):
        mydb.upload("src", {"x": np.arange(10)})
        result = mydb.database.sql("SELECT x FROM src WHERE x > 5")
        mydb.store_result("filtered", result)
        assert mydb.database.table("filtered").row_count == 4

    def test_store_result_replaces(self, mydb):
        mydb.upload("src", {"x": np.arange(10)})
        result = mydb.database.sql("SELECT x FROM src")
        mydb.store_result("out", result)
        mydb.store_result("out", result)  # no duplicate-table error
        assert mydb.database.table("out").row_count == 10


class TestInfo:
    def test_info(self, mydb):
        mydb.upload("t", {"x": np.arange(5)})
        info = mydb.info()
        assert info.owner == "alice"
        assert info.tables == ["t"]
        assert info.rows_used == 5
        assert info.quota_rows == 100

    def test_validation(self):
        with pytest.raises(CasJobsError):
            MyDB("")
        with pytest.raises(CasJobsError):
            MyDB("bob", quota_rows=0)

    def test_sql_ddl_inside_mydb(self, mydb):
        # "CasJobs allows creating new tables, indexes, and stored procedures"
        mydb.database.sql("CREATE TABLE notes (objid bigint, score float)")
        mydb.database.sql("INSERT INTO notes VALUES (1, 0.5)")
        assert mydb.rows_used() == 1
