"""Grouped and scalar aggregation."""

import numpy as np
import pytest

from repro.engine.aggregate import Aggregate, AggregateSpec
from repro.engine.expressions import BinaryOp, col, lit
from repro.engine.operators import Materialized
from repro.errors import SqlPlanError


def source():
    return Materialized({
        "t.zid": np.array([1, 1, 2, 2, 2, 3]),
        "t.n": np.array([5.0, 7.0, 1.0, 2.0, 3.0, 9.0]),
    })


class TestScalarAggregates:
    def test_count_star(self):
        plan = Aggregate(source(), [], [AggregateSpec("count", None, "n")])
        assert plan.execute()["n"].tolist() == [6]

    def test_sum_min_max_avg(self):
        plan = Aggregate(source(), [], [
            AggregateSpec("sum", col("n", "t"), "s"),
            AggregateSpec("min", col("n", "t"), "lo"),
            AggregateSpec("max", col("n", "t"), "hi"),
            AggregateSpec("avg", col("n", "t"), "mean"),
        ])
        row = plan.execute()
        assert row["s"][0] == 27.0
        assert row["lo"][0] == 1.0
        assert row["hi"][0] == 9.0
        assert row["mean"][0] == pytest.approx(4.5)

    def test_empty_input_null_semantics(self):
        empty = Materialized({"t.n": np.empty(0)})
        plan = Aggregate(empty, [], [
            AggregateSpec("count", None, "c"),
            AggregateSpec("max", col("n", "t"), "m"),
        ])
        row = plan.execute()
        assert row["c"][0] == 0
        assert np.isnan(row["m"][0])

    def test_aggregate_of_expression(self):
        plan = Aggregate(source(), [], [
            AggregateSpec("max", BinaryOp("*", col("n", "t"), lit(2.0)), "m"),
        ])
        assert plan.execute()["m"][0] == 18.0


class TestGroupedAggregates:
    def test_count_per_group(self):
        plan = Aggregate(
            source(), [("zid", col("zid", "t"))],
            [AggregateSpec("count", None, "c")],
        )
        batch = plan.execute()
        got = dict(zip(batch["zid"].tolist(), batch["c"].tolist()))
        assert got == {1: 2, 2: 3, 3: 1}

    def test_multiple_aggregates_per_group(self):
        plan = Aggregate(
            source(), [("zid", col("zid", "t"))],
            [
                AggregateSpec("sum", col("n", "t"), "s"),
                AggregateSpec("max", col("n", "t"), "m"),
            ],
        )
        batch = plan.execute()
        by_zone = dict(zip(batch["zid"].tolist(),
                           zip(batch["s"].tolist(), batch["m"].tolist())))
        assert by_zone[2] == (6.0, 3.0)

    def test_group_by_two_keys(self):
        src = Materialized({
            "t.a": np.array([1, 1, 2]),
            "t.b": np.array([1, 1, 1]),
            "t.n": np.array([1.0, 2.0, 3.0]),
        })
        plan = Aggregate(
            src, [("a", col("a", "t")), ("b", col("b", "t"))],
            [AggregateSpec("count", None, "c")],
        )
        batch = plan.execute()
        assert sorted(batch["c"].tolist()) == [1, 2]

    def test_empty_grouped_input(self):
        empty = Materialized({"t.zid": np.empty(0, np.int64), "t.n": np.empty(0)})
        plan = Aggregate(
            empty, [("zid", col("zid", "t"))],
            [AggregateSpec("count", None, "c")],
        )
        batch = plan.execute()
        assert batch["c"].size == 0

    def test_count_dtype_integer(self):
        plan = Aggregate(
            source(), [("zid", col("zid", "t"))],
            [AggregateSpec("count", None, "c")],
        )
        assert plan.execute()["c"].dtype == np.int64


class TestAggregateSpecValidation:
    def test_unknown_function(self):
        with pytest.raises(SqlPlanError):
            AggregateSpec("median", col("n"), "m")

    def test_star_only_for_count(self):
        with pytest.raises(SqlPlanError):
            AggregateSpec("sum", None, "s")
