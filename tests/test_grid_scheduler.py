"""The Condor-like scheduler simulation."""

import pytest

from repro.grid.jobs import Job, JobState, field_job
from repro.grid.resources import ClusterSpec, Node, tam_cluster
from repro.grid.scheduler import CondorScheduler
from repro.grid.transfer import TransferModel


def free_transfer() -> TransferModel:
    return TransferModel(bandwidth_bytes_per_s=1e12, latency_s=0.0,
                         per_file_overhead_s=0.0)


def uniform_jobs(n, cpu_seconds=100.0, ram=0.0):
    return [
        Job(job_id=k, name=f"j{k}", cpu_seconds=cpu_seconds, ram_bytes=ram)
        for k in range(n)
    ]


class TestScheduling:
    def test_single_node_serializes(self):
        cluster = ClusterSpec("one", (Node("n", 2600.0, n_cpus=1),))
        scheduler = CondorScheduler(cluster, free_transfer())
        result = scheduler.run(uniform_jobs(4))
        assert result.makespan_s == pytest.approx(400.0)
        assert result.completed == 4

    def test_parallel_slots(self):
        # TAM: 10 slots -> 10 equal jobs in one wave
        scheduler = CondorScheduler(
            tam_cluster(), free_transfer(), reference_cpu_mhz=600.0
        )
        result = scheduler.run(uniform_jobs(10, cpu_seconds=1000.0))
        assert result.makespan_s == pytest.approx(1000.0)

    def test_two_waves(self):
        scheduler = CondorScheduler(
            tam_cluster(), free_transfer(), reference_cpu_mhz=600.0
        )
        result = scheduler.run(uniform_jobs(11, cpu_seconds=1000.0))
        assert result.makespan_s == pytest.approx(2000.0)

    def test_cpu_speed_scaling(self):
        # a 600 MHz node takes ~4.33x the reference-2600 time
        cluster = ClusterSpec("slow", (Node("n", 600.0),))
        scheduler = CondorScheduler(cluster, free_transfer(),
                                    reference_cpu_mhz=2600.0)
        result = scheduler.run(uniform_jobs(1, cpu_seconds=100.0))
        assert result.makespan_s == pytest.approx(100.0 * 2600.0 / 600.0)

    def test_transfer_time_added(self):
        cluster = ClusterSpec("one", (Node("n", 2600.0),))
        transfer = TransferModel(bandwidth_bytes_per_s=1e6, latency_s=0.0,
                                 per_file_overhead_s=1.0)
        scheduler = CondorScheduler(cluster, transfer)
        job = field_job(0, "f", cpu_seconds=10.0, target_bytes=1e6,
                        buffer_bytes=1e6, candidate_bytes=0.0)
        result = scheduler.run([job])
        # 2 input files: 2s overhead + 2s bandwidth, + 10s compute
        assert result.makespan_s == pytest.approx(14.0)

    def test_serialized_archive_link(self):
        # with one shared archive, transfers queue even if slots are free
        cluster = ClusterSpec(
            "pair", (Node("a", 2600.0), Node("b", 2600.0))
        )
        transfer = TransferModel(bandwidth_bytes_per_s=1e6, latency_s=0.0,
                                 per_file_overhead_s=0.0)
        jobs = [
            Job(job_id=k, name=f"j{k}", cpu_seconds=0.0, input_bytes=10e6,
                input_files=1)
            for k in range(2)
        ]
        parallel = CondorScheduler(cluster, transfer).run(
            [Job(**{**j.__dict__}) for j in jobs]
        )
        serialized = CondorScheduler(
            cluster, transfer, serialize_transfers=True
        ).run(jobs)
        assert serialized.makespan_s > parallel.makespan_s


class TestRamMatchmaking:
    def test_oversized_job_unschedulable(self):
        # Figure 1: the ideal buffer file does not fit the TAM nodes
        scheduler = CondorScheduler(tam_cluster(), free_transfer())
        too_big = uniform_jobs(1, ram=2 * 1024**3)  # 2 GB vs 1 GB nodes
        result = scheduler.run(too_big)
        assert result.completed == 0
        assert len(result.unschedulable) == 1
        assert result.unschedulable[0].state is JobState.FAILED

    def test_mixed_feasibility(self):
        cluster = ClusterSpec(
            "mixed",
            (Node("small", 2600.0, ram_mb=512.0),
             Node("big", 2600.0, ram_mb=4096.0)),
        )
        scheduler = CondorScheduler(cluster, free_transfer())
        jobs = uniform_jobs(3, cpu_seconds=10.0, ram=1024**3)  # 1 GB
        result = scheduler.run(jobs)
        assert result.completed == 3
        # all must have run on the big node
        assert all(j.node.startswith("big") for j in result.jobs)


class TestReporting:
    def test_utilization(self):
        cluster = ClusterSpec("one", (Node("n", 2600.0),))
        scheduler = CondorScheduler(cluster, free_transfer())
        result = scheduler.run(uniform_jobs(2, cpu_seconds=50.0))
        util = result.node_utilization()
        assert util["n/0"] == pytest.approx(1.0)

    def test_totals(self):
        cluster = ClusterSpec("one", (Node("n", 2600.0),))
        result = CondorScheduler(cluster, free_transfer()).run(
            uniform_jobs(3, cpu_seconds=10.0)
        )
        assert result.compute_s_total == pytest.approx(30.0)
        assert result.transfer_s_total == pytest.approx(0.0)
