"""End-to-end SQL execution against a Database."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.errors import (
    SqlPlanError,
    SqlSyntaxError,
    TableNotFoundError,
)


@pytest.fixture()
def db() -> Database:
    d = Database("test")
    d.sql("CREATE TABLE g (objid bigint PRIMARY KEY, ra float, i real)")
    d.sql(
        "INSERT INTO g VALUES (1, 180.0, 17.0), (2, 181.0, 18.0), "
        "(3, 182.0, 19.0), (4, 183.0, 20.0)"
    )
    return d


class TestSelect:
    def test_projection_and_filter(self, db):
        rows = db.sql("SELECT objid FROM g WHERE i > 18.5").rows()
        assert [r["objid"] for r in rows] == [3, 4]

    def test_expression_output(self, db):
        rows = db.sql("SELECT objid, i * 2 AS ii FROM g WHERE objid = 1").rows()
        assert rows == [{"objid": 1, "ii": 34.0}]

    def test_order_by_desc_limit(self, db):
        rows = db.sql("SELECT objid FROM g ORDER BY i DESC LIMIT 2").rows()
        assert [r["objid"] for r in rows] == [4, 3]

    def test_between(self, db):
        assert db.sql(
            "SELECT COUNT(*) AS c FROM g WHERE ra BETWEEN 181 AND 182"
        ).scalar() == 2

    def test_aggregate_scalar(self, db):
        assert db.sql("SELECT AVG(i) AS m FROM g").scalar() == pytest.approx(18.5)

    def test_group_by_having(self, db):
        db.sql("CREATE TABLE obs (objid bigint, mag float)")
        db.sql(
            "INSERT INTO obs VALUES (1, 1.0), (1, 2.0), (2, 5.0), (3, 1.0)"
        )
        rows = db.sql(
            "SELECT objid, COUNT(*) AS c, MAX(mag) AS m FROM obs "
            "GROUP BY objid HAVING COUNT(*) > 1"
        ).rows()
        assert rows == [{"objid": 1, "c": 2, "m": 2.0}]

    def test_aggregate_inside_expression(self, db):
        # the paper's MAX(LOG(ngal+1) - chisq) shape
        value = db.sql("SELECT MAX(LOG(i) - 1.0) AS v FROM g").scalar()
        assert value == pytest.approx(np.log(20.0) - 1.0)

    def test_join(self, db):
        db.sql("CREATE TABLE k (objid bigint, z float)")
        db.sql("INSERT INTO k VALUES (1, 0.1), (3, 0.3)")
        rows = db.sql(
            "SELECT g.objid, k.z FROM g JOIN k ON g.objid = k.objid "
            "ORDER BY g.objid"
        ).rows()
        assert rows == [{"objid": 1, "z": 0.1}, {"objid": 3, "z": 0.3}]

    def test_cross_join_count(self, db):
        db.sql("CREATE TABLE two (x int)")
        db.sql("INSERT INTO two VALUES (1), (2)")
        assert db.sql(
            "SELECT COUNT(*) AS c FROM g CROSS JOIN two"
        ).scalar() == 8

    def test_select_star_join_dedups_names(self, db):
        db.sql("CREATE TABLE k (objid bigint, z float)")
        db.sql("INSERT INTO k VALUES (1, 0.1)")
        result = db.sql("SELECT * FROM g JOIN k ON g.objid = k.objid")
        assert "objid" in result.column_names
        assert "objid_1" in result.column_names

    def test_distinct(self, db):
        db.sql("CREATE TABLE d (v int)")
        db.sql("INSERT INTO d VALUES (1), (1), (2)")
        assert db.sql("SELECT DISTINCT v FROM d").row_count == 2

    def test_constant_select_without_from(self, db):
        rows = db.sql("SELECT 1 + 1 AS two").rows()
        assert rows == [{"two": 2}]

    def test_case_expression(self, db):
        rows = db.sql(
            "SELECT CASE WHEN i >= 19 THEN 1 ELSE 0 END AS faint FROM g "
            "ORDER BY objid"
        ).rows()
        assert [r["faint"] for r in rows] == [0, 0, 1, 1]

    def test_unknown_table(self, db):
        with pytest.raises(TableNotFoundError):
            db.sql("SELECT * FROM nothere")

    def test_having_without_group_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT objid FROM g HAVING objid > 1")

    def test_star_with_aggregation_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT *, COUNT(*) FROM g GROUP BY objid")


class TestDml:
    def test_insert_select(self, db):
        db.sql("CREATE TABLE bright (objid bigint, i float)")
        result = db.sql(
            "INSERT INTO bright SELECT objid, i FROM g WHERE i < 18.5"
        )
        assert result.rows_affected == 2

    def test_insert_column_count_mismatch(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("INSERT INTO g (objid, ra) VALUES (9, 1.0)")

    def test_update(self, db):
        result = db.sql("UPDATE g SET i = i + 1 WHERE objid = 1")
        assert result.rows_affected == 1
        assert db.sql("SELECT i FROM g WHERE objid = 1").scalar() == 18.0

    def test_update_all_rows(self, db):
        assert db.sql("UPDATE g SET ra = 0").rows_affected == 4

    def test_delete(self, db):
        assert db.sql("DELETE FROM g WHERE i >= 19").rows_affected == 2
        assert db.sql("SELECT COUNT(*) AS c FROM g").scalar() == 2

    def test_truncate(self, db):
        db.sql("TRUNCATE TABLE g")
        assert db.sql("SELECT COUNT(*) AS c FROM g").scalar() == 0

    def test_drop(self, db):
        db.sql("DROP TABLE g")
        with pytest.raises(TableNotFoundError):
            db.sql("SELECT * FROM g")

    def test_negative_literals_in_values(self, db):
        db.sql("CREATE TABLE neg (v float)")
        db.sql("INSERT INTO neg VALUES (-2.5)")
        assert db.sql("SELECT v FROM neg").scalar() == -2.5


class TestQueryResult:
    def test_scalar_requires_1x1(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT objid FROM g").scalar()

    def test_column_accessor(self, db):
        result = db.sql("SELECT objid FROM g ORDER BY objid")
        assert result.column("objid").tolist() == [1, 2, 3, 4]
        with pytest.raises(SqlPlanError):
            result.column("nope")

    def test_plan_recorded(self, db):
        result = db.sql("SELECT objid FROM g WHERE i > 0")
        assert "SeqScan" in result.plan


class TestSyntaxErrors:
    def test_syntax_error_propagates(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELEKT * FROM g")

    def test_run_script(self, db):
        results = db.run_script(
            "CREATE TABLE s (a int); INSERT INTO s VALUES (1), (2); "
            "SELECT COUNT(*) AS c FROM s"
        )
        assert results[-1].scalar() == 2
