"""SQL printer + parse/print round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
)
from repro.engine.sql.parser import Parser, parse
from repro.engine.sql.printer import (
    expr_to_sql,
    select_to_sql,
    statement_to_sql,
)


def parse_expr(text: str):
    return Parser(f"SELECT {text} FROM t").parse_statement().items[0].expr


class TestExprPrinting:
    @pytest.mark.parametrize("text", [
        "(a + (b * c))",
        "(ra BETWEEN 172.5 AND 184.5)",
        "(x IN (1, 2, 3))",
        "POWER((g.i - k.i), 2)",
        "CASE WHEN (x > 0) THEN 1 ELSE 0 END",
        "(NOT (a AND b))",
        "COUNT(*)",
        "COUNT(DISTINCT z)",
    ])
    def test_round_trip_examples(self, text):
        expr = parse_expr(text)
        printed = expr_to_sql(expr)
        assert parse_expr(printed) == expr

    def test_string_escaping(self):
        expr = Literal("it's")
        assert parse_expr(expr_to_sql(expr)) == expr

    def test_float_precision_survives(self):
        expr = Literal(0.008333333333333333)
        assert parse_expr(expr_to_sql(expr)) == expr


# hypothesis strategies for random expression trees ---------------------
_columns = st.sampled_from(["ra", "dec", "i", "gr", "z"])
_qualifiers = st.sampled_from([None, "g", "k"])
_numbers = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
)

_leaf = st.one_of(
    _numbers.map(Literal),
    st.tuples(_columns, _qualifiers).map(lambda t: ColumnRef(t[0], t[1])),
)


def _compound(children):
    binops = st.sampled_from(["+", "-", "*", "/", "=", "<", ">", "AND", "OR"])
    return st.one_of(
        st.tuples(binops, children, children).map(
            lambda t: BinaryOp(t[0], t[1], t[2])
        ),
        children.map(lambda c: UnaryOp("NOT", c)),
        children.map(lambda c: UnaryOp("-", c)),
        st.tuples(children, children, children).map(
            lambda t: Between(t[0], t[1], t[2])
        ),
        st.tuples(children, st.lists(children, min_size=1, max_size=3)).map(
            lambda t: InList(t[0], tuple(t[1]))
        ),
        st.tuples(children, children).map(
            lambda t: FuncCall("power", (t[0], t[1]))
        ),
        children.map(lambda c: FuncCall("sqrt", (c,))),
        st.tuples(children, children, children).map(
            lambda t: Case(((t[0], t[1]),), t[2])
        ),
    )


_expressions = st.recursive(_leaf, _compound, max_leaves=12)


class TestRoundTripProperties:
    @given(_expressions)
    @settings(max_examples=200, deadline=None)
    def test_parse_print_parse_identity(self, expr):
        printed = expr_to_sql(expr)
        reparsed = parse_expr(printed)
        assert reparsed == expr

    @given(_expressions)
    @settings(max_examples=100, deadline=None)
    def test_printed_text_is_stable(self, expr):
        once = expr_to_sql(expr)
        twice = expr_to_sql(parse_expr(once))
        assert once == twice


class TestSelectPrinting:
    @pytest.mark.parametrize("text", [
        "SELECT a, b AS bb FROM t",
        "SELECT * FROM t WHERE (a > 1)",
        "SELECT g.* FROM galaxy g JOIN kcorr k ON (g.zid = k.zid)",
        "SELECT a FROM t CROSS JOIN u",
        "SELECT zid, COUNT(*) AS c FROM t GROUP BY zid HAVING (COUNT(*) > 1)",
        "SELECT a FROM t ORDER BY a DESC LIMIT 5",
        "SELECT DISTINCT a FROM t",
        "SELECT x.a FROM (SELECT a FROM t) x",
        "SELECT n.objid FROM fgetnearbyobjeqzd(2.5, 3.0, 0.5) n",
    ])
    def test_select_round_trip(self, text):
        stmt = parse(text)
        printed = statement_to_sql(stmt)
        assert parse(printed) == stmt

    def test_union_round_trip(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT a FROM u")
        printed = statement_to_sql(stmt)
        assert parse(printed) == stmt

    def test_executable_after_printing(self):
        """Printed SQL must actually run."""
        from repro.engine.database import Database

        db = Database("p")
        db.create_table("t", {"a": np.arange(5), "b": np.arange(5) * 2.0})
        stmt = parse("SELECT a, b * 2 AS bb FROM t WHERE a > 1 ORDER BY a")
        printed = statement_to_sql(stmt)
        rows = db.sql(printed).rows()
        assert [r["a"] for r in rows] == [2, 3, 4]
