"""Physical operators: scans, filter, project, sort, limit, distinct."""

import numpy as np
import pytest

from repro.engine.expressions import BinaryOp, col, lit
from repro.engine.index import ClusteredIndex
from repro.engine.operators import (
    Distinct,
    Filter,
    IndexRangeScan,
    Limit,
    Materialized,
    Project,
    SeqScan,
    Sort,
)
from repro.engine.pages import BufferPool
from repro.engine.schema import schema
from repro.engine.table import Table
from repro.engine.types import ColumnType
from repro.errors import SqlPlanError


@pytest.fixture()
def table() -> Table:
    s = schema("t", {"a": ColumnType.INT64, "b": ColumnType.FLOAT64})
    t = Table(s, BufferPool(100))
    t.insert({"a": [3, 1, 2, 1], "b": [30.0, 10.0, 20.0, 11.0]})
    return t


class TestScans:
    def test_seqscan_qualifies_names(self, table):
        batch = SeqScan(table, "x").execute()
        assert set(batch) == {"x.a", "x.b"}

    def test_index_range_scan(self, table):
        index = ClusteredIndex(table, ("a",))
        index.build()
        batch = IndexRangeScan(index, 1, 2, "t").execute()
        assert sorted(batch["t.a"].tolist()) == [1, 1, 2]


class TestFilterProject:
    def test_filter(self, table):
        plan = Filter(SeqScan(table, "t"), BinaryOp(">", col("a"), lit(1)))
        batch = plan.execute()
        assert sorted(batch["t.a"].tolist()) == [2, 3]

    def test_filter_empty_input(self, table):
        table.truncate()
        plan = Filter(SeqScan(table, "t"), BinaryOp(">", col("a"), lit(1)))
        assert plan.execute()["t.a"].size == 0

    def test_project_computes(self, table):
        plan = Project(
            SeqScan(table, "t"),
            [("double_b", BinaryOp("*", col("b"), lit(2.0)))],
        )
        batch = plan.execute()
        assert sorted(batch["double_b"].tolist()) == [20.0, 22.0, 40.0, 60.0]

    def test_project_broadcasts_constants(self, table):
        batch = Project(SeqScan(table, "t"), [("one", lit(1))]).execute()
        assert batch["one"].shape == (4,)


class TestSortLimitDistinct:
    def test_sort_asc(self, table):
        plan = Sort(SeqScan(table, "t"), [(col("a"), True)])
        assert plan.execute()["t.a"].tolist() == [1, 1, 2, 3]

    def test_sort_desc(self, table):
        plan = Sort(SeqScan(table, "t"), [(col("a"), False)])
        assert plan.execute()["t.a"].tolist() == [3, 2, 1, 1]

    def test_sort_two_keys(self, table):
        plan = Sort(
            SeqScan(table, "t"), [(col("a"), True), (col("b"), False)]
        )
        batch = plan.execute()
        assert batch["t.a"].tolist() == [1, 1, 2, 3]
        assert batch["t.b"].tolist() == [11.0, 10.0, 20.0, 30.0]

    def test_limit(self, table):
        plan = Limit(Sort(SeqScan(table, "t"), [(col("a"), True)]), 2)
        assert plan.execute()["t.a"].tolist() == [1, 1]

    def test_limit_negative(self, table):
        with pytest.raises(SqlPlanError):
            Limit(SeqScan(table, "t"), -1).execute()

    def test_distinct(self, table):
        plan = Distinct(Project(SeqScan(table, "t"), [("a", col("a"))]))
        assert sorted(plan.execute()["a"].tolist()) == [1, 2, 3]

    def test_materialized(self):
        batch = {"x": np.array([1, 2])}
        assert Materialized(batch).execute() is batch


class TestExplain:
    def test_explain_tree(self, table):
        plan = Limit(Filter(SeqScan(table, "t"), BinaryOp(">", col("a"), lit(0))), 5)
        text = plan.explain()
        assert "Limit(5)" in text
        assert "Filter" in text
        assert "SeqScan(t AS t)" in text
        # indentation encodes depth
        assert text.splitlines()[2].startswith("    ")
