"""EXPLAIN ANALYZE: instrumented plan execution."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.instrument import explain_analyze, instrument_plan
from repro.errors import EngineError


@pytest.fixture()
def db() -> Database:
    d = Database("ea")
    rng = np.random.default_rng(3)
    n = 5000
    d.create_table(
        "g",
        {"objid": np.arange(n), "zoneid": rng.integers(0, 100, n),
         "v": rng.uniform(0, 1, n)},
        primary_key="objid",
    )
    return d


class TestExplainAnalyze:
    def test_rows_recorded_per_node(self, db):
        report = explain_analyze(db, "SELECT objid FROM g WHERE v > 0.5")
        scan = report.node("SeqScan")
        filtered = report.node("Filter")
        assert scan.rows == 5000
        assert filtered.rows < scan.rows
        assert report.row_count == filtered.rows

    def test_same_answer_as_plain_execution(self, db):
        text = "SELECT zoneid, COUNT(*) AS c FROM g GROUP BY zoneid"
        report = explain_analyze(db, text)
        plain = db.sql(text)
        assert report.row_count == plain.row_count
        assert sorted(report.result["c"].tolist()) == sorted(
            plain.column("c").tolist()
        )

    def test_io_attributed_to_scan(self, db):
        report = explain_analyze(db, "SELECT objid FROM g")
        scan = report.node("SeqScan")
        assert scan.io_total >= db.table("g").page_count

    def test_render_shows_tree(self, db):
        report = explain_analyze(
            db, "SELECT objid FROM g WHERE v > 0.9 ORDER BY objid LIMIT 3"
        )
        text = report.render()
        assert "Limit" in text and "Sort" in text and "rows=" in text
        assert text.splitlines()[-1].startswith("total:")

    def test_join_nodes_instrumented(self, db):
        db.create_table("k", {"zoneid": np.arange(100),
                              "w": np.linspace(0, 1, 100)})
        report = explain_analyze(
            db,
            "SELECT g.objid FROM g JOIN k ON g.zoneid = k.zoneid "
            "WHERE k.w > 0.5",
        )
        join = report.node("HashJoin")
        assert join.rows > 0

    def test_timings_nested(self, db):
        report = explain_analyze(db, "SELECT objid FROM g WHERE v > 0.5")
        outer = report.nodes[0]
        inner = report.nodes[-1]
        assert outer.inclusive_s >= inner.inclusive_s

    def test_rejects_non_select(self, db):
        with pytest.raises(EngineError):
            explain_analyze(db, "DELETE FROM g")

    def test_missing_node_lookup(self, db):
        report = explain_analyze(db, "SELECT objid FROM g")
        with pytest.raises(EngineError):
            report.node("CrossJoin")


class TestDatabaseConvenience:
    def test_explain_analyze_method(self, db):
        report = db.explain_analyze("SELECT objid FROM g WHERE v > 0.5")
        assert report.row_count > 0
        assert "SeqScan" in report.render()


class TestInstrumentPlan:
    def test_wrapping_preserves_results(self, db):
        from repro.engine.sql.parser import parse
        from repro.engine.sql.planner import Planner

        stmt = parse("SELECT objid FROM g WHERE v BETWEEN 0.2 AND 0.4")
        plan = Planner(db).plan_select(stmt)
        expected = plan.execute()
        wrapped, records = instrument_plan(plan)
        got = wrapped.execute()
        assert np.array_equal(got["objid"], expected["objid"])
        assert all(r.calls == 1 for r in records)


class TestRowAccumulation:
    """A node executed more than once must report every batch it produced
    (the old behaviour overwrote ``rows`` with the last call's count)."""

    def test_rows_accumulate_across_calls(self, db):
        from repro.engine.sql.parser import parse
        from repro.engine.sql.planner import Planner

        stmt = parse("SELECT objid FROM g WHERE v > 0.5")
        plan = Planner(db).plan_select(stmt)
        wrapped, records = instrument_plan(plan)
        first = wrapped.execute()
        second = wrapped.execute()
        n = len(first["objid"])
        assert len(second["objid"]) == n
        root = records[0]
        assert root.calls == 2
        assert root.rows == 2 * n
        assert root.rows_per_call == pytest.approx(n)

    def test_q_error_uses_rows_per_call(self):
        from repro.engine.instrument import NodeStats

        stats = NodeStats(description="x", depth=0, est_rows=100.0)
        stats.rows = 300
        stats.calls = 3  # 100 rows per execution: the estimate was perfect
        assert stats.q_error == pytest.approx(1.0)

    def test_line_shows_per_call_breakdown(self):
        from repro.engine.instrument import NodeStats

        stats = NodeStats(description="Scan", depth=0)
        stats.rows, stats.calls = 200, 2
        assert "(100/call x 2)" in stats.line
        stats.calls = 1
        stats.rows = 100
        assert "/call" not in stats.line

    def test_rows_per_call_zero_calls(self):
        from repro.engine.instrument import NodeStats

        stats = NodeStats(description="x", depth=0)
        assert stats.rows_per_call == 0.0
        assert stats.q_error is None
