"""The Data Archive Server."""

import pytest

from repro.errors import GridError
from repro.grid.transfer import TransferModel
from repro.skyserver.das import DataArchiveServer
from repro.skyserver.regions import RegionBox


@pytest.fixture()
def das(tmp_path, sky, config):
    server = DataArchiveServer(tmp_path / "das")
    server.publish_region(
        sky.catalog, RegionBox(180.5, 181.5, 0.5, 1.5), config
    )
    return server


class TestPublishing:
    def test_two_files_per_field(self, das):
        assert das.file_inventory() == 2 * len(das.fields)

    def test_field_count(self, das):
        assert len(das.fields) == 4  # 1 deg^2 at 0.5 deg fields


class TestFetching:
    def test_fetch_roundtrip(self, das, sky):
        one_field = das.fields[0]
        catalog, seconds = das.fetch(one_field, "target")
        expected = sky.catalog.select_region(one_field.target)
        assert set(catalog.objid.tolist()) == set(expected.objid.tolist())
        assert seconds > 0.0

    def test_fetch_field_inputs(self, das):
        target, buffer, seconds = das.fetch_field_inputs(das.fields[0])
        assert len(buffer) >= len(target)
        assert das.log.requests == 2
        assert seconds == pytest.approx(das.log.simulated_seconds)

    def test_log_accumulates(self, das):
        for one_field in das.fields:
            das.fetch_field_inputs(one_field)
        assert das.log.requests == 2 * len(das.fields)
        assert das.log.bytes_served > 0

    def test_overhead_dominates_small_files(self, das):
        # tiny files over a model with stiff per-file overhead: the
        # paper's many-small-files pathology
        for one_field in das.fields:
            das.fetch_field_inputs(one_field)
        assert das.log.overhead_fraction > 0.5

    def test_faster_network_cheaper(self, tmp_path, sky, config):
        region = RegionBox(180.6, 181.1, 0.6, 1.1)
        slow = DataArchiveServer(
            tmp_path / "slow",
            TransferModel(bandwidth_bytes_per_s=1e6, per_file_overhead_s=1.0),
        )
        fast = DataArchiveServer(
            tmp_path / "fast",
            TransferModel(bandwidth_bytes_per_s=1e9,
                          per_file_overhead_s=0.01),
        )
        for server in (slow, fast):
            server.publish_region(sky.catalog, region, config)
            server.fetch_field_inputs(server.fields[0])
        assert fast.log.simulated_seconds < slow.log.simulated_seconds


class TestReport:
    def test_report_fields(self, das):
        das.fetch_field_inputs(das.fields[0])
        report = das.staging_report()
        assert report["fields"] == 4.0
        assert report["files"] == 8.0
        assert report["requests_served"] == 2.0

    def test_report_requires_publish(self, tmp_path):
        with pytest.raises(GridError):
            DataArchiveServer(tmp_path / "x").staging_report()
