"""The metrics registry: counters, gauges, histograms, collectors."""

import math
import threading

import pytest

from repro.errors import ObsError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_defaults_to_one(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_concurrent_increments_do_not_drop(self):
        c = Counter("contended")
        n_threads, per_thread = 8, 5_000

        def hammer():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread

    def test_reset(self):
        c = Counter("r")
        c.inc(9)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_observe_fills_buckets(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)
        assert h.mean == pytest.approx(55.55 / 4)
        assert h.buckets() == {
            "le=0.1": 1, "le=1": 1, "le=10": 1, "le=inf": 1,
        }

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram("edge", buckets=(1.0, 2.0))
        h.observe(1.0)  # le=1 is inclusive
        assert h.buckets()["le=1"] == 1

    def test_quantile_upper_bound(self):
        h = Histogram("q", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 0.7, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0

    def test_quantile_empty_and_overflow(self):
        h = Histogram("q2", buckets=(1.0,))
        assert h.quantile(0.5) == 0.0
        # a single overflow observation: the quantile interpolates
        # between the last finite bound and the observed max, never inf
        h.observe(99.0)
        assert h.quantile(0.9) == pytest.approx(1.0 + (99.0 - 1.0) * 0.9)
        assert h.quantile(1.0) == 99.0

    def test_quantile_overflow_known_distribution(self):
        # 11..20 land in the +inf bucket of (10.0,): every rank is in
        # the overflow, interpolated over [10, max=20].
        h = Histogram("q3", buckets=(10.0,))
        for v in range(11, 21):
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(15.0)
        assert h.quantile(0.95) == pytest.approx(19.5)
        assert h.quantile(1.0) == 20.0
        assert math.isfinite(h.quantile(0.99))

    def test_quantile_overflow_mixed_with_finite(self):
        # half the mass is finite; only ranks past it interpolate
        h = Histogram("q4", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0, 5.0):
            h.observe(v)
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 5.0
        assert 2.0 < h.quantile(0.9) <= 5.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ObsError):
            Histogram("bad", buckets=(1.0,)).quantile(1.5)

    def test_needs_buckets(self):
        with pytest.raises(ObsError):
            Histogram("none", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_clash_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ObsError, match="Counter"):
            registry.gauge("x")
        with pytest.raises(ObsError):
            registry.histogram("x")

    def test_snapshot_shapes(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == 2.0
        assert snap["g"] == 7.0
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"]["le=1"] == 1

    def test_collectors_merge_at_snapshot_time(self, registry):
        calls = []

        def collector():
            calls.append(True)
            return {"pulled.value": 42.0}

        registry.add_collector(collector)
        assert not calls  # pull style: nothing until snapshot
        assert registry.snapshot()["pulled.value"] == 42.0
        assert len(calls) == 1

    def test_reset_zeroes_but_keeps_registrations(self, registry):
        c = registry.counter("keep")
        c.inc(5)
        registry.add_collector(lambda: {"still.here": 1.0})
        registry.reset()
        assert registry.counter("keep") is c
        assert c.value == 0.0
        assert registry.snapshot()["still.here"] == 1.0

    def test_render_one_line_per_metric(self, registry):
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        lines = registry.render().splitlines()
        assert lines[0].startswith("a.first")
        assert lines[-1].startswith("z.last")


class TestGlobalRegistry:
    def test_singleton(self):
        assert get_metrics() is get_metrics()

    def test_buffer_pool_collector_is_registered(self):
        """The page layer feeds the registry by pull (hot path untouched)."""
        from repro.engine.pages import BufferPool, PageId

        pool = BufferPool(capacity_pages=4)
        pool.access(PageId(90901, 0))  # miss
        pool.access(PageId(90901, 0))  # hit
        snap = get_metrics().snapshot()
        assert snap["engine.pools"] >= 1
        assert snap["engine.pool.hits"] >= 1
        assert snap["engine.pool.misses"] >= 1
