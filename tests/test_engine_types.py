"""Column types and SQL type-name mapping."""

import numpy as np
import pytest

from repro.engine.types import ColumnType, infer_type, sql_type
from repro.errors import SchemaError


class TestColumnType:
    def test_numpy_dtypes(self):
        assert ColumnType.INT64.numpy_dtype == np.dtype("int64")
        assert ColumnType.FLOAT64.numpy_dtype == np.dtype("float64")
        assert ColumnType.BOOL.numpy_dtype == np.dtype("bool")
        assert ColumnType.STRING.numpy_dtype == np.dtype(object)

    def test_byte_widths(self):
        assert ColumnType.INT64.byte_width == 8
        assert ColumnType.FLOAT64.byte_width == 8
        assert ColumnType.BOOL.byte_width == 1
        assert ColumnType.STRING.byte_width == 32

    def test_coerce_int(self):
        arr = ColumnType.INT64.coerce([1, 2, 3])
        assert arr.dtype == np.int64

    def test_coerce_float_from_ints(self):
        arr = ColumnType.FLOAT64.coerce([1, 2])
        assert arr.dtype == np.float64

    def test_coerce_string(self):
        arr = ColumnType.STRING.coerce(["a", "b"])
        assert arr.dtype == object

    def test_coerce_failure(self):
        with pytest.raises(SchemaError):
            ColumnType.INT64.coerce(["not", "numbers"])


class TestSqlTypeNames:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("bigint", ColumnType.INT64),
            ("INT", ColumnType.INT64),
            ("float", ColumnType.FLOAT64),
            ("REAL", ColumnType.FLOAT64),
            ("varchar", ColumnType.STRING),
            ("bool", ColumnType.BOOL),
        ],
    )
    def test_known_names(self, name, expected):
        assert sql_type(name) is expected

    def test_unknown_name(self):
        with pytest.raises(SchemaError):
            sql_type("blob")


class TestInferType:
    def test_infer(self):
        assert infer_type(np.array([1, 2])) is ColumnType.INT64
        assert infer_type(np.array([1.5])) is ColumnType.FLOAT64
        assert infer_type(np.array([True])) is ColumnType.BOOL
        assert infer_type(np.array(["x"], dtype=object)) is ColumnType.STRING
        assert infer_type(np.array(["x"])) is ColumnType.STRING

    def test_infer_unsigned_as_int(self):
        assert infer_type(np.array([1], dtype=np.uint32)) is ColumnType.INT64

    def test_infer_complex_rejected(self):
        with pytest.raises(SchemaError):
            infer_type(np.array([1j]))
