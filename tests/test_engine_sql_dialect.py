"""Dialect additions: TOP, ORDER BY ordinal, LIMIT OFFSET, LEFT JOIN."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.errors import SqlPlanError, SqlSyntaxError


@pytest.fixture()
def db() -> Database:
    d = Database("dialect")
    d.sql("CREATE TABLE g (objid bigint PRIMARY KEY, zid int, i float)")
    d.sql(
        "INSERT INTO g VALUES (1, 10, 17.0), (2, 20, 18.0), (3, 30, 19.0), "
        "(4, 99, 20.0)"
    )
    d.sql("CREATE TABLE k (zid int PRIMARY KEY, radius float)")
    d.sql("INSERT INTO k VALUES (10, 0.3), (20, 0.2)")
    return d


class TestTop:
    def test_top_n(self, db):
        rows = db.sql("SELECT TOP 2 objid FROM g ORDER BY i DESC").rows()
        assert [r["objid"] for r in rows] == [4, 3]

    def test_top_equals_limit(self, db):
        top = db.sql("SELECT TOP 3 objid FROM g ORDER BY objid").rows()
        limit = db.sql("SELECT objid FROM g ORDER BY objid LIMIT 3").rows()
        assert top == limit

    def test_top_with_limit_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT TOP 2 objid FROM g LIMIT 3")

    def test_top_requires_number(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT TOP x objid FROM g")


class TestOrderByOrdinal:
    def test_ordinal_names_item(self, db):
        rows = db.sql("SELECT objid, i FROM g ORDER BY 2 DESC").rows()
        assert [r["objid"] for r in rows] == [4, 3, 2, 1]

    def test_ordinal_out_of_range(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT objid FROM g ORDER BY 3")

    def test_literal_float_is_not_ordinal(self, db):
        # ORDER BY 1.5 is a constant sort key (legal, no-op ordering)
        result = db.sql("SELECT objid FROM g ORDER BY 1.5")
        assert result.row_count == 4


class TestLimitOffset:
    def test_offset_pagination(self, db):
        page1 = db.sql("SELECT objid FROM g ORDER BY objid LIMIT 2").rows()
        page2 = db.sql(
            "SELECT objid FROM g ORDER BY objid LIMIT 2 OFFSET 2"
        ).rows()
        assert [r["objid"] for r in page1] == [1, 2]
        assert [r["objid"] for r in page2] == [3, 4]

    def test_offset_beyond_end(self, db):
        assert db.sql("SELECT objid FROM g LIMIT 5 OFFSET 10").row_count == 0


class TestLeftJoin:
    def test_unmatched_rows_kept_with_nan(self, db):
        result = db.sql(
            "SELECT g.objid, k.radius FROM g LEFT JOIN k ON g.zid = k.zid "
            "ORDER BY g.objid"
        )
        radii = result.column("radius")
        assert result.row_count == 4
        assert radii[0] == 0.3 and radii[1] == 0.2
        assert np.isnan(radii[2]) and np.isnan(radii[3])

    def test_left_outer_keyword(self, db):
        result = db.sql(
            "SELECT g.objid FROM g LEFT OUTER JOIN k ON g.zid = k.zid"
        )
        assert result.row_count == 4

    def test_inner_join_still_drops(self, db):
        result = db.sql(
            "SELECT g.objid FROM g JOIN k ON g.zid = k.zid"
        )
        assert result.row_count == 2

    def test_where_on_right_applies_after_padding(self, db):
        # IS NULL over the padded column finds the unmatched rows —
        # the predicate must NOT be pushed below the left join
        result = db.sql(
            "SELECT g.objid FROM g LEFT JOIN k ON g.zid = k.zid "
            "WHERE k.radius IS NULL ORDER BY g.objid"
        )
        assert result.column("objid").tolist() == [3, 4]

    def test_where_filter_on_right_value(self, db):
        result = db.sql(
            "SELECT g.objid FROM g LEFT JOIN k ON g.zid = k.zid "
            "WHERE k.radius > 0.25"
        )
        assert result.column("objid").tolist() == [1]

    def test_residual_on_condition_keeps_left_row(self, db):
        # ON-clause residual: row 1 matches zid but fails radius > 0.25
        # in the ON clause -> still emitted, with NULL right side
        result = db.sql(
            "SELECT g.objid, k.radius FROM g LEFT JOIN k "
            "ON g.zid = k.zid AND k.radius > 0.25 ORDER BY g.objid"
        )
        assert result.row_count == 4
        radii = result.column("radius")
        assert radii[0] == 0.3
        assert np.isnan(radii[1])  # zid 20 matched but failed the residual

    def test_left_join_requires_equality(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT g.objid FROM g LEFT JOIN k ON g.zid < k.zid")

    def test_aggregate_over_left_join(self, db):
        # counting matches per left row: the classic LEFT JOIN idiom.
        # COUNT(col) skips NULLs, so unmatched rows count zero.
        result = db.sql(
            "SELECT g.objid, COUNT(k.radius) AS n FROM g "
            "LEFT JOIN k ON g.zid = k.zid GROUP BY g.objid ORDER BY g.objid"
        )
        assert result.column("n").tolist() == [1, 1, 0, 0]

    def test_count_star_vs_count_column(self, db):
        row = db.sql(
            "SELECT COUNT(*) AS stars, COUNT(k.radius) AS vals FROM g "
            "LEFT JOIN k ON g.zid = k.zid"
        ).rows()[0]
        assert row == {"stars": 4, "vals": 2}
