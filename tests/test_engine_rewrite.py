"""Metamorphic and integration tests for the logical rewrite pass.

The metamorphic idea: wrap a query in a transformation that *provably*
changes nothing — a tautological conjunct, a no-op view or CTE shell, a
double negation — and demand the answer stays **byte-identical** (same
dtypes, same values, same order) while EXPLAIN names the rule that
unwrapped it.  Unlike the differential suite (engine vs numpy oracle),
these tests compare the engine against itself, so they catch rewrite
bugs that an approximate row comparison would forgive.

Also covered here: the result-cache interaction (a statement and its
rewrite-equivalent share one entry; rewrites-off never cross-serves a
rewrites-on entry), the ``engine.rewrite.*`` metrics, fixpoint
idempotence (the property the cache fingerprint relies on), and the
``--rewrites`` CLI plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.instrument import explain_analyze
from repro.engine.optimizer.rewrite import REWRITE_RULES, rewrite_statement
from repro.engine.sql.parser import parse
from repro.obs.metrics import get_metrics


def build_db(rewrites: bool = True, result_cache: bool = False) -> Database:
    db = Database(
        "rw" if rewrites else "rw_off",
        config=EngineConfig(rewrites=rewrites, result_cache=result_cache),
    )
    rng = np.random.default_rng(404)
    n = 300
    db.create_table("t1", {
        "id": np.arange(n, dtype=np.int64),
        "k": rng.integers(0, 12, n).astype(np.int64),
        "a": rng.integers(-50, 50, n).astype(np.int64),
        "b": rng.uniform(-10.0, 10.0, n),
    }, primary_key="id")
    db.create_table("t2", {
        "k": rng.integers(0, 12, 80).astype(np.int64),
        "c": rng.uniform(0.0, 100.0, 80),
    })
    db.create_table("t3", {
        "k": np.arange(12, dtype=np.int64),
        "w": rng.uniform(1.0, 5.0, 12),
    }, primary_key="k")
    db.sql("CREATE VIEW v1 AS SELECT id, k, a, b FROM t1")
    db.sql("ANALYZE")
    return db


def assert_byte_identical(left, right, context: str) -> None:
    """Same column names, dtypes, values and row order — no tolerance."""
    assert list(left.columns) == list(right.columns), context
    for name in left.columns:
        lhs, rhs = np.asarray(left.columns[name]), np.asarray(right.columns[name])
        assert lhs.dtype == rhs.dtype, f"{context}: dtype of '{name}'"
        assert np.array_equal(lhs, rhs), f"{context}: values of '{name}'"


def fired_rules(plan_text: str) -> list[str]:
    return [
        line.split(":", 1)[0].removeprefix("Rewrite ").strip()
        for line in plan_text.splitlines()
        if line.startswith("Rewrite ")
    ]


# ---------------------------------------------------------------------------
# metamorphic: no-op transformations must not change a byte
# ---------------------------------------------------------------------------

BASE = "SELECT id, a, b FROM t1 WHERE a > 5 ORDER BY id"

#: (no-op variant, rule expected to unwrap it)
METAMORPHS = (
    ("SELECT id, a, b FROM t1 WHERE a > 5 AND 1 = 1 ORDER BY id",
     "constant_folding"),
    ("SELECT id, a, b FROM t1 WHERE NOT (NOT (a > 5)) ORDER BY id",
     "double_negation_elimination"),
    ("WITH w AS (SELECT id, a, b FROM t1) "
     "SELECT id, a, b FROM w WHERE a > 5 ORDER BY id",
     "cte_inline"),
    ("SELECT * FROM (SELECT id, a, b FROM t1) d WHERE d.a > 5 ORDER BY id",
     "predicate_pushdown"),
)


@pytest.mark.parametrize("variant,rule", METAMORPHS,
                         ids=[r for _, r in METAMORPHS])
def test_metamorphic_noop_wrap_is_byte_identical(variant, rule):
    db = build_db()
    base, wrapped = db.sql(BASE), db.sql(variant)
    assert_byte_identical(wrapped, base, variant)
    assert rule in fired_rules(wrapped.plan), (
        f"expected {rule} in\n{wrapped.plan}"
    )


def test_metamorphic_noop_view_wrap():
    """A view that just re-selects the table is planned away."""
    db = build_db()  # v1 is the no-op re-select view from build_db
    base = db.sql(BASE)
    wrapped = db.sql("SELECT id, a, b FROM v1 WHERE a > 5 ORDER BY id")
    assert_byte_identical(wrapped, base, "view wrap")
    assert "view_inline" in fired_rules(wrapped.plan)


def test_metamorphic_rewritten_results_match_rewrites_off():
    """Every metamorphic variant, both engines: identical bytes."""
    db_on, db_off = build_db(True), build_db(False)
    for variant, _ in METAMORPHS:
        assert_byte_identical(db_on.sql(variant), db_off.sql(variant),
                              variant)
        assert not fired_rules(db_off.sql(variant).plan)


# ---------------------------------------------------------------------------
# every rule observable through EXPLAIN, results checked against off-mode
# ---------------------------------------------------------------------------

#: A query that makes each rule fire (keys are the registered names).
RULE_QUERIES = {
    "constant_folding":
        "SELECT id FROM t1 WHERE 2 + 2 = 4 AND a > 0 ORDER BY id",
    "tautology_elimination":
        "SELECT id FROM t1 WHERE 1 = 1 ORDER BY id",
    "double_negation_elimination":
        "SELECT id FROM t1 WHERE NOT (NOT (a > 0)) ORDER BY id",
    "cte_inline":
        "WITH f AS (SELECT id, a FROM t1 WHERE a > 0) "
        "SELECT id FROM f ORDER BY id",
    "view_inline":
        "SELECT id, a FROM v1 WHERE a > 0 ORDER BY id",
    "filter_before_aggregate":
        "SELECT k, COUNT(*) AS n FROM t1 GROUP BY k "
        "HAVING k > 3 AND COUNT(*) > 1 ORDER BY k",
    "redundant_join_elimination":
        "SELECT t1.id FROM t1 LEFT JOIN t3 ON t3.k = t1.k ORDER BY t1.id",
    "derived_table_merge":
        "SELECT d.id, d.s FROM (SELECT id, a + k AS s FROM t1 "
        "WHERE a > 0) d WHERE d.s > 3 ORDER BY d.id",
    "predicate_pushdown":
        "SELECT * FROM (SELECT id, a FROM t1) d WHERE d.a > 7 ORDER BY id",
    "decorrelate_subquery":
        "SELECT id FROM t1 WHERE k IN (SELECT k FROM t2 WHERE c > 50) "
        "ORDER BY id",
    "aggregate_pushdown":
        "SELECT t3.k, SUM(t1.a) AS sa, MAX(t1.b) AS hi FROM t3 "
        "INNER JOIN t1 ON t1.k = t3.k GROUP BY t3.k ORDER BY t3.k",
}


def test_rule_query_map_is_exhaustive():
    """Every registered rule has a query pinning it (and vice versa)."""
    registered = {name for name, _ in REWRITE_RULES}
    assert registered == set(RULE_QUERIES)


@pytest.mark.parametrize("rule", sorted(RULE_QUERIES))
def test_each_rule_fires_and_preserves_results(rule):
    db_on, db_off = build_db(True), build_db(False)
    sql = RULE_QUERIES[rule]
    on, off = db_on.sql(sql), db_off.sql(sql)
    assert rule in fired_rules(on.plan), f"{rule} absent from\n{on.plan}"
    assert not fired_rules(off.plan)
    assert_byte_identical(on, off, sql)


def test_explain_lists_every_fired_rule_with_estimates():
    """EXPLAIN leads with one 'Rewrite <rule>: ...' line per firing."""
    db = build_db()
    sql = ("WITH f AS (SELECT id, a, b FROM t1 WHERE a > 0) "
           "SELECT id FROM f WHERE b > 1 AND 1 = 1 ORDER BY id")
    plan = db.explain(sql)
    rules = fired_rules(plan)
    assert "cte_inline" in rules and "constant_folding" in rules
    # trace lines come first, carry the cost-model estimates, and the
    # physical plan follows
    lines = plan.splitlines()
    assert lines[0].startswith("Rewrite ")
    assert any("est_rows" in line and "cost" in line for line in lines
               if line.startswith("Rewrite "))
    assert any(not line.startswith("Rewrite ") for line in lines)


def test_explain_analyze_reports_rewrite_trace():
    db = build_db()
    report = explain_analyze(
        db, "SELECT id FROM t1 WHERE 1 = 1 AND a > 0 ORDER BY id")
    assert any(line.startswith("Rewrite constant_folding")
               for line in report.render().splitlines())
    assert report.rewrite_trace


def test_rewrites_off_plans_carry_no_trace():
    db = build_db(False)
    for sql in RULE_QUERIES.values():
        assert not fired_rules(db.explain(sql))


# ---------------------------------------------------------------------------
# fixpoint idempotence: the property the cache fingerprint stands on
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule", sorted(RULE_QUERIES))
def test_rewrite_is_idempotent(rule):
    """Rewriting a rewritten statement fires nothing further."""
    db = build_db()
    stmt = parse(RULE_QUERIES[rule])
    once, firings = rewrite_statement(stmt, db, price=False)
    assert firings, f"{rule} query should fire at least one rule"
    twice, again = rewrite_statement(once, db, price=False)
    assert not again, f"not a fixpoint: {[f.rule for f in again]}"
    assert twice == once


def test_priced_and_unpriced_paths_agree():
    """price=True (planner) and price=False (cache key) must produce the
    byte-identical statement, or the cache would fragment."""
    db = build_db()
    for sql in RULE_QUERIES.values():
        stmt = parse(sql)
        priced, _ = rewrite_statement(stmt, db, price=True)
        unpriced, _ = rewrite_statement(stmt, db, price=False)
        assert priced == unpriced, sql


# ---------------------------------------------------------------------------
# result-cache interaction
# ---------------------------------------------------------------------------


def test_statement_and_rewritten_form_share_cache_entry():
    """A query and its rewrite-equivalent spelling hit the same entry."""
    db = build_db(result_cache=True)
    plain = "SELECT id, a FROM t1 WHERE a > 5 ORDER BY id"
    spelled = "SELECT id, a FROM t1 WHERE a > 5 AND 1 = 1 ORDER BY id"
    first = db.sql(plain)
    assert len(db.result_cache) == 1
    second = db.sql(spelled)
    assert second.plan.startswith("[answered from cache]"), second.plan
    assert len(db.result_cache) == 1  # no second entry
    assert_byte_identical(second, first, spelled)


def test_rewrites_off_never_cross_serves_cached_entry():
    """The +rewrite mode tag keeps on/off cache populations disjoint."""
    db = build_db(result_cache=True)
    sql = "SELECT id, a FROM t1 WHERE a > 5 ORDER BY id"
    db.sql(sql)
    assert len(db.result_cache) == 1
    db.rewrites_enabled = False
    miss = db.sql(sql)
    assert not miss.plan.startswith("[answered from cache]")
    assert len(db.result_cache) == 2  # distinct entry per mode
    db.rewrites_enabled = True
    hit = db.sql(sql)
    assert hit.plan.startswith("[answered from cache]")


def test_cache_invalidation_covers_subquery_tables():
    """DML on a table read only inside IN (SELECT ...) must invalidate."""
    db = build_db(result_cache=True)
    sql = ("SELECT id FROM t1 WHERE k IN (SELECT k FROM t2 WHERE c > 101) "
           "ORDER BY id")
    assert db.sql(sql).row_count == 0
    db.sql("INSERT INTO t2 (k, c) VALUES (3, 102.0)")
    after = db.sql(sql)
    assert not after.plan.startswith("[answered from cache]")
    assert after.row_count > 0


# ---------------------------------------------------------------------------
# metrics and config plumbing
# ---------------------------------------------------------------------------


def test_rewrite_metrics_count_firings():
    db = build_db()
    counter = get_metrics().counter("engine.rewrite.decorrelate_subquery")
    before = counter.value
    db.sql(RULE_QUERIES["decorrelate_subquery"])
    assert counter.value == before + 1


def test_engine_config_controls_rewrites():
    assert EngineConfig().rewrites is True
    assert Database("a", config=EngineConfig()).rewrites_enabled
    assert not Database(
        "b", config=EngineConfig(rewrites=False)).rewrites_enabled


def test_cli_rewrites_flag():
    from repro.cli import _build_parser, _engine_config

    parser = _build_parser()
    on = parser.parse_args(["sql", "-e", "SELECT 1"])
    off = parser.parse_args(["sql", "-e", "SELECT 1", "--no-rewrites"])
    assert _engine_config(on).rewrites is True
    assert _engine_config(off).rewrites is False
