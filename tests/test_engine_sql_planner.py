"""Planner internals: pushdown, join selection, aggregate rewriting."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    col,
    lit,
)
from repro.engine.sql.parser import parse
from repro.engine.sql.planner import (
    Planner,
    and_all,
    find_aggregates,
    rewrite,
    split_conjuncts,
)
from repro.errors import SqlPlanError


@pytest.fixture()
def db() -> Database:
    d = Database("plan")
    rng = np.random.default_rng(1)
    d.create_table("g", {
        "objid": np.arange(1000),
        "zoneid": rng.integers(0, 50, 1000),
        "i": rng.uniform(14, 21, 1000),
    }, primary_key="objid")
    d.create_table("k", {
        "zid": np.arange(50), "radius": rng.uniform(0.05, 0.3, 50),
    }, primary_key="zid")
    return d


def plan_text(db, text):
    return db.explain(text)


class TestConjunctUtilities:
    def test_split_flattens_nested_ands(self):
        expr = BinaryOp("AND", BinaryOp("AND", col("a"), col("b")), col("c"))
        assert len(split_conjuncts(expr)) == 3

    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_or_not_split(self):
        expr = BinaryOp("OR", col("a"), col("b"))
        assert split_conjuncts(expr) == [expr]

    def test_and_all_roundtrip(self):
        parts = [col("a"), col("b"), col("c")]
        rebuilt = and_all(parts)
        assert split_conjuncts(rebuilt) == parts
        assert and_all([]) is None


class TestRewrite:
    def test_replaces_matching_subtrees(self):
        target = FuncCall("count", ())
        expr = BinaryOp("+", target, lit(1))
        out = rewrite(expr, {target: ColumnRef("__agg0")})
        assert out == BinaryOp("+", ColumnRef("__agg0"), lit(1))

    def test_rewrites_inside_between(self):
        target = col("x")
        expr = Between(target, lit(0), lit(1))
        out = rewrite(expr, {target: col("y")})
        assert out == Between(col("y"), lit(0), lit(1))

    def test_no_match_identity(self):
        expr = BinaryOp("*", col("a"), lit(2))
        assert rewrite(expr, {col("zzz"): lit(0)}) == expr


class TestFindAggregates:
    def test_finds_nested_calls(self):
        stmt = parse("SELECT MAX(LOG(n + 1) - chisq) AS m FROM t")
        calls = find_aggregates(stmt.items[0].expr)
        assert len(calls) == 1 and calls[0].name == "max"

    def test_rejects_nested_aggregates(self):
        stmt = parse("SELECT MAX(SUM(x)) AS m FROM t")
        with pytest.raises(SqlPlanError):
            find_aggregates(stmt.items[0].expr)

    def test_plain_function_not_aggregate(self):
        stmt = parse("SELECT SQRT(x) AS s FROM t")
        assert find_aggregates(stmt.items[0].expr) == []


class TestAccessPathSelection:
    def test_pushdown_below_join(self, db):
        text = ("SELECT g.objid FROM g JOIN k ON g.zoneid = k.zid "
                "WHERE g.i > 20 AND k.radius > 0.2")
        plan = plan_text(db, text)
        # each single-relation conjunct lands on its own scan, below the join
        join_line = next(
            i for i, line in enumerate(plan.splitlines()) if "HashJoin" in line
        )
        filter_lines = [
            i for i, line in enumerate(plan.splitlines()) if "Filter" in line
        ]
        assert any(i > join_line for i in filter_lines)

    def test_equi_join_becomes_hash_join(self, db):
        plan = plan_text(
            db, "SELECT g.objid FROM g JOIN k ON g.zoneid = k.zid"
        )
        assert "HashJoin" in plan and "NestedLoopJoin" not in plan

    def test_range_join_becomes_band_join(self, db):
        plan = plan_text(
            db, "SELECT g.objid FROM g JOIN k ON g.zoneid < k.zid"
        )
        assert "BandJoin" in plan and "NestedLoopJoin" not in plan

    def test_non_extractable_theta_join_nested_loop(self, db):
        # predicate over an expression of the right column, not the
        # column itself — no band to extract
        plan = plan_text(
            db, "SELECT g.objid FROM g JOIN k ON g.zoneid < k.zid * k.zid"
        )
        assert "NestedLoopJoin" in plan and "BandJoin" not in plan

    def test_band_join_disabled_falls_back(self, db):
        db.band_join_enabled = False
        plan = plan_text(
            db, "SELECT g.objid FROM g JOIN k ON g.zoneid < k.zid"
        )
        assert "NestedLoopJoin" in plan and "BandJoin" not in plan

    def test_equi_plus_residual(self, db):
        plan = plan_text(
            db,
            "SELECT g.objid FROM g JOIN k ON g.zoneid = k.zid "
            "AND g.i > k.radius",
        )
        assert "HashJoin" in plan and "residual" in plan

    def test_index_chosen_only_on_leading_key(self, db):
        db.create_clustered_index("g", "zoneid", "i")
        ranged = plan_text(db, "SELECT objid FROM g WHERE zoneid BETWEEN 1 AND 3")
        non_leading = plan_text(db, "SELECT objid FROM g WHERE i BETWEEN 15 AND 16")
        assert "IndexRangeScan" in ranged
        assert "IndexRangeScan" not in non_leading

    def test_equality_predicate_uses_index(self, db):
        db.create_clustered_index("g", "zoneid")
        plan = plan_text(db, "SELECT objid FROM g WHERE zoneid = 7")
        assert "IndexRangeScan" in plan

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT 1 AS one FROM g a JOIN g a ON a.objid = a.objid")


class TestOutputNames:
    def test_select_output_names(self, db):
        planner = Planner(db)
        stmt = parse("SELECT objid, i * 2 AS ii, SQRT(i) FROM g")
        assert planner.select_output_names(stmt) == ["objid", "ii", "col2"]

    def test_star_names_with_dedup(self, db):
        planner = Planner(db)
        stmt = parse("SELECT * FROM g JOIN k ON g.zoneid = k.zid")
        names = planner.select_output_names(stmt)
        assert names[:3] == ["objid", "zoneid", "i"]
        assert "zid" in names and "radius" in names
