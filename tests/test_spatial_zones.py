"""Zone index: assignment formula, structure, and faithful cone search."""

import numpy as np
import pytest

from repro.errors import SpatialError
from repro.spatial.conesearch import BruteForceIndex
from repro.spatial.zones import ZoneIndex, zone_id


class TestZoneId:
    def test_paper_formula(self):
        # Zone = floor((dec + 90) / h), h = 30 arcsec.
        h = 30.0 / 3600.0
        assert zone_id(-90.0) == 0
        assert zone_id(0.0) == int(90.0 / h)
        assert zone_id(0.0) == 10800

    def test_monotone_in_dec(self):
        dec = np.linspace(-89, 89, 500)
        zones = zone_id(dec)
        assert np.all(np.diff(zones) >= 0)

    def test_custom_height(self):
        assert zone_id(0.0, zone_height_deg=1.0) == 90
        assert zone_id(0.5, zone_height_deg=1.0) == 90
        assert zone_id(1.0, zone_height_deg=1.0) == 91

    def test_bad_height(self):
        with pytest.raises(SpatialError):
            zone_id(0.0, zone_height_deg=0.0)

    def test_bad_dec(self):
        with pytest.raises(SpatialError):
            zone_id(100.0)


class TestZoneIndexStructure:
    def test_sorted_by_zone_then_ra(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        assert np.all(np.diff(index.zone) >= 0)
        # within each zone, ra ascending
        same_zone = index.zone[1:] == index.zone[:-1]
        assert np.all(index.ra[1:][same_zone] >= index.ra[:-1][same_zone])

    def test_source_index_roundtrip(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        assert np.allclose(ra[index.source_index], index.ra)
        assert np.allclose(dec[index.source_index], index.dec)

    def test_empty_index(self):
        index = ZoneIndex(np.empty(0), np.empty(0))
        assert len(index) == 0
        hits, dist = index.query(180.0, 0.0, 1.0)
        assert hits.size == 0 and dist.size == 0

    def test_stats(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        stats = index.stats()
        assert stats.n_objects == len(ra)
        assert stats.n_zones > 100  # 14 deg / 30 arcsec spread
        assert stats.max_zone_population >= 1

    def test_mismatched_inputs(self):
        with pytest.raises(SpatialError):
            ZoneIndex(np.zeros(3), np.zeros(4))

    def test_zone_slice_contains_only_that_zone(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        zid = int(index.zone[len(index) // 2])
        sl = index.zone_slice(zid)
        assert np.all(index.zone[sl] == zid)
        # and is maximal: neighbors differ
        if sl.start > 0:
            assert index.zone[sl.start - 1] != zid
        if sl.stop < len(index):
            assert index.zone[sl.stop] != zid


class TestZoneQuery:
    def test_matches_brute_force(self, scatter_points, rng):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        brute = BruteForceIndex(ra, dec)
        for _ in range(25):
            q = int(rng.integers(0, len(ra)))
            radius = float(rng.uniform(0.02, 1.5))
            got, got_d = index.query(ra[q], dec[q], radius)
            want, want_d = brute.query(ra[q], dec[q], radius)
            assert set(got.tolist()) == set(want.tolist())
            assert np.allclose(np.sort(got_d), np.sort(want_d))

    def test_self_included_at_distance_zero(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        hits, dist = index.query(ra[0], dec[0], 0.1)
        assert 0 in hits.tolist()
        assert dist[hits.tolist().index(0)] == pytest.approx(0.0, abs=1e-12)

    def test_strict_inequality_excludes_boundary(self):
        # distance < r, per the paper's @r2 > chord^2 predicate
        index = ZoneIndex(np.array([180.0, 180.0]), np.array([0.0, 1.0]))
        # exact 1-deg chord distance between the two points
        exact = 2 * np.sin(np.deg2rad(1.0) / 2) * 180.0 / np.pi
        hits, _ = index.query(180.0, 0.0, exact * 0.9999)
        assert hits.tolist() == [0]

    def test_zero_radius(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        hits, _ = index.query(ra[0], dec[0], 0.0)
        assert hits.size == 0  # strict < 0 matches nothing

    def test_negative_radius_rejected(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        with pytest.raises(SpatialError):
            index.query(180.0, 0.0, -1.0)

    def test_count(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        hits, _ = index.query(ra[5], dec[5], 0.7)
        assert index.count(ra[5], dec[5], 0.7) == hits.size

    def test_query_point_not_in_index(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        brute = BruteForceIndex(ra, dec)
        got, _ = index.query(181.234, 1.567, 0.8)
        want, _ = brute.query(181.234, 1.567, 0.8)
        assert set(got.tolist()) == set(want.tolist())

    def test_high_declination_ra_widening(self, rng):
        # at dec ~ 75 the RA window must widen by ~4x; verify correctness
        n = 2000
        ra = rng.uniform(100.0, 120.0, n)
        dec = rng.uniform(73.0, 77.0, n)
        index = ZoneIndex(ra, dec)
        brute = BruteForceIndex(ra, dec)
        for q in (10, 500, 1500):
            got, _ = index.query(ra[q], dec[q], 1.0)
            want, _ = brute.query(ra[q], dec[q], 1.0)
            assert set(got.tolist()) == set(want.tolist())


class TestScanRanges:
    def test_ranges_cover_all_hits(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        hits, _ = index.query(ra[7], dec[7], 0.6)
        # map hits (source positions) back to sorted rows
        inverse = np.empty(len(index), dtype=np.int64)
        inverse[index.source_index] = np.arange(len(index))
        hit_rows = set(inverse[hits].tolist())
        covered: set[int] = set()
        for start, stop in index.scan_ranges(ra[7], dec[7], 0.6):
            covered.update(range(start, stop))
        assert hit_rows <= covered

    def test_ranges_are_bounded(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        total = sum(
            stop - start for start, stop in index.scan_ranges(181.0, 1.0, 0.3)
        )
        assert total < len(index)  # a cone scan is not a full scan
