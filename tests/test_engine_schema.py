"""Table schemas."""

import pytest

from repro.engine.schema import Column, TableSchema, schema
from repro.engine.types import ColumnType
from repro.errors import SchemaError


def galaxy_schema() -> TableSchema:
    return schema(
        "galaxy",
        {
            "objid": ColumnType.INT64,
            "ra": ColumnType.FLOAT64,
            "dec": ColumnType.FLOAT64,
            "i": ColumnType.FLOAT64,
        },
        primary_key="objid",
    )


class TestTableSchema:
    def test_column_names(self):
        assert galaxy_schema().column_names == ("objid", "ra", "dec", "i")

    def test_column_lookup_case_insensitive(self):
        assert galaxy_schema().column("RA").type is ColumnType.FLOAT64

    def test_missing_column(self):
        with pytest.raises(SchemaError):
            galaxy_schema().column("z")

    def test_has_column(self):
        s = galaxy_schema()
        assert s.has_column("objid") and not s.has_column("zz")

    def test_row_byte_width(self):
        assert galaxy_schema().row_byte_width == 32

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (Column("a", ColumnType.INT64), Column("A", ColumnType.INT64)),
            )

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ())

    def test_bad_primary_key(self):
        with pytest.raises(SchemaError):
            schema("t", {"a": ColumnType.INT64}, primary_key="b")

    def test_bad_identifier(self):
        with pytest.raises(SchemaError):
            schema("bad name", {"a": ColumnType.INT64})
        with pytest.raises(SchemaError):
            schema("t", {"1col": ColumnType.INT64})
        with pytest.raises(SchemaError):
            schema("", {"a": ColumnType.INT64})
