"""Partitioned execution across simulated servers."""

import numpy as np
import pytest

from repro.cluster.executor import SqlServerCluster, run_partitioned


@pytest.fixture(scope="module")
def partitioned(sky, target_region, kcorr, config):
    return run_partitioned(
        sky.catalog, target_region, kcorr, config, n_servers=2,
        compute_members=False,
    )


class TestClusterRun:
    def test_per_server_runs(self, partitioned):
        assert len(partitioned.runs) == 2
        assert [r.server for r in partitioned.runs] == [0, 1]

    def test_galaxies_duplicated_across_servers(self, partitioned, sky):
        assert partitioned.total_galaxies > sky.n_galaxies

    def test_elapsed_is_max(self, partitioned):
        per_server = [r.total_stats.elapsed_s for r in partitioned.runs]
        assert partitioned.elapsed_s == max(per_server)

    def test_cpu_and_io_are_sums(self, partitioned):
        assert partitioned.cpu_s == pytest.approx(
            sum(r.total_stats.cpu_s for r in partitioned.runs)
        )
        assert partitioned.io_ops == sum(
            r.total_stats.io_ops for r in partitioned.runs
        )

    def test_task_stats_accessible(self, partitioned):
        stats = partitioned.task_stats(0)
        assert "fBCGCandidate" in stats

    def test_merged_catalogs_deduplicated(self, partitioned):
        assert np.unique(partitioned.candidates.objid).size == len(
            partitioned.candidates
        )
        assert np.unique(partitioned.clusters.objid).size == len(
            partitioned.clusters
        )

    def test_clusters_within_target(self, partitioned, target_region):
        clusters = partitioned.clusters
        assert np.all(target_region.contains(clusters.ra, clusters.dec))

    def test_members_computed_when_requested(self, sky, target_region,
                                             kcorr, config):
        cluster = SqlServerCluster(kcorr, config, n_servers=2,
                                   compute_members=True)
        result = cluster.run(sky.catalog, target_region)
        assert len(result.members) > 0


class TestParallelExecution:
    def test_parallel_matches_sequential(self, sky, target_region, kcorr,
                                         config, partitioned):
        import numpy as np

        parallel = SqlServerCluster(
            kcorr, config, n_servers=2, compute_members=False,
            backend="threads",
        ).run(sky.catalog, target_region)
        assert np.array_equal(parallel.clusters.objid,
                              partitioned.clusters.objid)
        assert np.array_equal(parallel.candidates.objid,
                              partitioned.candidates.objid)

    def test_wall_clock_recorded_only_in_parallel(self, sky, target_region,
                                                  kcorr, config, partitioned):
        assert partitioned.wall_s is None
        parallel = SqlServerCluster(
            kcorr, config, n_servers=2, compute_members=False,
            backend="threads",
        ).run(sky.catalog, target_region)
        assert parallel.wall_s is not None and parallel.wall_s > 0

    def test_runs_ordered_by_server(self, sky, target_region, kcorr, config):
        parallel = SqlServerCluster(
            kcorr, config, n_servers=3, compute_members=False,
            backend="threads",
        ).run(sky.catalog, target_region)
        assert [r.server for r in parallel.runs] == [0, 1, 2]


class TestRemovedParallelFlag:
    """The deprecated boolean flag finished its cycle and is gone."""

    def test_cluster_rejects_removed_flag(self, kcorr, config):
        with pytest.raises(TypeError, match="parallel"):
            SqlServerCluster(
                kcorr, config, n_servers=2, compute_members=False,
                parallel=True,
            )

    def test_run_partitioned_rejects_removed_flag(
        self, sky, target_region, kcorr, config
    ):
        with pytest.raises(TypeError, match="parallel"):
            run_partitioned(
                sky.catalog, target_region, kcorr, config, n_servers=2,
                compute_members=False, parallel=False,
            )


class TestEngineConfigPlumbing:
    def test_cluster_carries_engine_config(self, kcorr, config):
        from repro.engine.config import EngineConfig

        cluster = SqlServerCluster(
            kcorr, config, n_servers=2, compute_members=False,
            engine_config=EngineConfig(intra_query_workers=2),
        )
        assert cluster.engine_config.intra_query_workers == 2
        assert cluster.intra_query_workers == 2

    def test_workers_override_replaces_config(self, kcorr, config):
        from repro.engine.config import EngineConfig

        cluster = SqlServerCluster(
            kcorr, config, n_servers=2, compute_members=False,
            engine_config=EngineConfig(intra_query_workers=1),
            intra_query_workers=3,
        )
        assert cluster.engine_config.intra_query_workers == 3

    def test_config_rides_into_workunits(self, kcorr, config, target_region,
                                         sky):
        from repro.cluster.partitioning import make_partitions
        from repro.engine.config import EngineConfig

        cluster = SqlServerCluster(
            kcorr, config, n_servers=2, compute_members=False,
            engine_config=EngineConfig(intra_query_workers=2),
        )
        layout = make_partitions(target_region, config.buffer_deg, 2)
        units = cluster.make_workunits(sky.catalog, layout)
        assert all(
            u.engine_config.intra_query_workers == 2 for u in units
        )

    def test_run_partitioned_answers_identical_with_config(
        self, sky, target_region, kcorr, config, partitioned
    ):
        from repro.engine.config import EngineConfig

        result = run_partitioned(
            sky.catalog, target_region, kcorr, config, n_servers=2,
            compute_members=False,
            engine_config=EngineConfig(intra_query_workers=2),
        )
        assert np.array_equal(result.clusters.objid,
                              partitioned.clusters.objid)


class TestElapsedStory:
    def test_sequential_elapsed_is_modeled(self, partitioned):
        assert partitioned.backend == "sequential"
        assert partitioned.wall_s is None
        assert partitioned.elapsed_s == partitioned.modeled_elapsed_s

    def test_parallel_elapsed_is_measured(self, sky, target_region, kcorr,
                                          config):
        parallel = SqlServerCluster(
            kcorr, config, n_servers=2, compute_members=False,
            backend="threads",
        ).run(sky.catalog, target_region)
        assert parallel.elapsed_s == parallel.wall_s
        # the modeled number stays available for Table 1 accounting
        per_server = [r.total_stats.elapsed_s for r in parallel.runs]
        assert parallel.modeled_elapsed_s == max(per_server)
