"""Grid nodes and the paper's hardware specs."""

import pytest

from repro.errors import GridError
from repro.grid.resources import ClusterSpec, Node, sql_cluster, tam_cluster


class TestNode:
    def test_cpu_scale(self):
        node = Node("n", cpu_mhz=600.0)
        assert node.cpu_scale(2600.0) == pytest.approx(2600.0 / 600.0)

    def test_cpu_scale_reference_positive(self):
        with pytest.raises(GridError):
            Node("n", cpu_mhz=600.0).cpu_scale(0.0)

    def test_fits_in_ram(self):
        node = Node("n", cpu_mhz=600.0, ram_mb=1024.0)
        assert node.fits_in_ram(512 * 1024 * 1024)
        assert not node.fits_in_ram(2 * 1024 * 1024 * 1024)

    def test_slots_equal_cpus(self):
        assert Node("n", cpu_mhz=1.0, n_cpus=2).slots == 2

    def test_invalid_resources(self):
        with pytest.raises(GridError):
            Node("n", cpu_mhz=0.0)
        with pytest.raises(GridError):
            Node("n", cpu_mhz=1.0, n_cpus=0)


class TestPaperClusters:
    def test_tam_spec(self):
        # "5 nodes, each one a dual-600-MHz PIII ... 1 GB of RAM"
        cluster = tam_cluster()
        assert len(cluster.nodes) == 5
        assert all(n.cpu_mhz == 600.0 for n in cluster.nodes)
        assert all(n.n_cpus == 2 for n in cluster.nodes)
        assert all(n.ram_mb == 1024.0 for n in cluster.nodes)
        # "could process ten target fields in parallel"
        assert cluster.total_slots == 10

    def test_sql_spec(self):
        # "3 nodes, each one a dual 2.6 GHz Xeon with 2 GB of RAM"
        cluster = sql_cluster()
        assert len(cluster.nodes) == 3
        assert all(n.cpu_mhz == 2600.0 for n in cluster.nodes)
        assert all(n.ram_mb == 2048.0 for n in cluster.nodes)

    def test_cpu_ratio_is_table2_factor(self):
        # Table 2: "the TAM CPU is about 4 times slower"
        tam_node = tam_cluster().nodes[0]
        assert tam_node.cpu_scale(2600.0) == pytest.approx(4.33, abs=0.01)

    def test_empty_cluster_rejected(self):
        with pytest.raises(GridError):
            ClusterSpec("empty", ())
