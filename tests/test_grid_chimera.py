"""Chimera-style virtual data catalog."""

import pytest

from repro.errors import GridError
from repro.grid.chimera import Derivation, Transformation, VirtualDataCatalog


@pytest.fixture()
def vdc():
    """archive -> (target, buffer) -> candidates -> clusters."""
    catalog = VirtualDataCatalog()
    cut = Transformation("cutFields")
    find = Transformation("maxBCG")
    pick = Transformation("pickClusters")

    catalog.register_executor(
        cut,
        lambda inputs, params: {
            "target.f1": [x for x in inputs["archive"] if x % 2 == 0],
            "buffer.f1": list(inputs["archive"]),
        },
    )
    catalog.register_executor(
        find,
        lambda inputs, params: {
            "candidates.f1": [
                x for x in inputs["target.f1"] if x >= params["threshold"]
            ]
        },
    )
    catalog.register_executor(
        pick,
        lambda inputs, params: {"clusters.f1": inputs["candidates.f1"][:1]},
    )

    catalog.add_input_file("archive", [1, 2, 3, 4, 5, 6])
    catalog.add_derivation(
        Derivation(cut, ("archive",), ("target.f1", "buffer.f1"))
    )
    catalog.add_derivation(
        Derivation(find, ("target.f1",), ("candidates.f1",),
                   parameters={"threshold": 4})
    )
    catalog.add_derivation(
        Derivation(pick, ("candidates.f1",), ("clusters.f1",))
    )
    return catalog


class TestMaterialization:
    def test_recursive_materialize(self, vdc):
        assert vdc.materialize("clusters.f1") == [4]

    def test_intermediates_cached(self, vdc):
        vdc.materialize("clusters.f1")
        assert vdc.is_materialized("target.f1")
        assert vdc.is_materialized("candidates.f1")

    def test_second_request_reuses(self, vdc):
        vdc.materialize("candidates.f1")
        count = vdc.materialized_count()
        vdc.materialize("candidates.f1")
        assert vdc.materialized_count() == count

    def test_get_requires_materialized(self, vdc):
        with pytest.raises(GridError):
            vdc.get("clusters.f1")
        vdc.materialize("clusters.f1")
        assert vdc.get("clusters.f1") == [4]

    def test_unknown_file(self, vdc):
        with pytest.raises(GridError):
            vdc.materialize("nope")


class TestProvenance:
    def test_chain_order(self, vdc):
        chain = vdc.provenance("clusters.f1")
        names = [d.transformation.name for d in chain]
        assert names == ["cutFields", "maxBCG", "pickClusters"]

    def test_raw_input_has_empty_chain(self, vdc):
        assert vdc.provenance("archive") == []

    def test_unknown_file_rejected(self, vdc):
        with pytest.raises(GridError):
            vdc.provenance("ghost")


class TestValidation:
    def test_duplicate_derivation_rejected(self, vdc):
        with pytest.raises(GridError):
            vdc.add_derivation(
                Derivation(Transformation("dup"), (), ("target.f1",))
            )

    def test_missing_executor(self):
        catalog = VirtualDataCatalog()
        catalog.add_derivation(
            Derivation(Transformation("ghost"), (), ("out",))
        )
        with pytest.raises(GridError):
            catalog.materialize("out")

    def test_executor_must_produce_outputs(self):
        catalog = VirtualDataCatalog()
        tr = Transformation("lazy")
        catalog.register_executor(tr, lambda inputs, params: {})
        catalog.add_derivation(Derivation(tr, (), ("out",)))
        with pytest.raises(GridError):
            catalog.materialize("out")
