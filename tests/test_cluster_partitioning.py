"""Zone-range partitioning layout (Figure 6)."""

import pytest

from repro.cluster.partitioning import make_partitions
from repro.errors import PartitionError
from repro.skyserver.regions import PAPER_TARGET, RegionBox


class TestLayout:
    def test_three_way_split(self):
        layout = make_partitions(RegionBox(0.0, 10.0, 0.0, 6.0), 0.5, 3)
        assert layout.n_servers == 3
        heights = [p.target.height for p in layout.partitions]
        assert all(h == pytest.approx(2.0) for h in heights)

    def test_targets_cover_disjointly(self):
        target = RegionBox(0.0, 10.0, 0.0, 6.0)
        layout = make_partitions(target, 0.5, 3)
        total = sum(p.target.flat_area() for p in layout.partitions)
        assert total == pytest.approx(target.flat_area())

    def test_figure6_stripe_order_top_first(self):
        layout = make_partitions(RegionBox(0.0, 10.0, 0.0, 6.0), 0.5, 3)
        # S1 (server 0) is the top stripe in Figure 6
        assert layout.partitions[0].target.dec_min == pytest.approx(4.0)
        assert layout.partitions[-1].target.dec_min == pytest.approx(0.0)

    def test_buffer_contains_target(self):
        layout = make_partitions(RegionBox(0.0, 10.0, 0.0, 6.0), 0.5, 3)
        for p in layout.partitions:
            assert p.buffer.contains_box(p.target)
            assert p.imported.contains_box(p.buffer)

    def test_skirt_is_two_radii(self):
        layout = make_partitions(RegionBox(0.0, 10.0, 0.0, 6.0), 0.5, 3)
        middle = layout.partitions[1]
        # interior stripe: import extends 1 deg beyond the native stripe
        assert middle.imported.dec_min == pytest.approx(middle.target.dec_min - 1.0)
        assert middle.imported.dec_max == pytest.approx(middle.target.dec_max + 1.0)

    def test_import_clipped_to_global(self):
        layout = make_partitions(RegionBox(0.0, 10.0, 0.0, 6.0), 0.5, 3)
        global_import = layout.global_import
        for p in layout.partitions:
            assert global_import.contains_box(p.imported)

    def test_single_server_no_duplication(self):
        layout = make_partitions(RegionBox(0.0, 10.0, 0.0, 6.0), 0.5, 1)
        assert layout.duplicated_area() == pytest.approx(0.0)
        assert layout.duplication_factor() == pytest.approx(1.0)


class TestPaperNumbers:
    def test_duplicated_area_figure6(self):
        # "Total duplicated data = 4 x 13 deg^2" for the paper's region
        layout = make_partitions(PAPER_TARGET, 0.5, 3)
        assert layout.duplicated_area() == pytest.approx(4 * 13.0)

    def test_global_regions(self):
        layout = make_partitions(PAPER_TARGET, 0.5, 3)
        assert layout.global_import.flat_area() == pytest.approx(104.0)
        assert layout.global_buffer.flat_area() == pytest.approx(84.0)

    def test_row_duplication_factor_reasonable(self):
        # the paper imported 2.35M rows for a 1.57M-row region: ~1.49x
        layout = make_partitions(PAPER_TARGET, 0.5, 3)
        assert layout.duplication_factor() == pytest.approx(1.5, abs=0.05)


class TestValidation:
    def test_zero_servers(self):
        with pytest.raises(PartitionError):
            make_partitions(PAPER_TARGET, 0.5, 0)

    def test_zero_buffer(self):
        with pytest.raises(PartitionError):
            make_partitions(PAPER_TARGET, 0.0, 2)

    def test_thin_stripes_allowed_but_expensive(self):
        # stripes thinner than the skirt are still correct; they just
        # duplicate more — duplication grows with the server count
        region = RegionBox(0.0, 10.0, 0.0, 6.0)
        few = make_partitions(region, 0.5, 3)
        many = make_partitions(region, 0.5, 12)
        assert many.duplication_factor() > few.duplication_factor()
