"""The batch job queue."""

import pytest

import time

from repro.casjobs.queue import JobQueue, JobStatus, QueueClass
from repro.errors import CasJobsError


@pytest.fixture()
def queue():
    return JobQueue()


class TestLifecycle:
    def test_submit_assigns_ids(self, queue):
        a = queue.submit("alice", "SELECT 1", "dr1")
        b = queue.submit("bob", "SELECT 2", "dr1")
        assert a.job_id != b.job_id
        assert queue.pending_count() == 2

    def test_fifo_execution(self, queue):
        queue.submit("alice", "first", "dr1")
        queue.submit("alice", "second", "dr1")
        executed = []
        queue.drain(lambda job: executed.append(job.query))
        assert executed == ["first", "second"]

    def test_success_records_result_and_times(self, queue):
        job = queue.submit("alice", "q", "dr1")
        queue.run_next(lambda j: 42)
        assert job.status is JobStatus.FINISHED
        assert job.result == 42
        assert job.queue_seconds is not None
        assert job.run_seconds is not None

    def test_failure_isolated(self, queue):
        queue.submit("alice", "bad", "dr1")
        good = queue.submit("alice", "good", "dr1")

        def executor(job):
            if job.query == "bad":
                raise ValueError("boom")
            return "ok"

        assert queue.drain(executor) == 2
        assert queue.get(1).status is JobStatus.FAILED
        assert "boom" in queue.get(1).error
        assert good.status is JobStatus.FINISHED

    def test_run_next_idle(self, queue):
        assert queue.run_next(lambda j: None) is None


class TestCancellation:
    def test_cancel_queued(self, queue):
        job = queue.submit("alice", "q", "dr1")
        queue.cancel(job.job_id)
        assert job.status is JobStatus.CANCELLED
        assert queue.drain(lambda j: 1) == 0

    def test_cannot_cancel_finished(self, queue):
        job = queue.submit("alice", "q", "dr1")
        queue.drain(lambda j: 1)
        with pytest.raises(CasJobsError):
            queue.cancel(job.job_id)


class TestQueueClasses:
    def test_default_is_long(self, queue):
        job = queue.submit("alice", "q", "dr1")
        assert job.queue_class is QueueClass.LONG

    def test_budgets(self):
        assert QueueClass.QUICK.budget_seconds == 60.0
        assert QueueClass.LONG.budget_seconds == 8 * 3600.0

    def test_quick_within_budget_succeeds(self, queue):
        job = queue.submit("alice", "q", "dr1", queue_class=QueueClass.QUICK)
        queue.run_next(lambda j: "fast")
        assert job.status is JobStatus.FINISHED

    def test_quick_over_budget_killed(self, queue, monkeypatch):
        job = queue.submit("alice", "slow", "dr1",
                           queue_class=QueueClass.QUICK)
        # simulate a 2-minute execution without sleeping
        clock = iter([1000.0, 1120.0])
        monkeypatch.setattr(time, "time", lambda: next(clock, 1120.0))
        queue.run_next(lambda j: "too slow")
        assert job.status is JobStatus.FAILED
        assert "resubmit" in job.error
        assert job.result is None

    def test_long_tolerates_same_duration(self, queue, monkeypatch):
        job = queue.submit("alice", "slow", "dr1",
                           queue_class=QueueClass.LONG)
        clock = iter([1000.0, 1120.0])
        monkeypatch.setattr(time, "time", lambda: next(clock, 1120.0))
        queue.run_next(lambda j: "ok")
        assert job.status is JobStatus.FINISHED


class TestViews:
    def test_jobs_of(self, queue):
        queue.submit("alice", "a", "dr1")
        queue.submit("bob", "b", "dr1")
        queue.submit("alice", "c", "dr1")
        assert len(queue.jobs_of("alice")) == 2

    def test_unknown_job(self, queue):
        with pytest.raises(CasJobsError):
            queue.get(99)

    def test_terminal_states(self):
        assert JobStatus.FINISHED.is_terminal
        assert JobStatus.FAILED.is_terminal
        assert JobStatus.CANCELLED.is_terminal
        assert not JobStatus.SUBMITTED.is_terminal
        assert not JobStatus.EXECUTING.is_terminal
