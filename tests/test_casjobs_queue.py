"""The batch job queue."""

import pytest

import time

from repro.casjobs.queue import JobQueue, JobStatus, QueueClass
from repro.errors import CasJobsError


@pytest.fixture()
def queue():
    return JobQueue()


class TestLifecycle:
    def test_submit_assigns_ids(self, queue):
        a = queue.submit("alice", "SELECT 1", "dr1")
        b = queue.submit("bob", "SELECT 2", "dr1")
        assert a.job_id != b.job_id
        assert queue.pending_count() == 2

    def test_fifo_execution(self, queue):
        queue.submit("alice", "first", "dr1")
        queue.submit("alice", "second", "dr1")
        executed = []
        queue.drain(lambda job: executed.append(job.query))
        assert executed == ["first", "second"]

    def test_success_records_result_and_times(self, queue):
        job = queue.submit("alice", "q", "dr1")
        queue.run_next(lambda j: 42)
        assert job.status is JobStatus.FINISHED
        assert job.result == 42
        assert job.queue_seconds is not None
        assert job.run_seconds is not None

    def test_failure_isolated(self, queue):
        queue.submit("alice", "bad", "dr1")
        good = queue.submit("alice", "good", "dr1")

        def executor(job):
            if job.query == "bad":
                raise ValueError("boom")
            return "ok"

        assert queue.drain(executor) == 2
        assert queue.get(1).status is JobStatus.FAILED
        assert "boom" in queue.get(1).error
        assert good.status is JobStatus.FINISHED

    def test_run_next_idle(self, queue):
        assert queue.run_next(lambda j: None) is None


class TestCancellation:
    def test_cancel_queued(self, queue):
        job = queue.submit("alice", "q", "dr1")
        queue.cancel(job.job_id)
        assert job.status is JobStatus.CANCELLED
        assert queue.drain(lambda j: 1) == 0

    def test_cannot_cancel_finished(self, queue):
        job = queue.submit("alice", "q", "dr1")
        queue.drain(lambda j: 1)
        with pytest.raises(CasJobsError):
            queue.cancel(job.job_id)


class TestQueueClasses:
    def test_default_is_long(self, queue):
        job = queue.submit("alice", "q", "dr1")
        assert job.queue_class is QueueClass.LONG

    def test_budgets(self):
        assert QueueClass.QUICK.budget_seconds == 60.0
        assert QueueClass.LONG.budget_seconds == 8 * 3600.0

    def test_quick_within_budget_succeeds(self, queue):
        job = queue.submit("alice", "q", "dr1", queue_class=QueueClass.QUICK)
        queue.run_next(lambda j: "fast")
        assert job.status is JobStatus.FINISHED

    def test_quick_over_budget_killed(self, queue, monkeypatch):
        job = queue.submit("alice", "slow", "dr1",
                           queue_class=QueueClass.QUICK)
        # simulate a 2-minute execution without sleeping
        clock = iter([1000.0, 1120.0])
        monkeypatch.setattr(time, "time", lambda: next(clock, 1120.0))
        queue.run_next(lambda j: "too slow")
        assert job.status is JobStatus.FAILED
        assert "resubmit" in job.error
        assert job.result is None

    def test_long_tolerates_same_duration(self, queue, monkeypatch):
        job = queue.submit("alice", "slow", "dr1",
                           queue_class=QueueClass.LONG)
        clock = iter([1000.0, 1120.0])
        monkeypatch.setattr(time, "time", lambda: next(clock, 1120.0))
        queue.run_next(lambda j: "ok")
        assert job.status is JobStatus.FINISHED


class TestViews:
    def test_jobs_of(self, queue):
        queue.submit("alice", "a", "dr1")
        queue.submit("bob", "b", "dr1")
        queue.submit("alice", "c", "dr1")
        assert len(queue.jobs_of("alice")) == 2

    def test_unknown_job(self, queue):
        with pytest.raises(CasJobsError):
            queue.get(99)

    def test_terminal_states(self):
        assert JobStatus.FINISHED.is_terminal
        assert JobStatus.FAILED.is_terminal
        assert JobStatus.CANCELLED.is_terminal
        assert not JobStatus.SUBMITTED.is_terminal
        assert not JobStatus.EXECUTING.is_terminal


class TestTransitionEdgeCases:
    """The explicit transition API the scheduler drives."""

    def test_take_claims_fifo_and_stamps_attempt(self, queue):
        first = queue.submit("alice", "a", "dr1")
        queue.submit("bob", "b", "dr1")
        taken = queue.take()
        assert taken.job_id == first.job_id
        assert taken.status is JobStatus.EXECUTING
        assert taken.attempts == 1
        assert taken.started_at is not None

    def test_take_honors_queue_class(self, queue):
        queue.submit("alice", "slow", "dr1", queue_class=QueueClass.LONG)
        quick = queue.submit("bob", "fast", "dr1",
                             queue_class=QueueClass.QUICK)
        taken = queue.take(queue_class=QueueClass.QUICK)
        assert taken.job_id == quick.job_id
        assert queue.take(queue_class=QueueClass.QUICK) is None

    def test_ineligible_jobs_keep_their_position(self, queue):
        blocked = queue.submit("alice", "a", "dr1")
        other = queue.submit("bob", "b", "dr1")
        taken = queue.take(eligible=lambda j: j.owner != "alice")
        assert taken.job_id == other.job_id
        # alice's job was skipped, not dropped: still first in line
        queue.finish(other.job_id, None)
        assert queue.take().job_id == blocked.job_id

    def test_cancelled_jobs_leave_the_pending_deque(self, queue):
        doomed = queue.submit("alice", "a", "dr1")
        queue.cancel(doomed.job_id)
        assert queue.pending_count() == 0  # removed eagerly, not lazily
        assert queue.take() is None

    def test_requeue_resets_attempt_timestamps(self, queue):
        job = queue.submit("alice", "a", "dr1")
        queue.take()
        first_queued_at = job.queued_at
        queue.requeue(job.job_id, "timed out")
        assert job.status is JobStatus.SUBMITTED
        assert job.started_at is None and job.finished_at is None
        assert job.result is None
        assert job.attempts == 1  # history survives the reset
        assert job.error == "timed out"
        assert job.queued_at >= first_queued_at
        assert job.run_seconds is None

    def test_requeue_goes_to_the_back_of_the_class_queue(self, queue):
        job = queue.submit("alice", "a", "dr1")
        queue.take()
        waiting = queue.submit("bob", "b", "dr1")
        queue.requeue(job.job_id, "timeout")
        # the retry must not jump ahead of work that never misbehaved
        assert queue.take().job_id == waiting.job_id
        queue.finish(waiting.job_id, None)
        assert queue.take().job_id == job.job_id

    def test_requeue_then_take_counts_second_attempt(self, queue):
        job = queue.submit("alice", "a", "dr1")
        queue.take()
        queue.requeue(job.job_id, "timeout")
        retaken = queue.take()
        assert retaken.job_id == job.job_id
        assert retaken.attempts == 2

    def test_transitions_require_executing(self, queue):
        job = queue.submit("alice", "a", "dr1")
        for move in (
            lambda: queue.finish(job.job_id, None),
            lambda: queue.fail(job.job_id, "boom"),
            lambda: queue.requeue(job.job_id, "boom"),
        ):
            with pytest.raises(CasJobsError, match="not executing"):
                move()

    def test_finished_job_rejects_further_transitions(self, queue):
        job = queue.submit("alice", "a", "dr1")
        queue.take()
        queue.finish(job.job_id, 42)
        with pytest.raises(CasJobsError, match="not executing"):
            queue.fail(job.job_id, "late failure")


class TestTimingViews:
    def test_run_seconds_none_before_start(self, queue):
        job = queue.submit("alice", "a", "dr1")
        assert job.run_seconds is None
        assert job.queue_seconds is None

    def test_run_seconds_elapsed_while_executing(self, queue):
        """An in-flight job reports time-so-far, not None (the old bug)."""
        job = queue.submit("alice", "a", "dr1")
        queue.take()
        time.sleep(0.02)
        first = job.run_seconds
        assert first is not None and first >= 0.02
        time.sleep(0.01)
        assert job.run_seconds > first  # still ticking

    def test_run_seconds_frozen_after_finish(self, queue):
        job = queue.submit("alice", "a", "dr1")
        queue.take()
        queue.finish(job.job_id, None)
        frozen = job.run_seconds
        time.sleep(0.01)
        assert job.run_seconds == frozen

    def test_queue_seconds_measures_latest_attempt(self, queue):
        job = queue.submit("alice", "a", "dr1")
        queue.take()
        queue.requeue(job.job_id, "timeout")
        time.sleep(0.02)
        queue.take()
        assert job.queue_seconds == pytest.approx(
            job.started_at - job.queued_at
        )
        assert job.queue_seconds < 0.5  # the first attempt's wait is excluded


class TestCounts:
    def test_pending_count_per_class(self, queue):
        queue.submit("alice", "a", "dr1", queue_class=QueueClass.QUICK)
        queue.submit("bob", "b", "dr1", queue_class=QueueClass.LONG)
        queue.submit("carol", "c", "dr1", queue_class=QueueClass.LONG)
        assert queue.pending_count() == 3
        assert queue.pending_count(QueueClass.QUICK) == 1
        assert queue.pending_count(QueueClass.LONG) == 2

    def test_executing_count_per_owner(self, queue):
        queue.submit("alice", "a", "dr1")
        queue.submit("alice", "b", "dr1")
        queue.submit("bob", "c", "dr1")
        queue.take()
        queue.take()
        queue.take()
        assert queue.executing_count() == 3
        assert queue.executing_count("alice") == 2
        assert queue.executing_count("mallory") == 0
