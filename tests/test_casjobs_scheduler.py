"""The CasJobs scheduler: policy units plus the concurrency stress test."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bench.casjobs_load import (
    LoadSpec,
    build_demo_catalog,
    build_demo_site,
    check_no_lost_or_duplicated,
    run_load,
)
from repro.casjobs.queue import JobQueue, JobStatus, QueueClass
from repro.casjobs.scheduler import Scheduler, SchedulerConfig
from repro.casjobs.server import CasJobsService
from repro.errors import (
    CasJobsError,
    ConfigError,
    QueueFullError,
    QuotaExceededError,
)


def make_scheduler(executor, finalizer=None, **overrides):
    defaults = dict(pool="sequential", max_workers=1, retry_backoff_s=0.0)
    defaults.update(overrides)
    queue = JobQueue()
    return Scheduler(queue, executor, SchedulerConfig(**defaults), finalizer)


class TestConfig:
    @pytest.mark.parametrize("bad", [
        dict(max_workers=0),
        dict(quick_weight=0),
        dict(long_weight=-1),
        dict(per_user_limit=0),
        dict(high_water=0),
        dict(max_retries=-1),
    ])
    def test_rejects_bad_knobs(self, bad):
        with pytest.raises(ConfigError):
            SchedulerConfig(**bad)

    def test_attempt_timeout_defaults_to_class_budget(self):
        config = SchedulerConfig()
        queue = JobQueue()
        quick = queue.submit("a", "q", "t", queue_class=QueueClass.QUICK)
        long_ = queue.submit("a", "q", "t", queue_class=QueueClass.LONG)
        assert config.attempt_timeout(quick) == 60.0
        assert config.attempt_timeout(long_) == 8 * 3600.0
        override = SchedulerConfig(timeout_s=0.5)
        assert override.attempt_timeout(quick) == 0.5


class TestWeightedFairness:
    def test_rotation_interleaves_quick_over_long(self):
        order: list[int] = []
        scheduler = make_scheduler(lambda job: order.append(job.job_id),
                                   quick_weight=3, long_weight=1)
        longs = [scheduler.submit("u", "L", "t", queue_class=QueueClass.LONG)
                 for _ in range(4)]
        quicks = [scheduler.submit("u", "Q", "t", queue_class=QueueClass.QUICK)
                  for _ in range(4)]
        scheduler.run_until_idle(timeout_s=10)
        # rotation Q,Q,Q,L over a full backlog: three quicks per long
        expected = [quicks[0].job_id, quicks[1].job_id, quicks[2].job_id,
                    longs[0].job_id, quicks[3].job_id, longs[1].job_id,
                    longs[2].job_id, longs[3].job_id]
        assert order == expected

    def test_work_conserving_when_one_class_idle(self):
        order: list[str] = []
        scheduler = make_scheduler(lambda job: order.append(job.query))
        for k in range(5):
            scheduler.submit("u", f"L{k}", "t", queue_class=QueueClass.LONG)
        scheduler.run_until_idle(timeout_s=10)
        assert order == [f"L{k}" for k in range(5)]  # quick donates its slots


class TestPerUserLimit:
    def test_one_user_cannot_occupy_every_worker(self):
        peak: dict[str, int] = {}
        active: dict[str, int] = {}
        lock = threading.Lock()

        def executor(job):
            with lock:
                active[job.owner] = active.get(job.owner, 0) + 1
                peak[job.owner] = max(peak.get(job.owner, 0), active[job.owner])
            time.sleep(0.01)
            with lock:
                active[job.owner] -= 1

        scheduler = make_scheduler(executor, pool="threads", max_workers=4,
                                   per_user_limit=1)
        try:
            for _ in range(6):
                scheduler.submit("hog", "q", "t")
            for _ in range(3):
                scheduler.submit("other", "q", "t")
            scheduler.run_until_idle(timeout_s=30)
        finally:
            scheduler.close()
        assert peak["hog"] == 1
        assert peak["other"] == 1
        assert scheduler.stats.finished == 9

    def test_over_limit_jobs_keep_their_queue_position(self):
        order: list[str] = []
        scheduler = make_scheduler(lambda job: order.append(job.query),
                                   per_user_limit=1)
        scheduler.submit("a", "a1", "t")
        scheduler.submit("a", "a2", "t")
        scheduler.submit("b", "b1", "t")
        scheduler.run_until_idle(timeout_s=10)
        # sequential pool: a1 finishes before a2 dispatches, so pure FIFO
        assert order == ["a1", "a2", "b1"]


class TestLoadShedding:
    def test_submissions_shed_past_high_water(self):
        scheduler = make_scheduler(lambda job: None, high_water=3)
        for _ in range(3):
            # sequential pool runs at pump time only; nothing drains here
            scheduler.queue.submit("u", "q", "t")
        with pytest.raises(QueueFullError) as excinfo:
            scheduler.submit("u", "q", "t")
        assert excinfo.value.depth == 3
        assert excinfo.value.high_water == 3
        assert scheduler.stats.shed == 1
        scheduler.run_until_idle(timeout_s=10)
        scheduler.submit("u", "q", "t")  # drained: admissions reopen

    def test_service_surfaces_shedding(self):
        spec = LoadSpec(n_users=2, n_jobs=0, catalog_rows=100)
        service = build_demo_site(
            spec,
            SchedulerConfig(pool="sequential", max_workers=1, high_water=2),
        )
        service.submit("user00", "SELECT COUNT(*) AS n FROM galaxy", "dr1")
        service.submit("user01", "SELECT COUNT(*) AS n FROM galaxy", "dr1")
        with pytest.raises(QueueFullError):
            service.submit("user00", "SELECT COUNT(*) AS n FROM galaxy", "dr1")


class TestTimeoutsRetriesDeadLetters:
    def test_timed_out_attempt_retries_then_succeeds(self):
        def executor(job):
            if job.attempts == 1:
                time.sleep(0.3)
            return "done"

        scheduler = make_scheduler(executor, pool="threads", max_workers=2,
                                   timeout_s=0.05, max_retries=2)
        try:
            job = scheduler.submit("u", "q", "t")
            scheduler.run_until_idle(timeout_s=30)
        finally:
            scheduler.close()
        job = scheduler.queue.get(job.job_id)
        assert job.status is JobStatus.FINISHED
        assert job.result == "done"
        assert job.attempts == 2
        assert scheduler.stats.timeouts == 1
        assert scheduler.stats.retries == 1
        assert scheduler.dead_letters == []

    def test_retries_exhausted_dead_letters(self):
        def executor(job):
            time.sleep(0.3)

        scheduler = make_scheduler(executor, pool="threads", max_workers=2,
                                   timeout_s=0.03, max_retries=1)
        try:
            job = scheduler.submit("alice", "slow", "t",
                                   queue_class=QueueClass.QUICK)
            scheduler.run_until_idle(timeout_s=30)
        finally:
            scheduler.close()
        job = scheduler.queue.get(job.job_id)
        assert job.status is JobStatus.FAILED
        assert "retries exhausted" in job.error
        assert job.attempts == 2  # original + one retry
        assert scheduler.stats.dead_lettered == 1
        [letter] = scheduler.dead_letters
        assert letter.job_id == job.job_id
        assert letter.owner == "alice"
        assert letter.queue_class is QueueClass.QUICK
        assert letter.attempts == 2

    def test_executor_exception_fails_without_retry(self):
        def executor(job):
            raise ValueError("boom")

        scheduler = make_scheduler(executor, max_retries=3)
        job = scheduler.submit("u", "q", "t")
        scheduler.run_until_idle(timeout_s=10)
        job = scheduler.queue.get(job.job_id)
        assert job.status is JobStatus.FAILED
        assert "boom" in job.error
        assert job.attempts == 1  # deterministic failures do not retry
        assert scheduler.dead_letters == []

    def test_retry_backoff_delays_redispatch(self):
        redispatched = threading.Event()

        def executor(job):
            if job.attempts == 1:
                time.sleep(0.2)
            else:
                redispatched.set()
            return "ok"

        # two workers: the retry must not queue behind the abandoned
        # attempt's thread (its own timeout clock starts at dispatch)
        scheduler = make_scheduler(executor, pool="threads", max_workers=2,
                                   timeout_s=0.02, max_retries=1,
                                   retry_backoff_s=0.15)
        try:
            scheduler.submit("u", "q", "t")
            began = time.monotonic()
            scheduler.run_until_idle(timeout_s=30)
            waited = time.monotonic() - began
        finally:
            scheduler.close()
        assert redispatched.is_set()
        assert waited >= 0.15  # backoff gate held the retry back


class TestFinalizer:
    def test_finalizer_error_fails_the_job(self):
        def finalizer(job, result):
            raise QuotaExceededError("no room")

        scheduler = make_scheduler(lambda job: "data", finalizer=finalizer)
        job = scheduler.submit("u", "q", "t")
        scheduler.run_until_idle(timeout_s=10)
        job = scheduler.queue.get(job.job_id)
        assert job.status is JobStatus.FAILED
        assert "no room" in job.error
        assert scheduler.stats.failed == 1

    def test_finalizer_return_becomes_result(self):
        scheduler = make_scheduler(lambda job: 2,
                                   finalizer=lambda job, r: r * 21)
        job = scheduler.submit("u", "q", "t")
        scheduler.run_until_idle(timeout_s=10)
        assert scheduler.queue.get(job.job_id).result == 42


class TestServing:
    def test_background_serving_drains_submissions(self):
        scheduler = make_scheduler(lambda job: job.query.upper(),
                                   pool="threads", max_workers=2)
        try:
            scheduler.start()
            assert scheduler.serving
            with pytest.raises(CasJobsError):
                scheduler.start()  # double-start refused
            jobs = [scheduler.submit("u", f"q{k}", "t") for k in range(10)]
            deadline = time.monotonic() + 30
            while any(not scheduler.queue.get(j.job_id).status.is_terminal
                      for j in jobs):
                assert time.monotonic() < deadline
                time.sleep(0.005)
            scheduler.stop()
            assert not scheduler.serving
        finally:
            scheduler.close()
        assert all(scheduler.queue.get(j.job_id).result == f"Q{k}".upper()
                   for k, j in enumerate(jobs))

    def test_run_until_idle_watchdog(self):
        scheduler = make_scheduler(lambda job: time.sleep(1.0),
                                   pool="threads", max_workers=1)
        try:
            scheduler.submit("u", "q", "t")
            with pytest.raises(CasJobsError, match="did not go idle"):
                scheduler.run_until_idle(timeout_s=0.05)
        finally:
            scheduler.close()


class TestStress:
    """The acceptance stress: ≥100 jobs, ≥10 users, both classes, threads."""

    N_USERS = 12
    N_JOBS = 140
    QUOTA_ROWS = 20  # small enough that spooling hits quota mid-run

    @pytest.fixture(scope="class")
    def stressed(self):
        spec = LoadSpec(
            n_users=self.N_USERS, n_jobs=self.N_JOBS, quick_fraction=0.4,
            workers=4, per_user_limit=2, catalog_rows=8_000,
            spool_every=2, seed=77,
        )
        service = CasJobsService("stress", spec.scheduler_config())
        service.add_context(
            "dr1", build_demo_catalog(spec.catalog_rows, spec.seed)
        )
        for u in range(spec.n_users):
            service.register_user(f"user{u:02d}", quota_rows=self.QUOTA_ROWS)
        report = run_load(spec, service=service)
        return spec, service, report

    def test_no_lost_or_duplicated_jobs(self, stressed):
        spec, service, report = stressed
        # every submission was either admitted or explicitly refused ...
        assert report.accepted + report.shed + report.quota_rejected == spec.n_jobs
        # ... and every admitted job is in the ledger, terminal exactly once
        check_no_lost_or_duplicated(service, report.accepted)
        assert report.stats.completed == report.accepted
        assert report.accepted >= 100  # the floor this test exists to hold

    def test_users_and_classes_both_present(self, stressed):
        spec, service, _ = stressed
        owners = {j.owner for j in service.queue.jobs()}
        classes = {j.queue_class for j in service.queue.jobs()}
        assert len(owners) >= 10
        assert classes == {QueueClass.QUICK, QueueClass.LONG}

    def test_quota_invariant_holds_under_concurrency(self, stressed):
        _, service, _ = stressed
        for u in range(self.N_USERS):
            mydb = service.mydb(f"user{u:02d}")
            assert mydb.rows_used() <= mydb.quota_rows
        # the quota actually bit: some spooling jobs failed on it
        quota_failures = [
            j for j in service.queue.jobs()
            if j.status is JobStatus.FAILED and j.error
            and "quota" in j.error
        ]
        assert quota_failures, "stress spec never reached the MyDB quota"

    def test_quick_queue_served_ahead_of_long(self, stressed):
        _, _, report = stressed
        quick_p95 = report.stats.p95_wait(QueueClass.QUICK)
        long_p95 = report.stats.p95_wait(QueueClass.LONG)
        assert quick_p95 < long_p95

    def test_every_failure_is_explained(self, stressed):
        _, service, _ = stressed
        for job in service.queue.jobs():
            if job.status is JobStatus.FAILED:
                assert job.error


class TestZipfCacheWorkload:
    """The zipfian many-user workload and the cache A/B comparison."""

    SPEC = LoadSpec(
        n_users=3, n_jobs=30, quick_fraction=0.3, catalog_rows=2_000,
        zipf_queries=4, zipf_s=1.2, workers=2, pool="threads", seed=42,
    )

    def test_query_pool_deterministic(self):
        from repro.bench.casjobs_load import build_query_pool

        assert build_query_pool(self.SPEC) == build_query_pool(self.SPEC)
        assert len(build_query_pool(self.SPEC)) == self.SPEC.zipf_queries

    def test_comparison_requires_zipf_pool(self):
        from repro.bench.casjobs_load import run_zipf_cache_comparison
        import dataclasses

        flat = dataclasses.replace(self.SPEC, zipf_queries=0)
        with pytest.raises(ValueError):
            run_zipf_cache_comparison(flat)

    def test_cache_on_off_byte_identical(self):
        from repro.bench.casjobs_load import run_zipf_cache_comparison

        comparison = run_zipf_cache_comparison(self.SPEC)
        assert comparison.identical
        # the skewed pool repeats queries, so the cached site really hit
        assert comparison.on.cache.get("hits", 0) > 0
        assert comparison.off.cache == {}
        assert comparison.digest_off == comparison.digest_on
        summary = comparison.as_dict()
        assert summary["identical_answers"] is True
        assert summary["jobs"] == self.SPEC.n_jobs


class TestSchedulerStatsPercentiles:
    """Edge cases of the latency percentile helpers, pinned exactly."""

    def make_stats(self, samples):
        from repro.casjobs.scheduler import SchedulerStats

        stats = SchedulerStats()
        stats.wait_s[QueueClass.QUICK] = list(samples)
        stats.run_s[QueueClass.QUICK] = list(samples)
        return stats

    def test_empty_samples_report_zero(self):
        stats = self.make_stats([])
        assert stats.p50_wait(QueueClass.QUICK) == 0.0
        assert stats.p95_wait(QueueClass.QUICK) == 0.0
        assert stats.p50_run(QueueClass.QUICK) == 0.0
        assert stats.p95_run(QueueClass.QUICK) == 0.0

    def test_single_sample_is_every_percentile(self):
        stats = self.make_stats([2.0])
        assert stats.p50_wait(QueueClass.QUICK) == 2.0
        assert stats.p95_wait(QueueClass.QUICK) == 2.0

    def test_small_n_linear_interpolation(self):
        # np.percentile's default linear interpolation on [1, 2, 3, 4]:
        # p50 = 2.5, p95 = 1 + 0.95 * 3 = 3.85
        stats = self.make_stats([1.0, 2.0, 3.0, 4.0])
        assert stats.p50_wait(QueueClass.QUICK) == pytest.approx(2.5)
        assert stats.p95_wait(QueueClass.QUICK) == pytest.approx(3.85)

    def test_order_does_not_matter(self):
        shuffled = self.make_stats([4.0, 1.0, 3.0, 2.0])
        ordered = self.make_stats([1.0, 2.0, 3.0, 4.0])
        assert shuffled.p95_wait(QueueClass.QUICK) == pytest.approx(
            ordered.p95_wait(QueueClass.QUICK)
        )

    def test_summary_includes_both_classes(self):
        stats = self.make_stats([1.0])
        summary = stats.summary()
        assert summary["quick_p50_wait_s"] == 1.0
        assert summary["long_p50_wait_s"] == 0.0
        assert summary["quick_p95_wait_s"] == 1.0
