"""Semantic result cache, materialized views, and EngineConfig."""

import numpy as np
import pytest

from repro.engine.cache import ResultCache, batch_nbytes
from repro.engine.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.engine.database import Database
from repro.errors import EngineError, SqlPlanError


def make_db(config: EngineConfig | None = None) -> Database:
    d = Database("cachedb", config=config or EngineConfig(result_cache=True))
    rng = np.random.default_rng(11)
    n = 500
    d.create_table(
        "galaxy",
        {
            "objid": np.arange(n),
            "zoneid": rng.integers(0, 20, n),
            "mag": rng.uniform(14, 22, n),
        },
        primary_key="objid",
    )
    d.create_table(
        "field",
        {"fieldid": np.arange(10), "seeing": rng.uniform(0.8, 2.0, 10)},
        primary_key="fieldid",
    )
    return d


@pytest.fixture()
def db() -> Database:
    return make_db()


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.optimizer == "cost"
        assert config.result_cache is False
        assert config == DEFAULT_ENGINE_CONFIG

    def test_validation(self):
        with pytest.raises(EngineError):
            EngineConfig(optimizer="bogus")
        with pytest.raises(EngineError):
            EngineConfig(pool_pages=0)
        with pytest.raises(EngineError):
            EngineConfig(cache_max_entries=0)
        with pytest.raises(EngineError):
            EngineConfig(cache_ttl_s=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_ENGINE_CONFIG.optimizer = "syntactic"

    def test_replace_revalidates(self):
        tuned = DEFAULT_ENGINE_CONFIG.replace(intra_query_workers=4)
        assert tuned.intra_query_workers == 4
        assert DEFAULT_ENGINE_CONFIG.intra_query_workers == 1
        with pytest.raises(EngineError):
            DEFAULT_ENGINE_CONFIG.replace(optimizer="bogus")

    def test_database_takes_config(self):
        d = Database("c", config=EngineConfig(optimizer="syntactic"))
        assert d.optimizer_mode == "syntactic"
        assert d.result_cache is None  # off by default

    def test_legacy_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            d = Database("legacy", optimizer="syntactic",
                         intra_query_workers=2)
        assert d.config.optimizer == "syntactic"
        assert d.config.intra_query_workers == 2

    def test_legacy_kwargs_and_config_conflict(self):
        with pytest.raises(EngineError):
            Database("both", optimizer="cost",
                     config=EngineConfig())


class TestResultCacheUnit:
    KEY_A = ("a" * 32, (("galaxy", 0),))
    KEY_B = ("b" * 32, (("galaxy", 0),))

    def batch(self, n=4):
        return {"x": np.arange(n, dtype=np.int64)}

    def test_get_returns_copies(self):
        cache = ResultCache()
        cache.put(self.KEY_A, self.batch(), "plan", {"galaxy"})
        hit = cache.get(self.KEY_A)
        hit.columns["x"][:] = -1
        again = cache.get(self.KEY_A)
        assert again.columns["x"][0] == 0  # mutation didn't poison

    def test_lru_eviction_by_entries(self):
        cache = ResultCache(max_entries=2)
        cache.put(self.KEY_A, self.batch(), "", {"galaxy"})
        cache.put(self.KEY_B, self.batch(), "", {"galaxy"})
        cache.get(self.KEY_A)  # A is now most recent
        cache.put(("c" * 32, ()), self.batch(), "", set())
        assert cache.get(self.KEY_B) is None  # B was LRU, evicted
        assert cache.get(self.KEY_A) is not None
        assert cache.stats.evictions == 1

    def test_eviction_by_bytes(self):
        one = batch_nbytes(self.batch())
        cache = ResultCache(max_bytes=2 * one)
        cache.put(self.KEY_A, self.batch(), "", {"galaxy"})
        cache.put(self.KEY_B, self.batch(), "", {"galaxy"})
        cache.put(("c" * 32, ()), self.batch(), "", set())
        assert len(cache) == 2
        assert cache.bytes_used <= 2 * one

    def test_oversized_result_refused(self):
        cache = ResultCache(max_bytes=8)
        assert cache.put(self.KEY_A, self.batch(1000), "", set()) is False
        assert len(cache) == 0

    def test_ttl_expiry(self):
        import time

        cache = ResultCache(ttl_s=0.05)
        cache.put(self.KEY_A, self.batch(), "", {"galaxy"})
        assert cache.get(self.KEY_A) is not None
        time.sleep(0.06)
        assert cache.get(self.KEY_A) is None
        assert cache.stats.expirations == 1

    def test_invalidate_table(self):
        cache = ResultCache()
        cache.put(self.KEY_A, self.batch(), "", {"galaxy"})
        cache.put(self.KEY_B, self.batch(), "", {"field"})
        assert cache.invalidate_table("GALAXY") == 1
        assert cache.get(self.KEY_A) is None
        assert cache.get(self.KEY_B) is not None


class TestDatabaseCache:
    Q = "SELECT zoneid, COUNT(*) AS n FROM galaxy GROUP BY zoneid"

    def test_second_run_answered_from_cache(self, db):
        first = db.sql(self.Q)
        second = db.sql(self.Q)
        assert second.plan.startswith("[answered from cache]")
        assert list(second.columns) == list(first.columns)
        for name in first.columns:
            assert np.array_equal(second.columns[name], first.columns[name])

    def test_formatting_variants_share_an_entry(self, db):
        db.sql(self.Q)
        variant = db.sql(
            "select   ZONEID, count( * ) as N from GALAXY group by zoneid"
        )
        assert variant.plan.startswith("[answered from cache]")

    def test_explain_marks_cached_statements(self, db):
        assert "[answered from cache]" not in db.explain(self.Q)
        db.sql(self.Q)
        assert db.explain(self.Q).startswith("[answered from cache]")
        # an optimizer override keys differently: no cache claim
        assert not db.explain(self.Q, optimizer="syntactic").startswith(
            "[answered from cache]"
        )

    def test_dml_invalidates(self, db):
        before = db.sql(self.Q)
        db.sql("INSERT INTO galaxy VALUES (9001, 3, 15.5)")
        after = db.sql(self.Q)
        assert not after.plan.startswith("[answered from cache]")
        n_before = int(np.sum(before.columns["n"]))
        assert int(np.sum(after.columns["n"])) == n_before + 1

    def test_view_queries_track_base_tables(self, db):
        db.sql("CREATE VIEW bright AS SELECT objid FROM galaxy WHERE mag < 18")
        q = "SELECT COUNT(*) AS c FROM bright"
        db.sql(q)
        assert db.sql(q).plan.startswith("[answered from cache]")
        db.sql("DELETE FROM galaxy WHERE objid = 0")
        assert not db.sql(q).plan.startswith("[answered from cache]")

    def test_cache_off_database_never_claims_cache(self):
        d = make_db(EngineConfig(result_cache=False))
        assert d.result_cache is None
        d.sql(self.Q)
        assert not d.sql(self.Q).plan.startswith("[answered from cache]")

    def test_cache_on_off_answers_identical(self, db):
        off = make_db(EngineConfig(result_cache=False))
        db.sql(self.Q)  # warm
        cached = db.sql(self.Q)
        direct = off.sql(self.Q)
        for name in direct.columns:
            assert np.array_equal(cached.columns[name], direct.columns[name])

    def test_stats_summary_reports_cache(self, db):
        db.sql(self.Q)
        db.sql(self.Q)
        summary = db.stats_summary()
        assert summary["cache_hits"] == 1
        assert summary["cache_entries"] == 1


class TestMaterializedViews:
    DEF = ("CREATE MATERIALIZED VIEW zone_counts AS "
           "SELECT zoneid, COUNT(*) AS n FROM galaxy GROUP BY zoneid")
    Q = "SELECT zoneid, COUNT(*) AS n FROM galaxy GROUP BY zoneid"

    def test_create_populates_a_real_table(self, db):
        result = db.sql(self.DEF)
        assert result.rows_affected == 20
        assert db.has_table("zone_counts")
        assert db.has_matview("zone_counts")
        direct = db.sql("SELECT COUNT(*) AS c FROM zone_counts").scalar()
        assert direct == 20

    def test_matching_select_substitutes(self, db):
        db.sql(self.DEF)
        plan = db.explain(self.Q)
        assert "answered from matview zone_counts" in plan
        by_matview = db.sql(self.Q)
        fresh = make_db().sql(self.Q)
        order = np.argsort(by_matview.columns["zoneid"])
        assert np.array_equal(
            by_matview.columns["n"][order], fresh.columns["n"]
        )

    def test_stale_matview_not_substituted(self, db):
        db.sql(self.DEF)
        assert not db.matview_stale("zone_counts")
        db.sql("INSERT INTO galaxy VALUES (9001, 3, 15.5)")
        assert db.matview_stale("zone_counts")
        assert "answered from matview" not in db.explain(self.Q)

    def test_refresh_restores_substitution(self, db):
        db.sql(self.DEF)
        db.sql("INSERT INTO galaxy VALUES (9001, 3, 15.5)")
        refreshed = db.sql("REFRESH MATERIALIZED VIEW zone_counts")
        assert refreshed.rows_affected == 20
        assert not db.matview_stale("zone_counts")
        result = db.sql(self.Q)
        assert int(np.sum(result.columns["n"])) == 501

    def test_dml_into_matview_rejected(self, db):
        db.sql(self.DEF)
        for statement in (
            "INSERT INTO zone_counts VALUES (99, 1)",
            "UPDATE zone_counts SET n = 0 WHERE zoneid = 1",
            "DELETE FROM zone_counts WHERE zoneid = 1",
            "TRUNCATE TABLE zone_counts",
        ):
            with pytest.raises(SqlPlanError, match="materialized view"):
                db.sql(statement)

    def test_drop_table_refuses_matviews(self, db):
        db.sql(self.DEF)
        with pytest.raises(EngineError):
            db.drop_table("zone_counts")
        db.sql("DROP MATERIALIZED VIEW zone_counts")
        assert not db.has_table("zone_counts")
        db.sql("DROP MATERIALIZED VIEW IF EXISTS zone_counts")  # no raise

    def test_matview_works_without_result_cache(self):
        d = make_db(EngineConfig(result_cache=False))
        d.sql(self.DEF)
        assert "answered from matview" in d.explain(self.Q)
