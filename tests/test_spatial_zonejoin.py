"""Batched zone join: must equal per-point queries exactly."""

import numpy as np
import pytest

from repro.errors import SpatialError
from repro.spatial.zonejoin import NeighborPairs, neighbor_counts, zone_join
from repro.spatial.zones import ZoneIndex


def pairs_as_dict(pairs: NeighborPairs) -> dict[int, set[int]]:
    result: dict[int, set[int]] = {}
    for q, c in zip(pairs.query_index.tolist(), pairs.catalog_index.tolist()):
        result.setdefault(q, set()).add(c)
    return result


class TestZoneJoinCorrectness:
    def test_equals_per_point_queries(self, scatter_points, rng):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        n_queries = 300
        q_rows = rng.integers(0, len(ra), n_queries)
        radii = rng.uniform(0.05, 1.0, n_queries)
        pairs = zone_join(index, ra[q_rows], dec[q_rows], radii)
        got = pairs_as_dict(pairs)
        for k in range(n_queries):
            want, _ = index.query(
                float(ra[q_rows[k]]), float(dec[q_rows[k]]), float(radii[k])
            )
            assert got.get(k, set()) == set(want.tolist()), f"query {k}"

    def test_scalar_radius_broadcast(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        pairs = zone_join(index, ra[:50], dec[:50], 0.4)
        per_point = sum(
            index.query(float(ra[k]), float(dec[k]), 0.4)[0].size
            for k in range(50)
        )
        assert len(pairs) == per_point

    def test_distances_match_queries(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        pairs = zone_join(index, ra[:20], dec[:20], 0.5)
        for k in range(20):
            mask = pairs.query_index == k
            _, want_d = index.query(float(ra[k]), float(dec[k]), 0.5)
            assert np.allclose(
                np.sort(pairs.distance_deg[mask]), np.sort(want_d)
            )

    def test_empty_queries(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        pairs = zone_join(index, np.empty(0), np.empty(0), 0.5)
        assert len(pairs) == 0

    def test_empty_catalog(self):
        index = ZoneIndex(np.empty(0), np.empty(0))
        pairs = zone_join(index, np.array([180.0]), np.array([0.0]), 0.5)
        assert len(pairs) == 0

    def test_zero_radius_yields_nothing(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        pairs = zone_join(index, ra[:10], dec[:10], 0.0)
        assert len(pairs) == 0  # strict inequality

    def test_negative_radius_rejected(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        with pytest.raises(SpatialError):
            zone_join(index, ra[:2], dec[:2], np.array([0.5, -0.1]))

    def test_mismatched_query_arrays(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        with pytest.raises(SpatialError):
            zone_join(index, ra[:3], dec[:4], 0.5)

    def test_chunking_does_not_change_results(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        big = zone_join(index, ra[:100], dec[:100], 0.8)
        small = zone_join(index, ra[:100], dec[:100], 0.8, chunk_pairs=64)
        assert pairs_as_dict(big) == pairs_as_dict(small)

    def test_no_duplicate_pairs(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        pairs = zone_join(index, ra[:200], dec[:200], 0.7)
        seen = set(zip(pairs.query_index.tolist(), pairs.catalog_index.tolist()))
        assert len(seen) == len(pairs)


class TestNeighborCounts:
    def test_counts_match_queries(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        counts = neighbor_counts(index, ra[:40], dec[:40], 0.5)
        for k in range(40):
            assert counts[k] == index.count(float(ra[k]), float(dec[k]), 0.5)

    def test_self_counted(self, scatter_points):
        ra, dec = scatter_points
        index = ZoneIndex(ra, dec)
        counts = neighbor_counts(index, ra[:10], dec[:10], 0.05)
        assert np.all(counts >= 1)  # each point finds at least itself
