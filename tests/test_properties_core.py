"""Property-based tests on MaxBCG kernels and the TAM tiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MaxBCGConfig
from repro.core.likelihood import chisq_profile, filter_catalog, windows_for
from repro.core.neighbors import (
    best_weighted_redshift,
    count_friends_per_redshift,
)
from repro.skyserver.regions import RegionBox
from repro.tam.fields import neighbor_fields, tile_fields

# strategies ------------------------------------------------------------
mags = st.floats(min_value=12.0, max_value=23.0)
colors = st.floats(min_value=-1.0, max_value=3.0)
sigmas = st.floats(min_value=1e-4, max_value=0.5)


class TestChisqProperties:
    @given(mags, colors, colors, sigmas, sigmas)
    @settings(max_examples=100, deadline=None)
    def test_chisq_non_negative(self, i, gr, ri, sgr, sri):
        from repro.core.config import fast_config
        from repro.core.kcorrection import build_kcorrection_table

        config = fast_config()
        table = build_kcorrection_table(config)
        chisq = chisq_profile(i, gr, ri, sgr, sri, table, config)
        assert np.all(chisq >= 0.0)
        assert np.all(np.isfinite(chisq))

    @given(mags, colors, colors, sigmas, sigmas,
           st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_threshold_monotone(self, i, gr, ri, sgr, sri, threshold):
        """Raising the chi² threshold can only grow the pass set."""
        from repro.core.config import fast_config
        from repro.core.kcorrection import build_kcorrection_table

        tight = fast_config().with_(chi2_threshold=threshold)
        loose = fast_config().with_(chi2_threshold=threshold * 2)
        table = build_kcorrection_table(tight)
        arr = (np.array([i]), np.array([gr]), np.array([ri]),
               np.array([sgr]), np.array([sri]))
        a = filter_catalog(*arr, table, tight)
        b = filter_catalog(*arr, table, loose)
        if a.passed[0]:
            assert b.passed[0]
            assert np.all(b.pass_matrix[0] >= a.pass_matrix[0])

    @given(mags, st.lists(st.integers(min_value=0, max_value=59),
                          min_size=1, max_size=10, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_windows_contain_passing_rows(self, i, zids):
        from repro.core.config import fast_config
        from repro.core.kcorrection import build_kcorrection_table

        config = fast_config()
        table = build_kcorrection_table(config)
        passing = np.array(sorted(zids))
        windows = windows_for(i, passing, table, config)
        assert windows.radius >= float(table.radius[passing].min())
        assert np.all(windows.gr_min <= table.gr[passing])
        assert np.all(windows.gr_max >= table.gr[passing])
        assert windows.i_min == i


class TestNeighborProperties:
    @given(st.integers(min_value=0, max_value=30),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_more_friends_never_fewer_counts(self, n_friends, n_passing):
        from repro.core.config import fast_config
        from repro.core.kcorrection import build_kcorrection_table

        config = fast_config()
        table = build_kcorrection_table(config)
        rng = np.random.default_rng(n_friends * 100 + n_passing)
        passing = np.sort(rng.choice(len(table), n_passing, replace=False))
        zid = int(passing[0])
        friends = dict(
            friend_distance=np.full(n_friends, float(table.radius[zid]) / 2),
            friend_i=np.full(n_friends, float(table.i[zid]) + 0.5),
            friend_gr=np.full(n_friends, float(table.gr[zid])),
            friend_ri=np.full(n_friends, float(table.ri[zid])),
        )
        counts = count_friends_per_redshift(
            candidate_i=float(table.i[zid]), passing_zids=passing,
            kcorr=table, config=config, **friends,
        )
        assert counts[0] == n_friends  # all friends match their own zid
        assert np.all(counts >= 0) and np.all(counts <= n_friends)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                              st.floats(min_value=-5, max_value=5)),
                    min_size=1, max_size=10))
    @settings(max_examples=80, deadline=None)
    def test_best_weighted_is_argmax(self, rows):
        counts = np.array([r[0] for r in rows])
        chisq = np.array([r[1] for r in rows])
        zids = np.arange(len(rows))
        result = best_weighted_redshift(counts, chisq, zids)
        if not (counts > 0).any():
            assert result is None
            return
        zid, ngal, weighted = result
        eligible = counts > 0
        expected = np.max((np.log(counts + 1.0) - chisq)[eligible])
        assert weighted == pytest.approx(expected)
        assert counts[zid] == ngal


class TestTilingProperties:
    @given(
        st.floats(min_value=0.3, max_value=6.0),
        st.floats(min_value=0.3, max_value=6.0),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiles_cover_target_exactly(self, width, height, field_size):
        region = RegionBox(100.0, 100.0 + width, 0.0, height)
        fields = tile_fields(region, field_size, buffer_margin=0.25)
        total = sum(f.target.flat_area() for f in fields)
        assert total == pytest.approx(region.flat_area(), rel=1e-9)
        for f in fields:
            assert region.contains_box(f.target)

    @given(st.floats(min_value=0.05, max_value=0.6))
    @settings(max_examples=40, deadline=None)
    def test_neighbors_symmetric_in_overlap(self, margin):
        region = RegionBox(0.0, 2.0, 0.0, 2.0)
        fields = tile_fields(region, 0.5, buffer_margin=margin)
        for f in fields[:6]:
            for g in neighbor_fields(fields, f):
                # if g's target overlaps f's buffer, then (same margin)
                # f's target overlaps g's buffer
                assert f.target.overlaps(g.buffer)
