"""The MaxBCG virtual-data DAG: lazy execution, provenance, equivalence."""

import numpy as np
import pytest

from repro.grid.chimera_maxbcg import build_maxbcg_dag, run_via_chimera
from repro.skyserver.regions import RegionBox
from repro.tam.runner import run_tam


@pytest.fixture(scope="module")
def dag(sky, kcorr, config):
    target = RegionBox(180.5, 181.5, 0.5, 1.5)
    vdc, fields = build_maxbcg_dag(sky.catalog, target, kcorr, config)
    return vdc, fields, target


class TestDagStructure:
    def test_nothing_materialized_upfront(self, dag):
        vdc, fields, _ = dag
        assert vdc.materialized_count() == 1  # just the archive

    def test_provenance_names_full_chain(self, dag):
        vdc, fields, _ = dag
        chain = vdc.provenance(f"{fields[0].name}.clusters")
        names = [d.transformation.name for d in chain]
        assert names[0] == "cutField"
        assert "maxBCG" in names
        assert names[-1] == "pickClusters"

    def test_pick_depends_on_neighbor_candidates(self, dag):
        vdc, fields, _ = dag
        # an interior field's cluster derivation must list neighbor
        # candidate files among its inputs (the BufferC edges)
        chain = vdc.provenance(f"{fields[0].name}.clusters")
        pick = chain[-1]
        assert len(pick.inputs) > 1


class TestLazyExecution:
    def test_single_field_materializes_only_needed(self, dag):
        vdc, fields, _ = dag
        vdc.materialize(f"{fields[0].name}.candidates")
        # its own target+buffer+candidates appeared, not other fields'
        assert vdc.is_materialized(f"{fields[0].name}.target")
        assert not vdc.is_materialized(f"{fields[-1].name}.candidates")

    def test_full_merge_runs_everything(self, dag):
        vdc, fields, _ = dag
        merged = vdc.materialize("clusters.all")
        assert len(merged) > 0
        for one_field in fields:
            assert vdc.is_materialized(f"{one_field.name}.clusters")

    def test_rematerialization_is_cached(self, dag):
        vdc, _, _ = dag
        first = vdc.materialize("clusters.all")
        count = vdc.materialized_count()
        second = vdc.materialize("clusters.all")
        assert second is first
        assert vdc.materialized_count() == count


class TestEquivalence:
    def test_matches_tam_runner(self, sky, kcorr, config, tmp_path):
        """The virtual-data execution is the TAM pipeline, so their
        cluster catalogs must agree exactly."""
        target = RegionBox(180.5, 181.5, 0.5, 1.5)
        via_dag = run_via_chimera(sky.catalog, target, kcorr, config)
        via_tam = run_tam(sky.catalog, target, kcorr, config,
                          tmp_path / "tam").clusters
        assert np.array_equal(via_dag.objid, via_tam.objid)
        assert np.allclose(via_dag.chi2, via_tam.chi2)
