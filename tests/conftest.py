"""Shared fixtures: one small deterministic sky for the whole suite.

Expensive objects (k-correction tables, synthetic skies, pipeline runs)
are session-scoped so dozens of test modules can assert against them
without regenerating anything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MaxBCGConfig, fast_config
from repro.core.kcorrection import build_kcorrection_table
from repro.core.pipeline import run_maxbcg
from repro.skyserver.generator import SkyConfig, SkySimulator
from repro.skyserver.regions import RegionBox


@pytest.fixture(scope="session")
def config() -> MaxBCGConfig:
    """Coarse-grid configuration used by most tests."""
    return fast_config()


@pytest.fixture(scope="session")
def kcorr(config):
    return build_kcorrection_table(config)


@pytest.fixture(scope="session")
def target_region() -> RegionBox:
    return RegionBox(180.0, 182.0, 0.0, 2.0)


@pytest.fixture(scope="session")
def import_region(target_region) -> RegionBox:
    return target_region.expand(1.0)


@pytest.fixture(scope="session")
def sky(kcorr, config, import_region):
    """~15k galaxies, ~100 injected clusters, fixed seed."""
    simulator = SkySimulator(
        kcorr,
        config,
        SkyConfig(field_density=700.0, cluster_density=9.0, seed=42),
    )
    return simulator.generate(import_region)


@pytest.fixture(scope="session")
def pipeline_result(sky, target_region, kcorr, config):
    """One full single-node pipeline run shared by the result-shape tests."""
    return run_maxbcg(sky.catalog, target_region, kcorr, config)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20050101)


@pytest.fixture(scope="session")
def scatter_points(rng):
    """Generic (ra, dec) point cloud for spatial-index tests."""
    n = 4000
    ra = rng.uniform(170.0, 190.0, n)
    dec = rng.uniform(-6.0, 8.0, n)
    return ra, dec
