"""GalaxyCatalog column bundle."""

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.skyserver.catalog import GALAXY_COLUMNS, GalaxyCatalog
from repro.skyserver.regions import RegionBox


def small_catalog() -> GalaxyCatalog:
    return GalaxyCatalog(
        objid=[1, 2, 3],
        ra=[10.0, 20.0, 30.0],
        dec=[0.0, 1.0, 2.0],
        i=[17.0, 18.0, 19.0],
        gr=[0.8, 0.9, 1.0],
        ri=[0.4, 0.5, 0.6],
        sigmagr=[0.01, 0.02, 0.03],
        sigmari=[0.02, 0.03, 0.04],
    )


class TestConstruction:
    def test_dtypes_coerced(self):
        cat = small_catalog()
        assert cat.objid.dtype == np.int64
        assert cat.ra.dtype == np.float64

    def test_length_mismatch_rejected(self):
        with pytest.raises(CatalogError):
            GalaxyCatalog(
                objid=[1], ra=[0.0, 1.0], dec=[0.0], i=[0.0], gr=[0.0],
                ri=[0.0], sigmagr=[0.0], sigmari=[0.0],
            )

    def test_duplicate_objids_rejected(self):
        with pytest.raises(CatalogError):
            GalaxyCatalog(
                objid=[1, 1], ra=[0.0, 1.0], dec=[0.0, 0.0], i=[0.0, 0.0],
                gr=[0.0, 0.0], ri=[0.0, 0.0], sigmagr=[0.0, 0.0],
                sigmari=[0.0, 0.0],
            )

    def test_empty(self):
        assert len(GalaxyCatalog.empty()) == 0

    def test_from_columns_missing(self):
        with pytest.raises(CatalogError):
            GalaxyCatalog.from_columns({"objid": np.array([1])})

    def test_columns_roundtrip(self):
        cat = small_catalog()
        again = GalaxyCatalog.from_columns(cat.as_columns())
        assert again.objid.tolist() == cat.objid.tolist()


class TestOperations:
    def test_take_mask(self):
        cat = small_catalog()
        subset = cat.take(cat.i > 17.5)
        assert subset.objid.tolist() == [2, 3]

    def test_take_bad_mask(self):
        with pytest.raises(CatalogError):
            small_catalog().take(np.array([True, False]))

    def test_select_region(self):
        cat = small_catalog()
        sub = cat.select_region(RegionBox(15.0, 35.0, 0.5, 3.0))
        assert sub.objid.tolist() == [2, 3]

    def test_sort_by(self):
        cat = small_catalog().take([2, 0, 1])
        assert cat.sort_by("objid").objid.tolist() == [1, 2, 3]

    def test_sort_unknown_column(self):
        with pytest.raises(CatalogError):
            small_catalog().sort_by("z")

    def test_concat(self):
        a = small_catalog()
        b = a.take([0]).__class__(
            objid=[4], ra=[40.0], dec=[3.0], i=[20.0], gr=[1.1], ri=[0.7],
            sigmagr=[0.05], sigmari=[0.06],
        )
        merged = a.concat(b)
        assert len(merged) == 4

    def test_concat_duplicate_ids_rejected(self):
        a = small_catalog()
        with pytest.raises(CatalogError):
            a.concat(a)

    def test_row_and_index_of(self):
        cat = small_catalog()
        assert cat.row(1)["objid"] == 2
        assert cat.index_of(3) == 2
        with pytest.raises(CatalogError):
            cat.index_of(99)
        with pytest.raises(CatalogError):
            cat.row(7)

    def test_bounding_box(self):
        box = small_catalog().bounding_box()
        assert box.ra_min == 10.0 and box.ra_max == 30.0
        assert box.dec_min == 0.0 and box.dec_max == 2.0

    def test_bounding_box_empty(self):
        with pytest.raises(CatalogError):
            GalaxyCatalog.empty().bounding_box()

    def test_galaxy_columns_constant(self):
        assert GALAXY_COLUMNS == (
            "objid", "ra", "dec", "i", "gr", "ri", "sigmagr", "sigmari"
        )
