"""Expression trees: evaluation, name resolution, functions."""

import numpy as np
import pytest

from repro.engine.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
    and_,
    col,
    lit,
)
from repro.errors import ColumnNotFoundError, SqlPlanError


@pytest.fixture()
def batch():
    return {
        "g.i": np.array([17.0, 18.0, 19.0]),
        "g.gr": np.array([0.8, 1.0, 1.2]),
        "k.z": np.array([0.1, 0.2, 0.3]),
    }


class TestResolution:
    def test_qualified(self, batch):
        assert np.allclose(col("i", "g").eval(batch), [17, 18, 19])

    def test_bare_unique(self, batch):
        assert np.allclose(col("z").eval(batch), [0.1, 0.2, 0.3])

    def test_unknown(self, batch):
        with pytest.raises(ColumnNotFoundError):
            col("nope").eval(batch)

    def test_unknown_qualifier(self, batch):
        with pytest.raises(ColumnNotFoundError):
            col("i", "x").eval(batch)

    def test_ambiguous(self):
        batch = {"a.x": np.zeros(2), "b.x": np.zeros(2)}
        with pytest.raises(SqlPlanError):
            col("x").eval(batch)


class TestOperators:
    def test_arithmetic(self, batch):
        expr = BinaryOp("+", col("i", "g"), lit(1.0))
        assert np.allclose(expr.eval(batch), [18, 19, 20])
        expr = BinaryOp("*", col("i", "g"), lit(2))
        assert np.allclose(expr.eval(batch), [34, 36, 38])

    def test_division_by_zero_gives_inf(self, batch):
        expr = BinaryOp("/", lit(1.0), lit(0.0))
        out = expr.eval(batch)
        assert np.all(np.isinf(out))

    def test_modulo(self, batch):
        expr = BinaryOp("%", col("i", "g"), lit(5.0))
        assert np.allclose(expr.eval(batch), [2.0, 3.0, 4.0])

    def test_comparisons(self, batch):
        expr = BinaryOp(">", col("i", "g"), lit(17.5))
        assert expr.eval(batch).tolist() == [False, True, True]

    def test_and_or(self, batch):
        gt = BinaryOp(">", col("i", "g"), lit(17.5))
        lt = BinaryOp("<", col("i", "g"), lit(18.5))
        assert BinaryOp("AND", gt, lt).eval(batch).tolist() == [False, True, False]
        assert BinaryOp("OR", gt, lt).eval(batch).tolist() == [True, True, True]

    def test_and_short_circuits_on_all_false(self, batch):
        # the right side would raise if evaluated
        never = BinaryOp(">", col("i", "g"), lit(100.0))
        boom = col("missing")
        assert BinaryOp("AND", never, boom).eval(batch).tolist() == [False] * 3

    def test_not_and_negate(self, batch):
        expr = UnaryOp("NOT", BinaryOp(">", col("i", "g"), lit(17.5)))
        assert expr.eval(batch).tolist() == [True, False, False]
        assert np.allclose(UnaryOp("-", lit(3)).eval(batch), -3)

    def test_unknown_op(self, batch):
        with pytest.raises(SqlPlanError):
            BinaryOp("**", lit(1), lit(2)).eval(batch)


class TestCompound:
    def test_between_inclusive(self, batch):
        expr = Between(col("i", "g"), lit(17.0), lit(18.0))
        assert expr.eval(batch).tolist() == [True, True, False]

    def test_in_list(self, batch):
        expr = InList(col("i", "g"), (lit(17.0), lit(19.0)))
        assert expr.eval(batch).tolist() == [True, False, True]

    def test_case(self, batch):
        expr = Case(
            whens=((BinaryOp(">", col("i", "g"), lit(18.5)), lit(1.0)),),
            default=lit(0.0),
        )
        assert expr.eval(batch).tolist() == [0.0, 0.0, 1.0]

    def test_case_first_match_wins(self, batch):
        expr = Case(
            whens=(
                (BinaryOp(">", col("i", "g"), lit(16.0)), lit(1.0)),
                (BinaryOp(">", col("i", "g"), lit(18.0)), lit(2.0)),
            ),
            default=lit(0.0),
        )
        assert expr.eval(batch).tolist() == [1.0, 1.0, 1.0]

    def test_case_without_default_gives_nan(self, batch):
        expr = Case(whens=((BinaryOp(">", col("i", "g"), lit(18.5)), lit(1.0)),))
        out = expr.eval(batch)
        assert np.isnan(out[0]) and out[2] == 1.0


class TestFunctions:
    def test_power_sqrt_log(self, batch):
        assert np.allclose(
            FuncCall("power", (lit(2.0), lit(10))).eval(batch), 1024.0
        )
        assert np.allclose(FuncCall("sqrt", (lit(9.0),)).eval(batch), 3.0)
        assert np.allclose(FuncCall("log", (lit(np.e),)).eval(batch), 1.0)

    def test_trig_and_pi(self, batch):
        assert np.allclose(FuncCall("pi", ()).eval(batch), np.pi)
        assert np.allclose(
            FuncCall("sin", (FuncCall("radians", (lit(90.0),)),)).eval(batch), 1.0
        )

    def test_floor(self, batch):
        assert np.allclose(FuncCall("floor", (lit(2.7),)).eval(batch), 2.0)

    def test_unknown_function(self, batch):
        with pytest.raises(SqlPlanError):
            FuncCall("frobnicate", ()).eval(batch)

    def test_wrong_arity(self, batch):
        with pytest.raises(SqlPlanError):
            FuncCall("sqrt", (lit(1), lit(2))).eval(batch)


class TestTreeUtilities:
    def test_column_refs_collects_all(self):
        expr = and_(
            Between(col("ra"), lit(0), lit(1)),
            BinaryOp("=", col("z", "k"), col("z", "c")),
        )
        refs = expr.column_refs()
        names = {(r.qualifier, r.name) for r in refs}
        assert names == {(None, "ra"), ("k", "z"), ("c", "z")}

    def test_literal_broadcast(self, batch):
        assert lit(5).eval(batch).shape == (3,)

    def test_frozen_equality(self):
        assert col("a") == ColumnRef("a")
        assert lit(1) == Literal(1)
