"""Cluster matching and science scoring."""

import numpy as np
import pytest

from repro.core.results import CandidateCatalog
from repro.core.scoring import match_clusters
from repro.skyserver.generator import ClusterTruth


def detection(objid, ra, dec, z):
    return CandidateCatalog(
        objid=np.asarray(objid), ra=np.asarray(ra, dtype=float),
        dec=np.asarray(dec, dtype=float), z=np.asarray(z, dtype=float),
        i=np.full(len(objid), 17.0), ngal=np.full(len(objid), 5),
        chi2=np.ones(len(objid)),
    )


def truth_at(objid, ra, dec, z):
    return ClusterTruth(bcg_objid=objid, ra=ra, dec=dec, z=z, richness=10)


class TestMatching:
    def test_exact_bcg_match(self, kcorr, config):
        truth = [truth_at(1, 180.0, 0.0, float(kcorr.z[10]))]
        detected = detection([1], [180.0], [0.0], [float(kcorr.z[10])])
        report = match_clusters(detected, truth, kcorr, config)
        assert report.completeness == 1.0
        assert report.purity == 1.0
        assert report.exact_bcg_fraction == 1.0
        assert report.median_offset_deg() == pytest.approx(0.0)

    def test_miscentered_match(self, kcorr, config):
        z = float(kcorr.z[10])
        radius = kcorr.radius_at(z)
        truth = [truth_at(1, 180.0, 0.0, z)]
        # detection on a member: offset half an aperture, different objid
        detected = detection([99], [180.0 + radius / 2], [0.0], [z])
        report = match_clusters(detected, truth, kcorr, config)
        assert report.completeness == 1.0
        assert report.exact_bcg_fraction == 0.0
        assert report.matches[0].offset_deg == pytest.approx(radius / 2,
                                                             rel=1e-3)

    def test_wrong_redshift_not_matched(self, kcorr, config):
        z = float(kcorr.z[10])
        truth = [truth_at(1, 180.0, 0.0, z)]
        detected = detection([1], [180.0], [0.0], [z + 0.2])
        report = match_clusters(detected, truth, kcorr, config)
        assert report.completeness == 0.0

    def test_too_far_not_matched(self, kcorr, config):
        z = float(kcorr.z[10])
        truth = [truth_at(1, 180.0, 0.0, z)]
        detected = detection([1], [181.0], [0.0], [z])
        report = match_clusters(detected, truth, kcorr, config)
        assert report.completeness == 0.0
        assert report.purity == 0.0

    def test_closest_detection_wins(self, kcorr, config):
        z = float(kcorr.z[10])
        radius = kcorr.radius_at(z)
        truth = [truth_at(1, 180.0, 0.0, z)]
        detected = detection(
            [7, 8], [180.0 + radius * 0.8, 180.0 + radius * 0.1], [0.0, 0.0],
            [z, z],
        )
        report = match_clusters(detected, truth, kcorr, config)
        assert report.matches[0].detected_objid == 8

    def test_empty_detection_catalog(self, kcorr, config):
        truth = [truth_at(1, 180.0, 0.0, float(kcorr.z[10]))]
        report = match_clusters(CandidateCatalog.empty(), truth, kcorr, config)
        assert report.completeness == 0.0
        assert report.n_detected == 0
        assert report.purity == 0.0

    def test_empty_truth(self, kcorr, config):
        detected = detection([1], [180.0], [0.0], [float(kcorr.z[10])])
        report = match_clusters(detected, [], kcorr, config)
        assert report.n_truth == 0
        assert report.completeness == 0.0

    def test_summary_readable(self, kcorr, config):
        truth = [truth_at(1, 180.0, 0.0, float(kcorr.z[10]))]
        detected = detection([1], [180.0], [0.0], [float(kcorr.z[10])])
        text = match_clusters(detected, truth, kcorr, config).summary()
        assert "completeness" in text and "purity" in text


class TestPipelineScoring:
    def test_end_to_end_quality(self, sky, pipeline_result, kcorr, config,
                                target_region):
        truth = [c for c in sky.clusters
                 if target_region.contains(c.ra, c.dec)]
        report = match_clusters(pipeline_result.clusters, truth, kcorr, config)
        assert report.completeness >= 0.75
        assert report.purity >= 0.6
        assert report.median_delta_z() < 0.03
