"""Flat ΛCDM distances."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.skyserver.cosmology import C_KM_S, Cosmology, DEFAULT_COSMOLOGY


class TestDistances:
    def test_zero_redshift(self):
        assert float(DEFAULT_COSMOLOGY.comoving_distance(0.0)) == 0.0

    def test_low_z_hubble_law(self):
        # D_C -> (c/H0) z as z -> 0
        z = 0.01
        expected = (C_KM_S / 70.0) * z
        got = float(DEFAULT_COSMOLOGY.comoving_distance(z))
        assert got == pytest.approx(expected, rel=1e-2)

    def test_monotone_increasing(self):
        z = np.linspace(0.0, 1.5, 100)
        d = DEFAULT_COSMOLOGY.comoving_distance(z)
        assert np.all(np.diff(d) > 0)

    def test_known_concordance_value(self):
        # D_C(z=0.5) ~ 1888 Mpc for H0=70, Om=0.3 (standard references)
        got = float(DEFAULT_COSMOLOGY.comoving_distance(0.5))
        assert got == pytest.approx(1888.0, rel=0.01)

    def test_luminosity_vs_angular_diameter(self):
        # D_L = D_A (1+z)^2 in any FRW cosmology
        z = np.array([0.1, 0.3, 0.8])
        dl = DEFAULT_COSMOLOGY.luminosity_distance(z)
        da = DEFAULT_COSMOLOGY.angular_diameter_distance(z)
        assert np.allclose(dl, da * (1 + z) ** 2)

    def test_distance_modulus_increases(self):
        z = np.array([0.05, 0.1, 0.2])
        dm = DEFAULT_COSMOLOGY.distance_modulus(z)
        assert np.all(np.diff(dm) > 0)
        assert 36.0 < dm[0] < 37.5  # ~36.7 at z=0.05

    def test_arcdeg_per_mpc_decreases(self):
        z = np.array([0.05, 0.1, 0.2, 0.3])
        scale = DEFAULT_COSMOLOGY.arcdeg_per_mpc(z)
        assert np.all(np.diff(scale) < 0)
        assert 0.2 < scale[0] < 0.4  # ~0.28 deg per Mpc at z=0.05


class TestValidation:
    def test_out_of_range_redshift(self):
        with pytest.raises(ConfigError):
            DEFAULT_COSMOLOGY.comoving_distance(5.0)
        with pytest.raises(ConfigError):
            DEFAULT_COSMOLOGY.comoving_distance(-0.1)

    def test_bad_parameters(self):
        with pytest.raises(ConfigError):
            Cosmology(h0=0.0)
        with pytest.raises(ConfigError):
            Cosmology(omega_m=0.0)
        with pytest.raises(ConfigError):
            Cosmology(omega_m=1.5)
        with pytest.raises(ConfigError):
            Cosmology(z_max=-1.0)
        with pytest.raises(ConfigError):
            Cosmology(grid_points=4)

    def test_matter_dominated_is_smaller(self):
        # more matter -> more deceleration -> smaller distances
        open_like = Cosmology(omega_m=0.3)
        einstein_de_sitter = Cosmology(omega_m=1.0)
        assert float(einstein_de_sitter.comoving_distance(0.5)) < float(
            open_like.comoving_distance(0.5)
        )
