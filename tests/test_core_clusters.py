"""fIsCluster / spMakeClusters."""

import numpy as np
import pytest

from repro.core.clusters import is_cluster_center, make_clusters
from repro.core.results import CandidateCatalog
from repro.skyserver.regions import RegionBox
from repro.spatial.zones import ZoneIndex


def candidates_catalog(rows):
    return CandidateCatalog.from_rows([
        {
            "objid": objid, "ra": ra, "dec": dec, "z": z, "i": 17.0,
            "ngal": 5, "chi2": chi2,
        }
        for objid, ra, dec, z, chi2 in rows
    ])


@pytest.fixture()
def rivals(kcorr):
    """Two nearby candidates at the same z, one clearly better; plus a
    distant third and a same-spot-but-different-z fourth."""
    z = float(kcorr.z[10])
    z_far = float(kcorr.z[10]) + 0.12
    return candidates_catalog([
        (1, 180.0, 0.0, z, 2.0),     # loser (rival 2 is better)
        (2, 180.02, 0.0, z, 3.0),    # winner of the pair
        (3, 185.0, 0.0, z, 1.0),     # isolated -> wins alone
        (4, 180.0, 0.001, z_far, 9.0),  # near in sky, far in z
    ])


class TestMakeClusters:
    def test_local_max_wins(self, rivals, kcorr, config):
        clusters = make_clusters(rivals, kcorr, config)
        assert set(clusters.objid.tolist()) == {2, 3, 4}

    def test_cursor_method_identical(self, rivals, kcorr, config):
        a = make_clusters(rivals, kcorr, config, method="vectorized")
        b = make_clusters(rivals, kcorr, config, method="cursor")
        assert set(a.objid.tolist()) == set(b.objid.tolist())

    def test_z_window_isolates_redshift_slices(self, rivals, kcorr, config):
        # candidate 4 shares the sky position of candidate 1 but is
        # 0.12 in z away (> the 0.05 window), so its huge chi2 does not
        # suppress candidate 1's slice — candidate 2 does.
        clusters = make_clusters(rivals, kcorr, config)
        assert 4 in clusters.objid.tolist()

    def test_target_restricts_tested_candidates(self, rivals, kcorr, config):
        target = RegionBox(179.0, 181.0, -1.0, 1.0)  # excludes objid 3
        clusters = make_clusters(rivals, kcorr, config, target)
        assert set(clusters.objid.tolist()) == {2, 4}

    def test_buffer_rival_still_competes(self, kcorr, config):
        # the tested candidate loses to a rival *outside* the target —
        # the reason candidates are computed on B, not T
        z = float(kcorr.z[10])
        cands = candidates_catalog([
            (1, 180.0, 0.0, z, 2.0),    # in target
            (2, 180.02, 0.0, z, 3.0),   # outside target, stronger
        ])
        target = RegionBox(179.95, 180.01, -0.5, 0.5)
        clusters = make_clusters(cands, kcorr, config, target)
        assert clusters.objid.size == 0

    def test_empty_candidates(self, kcorr, config):
        clusters = make_clusters(CandidateCatalog.empty(), kcorr, config)
        assert len(clusters) == 0

    def test_on_rivals_callback(self, rivals, kcorr, config):
        seen = []
        make_clusters(
            rivals, kcorr, config, on_rivals=lambda rows: seen.append(rows)
        )
        total = sum(r.size for r in seen)
        assert total >= len(rivals)  # every candidate at least sees itself


class TestIsClusterCenter:
    def test_isolated_candidate_is_center(self, kcorr, config):
        cands = candidates_catalog([(1, 180.0, 0.0, float(kcorr.z[5]), 1.0)])
        index = ZoneIndex(cands.ra, cands.dec, config.zone_height_deg)
        assert is_cluster_center(cands, index, 0, kcorr, config)

    def test_loser_is_not_center(self, rivals, kcorr, config):
        index = ZoneIndex(rivals.ra, rivals.dec, config.zone_height_deg)
        assert not is_cluster_center(rivals, index, 0, kcorr, config)
        assert is_cluster_center(rivals, index, 1, kcorr, config)


class TestAgainstPipeline:
    def test_pipeline_clusters_inside_target(self, pipeline_result, target_region):
        clusters = pipeline_result.clusters
        assert np.all(target_region.contains(clusters.ra, clusters.dec))

    def test_clusters_subset_of_candidates(self, pipeline_result):
        cand_ids = set(pipeline_result.candidates.objid.tolist())
        assert set(pipeline_result.clusters.objid.tolist()) <= cand_ids

    def test_cluster_rows_carry_candidate_values(self, pipeline_result):
        candidates = pipeline_result.candidates.sort_by_objid()
        clusters = pipeline_result.clusters.sort_by_objid()
        lookup = {
            int(objid): (float(z), int(ngal), float(chi2))
            for objid, z, ngal, chi2 in zip(
                candidates.objid, candidates.z, candidates.ngal, candidates.chi2
            )
        }
        for objid, z, ngal, chi2 in zip(
            clusters.objid, clusters.z, clusters.ngal, clusters.chi2
        ):
            assert lookup[int(objid)] == (float(z), int(ngal), float(chi2))
