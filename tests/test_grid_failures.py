"""Failure injection in the grid scheduler (Condor's retry-until-done)."""

import pytest

from repro.errors import GridError
from repro.grid.jobs import Job, JobState
from repro.grid.resources import ClusterSpec, Node
from repro.grid.scheduler import CondorScheduler
from repro.grid.transfer import TransferModel


def free_transfer() -> TransferModel:
    return TransferModel(bandwidth_bytes_per_s=1e12, latency_s=0.0,
                         per_file_overhead_s=0.0)


def cluster(n=2) -> ClusterSpec:
    return ClusterSpec("c", tuple(Node(f"n{k}", 2600.0) for k in range(n)))


def jobs(n, cpu=100.0):
    return [Job(job_id=k, name=f"j{k}", cpu_seconds=cpu) for k in range(n)]


class TestFailureInjection:
    def test_zero_rate_identical_to_baseline(self):
        baseline = CondorScheduler(cluster(), free_transfer()).run(jobs(6))
        injected = CondorScheduler(
            cluster(), free_transfer(), failure_rate=0.0, seed=7
        ).run(jobs(6))
        assert injected.makespan_s == pytest.approx(baseline.makespan_s)
        assert injected.retries == 0
        assert injected.wasted_s_total == 0.0

    def test_retries_recover_all_jobs(self):
        result = CondorScheduler(
            cluster(), free_transfer(), failure_rate=0.3, max_retries=10,
            seed=3,
        ).run(jobs(20))
        assert result.completed == 20
        assert result.retries > 0
        assert result.wasted_s_total > 0.0

    def test_failures_stretch_makespan(self):
        clean = CondorScheduler(cluster(), free_transfer(), seed=1).run(jobs(20))
        flaky = CondorScheduler(
            cluster(), free_transfer(), failure_rate=0.4, max_retries=10,
            seed=1,
        ).run(jobs(20))
        assert flaky.makespan_s > clean.makespan_s

    def test_certain_failure_exhausts_retries(self):
        result = CondorScheduler(
            cluster(), free_transfer(), failure_rate=1.0, max_retries=2,
            seed=5,
        ).run(jobs(3))
        assert result.completed == 0
        assert all(j.state is JobState.FAILED for j in result.jobs)
        assert all(j.attempts == 3 for j in result.jobs)  # 1 + 2 retries

    def test_deterministic_given_seed(self):
        a = CondorScheduler(cluster(), free_transfer(), failure_rate=0.5,
                            max_retries=5, seed=11).run(jobs(15))
        b = CondorScheduler(cluster(), free_transfer(), failure_rate=0.5,
                            max_retries=5, seed=11).run(jobs(15))
        assert a.makespan_s == b.makespan_s
        assert a.retries == b.retries

    def test_invalid_parameters(self):
        with pytest.raises(GridError):
            CondorScheduler(cluster(), free_transfer(), failure_rate=1.5)
        with pytest.raises(GridError):
            CondorScheduler(cluster(), free_transfer(), max_retries=-1)

    def test_wasted_time_excluded_from_compute_total(self):
        result = CondorScheduler(
            cluster(), free_transfer(), failure_rate=0.5, max_retries=10,
            seed=2,
        ).run(jobs(10, cpu=50.0))
        assert result.compute_s_total == pytest.approx(10 * 50.0)
        assert result.wasted_s_total > 0.0
