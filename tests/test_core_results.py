"""Result catalogs."""

import numpy as np
import pytest

from repro.core.results import CandidateCatalog, MemberTable
from repro.errors import CatalogError


def make(ids, chi2=None):
    n = len(ids)
    return CandidateCatalog(
        objid=np.asarray(ids), ra=np.arange(n, dtype=float),
        dec=np.zeros(n), z=np.full(n, 0.2), i=np.full(n, 17.5),
        ngal=np.arange(n) + 2,
        chi2=np.asarray(chi2) if chi2 is not None else np.ones(n),
    )


class TestCandidateCatalog:
    def test_from_rows_empty(self):
        assert len(CandidateCatalog.from_rows([])) == 0

    def test_from_rows(self):
        catalog = CandidateCatalog.from_rows([
            {"objid": 5, "ra": 1.0, "dec": 2.0, "z": 0.1, "i": 17.0,
             "ngal": 3, "chi2": 0.5},
        ])
        assert catalog.objid.tolist() == [5]
        assert catalog.ngal.dtype == np.int64

    def test_length_mismatch(self):
        with pytest.raises(CatalogError):
            CandidateCatalog(
                objid=np.array([1]), ra=np.array([1.0, 2.0]),
                dec=np.zeros(1), z=np.zeros(1), i=np.zeros(1),
                ngal=np.zeros(1), chi2=np.zeros(1),
            )

    def test_take_and_sort(self):
        catalog = make([3, 1, 2])
        assert catalog.sort_by_objid().objid.tolist() == [1, 2, 3]
        assert catalog.take([0]).objid.tolist() == [3]

    def test_concat(self):
        merged = make([1, 2]).concat(make([3]))
        assert len(merged) == 3

    def test_dedup(self):
        catalog = make([1, 2, 3]).take(np.array([0, 1, 0, 2]))
        assert catalog.dedup_by_objid().objid.tolist() == [1, 2, 3]

    def test_row(self):
        row = make([7]).row(0)
        assert row["objid"] == 7 and row["ngal"] == 2

    def test_as_columns_roundtrip(self):
        catalog = make([1, 2])
        again = CandidateCatalog(**catalog.as_columns())
        assert again.objid.tolist() == [1, 2]


class TestMemberTable:
    def test_empty(self):
        assert len(MemberTable.empty()) == 0

    def test_members_of(self):
        table = MemberTable(
            cluster_objid=np.array([1, 1, 2]),
            galaxy_objid=np.array([1, 10, 2]),
            distance=np.array([0.0, 0.1, 0.0]),
        )
        assert table.members_of(1).tolist() == [1, 10]
        assert table.members_of(3).size == 0

    def test_concat(self):
        a = MemberTable(np.array([1]), np.array([1]), np.array([0.0]))
        b = MemberTable(np.array([2]), np.array([2]), np.array([0.0]))
        assert len(a.concat(b)) == 2

    def test_length_mismatch(self):
        with pytest.raises(CatalogError):
            MemberTable(np.array([1]), np.array([1, 2]), np.array([0.0]))
