"""Clustered and hash indexes."""

import numpy as np
import pytest

from repro.engine.index import ClusteredIndex, HashIndex
from repro.engine.pages import BufferPool
from repro.engine.schema import schema
from repro.engine.table import Table
from repro.engine.types import ColumnType
from repro.errors import EngineError


@pytest.fixture()
def table() -> Table:
    s = schema(
        "zonetab",
        {"objid": ColumnType.INT64, "zoneid": ColumnType.INT64,
         "ra": ColumnType.FLOAT64},
        primary_key="objid",
    )
    t = Table(s, BufferPool(1000))
    rng = np.random.default_rng(5)
    n = 500
    t.insert({
        "objid": np.arange(n),
        "zoneid": rng.integers(0, 20, n),
        "ra": rng.uniform(0, 360, n),
    })
    return t


class TestClusteredIndex:
    def test_build_sorts_table(self, table):
        index = ClusteredIndex(table, ("zoneid", "ra"))
        index.build()
        zones = table.column("zoneid")
        assert np.all(np.diff(zones) >= 0)
        ra = table.column("ra")
        same = zones[1:] == zones[:-1]
        assert np.all(ra[1:][same] >= ra[:-1][same])

    def test_range_rows(self, table):
        index = ClusteredIndex(table, ("zoneid",))
        index.build()
        start, stop = index.range_rows(5, 7)
        zones = table.column("zoneid")
        assert np.all((zones[start:stop] >= 5) & (zones[start:stop] <= 7))
        # maximal
        if start > 0:
            assert zones[start - 1] < 5
        if stop < len(table):
            assert zones[stop] > 7

    def test_range_scan_accounting(self, table):
        index = ClusteredIndex(table, ("zoneid",))
        index.build()
        pool = table.file.pool
        before = pool.counters.logical_reads
        result = index.range_scan(0, 3)
        assert result["zoneid"].size > 0
        assert pool.counters.logical_reads > before

    def test_build_counts_rewrite(self, table):
        pool = table.file.pool
        before = pool.counters.writes
        ClusteredIndex(table, ("zoneid",)).build()
        assert pool.counters.writes - before == table.page_count

    def test_use_before_build(self, table):
        index = ClusteredIndex(table, ("zoneid",))
        with pytest.raises(EngineError):
            index.range_rows(0, 1)

    def test_unknown_key(self, table):
        with pytest.raises(EngineError):
            ClusteredIndex(table, ("nope",))

    def test_empty_keys(self, table):
        with pytest.raises(EngineError):
            ClusteredIndex(table, ())


class TestHashIndex:
    def test_lookup(self, table):
        index = HashIndex(table, "zoneid")
        index.build()
        rows = index.lookup(7)
        assert np.all(rows["zoneid"] == 7)
        want = int((table.column("zoneid") == 7).sum())
        assert rows["zoneid"].size == want

    def test_lookup_missing_value(self, table):
        index = HashIndex(table, "zoneid")
        index.build()
        assert index.lookup(999)["zoneid"].size == 0

    def test_lookup_rows_no_accounting(self, table):
        index = HashIndex(table, "zoneid")
        index.build()
        pool = table.file.pool
        before = pool.counters.logical_reads
        index.lookup_rows(3)
        assert pool.counters.logical_reads == before

    def test_invalidate(self, table):
        index = HashIndex(table, "zoneid")
        index.build()
        index.invalidate()
        with pytest.raises(EngineError):
            index.lookup(1)

    def test_use_before_build(self, table):
        with pytest.raises(EngineError):
            HashIndex(table, "zoneid").lookup(1)
