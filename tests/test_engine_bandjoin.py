"""BandJoin: semantics, planner extraction, and morsel determinism.

The operator-level contract is exact equivalence with a
:class:`NestedLoopJoin` over the expanded predicate — byte-identical
batches, not merely the same rows — exercised here on hand-built edge
cases (empty inputs, NaN bounds, NaN keys, zero-match bands) and on 50
randomized seeded band specs.  On top of that: the cost planner must
extract the band from SQL range conjuncts (and pick ``BandJoin`` for
the MaxBCG kernel once the chi² filter's implied color band is stated),
and morsel-parallel execution must return identical output for every
``intra_query_workers`` value, under threads and under the processes
cluster backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.expressions import BinaryOp, FuncCall, and_, col, lit
from repro.engine.join import BandJoin, CrossJoin, HashJoin, NestedLoopJoin
from repro.engine.operators import Materialized
from repro.engine.parallel import MAX_WORKERS, resolve_workers, run_morsels
from repro.errors import EngineError


def assert_batches_identical(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        left, right = np.asarray(a[key]), np.asarray(b[key])
        assert left.dtype == right.dtype, key
        if left.dtype.kind == "f":
            assert np.array_equal(left, right, equal_nan=True), key
        else:
            assert np.array_equal(left, right), key


def band_predicate(key, low, high, low_strict, high_strict, residual=None):
    """The NestedLoopJoin predicate a band spec desugars to."""
    parts = []
    if low is not None:
        parts.append(BinaryOp(">" if low_strict else ">=", key, low))
    if high is not None:
        parts.append(BinaryOp("<" if high_strict else "<=", key, high))
    if residual is not None:
        parts.append(residual)
    return and_(*parts)


def assert_band_equals_nested_loop(left, right, key, low=None, high=None,
                                   low_strict=False, high_strict=False,
                                   residual=None, **band_kwargs):
    band = BandJoin(left, right, key, low=low, high=high,
                    low_strict=low_strict, high_strict=high_strict,
                    residual=residual, **band_kwargs).execute()
    oracle = NestedLoopJoin(
        left, right,
        band_predicate(key, low, high, low_strict, high_strict, residual),
    ).execute()
    assert_batches_identical(band, oracle)
    return band


def left_batch():
    return Materialized({
        "l.id": np.arange(6, dtype=np.int64),
        "l.x": np.array([0.0, 1.5, 3.0, 4.5, 6.0, 7.5]),
    })


def right_batch():
    return Materialized({
        "r.key": np.array([5.0, 1.0, 3.0, 3.0, 0.5, 8.0, 2.5]),
        "r.w": np.arange(7, dtype=np.int64),
    })


class TestBandJoinSemantics:
    def test_two_sided_inclusive(self):
        out = assert_band_equals_nested_loop(
            left_batch(), right_batch(), col("key", "r"),
            low=BinaryOp("-", col("x", "l"), lit(1.0)),
            high=BinaryOp("+", col("x", "l"), lit(1.0)),
        )
        assert out["l.id"].size > 0

    def test_strict_bounds_exclude_boundary(self):
        # key == 3.0 appears twice; with x == 3.0 and strict bounds at
        # exactly [x, x] nothing may match
        out = assert_band_equals_nested_loop(
            left_batch(), right_batch(), col("key", "r"),
            low=col("x", "l"), high=col("x", "l"),
            low_strict=True, high_strict=True,
        )
        assert out["l.id"].size == 0
        inclusive = assert_band_equals_nested_loop(
            left_batch(), right_batch(), col("key", "r"),
            low=col("x", "l"), high=col("x", "l"),
        )
        assert inclusive["l.id"].tolist() == [2, 2]  # both key==3.0 rows

    def test_one_sided_bands(self):
        assert_band_equals_nested_loop(
            left_batch(), right_batch(), col("key", "r"),
            low=col("x", "l"), low_strict=True,
        )
        assert_band_equals_nested_loop(
            left_batch(), right_batch(), col("key", "r"),
            high=col("x", "l"),
        )

    def test_residual_filter(self):
        assert_band_equals_nested_loop(
            left_batch(), right_batch(), col("key", "r"),
            low=BinaryOp("-", col("x", "l"), lit(2.0)),
            high=BinaryOp("+", col("x", "l"), lit(2.0)),
            residual=BinaryOp(">", BinaryOp("+", col("w", "r"), col("id", "l")),
                              lit(4)),
        )

    def test_canonical_pair_order(self):
        out = BandJoin(
            left_batch(), right_batch(), col("key", "r"),
            low=lit(0.0), high=lit(10.0),
        ).execute()
        pairs = list(zip(out["l.id"].tolist(), out["r.w"].tolist()))
        assert pairs == sorted(pairs)  # (left row, right original row)

    def test_integer_key_stays_integer(self):
        left = Materialized({"l.a": np.array([2, 5], dtype=np.int64)})
        right = Materialized({"r.k": np.array([1, 2, 3, 4, 5, 6],
                                              dtype=np.int64)})
        out = assert_band_equals_nested_loop(
            left, right, col("k", "r"),
            low=BinaryOp("-", col("a", "l"), lit(1)),
            high=BinaryOp("+", col("a", "l"), lit(1)),
        )
        assert out["r.k"].dtype == np.int64


class TestBandJoinEdgeCases:
    def test_empty_left(self):
        left = Materialized({"l.x": np.empty(0)})
        out = assert_band_equals_nested_loop(
            left, right_batch(), col("key", "r"),
            low=col("x", "l"),
        )
        assert sorted(out) == ["l.x", "r.key", "r.w"]
        assert all(out[k].size == 0 for k in out)

    def test_empty_right(self):
        right = Materialized({"r.key": np.empty(0), "r.w": np.empty(0)})
        out = assert_band_equals_nested_loop(
            left_batch(), right, col("key", "r"),
            low=col("x", "l"), high=col("x", "l"),
        )
        assert all(out[k].size == 0 for k in out)

    def test_cross_join_empty_sides(self):
        empty = Materialized({"e.v": np.empty(0)})
        assert CrossJoin(empty, right_batch()).execute()["r.w"].size == 0
        assert CrossJoin(left_batch(), empty).execute()["l.id"].size == 0

    def test_nan_bound_rows_match_nothing(self):
        left = Materialized({
            "l.id": np.arange(4, dtype=np.int64),
            "l.x": np.array([1.0, np.nan, 3.0, np.nan]),
        })
        out = assert_band_equals_nested_loop(
            left, right_batch(), col("key", "r"),
            low=BinaryOp("-", col("x", "l"), lit(1.0)),
            high=BinaryOp("+", col("x", "l"), lit(1.0)),
        )
        assert set(out["l.id"].tolist()) <= {0, 2}

    def test_nan_keys_never_matched(self):
        right = Materialized({
            "r.key": np.array([1.0, np.nan, 3.0, np.nan, 5.0]),
            "r.w": np.arange(5, dtype=np.int64),
        })
        # one-sided band to +inf is the trap: an unclamped searchsorted
        # stop would sweep the NaNs sorted past the finite keys
        out = assert_band_equals_nested_loop(
            left_batch(), right, col("key", "r"),
            low=col("x", "l"),
        )
        assert not set(out["r.w"].tolist()) & {1, 3}

    def test_zero_match_band(self):
        out = assert_band_equals_nested_loop(
            left_batch(), right_batch(), col("key", "r"),
            low=lit(100.0), high=lit(200.0),
        )
        assert all(out[k].size == 0 for k in out)

    def test_nan_bound_and_nan_key_together(self):
        left = Materialized({"l.x": np.array([np.nan, 2.0])})
        right = Materialized({"r.key": np.array([np.nan, 2.0, np.nan])})
        out = assert_band_equals_nested_loop(
            left, right, col("key", "r"),
            low=col("x", "l"), high=col("x", "l"),
        )
        assert out["r.key"].tolist() == [2.0]


class TestBandJoinDifferential:
    """50 randomized seeded band specs: BandJoin ≡ NestedLoopJoin."""

    @pytest.mark.parametrize("seed", range(50))
    def test_random_band_equivalence(self, seed):
        rng = np.random.default_rng(9000 + seed)
        n_left = int(rng.integers(0, 120))
        n_right = int(rng.integers(0, 90))
        lx = rng.uniform(-10, 10, n_left)
        lx[rng.random(n_left) < 0.1] = np.nan
        left = Materialized({
            "l.id": np.arange(n_left, dtype=np.int64),
            "l.x": lx,
            "l.y": rng.uniform(-5, 5, n_left),
        })
        if rng.random() < 0.3:
            rkey = rng.integers(-10, 10, n_right).astype(np.int64)
        else:
            rkey = rng.uniform(-12, 12, n_right)
            rkey[rng.random(n_right) < 0.15] = np.nan
        right = Materialized({
            "r.key": rkey,
            "r.w": rng.uniform(0, 1, n_right),
        })

        width = float(rng.uniform(0.1, 6.0))
        shape = rng.integers(0, 4)
        low = high = None
        low_strict = bool(rng.integers(0, 2))
        high_strict = bool(rng.integers(0, 2))
        if shape == 0:  # symmetric band around l.x
            low = BinaryOp("-", col("x", "l"), lit(width))
            high = BinaryOp("+", col("x", "l"), lit(width))
        elif shape == 1:  # one-sided
            if rng.random() < 0.5:
                low = col("x", "l")
            else:
                high = col("x", "l")
        elif shape == 2:  # literal bounds
            lo_value = float(rng.uniform(-8, 4))
            low = lit(lo_value)
            high = lit(lo_value + width)
        else:  # asymmetric expression bounds
            low = BinaryOp("-", col("x", "l"), lit(width))
            high = BinaryOp("+", BinaryOp("*", col("x", "l"), lit(0.5)),
                            lit(width))
        residual = None
        if rng.random() < 0.5:
            residual = BinaryOp(
                ">", BinaryOp("+", col("y", "l"), col("w", "r")),
                lit(float(rng.uniform(-4, 4))),
            )
        assert_band_equals_nested_loop(
            left, right, col("key", "r"),
            low=low, high=high,
            low_strict=low_strict, high_strict=high_strict,
            residual=residual,
            block_rows=int(rng.integers(1, 40)),
        )


class TestHashJoinBuildSide:
    def test_builds_on_smaller_estimate(self):
        left, right = left_batch(), right_batch()
        join = HashJoin(left, right, col("id", "l"), col("w", "r"))
        left.est_rows, right.est_rows = 10.0, 1000.0
        assert not join._build_on_right(6, 7)
        left.est_rows, right.est_rows = 1000.0, 10.0
        assert join._build_on_right(6, 7)

    def test_falls_back_to_actual_lengths(self):
        join = HashJoin(left_batch(), right_batch(),
                        col("id", "l"), col("w", "r"))
        assert join._build_on_right(100, 7)
        assert not join._build_on_right(7, 100)

    def test_swapped_build_side_output_identical(self):
        left = Materialized({
            "l.k": np.array([1, 2, 2, 3, 3, 3], dtype=np.int64),
            "l.v": np.arange(6, dtype=np.int64),
        })
        right = Materialized({
            "r.k": np.array([3, 2, 3, 9], dtype=np.int64),
            "r.u": np.arange(4, dtype=np.int64),
        })
        results = []
        for left_est, right_est in ((1.0, 100.0), (100.0, 1.0)):
            left.est_rows, right.est_rows = left_est, right_est
            results.append(
                HashJoin(left, right, col("k", "l"), col("k", "r")).execute()
            )
        assert_batches_identical(results[0], results[1])
        pairs = list(zip(results[0]["l.v"].tolist(), results[0]["r.u"].tolist()))
        assert pairs == sorted(pairs)  # canonical order either way

    def test_outer_join_swapped_build_side(self):
        left = Materialized({
            "l.k": np.array([1, 2, 7], dtype=np.int64),
            "l.v": np.array([10.0, 20.0, 70.0]),
        })
        right = Materialized({
            "r.k": np.array([2, 2], dtype=np.int64),
            "r.u": np.array([5.0, 6.0]),
        })
        results = []
        for left_est, right_est in ((1.0, 100.0), (100.0, 1.0)):
            left.est_rows, right.est_rows = left_est, right_est
            results.append(
                HashJoin(left, right, col("k", "l"), col("k", "r"),
                         outer=True).execute()
            )
        assert_batches_identical(results[0], results[1])
        assert np.isnan(results[0]["r.u"]).sum() == 2  # rows 1 and 7 padded


class TestNestedLoopAdaptiveBlocks:
    def test_adaptive_equals_fixed_blocks(self):
        predicate = BinaryOp("<", col("x", "l"), col("key", "r"))
        adaptive = NestedLoopJoin(left_batch(), right_batch(), predicate)
        fixed = NestedLoopJoin(left_batch(), right_batch(), predicate,
                               block_rows=2)
        assert_batches_identical(adaptive.execute(), fixed.execute())

    def test_block_rows_respect_byte_budget(self):
        left = {"l.a": np.zeros(10)}
        right = {f"r.c{i}": np.zeros(1000) for i in range(50)}
        join = NestedLoopJoin(Materialized(left), Materialized(right), None)
        block = join._effective_block_rows(left, right, 1000)
        per_left_row = 1000 * (51 * 8)
        assert block * per_left_row <= NestedLoopJoin.PAIR_BYTE_BUDGET
        assert block >= 16

    def test_explicit_block_rows_wins(self):
        join = NestedLoopJoin(left_batch(), right_batch(), None, block_rows=7)
        assert join._effective_block_rows({}, {}, 10) == 7


class TestMorselDeterminism:
    def test_operator_output_identical_across_workers(self):
        spec = dict(
            low=BinaryOp("-", col("x", "l"), lit(2.0)),
            high=BinaryOp("+", col("x", "l"), lit(2.0)),
            residual=BinaryOp(">", col("w", "r"), lit(1)),
        )
        base = BandJoin(left_batch(), right_batch(), col("key", "r"),
                        block_rows=2, **spec).execute()
        for workers in (2, 4):
            out = BandJoin(left_batch(), right_batch(), col("key", "r"),
                           block_rows=2, workers=workers, **spec).execute()
            assert_batches_identical(base, out)

    def test_run_morsels_preserves_submission_order(self):
        tasks = [lambda i=i: i * i for i in range(20)]
        assert run_morsels(tasks, workers=4) == [i * i for i in range(20)]
        assert run_morsels(tasks, workers=1) == [i * i for i in range(20)]

    def test_resolve_workers_validation(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(10_000) == MAX_WORKERS
        with pytest.raises(EngineError):
            resolve_workers(0)
        with pytest.raises(EngineError):
            Database(intra_query_workers=-3)


# ----------------------------------------------------------------------
# SQL-level: extraction, plan choice, and end-to-end determinism
# ----------------------------------------------------------------------
def _sql_database(intra_query_workers: int = 1, band_joins: bool = True):
    rng = np.random.default_rng(77)
    n_obj, n_grid = 4000, 600
    db = Database("bandjoin", intra_query_workers=intra_query_workers,
                  band_joins=band_joins)
    db.create_table("obj", {
        "id": np.arange(n_obj, dtype=np.int64),
        "mag": rng.uniform(14.0, 22.0, n_obj),
        "colour": rng.uniform(-1.0, 3.0, n_obj),
    }, primary_key="id")
    db.create_table("grid", {
        "gid": np.arange(n_grid, dtype=np.int64),
        "mag": rng.uniform(14.0, 22.0, n_grid),
        "colour": rng.uniform(-1.0, 3.0, n_grid),
    }, primary_key="gid")
    db.sql("ANALYZE")
    return db


BAND_SQL = """
SELECT o.id AS id, COUNT(*) AS n
FROM obj o CROSS JOIN grid g
WHERE ABS(o.mag - g.mag) < 0.3 AND o.colour + g.colour > 1.0
GROUP BY o.id
"""


class TestSqlExtraction:
    def test_cost_mode_extracts_band_join(self):
        db = _sql_database()
        plan = db.explain(BAND_SQL)
        assert "BandJoin" in plan and "NestedLoopJoin" not in plan
        assert "residual" in plan  # the colour conjunct stays vectorized

    def test_explain_renders_band_bounds(self):
        db = _sql_database()
        plan = db.explain("SELECT o.id FROM obj o JOIN grid g "
                          "ON g.mag BETWEEN o.mag - 0.5 AND o.mag + 0.5")
        assert "BandJoin(g.mag in [" in plan

    def test_syntactic_mode_unchanged(self):
        db = _sql_database()
        plan = db.explain(BAND_SQL, optimizer="syntactic")
        assert "BandJoin" not in plan

    def test_band_disabled_database_uses_nested_loop(self):
        db = _sql_database(band_joins=False)
        plan = db.explain(BAND_SQL)
        assert "BandJoin" not in plan and "NestedLoopJoin" in plan

    def test_band_and_baseline_answers_identical(self):
        banded = _sql_database().sql(BAND_SQL)
        baseline = _sql_database(band_joins=False).sql(BAND_SQL)
        assert_batches_identical(banded.columns, baseline.columns)

    def test_workers_stamped_into_plan(self):
        db = _sql_database(intra_query_workers=4)
        plan = db.explain(BAND_SQL)
        assert "workers=4" in plan

    def test_sql_results_identical_across_workers(self):
        db = _sql_database()
        base = db.sql(BAND_SQL)
        for workers in (2, 4):
            db.intra_query_workers = workers
            out = db.sql(BAND_SQL)
            assert_batches_identical(base.columns, out.columns)


class TestKernelPlan:
    """Cost mode picks BandJoin for the MaxBCG likelihood kernel."""

    @pytest.fixture(scope="class")
    def kernel_db(self, sky, kcorr, config):
        from repro.core.procedures import install_maxbcg

        db = Database("kernel")
        db.create_table("galaxy_source", sky.catalog.as_columns(),
                        primary_key="objid")
        install_maxbcg(db, kcorr, config)
        db.sql("EXEC spImportGalaxy 180.0, 181.0, 0.0, 1.0")
        db.sql("EXEC spZone")
        db.sql("ANALYZE")
        return db

    KERNEL = """
    SELECT g.objid AS objid, COUNT(*) AS nz
    FROM Zone z
    JOIN Galaxy g ON z.objid = g.objid
    CROSS JOIN Kcorr k
    WHERE z.zoneid BETWEEN 10860 AND 10920
      AND ABS(g.i - k.i) < 1.509
      AND (POWER(g.i - k.i, 2) / POWER(0.57, 2)
           + POWER(g.gr - k.gr, 2) / (POWER(sigmagr, 2) + POWER(0.05, 2))
           + POWER(g.ri - k.ri, 2) / (POWER(sigmari, 2) + POWER(0.06, 2))) < 7
    GROUP BY g.objid
    """

    def test_cost_mode_selects_band_join(self, kernel_db):
        plan = kernel_db.explain(self.KERNEL)
        assert "BandJoin" in plan
        assert "NestedLoopJoin" not in plan
        assert "residual" in plan  # the chi² filter rides along vectorized

    def test_kernel_answers_identical_with_and_without_band(self, kernel_db):
        banded = kernel_db.sql(self.KERNEL)
        kernel_db.band_join_enabled = False
        try:
            baseline = kernel_db.sql(self.KERNEL)
        finally:
            kernel_db.band_join_enabled = True
        assert_batches_identical(banded.columns, baseline.columns)


class TestClusterDeterminism:
    def test_processes_backend_with_workers_identical(self, sky, target_region,
                                                      kcorr, config):
        from repro.cluster.backends import ProcessBackend
        from repro.cluster.executor import run_partitioned
        from repro.cluster.verify import assert_backends_equivalent

        base = run_partitioned(
            sky.catalog, target_region, kcorr, config,
            n_servers=2, compute_members=False, backend="sequential",
            intra_query_workers=1,
        )
        parallel = run_partitioned(
            sky.catalog, target_region, kcorr, config,
            n_servers=2, compute_members=False,
            backend=ProcessBackend(max_retries=2, backoff_s=0.01),
            intra_query_workers=2,
        )
        assert_backends_equivalent(
            {"sequential": base, "processes": parallel}
        )
