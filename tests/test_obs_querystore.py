"""Query Store: recording, verdicts, system views, persistence."""

import numpy as np
import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.storage import load_database, save_database
from repro.errors import SqlPlanError
from repro.obs.querystore import (
    QUERY_STORE_VIEWS,
    VIEW_PLANS,
    VIEW_QUERIES,
    VIEW_RUNTIME,
    QueryStore,
    attribution,
    current_user,
)

JOIN_SQL = "SELECT COUNT(*) AS n FROM t JOIN u ON t.grp = u.grp"


def make_db(**config_kwargs) -> Database:
    db = Database(
        "qs_test", config=EngineConfig(query_store=True, **config_kwargs)
    )
    db.create_table(
        "t",
        {"id": np.arange(60, dtype=np.int64),
         "grp": (np.arange(60) % 5).astype(np.int64)},
        primary_key="id",
    )
    db.create_table(
        "u",
        {"id": np.arange(40, dtype=np.int64),
         "grp": (np.arange(40) % 5).astype(np.int64)},
    )
    db.sql("ANALYZE")
    return db


# ----------------------------------------------------------------------
# direct store API
# ----------------------------------------------------------------------
class TestRecording:
    def test_aggregates_per_query_and_plan(self):
        store = QueryStore()
        for elapsed in (0.1, 0.2, 0.3):
            store.record(fingerprint="fp", sql="SELECT 1",
                         elapsed_s=elapsed, rows=10, cpu_s=0.05,
                         logical_reads=7, plan_text="planA",
                         decision="cost", now=1000.0)
        query = store.query("fp")
        assert query.executions == 3
        assert query.sql == "SELECT 1"
        (plan,) = store.plans("fp")
        assert plan.executions == 3
        assert plan.mean_wall_s == pytest.approx(0.2)
        assert plan.decision == "cost"
        (stats,) = store.runtime_stats()
        assert stats.executions == 3
        assert stats.rows == 30
        assert stats.cpu_sum_s == pytest.approx(0.15)
        assert stats.logical_reads == 21
        assert stats.wall_mean_s == pytest.approx(0.2)
        assert stats.wall_quantile(0.5) == pytest.approx(0.2)
        assert stats.wall_quantile(1.0) == pytest.approx(0.3)

    def test_intervals_split_by_time_and_user(self):
        store = QueryStore(interval_s=60.0)
        store.record(fingerprint="fp", sql="q", elapsed_s=0.1,
                     plan_text="p", now=10.0, user="alice")
        store.record(fingerprint="fp", sql="q", elapsed_s=0.1,
                     plan_text="p", now=20.0, user="bob")
        store.record(fingerprint="fp", sql="q", elapsed_s=0.1,
                     plan_text="p", now=70.0, user="alice")
        stats = store.runtime_stats()
        assert len(stats) == 3
        assert {(s.interval_start, s.user) for s in stats} == {
            (0.0, "alice"), (0.0, "bob"), (60.0, "alice"),
        }

    def test_attribution_context(self):
        assert current_user() == ""
        with attribution("alice"):
            assert current_user() == "alice"
            store = QueryStore()
            store.record(fingerprint="fp", sql="q", elapsed_s=0.1,
                         plan_text="p", now=0.0)
        assert current_user() == ""
        (stats,) = store.runtime_stats()
        assert stats.user == "alice"

    def test_eviction_cascades(self):
        store = QueryStore(max_queries=2)
        for i, fp in enumerate(("fp1", "fp2", "fp3")):
            store.record(fingerprint=fp, sql=fp, elapsed_s=0.1,
                         plan_text=f"plan-{fp}", now=float(i))
        assert store.query("fp1") is None
        assert store.plans("fp1") == []
        assert all(s.fingerprint != "fp1" for s in store.runtime_stats())
        assert store.query("fp2") is not None
        assert store.query("fp3") is not None


class TestPlanChangeVerdicts:
    def test_improvement_then_regression(self):
        store = QueryStore()
        for _ in range(2):
            store.record(fingerprint="fp", sql="q", elapsed_s=0.1,
                         plan_text="planA", decision="miss", now=0.0)
        # plan changes: the new plan is 10x faster
        for _ in range(3):
            store.record(fingerprint="fp", sql="q", elapsed_s=0.01,
                         plan_text="planB", decision="replan", now=0.0)
        (change,) = store.plan_changes()
        assert change.decision == "replan"
        assert change.verdict == "improvement"
        assert change.ratio == pytest.approx(0.1)
        assert store.improvements() == [change]
        # forcing the old plan back at its old speed is a regression
        for _ in range(2):
            store.record(fingerprint="fp", sql="q", elapsed_s=0.2,
                         plan_text="planA", decision="forced", now=0.0)
        regs = store.regressions()
        assert len(regs) == 1
        assert regs[0].decision == "forced"
        assert regs[0].new_plan_id == change.old_plan_id
        assert regs[0].ratio > 1.25

    def test_verdict_waits_for_min_executions(self):
        store = QueryStore()
        store.record(fingerprint="fp", sql="q", elapsed_s=0.1,
                     plan_text="planA", now=0.0)
        store.record(fingerprint="fp", sql="q", elapsed_s=0.1,
                     plan_text="planB", decision="replan", now=0.0)
        (change,) = store.plan_changes()
        assert change.verdict is None  # one post-change execution
        store.record(fingerprint="fp", sql="q", elapsed_s=0.1,
                     plan_text="planB", now=0.0)
        (change,) = store.plan_changes()
        assert change.verdict == "neutral"  # same speed, same plan

    def test_refork_uses_post_change_executions_only(self):
        store = QueryStore()
        # plan A: 2 slow executions, plan B: 2 fast, back to A: 2 slow
        for _ in range(2):
            store.record(fingerprint="fp", sql="q", elapsed_s=1.0,
                         plan_text="planA", now=0.0)
        for _ in range(2):
            store.record(fingerprint="fp", sql="q", elapsed_s=0.1,
                         plan_text="planB", decision="replan", now=0.0)
        for _ in range(2):
            store.record(fingerprint="fp", sql="q", elapsed_s=1.0,
                         plan_text="planA", decision="forced", now=0.0)
        back = store.plan_changes()[-1]
        # baseline excludes plan A's pre-change history: the mean is
        # over the two *post-change* 1.0 s runs, not diluted
        assert back.new_mean_s == pytest.approx(1.0)
        assert back.verdict == "regression"


# ----------------------------------------------------------------------
# end-to-end through Database.sql
# ----------------------------------------------------------------------
class TestSqlIntegration:
    def test_executions_recorded_with_decision(self):
        db = make_db()
        db.sql(JOIN_SQL)
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        query = db.query_store.query(fp)
        assert query.executions == 2
        (plan,) = db.query_store.plans(fp)
        assert plan.executions == 2
        assert plan.decision == "cost"
        assert plan.plan_signature == db.config.plan_signature()
        assert plan.plan_text  # EXPLAIN text captured

    def test_cache_hit_attaches_to_current_plan(self):
        db = make_db(result_cache=True)
        db.sql(JOIN_SQL)
        db.sql(JOIN_SQL)  # served from the result cache
        fp = db.statement_key(JOIN_SQL)
        assert db.query_store.query(fp).executions == 2
        stats = [s for s in db.query_store.runtime_stats()
                 if s.fingerprint == fp]
        assert sum(s.cache_hits for s in stats) == 1
        assert all(s.plan_id >= 0 for s in stats)

    def test_disabled_store_records_nothing(self):
        db = Database("off", config=EngineConfig())
        assert db.query_store is None
        assert db.plan_forcer is None
        db.create_table("t", {"id": np.arange(3, dtype=np.int64)})
        db.sql("SELECT COUNT(*) AS n FROM t")
        assert not db.has_table(VIEW_QUERIES)

    def test_user_attribution_end_to_end(self):
        db = make_db()
        with attribution("alice"):
            db.sql(JOIN_SQL)
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        users = {s.user for s in db.query_store.runtime_stats()
                 if s.fingerprint == fp}
        assert users == {"alice", ""}


class TestSystemViews:
    def test_views_queryable_and_match_store(self):
        db = make_db()
        db.sql(JOIN_SQL)
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        result = db.sql(
            f"SELECT fingerprint, sql, executions, plan_count, "
            f"forced_plan_id FROM {VIEW_QUERIES}"
        )
        row = next(r for r in result.rows() if r["fingerprint"] == fp)
        assert row["executions"] == 2
        assert row["plan_count"] == 1
        assert row["forced_plan_id"] == -1
        assert "JOIN" in row["sql"]

        plans = db.sql(
            f"SELECT plan_id, fingerprint, decision, executions, "
            f"is_forced FROM {VIEW_PLANS}"
        )
        prow = next(r for r in plans.rows() if r["fingerprint"] == fp)
        assert prow["decision"] == "cost"
        assert not prow["is_forced"]

        runtime = db.sql(
            f"SELECT fingerprint, executions, rows, wall_ms_mean, "
            f"wall_ms_p50, wall_ms_p95, logical_reads FROM {VIEW_RUNTIME}"
        )
        srow = next(r for r in runtime.rows() if r["fingerprint"] == fp)
        assert srow["executions"] == 2
        assert srow["rows"] == 2  # COUNT(*) returns one row per run
        assert srow["wall_ms_mean"] > 0
        assert srow["wall_ms_p95"] >= srow["wall_ms_p50"] >= 0
        assert srow["logical_reads"] > 0

    def test_views_refresh_lazily(self):
        db = make_db()
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)

        def executions():
            result = db.sql(
                f"SELECT fingerprint, executions FROM {VIEW_QUERIES}"
            )
            return next(r["executions"] for r in result.rows()
                        if r["fingerprint"] == fp)

        first = executions()
        assert first == 1
        db.sql(JOIN_SQL)
        assert executions() == 2

    def test_views_join_against_store_facts(self):
        db = make_db()
        db.sql(JOIN_SQL)
        db.sql(JOIN_SQL)
        result = db.sql(
            f"SELECT q.fingerprint AS fp, p.decision AS decision "
            f"FROM {VIEW_QUERIES} q JOIN {VIEW_PLANS} p "
            f"ON q.current_plan_id = p.plan_id"
        )
        fp = db.statement_key(JOIN_SQL)
        assert any(r["fp"] == fp and r["decision"] == "cost"
                   for r in result.rows())

    def test_dml_on_system_views_rejected(self):
        db = make_db()
        db.sql(JOIN_SQL)
        db.sql(f"SELECT fingerprint FROM {VIEW_QUERIES}")  # materialize
        for statement in (
            f"INSERT INTO {VIEW_QUERIES} SELECT * FROM {VIEW_QUERIES}",
            f"UPDATE {VIEW_PLANS} SET plan_id = 0",
            f"DELETE FROM {VIEW_RUNTIME}",
            f"TRUNCATE TABLE {VIEW_QUERIES}",
        ):
            with pytest.raises(SqlPlanError, match="system table"):
                db.sql(statement)


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
class TestPersistence:
    CONFIG = dict(query_store=True, feedback=True)

    def test_round_trip_identical_view_contents(self, tmp_path):
        db = make_db(feedback=True)
        db.sql(JOIN_SQL)
        db.sql(JOIN_SQL)
        fp = db.statement_key(JOIN_SQL)
        pid = db.query_store.query(fp).current_plan_id
        db.force_plan(fp, pid)
        paths = save_database(db, tmp_path)
        assert any(p.name == "querystore.json" for p in paths)
        assert not any(p.stem in QUERY_STORE_VIEWS for p in paths)

        restored = load_database(
            tmp_path, config=EngineConfig(**self.CONFIG)
        )
        original = db.query_store.view_batches(db.plan_forcer)
        copied = restored.query_store.view_batches(restored.plan_forcer)
        for view in QUERY_STORE_VIEWS:
            assert list(original[view]) == list(copied[view])
            for column in original[view]:
                np.testing.assert_array_equal(
                    original[view][column], copied[view][column],
                    err_msg=f"{view}.{column}",
                )

        # and the restored views answer the same facts over SQL
        result = restored.sql(
            f"SELECT fingerprint, executions, forced_plan_id "
            f"FROM {VIEW_QUERIES}"
        )
        row = next(r for r in result.rows() if r["fingerprint"] == fp)
        assert row["executions"] == 2
        assert row["forced_plan_id"] == pid

    def test_plain_restore_skips_store(self, tmp_path):
        db = make_db()
        db.sql(JOIN_SQL)
        save_database(db, tmp_path)
        restored = load_database(tmp_path)  # default config: store off
        assert restored.query_store is None
        assert not restored.has_table(VIEW_QUERIES)
