"""The end-to-end single-node pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import MaxBCGPipeline, run_maxbcg
from repro.engine.database import Database
from repro.errors import ConfigError, RegionError
from repro.skyserver.regions import RegionBox


class TestRun:
    def test_task_stats_present(self, pipeline_result):
        assert set(pipeline_result.stats) == {
            "spZone", "fBCGCandidate", "fIsCluster", "spMakeGalaxiesMetric"
        }
        for stats in pipeline_result.stats.values():
            assert stats.elapsed_s >= 0.0
            assert stats.io.total >= 0

    def test_total_excludes_members(self, pipeline_result):
        total = pipeline_result.total_stats
        parts = sum(
            pipeline_result.stats[k].elapsed_s
            for k in ("spZone", "fBCGCandidate", "fIsCluster")
        )
        assert total.elapsed_s == pytest.approx(parts)

    def test_row_counts_recorded(self, pipeline_result):
        assert pipeline_result.stats["spZone"].rows == pipeline_result.n_galaxies
        assert pipeline_result.stats["fBCGCandidate"].rows == len(
            pipeline_result.candidates
        )
        assert pipeline_result.stats["fIsCluster"].rows == len(
            pipeline_result.clusters
        )

    def test_fractions(self, pipeline_result):
        assert 0.0 < pipeline_result.candidate_fraction < 0.30
        assert 0.0 < pipeline_result.cluster_fraction < 0.02

    def test_engine_tables_populated(self, sky, target_region, kcorr, config):
        db = Database("inspect")
        pipeline = MaxBCGPipeline(kcorr, config, database=db)
        result = pipeline.run(sky.catalog, target_region)
        assert db.table("galaxy").row_count == len(sky.catalog)
        assert db.table("candidates").row_count == len(result.candidates)
        assert db.table("clusters").row_count == len(result.clusters)
        assert db.table("clustergalaxiesmetric").row_count == len(result.members)

    def test_spzone_dominates_io(self, pipeline_result):
        # Table 1's shape: zoning is the I/O-heavy task, the candidate
        # search is compute-heavy with low I/O density
        spzone = pipeline_result.stats["spZone"]
        candidates = pipeline_result.stats["fBCGCandidate"]
        assert spzone.io.total > candidates.io.total

    def test_methods_agree(self, sky, kcorr, config):
        small = RegionBox(180.4, 181.2, 0.4, 1.2)
        vec = run_maxbcg(sky.catalog, small, kcorr, config,
                         method="vectorized", compute_members=False)
        cur = run_maxbcg(sky.catalog, small, kcorr, config,
                         method="cursor", compute_members=False)
        assert np.array_equal(
            vec.candidates.sort_by_objid().objid,
            cur.candidates.sort_by_objid().objid,
        )
        assert np.array_equal(
            vec.clusters.sort_by_objid().objid,
            cur.clusters.sort_by_objid().objid,
        )

    def test_compute_members_false_skips_stage(self, sky, kcorr, config):
        small = RegionBox(180.4, 181.0, 0.4, 1.0)
        result = run_maxbcg(sky.catalog, small, kcorr, config,
                            compute_members=False)
        assert len(result.members) == 0
        assert "spMakeGalaxiesMetric" not in result.stats

    def test_deterministic_output(self, sky, target_region, kcorr, config):
        a = run_maxbcg(sky.catalog, target_region, kcorr, config,
                       compute_members=False)
        b = run_maxbcg(sky.catalog, target_region, kcorr, config,
                       compute_members=False)
        assert np.array_equal(a.clusters.objid, b.clusters.objid)
        assert np.allclose(a.clusters.chi2, b.clusters.chi2)


class TestScience:
    def test_positional_completeness(self, sky, pipeline_result, kcorr,
                                     target_region):
        # Most injected clusters inside the target are recovered as a
        # detected center within one aperture and dz <= 0.05 (the center
        # may sit on a bright member rather than the true BCG).
        clusters = pipeline_result.clusters
        truth = [c for c in sky.clusters if target_region.contains(c.ra, c.dec)]
        assert truth
        recovered = 0
        for c in truth:
            radius = kcorr.radius_at(c.z)
            d = np.hypot(
                (clusters.ra - c.ra) * np.cos(np.deg2rad(c.dec)),
                clusters.dec - c.dec,
            )
            if np.any((d < radius) & (np.abs(clusters.z - c.z) <= 0.05)):
                recovered += 1
        assert recovered / len(truth) >= 0.75

    def test_purity_near_truth(self, sky, pipeline_result, kcorr):
        # most detected clusters sit near *some* injected cluster
        clusters = pipeline_result.clusters
        truth_ra = np.array([c.ra for c in sky.clusters])
        truth_dec = np.array([c.dec for c in sky.clusters])
        truth_z = np.array([c.z for c in sky.clusters])
        near = 0
        for k in range(len(clusters)):
            radius = kcorr.radius_at(float(clusters.z[k]))
            d = np.hypot(
                (truth_ra - clusters.ra[k]) * np.cos(np.deg2rad(clusters.dec[k])),
                truth_dec - clusters.dec[k],
            )
            if np.any((d < 2 * radius) & (np.abs(truth_z - clusters.z[k]) <= 0.06)):
                near += 1
        assert near / len(clusters) >= 0.6


class TestValidation:
    def test_buffer_must_contain_target(self, sky, kcorr, config):
        pipeline = MaxBCGPipeline(kcorr, config)
        with pytest.raises(RegionError):
            pipeline.run(
                sky.catalog,
                RegionBox(180.0, 182.0, 0.0, 2.0),
                buffer=RegionBox(181.0, 181.5, 0.5, 1.0),
            )

    def test_empty_catalog_rejected(self, kcorr, config):
        from repro.skyserver.catalog import GalaxyCatalog

        pipeline = MaxBCGPipeline(kcorr, config)
        with pytest.raises(RegionError):
            pipeline.run(GalaxyCatalog.empty(), RegionBox(0, 1, 0, 1))

    def test_unknown_method_rejected(self, kcorr, config):
        with pytest.raises(ConfigError):
            MaxBCGPipeline(kcorr, config, method="gpu")
