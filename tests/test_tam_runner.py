"""The TAM driver and its agreement with the database pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import run_maxbcg
from repro.skyserver.regions import RegionBox
from repro.tam.astrotools import process_field
from repro.tam.files import FileStore
from repro.tam.runner import TamRunner, run_tam


@pytest.fixture(scope="module")
def tam_result(sky, kcorr, config, tmp_path_factory):
    target = RegionBox(180.5, 181.5, 0.5, 1.5)
    workdir = tmp_path_factory.mktemp("tam")
    return run_tam(sky.catalog, target, kcorr, config, workdir), target


class TestRun:
    def test_field_count(self, tam_result):
        result, target = tam_result
        assert len(result.fields) == 4  # 1 deg^2 at 0.5 deg fields

    def test_two_files_per_field_staged(self, tam_result):
        result, _ = tam_result
        # stage writes target+buffer; process adds one candidates file
        assert result.file_stats.files_written == 3 * len(result.fields)

    def test_every_field_timed(self, tam_result):
        result, _ = tam_result
        assert len(result.timings) == len(result.fields)
        assert all(t.process_s > 0 for t in result.timings)

    def test_elapsed_is_sum_of_fields(self, tam_result):
        result, _ = tam_result
        assert result.elapsed_s == pytest.approx(
            float(result.per_field_seconds().sum())
        )
        assert result.mean_field_s > 0

    def test_candidates_within_target(self, tam_result):
        result, target = tam_result
        assert np.all(target.contains(result.candidates.ra, result.candidates.dec))


class TestCrossImplementationAgreement:
    def test_tam_with_sql_config_matches_pipeline(self, sky, kcorr, config,
                                                  tmp_path):
        """Same configuration => same science, file-based or set-oriented.

        Interior clusters must agree exactly; at the target boundary the
        TAM run lacks buffer candidates (it only evaluates galaxies in
        field targets), so the comparison is restricted to the interior.
        """
        target = RegionBox(180.5, 181.5, 0.5, 1.5)
        tam = run_tam(sky.catalog, target, kcorr, config, tmp_path / "t")
        sql = run_maxbcg(sky.catalog, target, kcorr, config,
                         compute_members=False)

        # candidate values agree on shared objids (TAM evaluates T only,
        # SQL evaluates B = T + 0.5, a superset)
        tam_by_id = {
            int(o): (float(z), int(n), float(c))
            for o, z, n, c in zip(tam.candidates.objid, tam.candidates.z,
                                  tam.candidates.ngal, tam.candidates.chi2)
        }
        sql_ids = set(sql.candidates.objid.tolist())
        assert set(tam_by_id) <= sql_ids
        sql_by_id = {
            int(o): (float(z), int(n), float(c))
            for o, z, n, c in zip(sql.candidates.objid, sql.candidates.z,
                                  sql.candidates.ngal, sql.candidates.chi2)
        }
        for objid, values in tam_by_id.items():
            assert sql_by_id[objid] == pytest.approx(values)

        # interior clusters identical
        interior = target.shrink(config.buffer_deg)
        tam_in = tam.clusters.take(
            interior.contains(tam.clusters.ra, tam.clusters.dec)
        )
        sql_in = sql.clusters.take(
            interior.contains(sql.clusters.ra, sql.clusters.dec)
        )
        assert set(tam_in.objid.tolist()) == set(sql_in.objid.tolist())


class TestProcessField:
    def test_empty_target(self, sky, kcorr, config):
        from repro.skyserver.catalog import GalaxyCatalog

        result = process_field(
            GalaxyCatalog.empty(), sky.catalog, kcorr, config
        )
        assert len(result) == 0

    def test_truncated_buffer_changes_counts(self, sky, kcorr, config):
        # shrinking the buffer can only reduce neighbor counts — the
        # science cost of the TAM compromise
        region = RegionBox(180.6, 180.9, 0.6, 0.9)
        target = sky.catalog.select_region(region)
        wide = sky.catalog.select_region(region.expand(0.5))
        narrow = sky.catalog.select_region(region.expand(0.1))
        full = process_field(target, wide, kcorr, config)
        cut = process_field(target, narrow, kcorr, config)
        full_by_id = dict(zip(full.objid.tolist(), full.ngal.tolist()))
        cut_by_id = dict(zip(cut.objid.tolist(), cut.ngal.tolist()))
        assert set(cut_by_id) <= set(full_by_id)
        for objid, ngal in cut_by_id.items():
            assert ngal <= full_by_id[objid]


class TestRunnerStage:
    def test_stage_only(self, sky, kcorr, config, tmp_path):
        runner = TamRunner(kcorr, config, FileStore(tmp_path))
        fields = runner.stage(sky.catalog, RegionBox(180.5, 181.0, 0.5, 1.0))
        assert len(fields) == 1
        assert runner.store.file_count() == 2
