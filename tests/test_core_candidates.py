"""Candidate generation: cursor vs vectorized parity and semantics."""

import numpy as np
import pytest

from repro.core.candidates import (
    evaluate_galaxy,
    find_candidates_cursor,
    find_candidates_vectorized,
)
from repro.errors import CatalogError
from repro.skyserver.regions import RegionBox
from repro.spatial.conesearch import BruteForceIndex
from repro.spatial.zones import ZoneIndex


@pytest.fixture(scope="module")
def small_setup(sky, config):
    catalog = sky.catalog
    index = ZoneIndex(catalog.ra, catalog.dec, config.zone_height_deg)
    region = RegionBox(180.5, 181.5, 0.5, 1.5)
    eval_rows = np.flatnonzero(region.contains(catalog.ra, catalog.dec))
    return catalog, index, eval_rows


class TestParity:
    def test_cursor_equals_vectorized(self, small_setup, kcorr, config):
        catalog, index, eval_rows = small_setup
        cursor = find_candidates_cursor(catalog, eval_rows, index, kcorr, config)
        vectorized = find_candidates_vectorized(
            catalog, eval_rows, index, kcorr, config
        )
        assert len(cursor) == len(vectorized)
        a = cursor.sort_by_objid()
        b = vectorized.sort_by_objid()
        assert np.array_equal(a.objid, b.objid)
        assert np.allclose(a.z, b.z)
        assert np.array_equal(a.ngal, b.ngal)
        assert np.allclose(a.chi2, b.chi2)

    def test_brute_force_index_same_answers(self, small_setup, kcorr, config):
        catalog, zone_index, eval_rows = small_setup
        brute = BruteForceIndex(catalog.ra, catalog.dec)
        subset = eval_rows[:150]
        a = find_candidates_cursor(catalog, subset, zone_index, kcorr, config)
        b = find_candidates_cursor(catalog, subset, brute, kcorr, config)
        assert np.array_equal(
            a.sort_by_objid().objid, b.sort_by_objid().objid
        )


class TestSemantics:
    def test_candidates_subset_of_eval_rows(self, small_setup, kcorr, config):
        catalog, index, eval_rows = small_setup
        result = find_candidates_vectorized(
            catalog, eval_rows, index, kcorr, config
        )
        eval_ids = set(catalog.objid[eval_rows].tolist())
        assert set(result.objid.tolist()) <= eval_ids

    def test_ngal_at_least_two(self, small_setup, kcorr, config):
        # ngal stores neighbors + 1, and >= 1 neighbor is required
        catalog, index, eval_rows = small_setup
        result = find_candidates_vectorized(
            catalog, eval_rows, index, kcorr, config
        )
        assert np.all(result.ngal >= 2)

    def test_z_values_on_grid(self, small_setup, kcorr, config):
        catalog, index, eval_rows = small_setup
        result = find_candidates_vectorized(
            catalog, eval_rows, index, kcorr, config
        )
        zids = kcorr.nearest_zids(result.z)
        assert np.allclose(kcorr.z[zids], result.z)

    def test_truth_bcgs_become_candidates(self, sky, kcorr, config):
        catalog = sky.catalog
        index = ZoneIndex(catalog.ra, catalog.dec, config.zone_height_deg)
        inner = sky.region.shrink(0.6)
        truth = [c for c in sky.clusters if inner.contains(c.ra, c.dec)]
        rows = np.asarray(
            [catalog.index_of(c.bcg_objid) for c in truth], dtype=np.int64
        )
        result = find_candidates_vectorized(catalog, rows, index, kcorr, config)
        found = set(result.objid.tolist())
        recovered = sum(1 for c in truth if c.bcg_objid in found)
        assert recovered >= 0.9 * len(truth)

    def test_recovered_redshifts_accurate(self, sky, kcorr, config):
        catalog = sky.catalog
        index = ZoneIndex(catalog.ra, catalog.dec, config.zone_height_deg)
        inner = sky.region.shrink(0.6)
        truth = {c.bcg_objid: c.z for c in sky.clusters
                 if inner.contains(c.ra, c.dec)}
        rows = np.asarray(
            [catalog.index_of(objid) for objid in truth], dtype=np.int64
        )
        result = find_candidates_vectorized(catalog, rows, index, kcorr, config)
        errors = [
            abs(float(z) - truth[int(objid)])
            for objid, z in zip(result.objid, result.z)
        ]
        assert np.median(errors) < 0.03

    def test_empty_eval_rows(self, small_setup, kcorr, config):
        catalog, index, _ = small_setup
        result = find_candidates_vectorized(
            catalog, np.empty(0, dtype=np.int64), index, kcorr, config
        )
        assert len(result) == 0

    def test_eval_rows_out_of_range(self, small_setup, kcorr, config):
        catalog, index, _ = small_setup
        with pytest.raises(CatalogError):
            find_candidates_vectorized(
                catalog, np.array([len(catalog)]), index, kcorr, config
            )

    def test_evaluate_galaxy_none_for_hopeless(self, sky, kcorr, config):
        # find a galaxy that fails the filter and confirm None
        from repro.core.likelihood import filter_catalog

        catalog = sky.catalog
        index = ZoneIndex(catalog.ra, catalog.dec, config.zone_height_deg)
        filtered = filter_catalog(
            catalog.i[:500], catalog.gr[:500], catalog.ri[:500],
            catalog.sigmagr[:500], catalog.sigmari[:500], kcorr, config,
        )
        failing = int(np.flatnonzero(~filtered.passed)[0])
        assert evaluate_galaxy(catalog, failing, index, kcorr, config) is None
