"""Views, table-valued functions and stored procedures in the engine."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.sql.ast import (
    CreateViewStatement,
    DropViewStatement,
    ExecStatement,
)
from repro.engine.sql.parser import parse
from repro.errors import EngineError, SqlPlanError, TableNotFoundError


@pytest.fixture()
def db() -> Database:
    d = Database("vp")
    d.sql("CREATE TABLE obj (objid bigint PRIMARY KEY, ra float, mode int)")
    d.sql("INSERT INTO obj VALUES (1, 10.0, 1), (2, 20.0, 2), (3, 30.0, 1)")
    return d


class TestParserAdditions:
    def test_create_view(self):
        stmt = parse("CREATE VIEW v AS SELECT a FROM t WHERE a > 0")
        assert isinstance(stmt, CreateViewStatement)
        assert stmt.name == "v"

    def test_drop_view(self):
        stmt = parse("DROP VIEW IF EXISTS v")
        assert isinstance(stmt, DropViewStatement) and stmt.if_exists

    def test_exec_with_args(self):
        stmt = parse("EXEC spImportGalaxy 172, 185, -3, 5")
        assert isinstance(stmt, ExecStatement)
        assert stmt.procedure == "spimportgalaxy"
        assert len(stmt.arguments) == 4

    def test_execute_keyword(self):
        stmt = parse("EXECUTE dbo.spMakeClusters")
        assert stmt.procedure == "spmakeclusters"
        assert stmt.arguments == ()

    def test_tvf_in_from(self):
        stmt = parse("SELECT * FROM fGetNearbyObjEqZd(2.5, 3.0, 0.5) n")
        assert stmt.source.is_function
        assert stmt.source.alias == "n"
        assert len(stmt.source.function_args) == 3


class TestViews:
    def test_view_filters(self, db):
        db.sql("CREATE VIEW primaries AS SELECT objid, ra FROM obj WHERE mode = 1")
        rows = db.sql("SELECT objid FROM primaries ORDER BY objid").rows()
        assert [r["objid"] for r in rows] == [1, 3]

    def test_view_sees_fresh_data(self, db):
        db.sql("CREATE VIEW primaries AS SELECT objid FROM obj WHERE mode = 1")
        db.sql("INSERT INTO obj VALUES (4, 40.0, 1)")
        assert db.sql("SELECT COUNT(*) AS c FROM primaries").scalar() == 3

    def test_view_join_base_table(self, db):
        db.sql("CREATE VIEW primaries AS SELECT objid FROM obj WHERE mode = 1")
        rows = db.sql(
            "SELECT o.ra FROM primaries p JOIN obj o ON p.objid = o.objid "
            "ORDER BY o.ra"
        ).rows()
        assert [r["ra"] for r in rows] == [10.0, 30.0]

    def test_view_name_clash_rejected(self, db):
        with pytest.raises(EngineError):
            db.sql("CREATE VIEW obj AS SELECT objid FROM obj")
        db.sql("CREATE VIEW v AS SELECT objid FROM obj")
        with pytest.raises(EngineError):
            db.sql("CREATE TABLE v (a int)")

    def test_view_validated_at_creation(self, db):
        with pytest.raises(TableNotFoundError):
            db.sql("CREATE VIEW broken AS SELECT x FROM nothere")

    def test_drop_view(self, db):
        db.sql("CREATE VIEW v AS SELECT objid FROM obj")
        db.sql("DROP VIEW v")
        with pytest.raises(TableNotFoundError):
            db.sql("SELECT * FROM v")
        db.sql("DROP VIEW IF EXISTS v")  # no raise
        with pytest.raises(TableNotFoundError):
            db.sql("DROP VIEW v")

    def test_view_star_expansion(self, db):
        db.sql("CREATE VIEW v AS SELECT objid, ra FROM obj WHERE mode = 1")
        result = db.sql("SELECT * FROM v")
        assert result.column_names == ["objid", "ra"]


class TestTableFunctions:
    def test_registered_function_from_sql(self, db):
        db.create_table_function(
            "series", ("n",),
            lambda count: {"n": np.arange(int(count))},
        )
        rows = db.sql("SELECT n FROM series(4) s WHERE n > 1").rows()
        assert [r["n"] for r in rows] == [2, 3]

    def test_tvf_join(self, db):
        db.create_table_function(
            "ids", ("objid",),
            lambda: {"objid": np.array([1, 3])},
        )
        rows = db.sql(
            "SELECT o.ra FROM ids() x JOIN obj o ON x.objid = o.objid "
            "ORDER BY o.ra"
        ).rows()
        assert [r["ra"] for r in rows] == [10.0, 30.0]

    def test_unknown_tvf(self, db):
        with pytest.raises(TableNotFoundError):
            db.sql("SELECT * FROM nothere(1) x")

    def test_duplicate_registration(self, db):
        db.create_table_function("f", ("a",), lambda: {"a": np.array([1])})
        with pytest.raises(EngineError):
            db.create_table_function("F", ("a",), lambda: {"a": np.array([1])})


class TestProcedures:
    def test_exec_returns_query_result(self, db):
        db.create_procedure(
            "spStats",
            lambda d: d.sql("SELECT COUNT(*) AS c FROM obj"),
        )
        assert db.sql("EXEC spStats").scalar() == 3

    def test_exec_with_arguments(self, db):
        captured = {}

        def proc(d, lo, hi):
            captured["args"] = (lo, hi)
            return int(hi - lo)

        db.create_procedure("spRange", proc)
        result = db.sql("EXEC spRange 5, 25")
        assert captured["args"] == (5, 25)
        assert result.rows_affected == 20

    def test_exec_negative_and_float_args(self, db):
        db.create_procedure("spBox", lambda d, a, b: (a, b) and 0)
        db.sql("EXEC spBox -3.5, 1e2")  # parses and runs

    def test_exec_dict_result(self, db):
        db.create_procedure(
            "spDict", lambda d: {"x": np.array([1, 2])}
        )
        assert db.sql("EXEC spDict").column("x").tolist() == [1, 2]

    def test_unknown_procedure(self, db):
        with pytest.raises(TableNotFoundError):
            db.sql("EXEC spGhost")

    def test_duplicate_procedure(self, db):
        db.create_procedure("p", lambda d: None)
        with pytest.raises(EngineError):
            db.create_procedure("P", lambda d: None)

    def test_run_script_with_exec(self, db):
        db.create_procedure(
            "spDouble",
            lambda d: d.sql("UPDATE obj SET ra = ra * 2").rows_affected,
        )
        results = db.run_script("EXEC spDouble; SELECT MAX(ra) AS m FROM obj")
        assert results[-1].scalar() == 60.0
