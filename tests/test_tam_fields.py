"""TAM field tiling and the Figure 1 RAM story."""

import pytest

from repro.errors import TamError
from repro.skyserver.regions import RegionBox
from repro.tam.fields import (
    FIELD_SIZE_DEG,
    IDEAL_BUFFER_DEG,
    ROW_BYTES,
    TAM_BUFFER_DEG,
    buffer_file_bytes,
    buffer_file_rows,
    neighbor_fields,
    tile_fields,
)


class TestTiling:
    def test_field_count(self):
        # 2 x 2 deg target at 0.5 deg fields -> 16 fields
        fields = tile_fields(RegionBox(0.0, 2.0, 0.0, 2.0))
        assert len(fields) == 16

    def test_target_quarter_degree_squared(self):
        fields = tile_fields(RegionBox(0.0, 2.0, 0.0, 2.0))
        assert fields[0].target.flat_area() == pytest.approx(0.25)

    def test_buffer_one_degree_squared(self):
        # the TAM compromise: 1 x 1 deg^2 buffer files
        fields = tile_fields(RegionBox(0.0, 2.0, 0.0, 2.0))
        assert fields[0].buffer.flat_area() == pytest.approx(1.0)

    def test_ideal_buffer_is_2_25(self):
        fields = tile_fields(
            RegionBox(0.0, 2.0, 0.0, 2.0), buffer_margin=IDEAL_BUFFER_DEG
        )
        assert fields[0].buffer.flat_area() == pytest.approx(2.25)

    def test_unique_names(self):
        fields = tile_fields(RegionBox(0.0, 2.0, 0.0, 2.0))
        names = {f.name for f in fields}
        assert len(names) == len(fields)

    def test_buffer_contains_target(self):
        for f in tile_fields(RegionBox(10.0, 12.0, -1.0, 1.0)):
            assert f.buffer.contains_box(f.target)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(TamError):
            tile_fields(RegionBox(0, 1, 0, 1), field_size=0.0)
        with pytest.raises(TamError):
            tile_fields(RegionBox(0, 1, 0, 1), buffer_margin=-0.1)


class TestNeighborFields:
    def test_interior_field_has_8_neighbors(self):
        fields = tile_fields(RegionBox(0.0, 2.0, 0.0, 2.0))
        # find the field whose target starts at (0.5, 0.5): interior
        interior = next(
            f for f in fields
            if f.target.ra_min == 0.5 and f.target.dec_min == 0.5
        )
        assert len(neighbor_fields(fields, interior)) == 8

    def test_corner_field_has_3_neighbors(self):
        fields = tile_fields(RegionBox(0.0, 2.0, 0.0, 2.0))
        corner = next(
            f for f in fields
            if f.target.ra_min == 0.0 and f.target.dec_min == 0.0
        )
        assert len(neighbor_fields(fields, corner)) == 3

    def test_never_includes_self(self):
        fields = tile_fields(RegionBox(0.0, 2.0, 0.0, 2.0))
        for f in fields[:4]:
            assert f not in neighbor_fields(fields, f)


class TestRamBudget:
    def test_paper_buffer_file_size(self):
        # at survey density a 1 deg^2 buffer file is ~14k rows * 44 B
        rows = buffer_file_rows(14_000.0, TAM_BUFFER_DEG)
        assert rows == pytest.approx(14_000.0)
        assert buffer_file_bytes(14_000.0, TAM_BUFFER_DEG) == pytest.approx(
            rows * ROW_BYTES
        )

    def test_ideal_buffer_2_25x_larger(self):
        compromise = buffer_file_bytes(14_000.0, TAM_BUFFER_DEG)
        ideal = buffer_file_bytes(14_000.0, IDEAL_BUFFER_DEG)
        assert ideal / compromise == pytest.approx(2.25)

    def test_defaults(self):
        assert FIELD_SIZE_DEG == 0.5
        assert TAM_BUFFER_DEG == 0.25
        assert IDEAL_BUFFER_DEG == 0.5
