"""Extension: the semantic result cache under zipfian multi-user load.

"Batch is back: CasJobs" exists because millions of SkyServer users
re-run near-identical queries; the server-side answer is the shared
result cache.  This bench fires the same zipfian workload — many users
drawing from a fixed pool of distinct queries with popularity
∝ 1/rank^s — at two otherwise identical CasJobs sites, one with the
context's cache off and one with it on, and checks:

* **correctness** — every job's answer is byte-identical across the two
  runs (the cache must never change a result);
* **throughput** — the cached site clears the burst at >= 2x the
  uncached site's jobs/s;
* **latency** — worst per-class p95 run latency drops with the cache on
  (the popular queries stop paying the scan).

Results are written to ``BENCH_cache.json`` at the repo root.  Run
standalone (``python benchmarks/bench_cache.py``) or under
pytest-benchmark (``pytest benchmarks/bench_cache.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.casjobs_load import (
    CacheComparison,
    LoadSpec,
    run_zipf_cache_comparison,
)
from repro.bench.reporting import ShapeCheck, print_report

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cache.json"

#: The acceptance workload: 400 jobs from 8 users over 16 distinct
#: queries, zipf-skewed so the head queries repeat often (hit rate
#: ~95%), against a catalog big enough that a miss visibly costs.
DEFAULT_SPEC = LoadSpec(
    n_users=8,
    n_jobs=400,
    quick_fraction=0.25,
    catalog_rows=100_000,
    zipf_queries=16,
    zipf_s=1.2,
    workers=4,
    pool="threads",
    seed=2005,
)

#: The throughput floor the cached run must clear.
MIN_SPEEDUP = 2.0


def run_and_check(
    spec: LoadSpec = DEFAULT_SPEC,
) -> tuple[CacheComparison, list[ShapeCheck]]:
    comparison = run_zipf_cache_comparison(spec)
    summary = comparison.as_dict()
    p95_off = summary["p95_run_off_ms"]
    p95_on = summary["p95_run_on_ms"]
    checks = [
        ShapeCheck(
            claim="caching never changes an answer",
            paper="cache-on and cache-off results byte-identical",
            measured=f"digests {'match' if comparison.identical else 'DIFFER'}",
            holds=comparison.identical,
        ),
        ShapeCheck(
            claim="repeated queries answered from cache",
            paper=f"throughput >= {MIN_SPEEDUP}x with cache on",
            measured=f"{comparison.speedup:.2f}x "
            f"({summary['throughput_off_jobs_s']} -> "
            f"{summary['throughput_on_jobs_s']} jobs/s)",
            holds=comparison.speedup >= MIN_SPEEDUP,
        ),
        ShapeCheck(
            claim="popular queries stop paying the scan",
            paper="p95 run latency drops with cache on",
            measured=f"{p95_off:.1f} ms -> {p95_on:.1f} ms",
            holds=p95_on < p95_off,
        ),
        ShapeCheck(
            claim="the cache is actually exercised",
            paper="hit rate > 50% on the zipfian head",
            measured=f"{comparison.on.cache.get('hit_rate', 0.0):.1%}",
            holds=comparison.on.cache.get("hit_rate", 0.0) > 0.5,
        ),
    ]
    payload = {**summary, "checks": [
        {"claim": c.claim, "measured": c.measured, "holds": c.holds}
        for c in checks
    ]}
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return comparison, checks


def _render(comparison: CacheComparison) -> list[str]:
    return [
        "cache OFF:",
        comparison.off.render(),
        "",
        "cache ON:",
        comparison.on.render(),
    ]


@pytest.mark.benchmark(group="result-cache")
def test_cache_speedup(benchmark):
    holder = {}

    def once():
        holder["out"] = run_and_check()
        return holder["out"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    comparison, checks = holder["out"]
    print_report("Semantic result cache under zipfian load",
                 _render(comparison), checks)
    assert all(c.holds for c in checks), [
        c.claim for c in checks if not c.holds
    ]


def main() -> int:
    comparison, checks = run_and_check()
    print_report("Semantic result cache under zipfian load",
                 _render(comparison), checks)
    print(f"results written to {OUTPUT_PATH}")
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
