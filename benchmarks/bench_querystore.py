"""Extension: the Query Store on the shifted-data feedback grid.

``bench_feedback`` established that the adaptive optimizer re-plans the
skewed 3-table chain and wins its latency back.  This bench runs the
same shifted workload with ``EngineConfig(query_store=True)`` and pins
the observability story on top of it:

* **history** — the store records the feedback re-plan as a plan-change
  event, with both plan structures in the fingerprint's history;
* **direction** — the re-plan is classified an *improvement*; forcing
  the pre-feedback plan back is classified a *regression*, and
  ``repro querystore regressions`` would report both directions
  correctly;
* **forcing** — the forced pre-feedback plan actually runs (decision
  ``forced``) and reproduces its original latency class: its mean wall
  is well above the converged plan's (generous 2x band — the original
  gap is ~10x);
* **dogfood** — SELECTs over ``sys_query_store_queries`` /
  ``sys_query_store_plans`` / ``sys_query_store_runtime_stats`` return
  the same facts as the store's Python API;
* **correctness** — every answer is byte-identical across all cycles,
  forced or not, and matches a store-off control arm;
* **attribution** — executions wrapped in :func:`attribution` land in
  per-user runtime-stat rows.

Results go to ``BENCH_querystore.json`` at the repo root.  Run
standalone (``python benchmarks/bench_querystore.py``) or under
pytest-benchmark.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_feedback import (  # noqa: E402
    QERROR_CEILING,
    build_shifted_database,
    result_digest,
)
from repro.bench.reporting import ShapeCheck, print_report  # noqa: E402
from repro.engine.config import EngineConfig  # noqa: E402
from repro.obs.querystore import (  # noqa: E402
    VIEW_PLANS,
    VIEW_QUERIES,
    VIEW_RUNTIME,
    attribution,
)

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_querystore.json"

CYCLES = 5
FORCED_CYCLES = 3
#: forced-vs-converged latency band: the pre-feedback plan must be at
#: least this much slower than the converged plan (original gap ~10x)
FORCED_SLOWDOWN_MIN = 2.0

SKEW_SQL = (
    "SELECT COUNT(*) AS n FROM a JOIN b ON a.k1 = b.k1 "
    "JOIN c ON b.k2 = c.k2 WHERE a.grp = 0"
)

STORE_CONFIG = EngineConfig(
    optimizer="cost", feedback=True, qerror_ceiling=QERROR_CEILING,
    query_store=True,
)
CONTROL_CONFIG = EngineConfig(
    optimizer="cost", feedback=True, qerror_ceiling=QERROR_CEILING,
)


def _timed(db, sql: str, user: str | None = None):
    start = time.perf_counter()
    if user is None:
        result = db.sql(sql)
    else:
        with attribution(user):
            result = db.sql(sql)
    return result, 1e3 * (time.perf_counter() - start)


def run_grid() -> dict:
    """The shifted workload with the store on, plus a store-off control."""
    control = build_shifted_database(CONTROL_CONFIG)
    db = build_shifted_database(STORE_CONFIG)
    store = db.query_store

    grid: dict = {"cycles": [], "forced_cycles": [], "digests": set()}
    users = ("alice", "bob")
    for cycle in range(CYCLES):
        result, elapsed_ms = _timed(db, SKEW_SQL,
                                    user=users[cycle % len(users)])
        ref, _ = _timed(control, SKEW_SQL)
        grid["digests"].update((result_digest(result), result_digest(ref)))
        grid["cycles"].append({
            "cycle": cycle,
            "elapsed_ms": round(elapsed_ms, 3),
            "decision": result.memo_decision,
            "plan_origin": result.plan_origin,
        })

    fingerprint = db.statement_key(SKEW_SQL)
    replans = [c for c in store.plan_changes()
               if c.decision in ("replan", "learned-override")]
    grid["fingerprint"] = fingerprint
    grid["replan_changes"] = len(replans)
    grid["replan_verdict"] = replans[0].verdict if replans else None
    grid["replan_ratio"] = replans[0].ratio if replans else None

    # force the pre-feedback plan back and measure it
    forced_plan_id = replans[0].old_plan_id if replans else -1
    if forced_plan_id >= 0:
        db.force_plan(fingerprint, forced_plan_id)
        for cycle in range(FORCED_CYCLES):
            result, elapsed_ms = _timed(db, SKEW_SQL)
            grid["digests"].add(result_digest(result))
            grid["forced_cycles"].append({
                "cycle": cycle,
                "elapsed_ms": round(elapsed_ms, 3),
                "decision": result.memo_decision,
            })
        db.unforce_plan(fingerprint)

    grid["forced_plan_id"] = forced_plan_id
    grid["regressions"] = [
        {"old": c.old_plan_id, "new": c.new_plan_id,
         "decision": c.decision, "ratio": c.ratio}
        for c in store.regressions()
    ]
    grid["summary"] = store.summary()

    # dogfood: the system views must answer the same facts as the API
    q_rows = db.sql(
        f"SELECT fingerprint, executions, plan_count FROM {VIEW_QUERIES}"
    ).rows()
    p_rows = db.sql(
        f"SELECT plan_id, fingerprint, executions FROM {VIEW_PLANS}"
    ).rows()
    s_rows = db.sql(
        f"SELECT fingerprint, user_name, executions FROM {VIEW_RUNTIME}"
    ).rows()
    stored = store.query(fingerprint)
    view_row = next(
        (r for r in q_rows if r["fingerprint"] == fingerprint), None
    )
    grid["views_match"] = (
        view_row is not None
        and view_row["executions"] == stored.executions
        and view_row["plan_count"] == len(store.plans(fingerprint))
        and sorted(
            (r["plan_id"], r["executions"]) for r in p_rows
            if r["fingerprint"] == fingerprint
        ) == sorted(
            (p.plan_id, p.executions) for p in store.plans(fingerprint)
        )
    )
    grid["users_attributed"] = sorted({
        r["user_name"] for r in s_rows
        if r["fingerprint"] == fingerprint and r["user_name"]
    })
    return grid


def run_and_check() -> tuple[dict, list[ShapeCheck]]:
    grid = run_grid()

    converged_ms = grid["cycles"][-1]["elapsed_ms"]
    forced = grid["forced_cycles"]
    forced_ms = (min(c["elapsed_ms"] for c in forced)
                 if forced else float("nan"))
    first_ms = grid["cycles"][0]["elapsed_ms"]
    forced_regressed = any(
        r["new"] == grid["forced_plan_id"] and r["decision"] == "forced"
        for r in grid["regressions"]
    )

    checks = [
        ShapeCheck(
            claim="the feedback re-plan is recorded as a plan change",
            paper="one plan-change event with the re-plan decision",
            measured=f"{grid['replan_changes']} re-plan change(s), "
            f"{grid['summary']['plans']} plans in history",
            holds=grid["replan_changes"] == 1,
        ),
        ShapeCheck(
            claim="regression detection reports the direction correctly",
            paper="re-plan classified improvement; forced old plan "
            "classified regression",
            measured=f"re-plan verdict={grid['replan_verdict']} "
            f"(ratio {grid['replan_ratio']:.2f}x), forced regression "
            f"recorded={forced_regressed}",
            holds=(grid["replan_verdict"] == "improvement"
                   and forced_regressed),
        ),
        ShapeCheck(
            claim="forcing the pre-feedback plan reproduces its latency",
            paper=f"forced wall >= {FORCED_SLOWDOWN_MIN:g}x converged "
            "(original gap ~10x)",
            measured=f"first {first_ms:.1f} ms, converged "
            f"{converged_ms:.1f} ms, forced {forced_ms:.1f} ms",
            holds=(bool(forced)
                   and all(c["decision"] == "forced" for c in forced)
                   and forced_ms >= converged_ms * FORCED_SLOWDOWN_MIN),
        ),
        ShapeCheck(
            claim="system views answer the same facts as the store API",
            paper="SELECTs over sys_query_store_* match the CLI report",
            measured=f"views_match={grid['views_match']}",
            holds=bool(grid["views_match"]),
        ),
        ShapeCheck(
            claim="per-user attribution lands in runtime stats",
            paper="one stats row per (user, interval)",
            measured=f"users={grid['users_attributed']}",
            holds=grid["users_attributed"] == ["alice", "bob"],
        ),
        ShapeCheck(
            claim="recording and forcing never change an answer",
            paper="byte-identical results: store on, store off, forced",
            measured=f"{len(grid['digests'])} distinct digest(s) over "
            f"{2 * CYCLES + len(forced)} executions",
            holds=len(grid["digests"]) == 1,
        ),
    ]
    payload = {
        "cycles": CYCLES,
        "forced_cycles": FORCED_CYCLES,
        "grid": {k: (sorted(v) if isinstance(v, set) else v)
                 for k, v in grid.items()},
        "checks": [
            {"claim": c.claim, "measured": c.measured, "holds": c.holds}
            for c in checks
        ],
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return grid, checks


def _render(grid: dict) -> list[str]:
    lines = [f"fingerprint {grid['fingerprint'][:12]}:"]
    for point in grid["cycles"]:
        lines.append(
            f"  cycle {point['cycle']}: {point['elapsed_ms']:8.1f} ms  "
            f"[{point['decision']}]"
        )
    for point in grid["forced_cycles"]:
        lines.append(
            f"  forced {point['cycle']}: {point['elapsed_ms']:8.1f} ms  "
            f"[{point['decision']}]"
        )
    summary = grid["summary"]
    lines.append(
        f"store: {summary['plans']} plans, {summary['plan_changes']} "
        f"changes, {summary['improvements']} improved, "
        f"{summary['regressions']} regressed"
    )
    return lines


@pytest.mark.benchmark(group="querystore")
def test_querystore_regression_detection(benchmark):
    holder = {}

    def once():
        holder["out"] = run_and_check()
        return holder["out"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    grid, checks = holder["out"]
    print_report("Query Store on the shifted-data grid", _render(grid),
                 checks)
    assert all(c.holds for c in checks), [
        c.claim for c in checks if not c.holds
    ]


def main() -> int:
    grid, checks = run_and_check()
    print_report("Query Store on the shifted-data grid", _render(grid),
                 checks)
    print(f"results written to {OUTPUT_PATH}")
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
