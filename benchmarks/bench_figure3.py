"""Figure 3: larger target areas amortize the buffer overhead.

"Larger target areas give better performance because the relative
buffer area (overhead) decreases."  We regenerate the curve two ways:

* geometrically — relative buffer overhead (area(B)-area(T))/area(T)
  as the target grows (exact, monotone decreasing);
* empirically — measured pipeline seconds per target deg² for a sweep
  of target sizes over the same sky (the overhead shows up as work done
  on buffer galaxies whose answers are thrown away).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.core.pipeline import run_maxbcg
from repro.skyserver.regions import RegionBox, buffer_overhead

#: target edge lengths (deg) for the sweep, clipped to the workload
SWEEP = (0.5, 1.0, 2.0, 3.0)


@pytest.mark.benchmark(group="figure3")
def test_figure3_buffer_amortization(benchmark, workload, sky, sql_kcorr):
    ra0, dec0 = workload.target.center
    max_edge = min(workload.target.width, workload.target.height)
    edges = [e for e in SWEEP if e <= max_edge + 1e-9]

    rows = []
    overheads = []
    per_area = []
    for edge in edges:
        target = RegionBox(
            ra0 - edge / 2, ra0 + edge / 2, dec0 - edge / 2, dec0 + edge / 2
        )
        overhead = buffer_overhead(target, workload.sql.buffer_deg)

        def run(t=target):
            return run_maxbcg(sky.catalog, t, sql_kcorr, workload.sql,
                              compute_members=False)

        if edge == edges[-1]:
            result = benchmark.pedantic(run, rounds=1, iterations=1)
        else:
            result = run()
        seconds = result.total_stats.elapsed_s
        overheads.append(overhead)
        per_area.append(seconds / target.flat_area())
        rows.append([
            f"{edge} x {edge}", round(target.flat_area(), 2),
            f"{100 * overhead:.0f}%", round(seconds, 3),
            round(seconds / target.flat_area(), 3),
        ])

    geometric_monotone = all(
        a > b for a, b in zip(overheads, overheads[1:])
    )
    empirical_improves = per_area[-1] < per_area[0]
    checks = [
        ShapeCheck(
            "relative buffer overhead decreases with target size",
            "monotone (Figure 3)", "monotone" if geometric_monotone else "NOT",
            geometric_monotone,
        ),
        ShapeCheck(
            "seconds per target deg^2 improve with target size",
            "larger is better", f"{per_area[0]:.3f} -> {per_area[-1]:.3f}",
            empirical_improves,
        ),
        ShapeCheck(
            "paper-geometry overhead",
            "27% (84 vs 66 deg^2)",
            f"{100 * buffer_overhead(RegionBox(173, 184, -2, 4), 0.5):.0f}%",
            abs(buffer_overhead(RegionBox(173, 184, -2, 4), 0.5) - 18 / 66)
            < 1e-9,
        ),
    ]
    print_report(
        f"Figure 3 — buffer overhead amortization ({workload.name} scale)",
        [format_table(
            "target-size sweep",
            ["target", "area (deg^2)", "buffer overhead", "elapsed (s)",
             "s per deg^2"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)
