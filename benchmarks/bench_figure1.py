"""Figure 1: TAM's target/buffer geometry and the RAM compromise.

"Ideally the Buffer file would cover 1.5 x 1.5 deg² = 2.25 deg² ...
but the time to search the larger Buffer file would have been
unacceptable because the TAM nodes did not have enough RAM."

Regenerates the figure's quantitative content: field/buffer areas under
the compromise (1 deg²) and the ideal (2.25 deg²), the buffer file
sizes at survey density, a scheduling check that ideal-buffer working
sets are unschedulable on 1 GB TAM nodes, and the *measured* kernel
slowdown of searching the bigger buffer.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.engine.stats import TaskTimer
from repro.grid.jobs import Job
from repro.grid.resources import tam_cluster
from repro.grid.scheduler import CondorScheduler
from repro.grid.transfer import TransferModel
from repro.skyserver.generator import PAPER_DENSITY
from repro.skyserver.regions import RegionBox
from repro.tam.astrotools import process_field
from repro.tam.fields import (
    IDEAL_BUFFER_DEG,
    TAM_BUFFER_DEG,
    buffer_file_bytes,
    tile_fields,
)

#: in-RAM working-set multiplier over the raw file (vectors, z-grid
#: intermediates) — calibrated so the paper's compromise reproduces:
#: 2.25 deg² at survey density must bust a 1 GB node, 1 deg² must fit.
WORKING_SET_FACTOR = 800.0


@pytest.mark.benchmark(group="figure1")
def test_figure1_buffer_compromise(benchmark, workload, sky, tam_kcorr):
    # geometry of one field under both buffer choices
    fields = tile_fields(workload.target, buffer_margin=TAM_BUFFER_DEG)
    ideal_fields = tile_fields(workload.target, buffer_margin=IDEAL_BUFFER_DEG)
    compromise_area = fields[0].buffer.flat_area()
    ideal_area = ideal_fields[0].buffer.flat_area()

    # file sizes / RAM feasibility at the paper's survey density
    compromise_bytes = buffer_file_bytes(PAPER_DENSITY, TAM_BUFFER_DEG)
    ideal_bytes = buffer_file_bytes(PAPER_DENSITY, IDEAL_BUFFER_DEG)
    scheduler = CondorScheduler(tam_cluster(), TransferModel())

    def job_for(file_bytes, name):
        return Job(job_id=0, name=name, cpu_seconds=1.0,
                   ram_bytes=file_bytes * WORKING_SET_FACTOR)

    fits = scheduler.run([job_for(compromise_bytes, "compromise")])
    busts = scheduler.run([job_for(ideal_bytes, "ideal")])

    # measured kernel cost: same target, compromise vs ideal buffer
    ra0, dec0 = workload.target.center
    field = RegionBox(ra0 - 0.25, ra0 + 0.25, dec0 - 0.25, dec0 + 0.25)
    target_catalog = sky.catalog.select_region(field)
    small_buffer = sky.catalog.select_region(field.expand(TAM_BUFFER_DEG))
    big_buffer = sky.catalog.select_region(field.expand(IDEAL_BUFFER_DEG))

    with TaskTimer("small") as small_timer:
        process_field(target_catalog, small_buffer, tam_kcorr, workload.tam)

    def ideal_kernel():
        with TaskTimer("big") as big_timer:
            process_field(target_catalog, big_buffer, tam_kcorr, workload.tam)
        return big_timer.stats.elapsed_s

    big_seconds = benchmark.pedantic(ideal_kernel, rounds=1, iterations=1)
    small_seconds = small_timer.stats.elapsed_s
    slowdown = big_seconds / max(small_seconds, 1e-9)

    rows = [
        ["target", 0.25, 0.25],
        ["buffer area (deg^2)", compromise_area, ideal_area],
        ["buffer file (MB @ paper density)",
         round(compromise_bytes / 1e6, 2), round(ideal_bytes / 1e6, 2)],
        ["fits 1 GB TAM node", fits.completed == 1, busts.completed == 1],
        ["kernel time (ms, measured)",
         round(small_seconds * 1e3, 1), round(big_seconds * 1e3, 1)],
    ]
    checks = [
        ShapeCheck("compromise buffer area", "1 deg^2",
                   f"{compromise_area:.2f}", compromise_area == pytest.approx(1.0)),
        ShapeCheck("ideal buffer area", "2.25 deg^2",
                   f"{ideal_area:.2f}", ideal_area == pytest.approx(2.25)),
        ShapeCheck("compromise schedulable on TAM", "yes",
                   str(fits.completed == 1), fits.completed == 1),
        ShapeCheck("ideal unschedulable on TAM (RAM)", "no ('not enough RAM')",
                   str(busts.completed == 1), busts.completed == 0),
        ShapeCheck("bigger buffer costs more to search",
                   "'unacceptable'", f"{slowdown:.2f}x", slowdown > 1.0),
    ]
    print_report(
        f"Figure 1 — TAM buffer geometry and the RAM compromise "
        f"({workload.name} scale)",
        [format_table("compromise vs ideal",
                      ["quantity", "TAM (0.25 deg)", "ideal (0.5 deg)"],
                      rows)],
        checks,
    )
    assert all(c.holds for c in checks)
