"""Ablations (Section 2.6): why the SQL implementation wins.

"First, the SQL implementation discards candidates early ... So, early
filtering and indexing are a big part of the answer.  Second, the main
advantage comes from using the Zone strategy ...  The iteration through
the galaxy table uses SQL cursors which are very slow."

Three ablations on the same region:

1. **cursor vs set-oriented** — identical answers, measured gap;
2. **early filtering** — the chi² pre-cut's selectivity, and the
   measured cost of the neighbor stage with and without it (without,
   every galaxy reaches the expensive per-redshift counting);
3. **zone height** — the 30 arcsec choice vs coarser/finer stripes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.core.candidates import find_candidates_vectorized
from repro.core.pipeline import run_maxbcg
from repro.engine.stats import TaskTimer
from repro.skyserver.regions import RegionBox
from repro.spatial.zonejoin import zone_join
from repro.spatial.zones import ZoneIndex

ZONE_HEIGHTS = {
    "0.5 deg": 0.5,
    "2 arcmin": 120.0 / 3600.0,
    "30 arcsec (paper)": 30.0 / 3600.0,
    "5 arcsec": 5.0 / 3600.0,
}


@pytest.mark.benchmark(group="ablation-maxbcg")
def test_maxbcg_ablations(benchmark, workload, sky, sql_kcorr):
    ra0, dec0 = workload.target.center
    edge = min(1.0, workload.target.height / 2)
    region = RegionBox(ra0 - edge / 2, ra0 + edge / 2,
                       dec0 - edge / 2, dec0 + edge / 2)

    # ---------------------------------------------- cursor vs vectorized
    holder = {}

    def run_vectorized():
        holder["vec"] = run_maxbcg(sky.catalog, region, sql_kcorr,
                                   workload.sql, method="vectorized",
                                   compute_members=False)
        return holder["vec"]

    benchmark.pedantic(run_vectorized, rounds=1, iterations=1)
    vec = holder["vec"]
    cur = run_maxbcg(sky.catalog, region, sql_kcorr, workload.sql,
                     method="cursor", compute_members=False)
    identical = np.array_equal(
        vec.candidates.sort_by_objid().objid,
        cur.candidates.sort_by_objid().objid,
    )
    # compare the candidate task itself: spZone/fIsCluster are identical
    # in both methods and would dilute the ratio on large catalogs
    cursor_gap = (
        cur.stats["fBCGCandidate"].elapsed_s
        / vec.stats["fBCGCandidate"].elapsed_s
    )

    # ---------------------------------------------- early filtering
    catalog = sky.catalog
    index = ZoneIndex(catalog.ra, catalog.dec, workload.sql.zone_height_deg)
    eval_rows = np.flatnonzero(
        region.expand(workload.sql.buffer_deg).contains(catalog.ra, catalog.dec)
    )
    with TaskTimer("filtered") as filtered_timer:
        find_candidates_vectorized(catalog, eval_rows, index, sql_kcorr,
                                   workload.sql)
    # "no early filter": disable the chi^2 cut by raising the threshold
    # so every galaxy reaches the neighbor stage
    unfiltered_config = workload.sql.with_(chi2_threshold=1e9)
    with TaskTimer("unfiltered") as unfiltered_timer:
        find_candidates_vectorized(catalog, eval_rows, index, sql_kcorr,
                                   unfiltered_config)
    filter_gain = (
        unfiltered_timer.stats.elapsed_s / filtered_timer.stats.elapsed_s
    )

    # ---------------------------------------------- zone height sweep
    # The paper's cost model is rows scanned inside each zone's RA
    # window: finer stripes scan fewer superfluous rows per cone.  (Our
    # vectorized evaluator adds a per-stripe pass overhead that favors
    # coarser stripes in raw wall-clock — both columns are reported.)
    q_rows = np.random.default_rng(1).integers(0, len(catalog), 300)
    max_radius = float(sql_kcorr.radius.max())
    height_rows = []
    height_seconds = {}
    height_scanned = {}
    for label, height in ZONE_HEIGHTS.items():
        zindex = ZoneIndex(catalog.ra, catalog.dec, height)
        with TaskTimer(label) as timer:
            zone_join(zindex, catalog.ra[q_rows], catalog.dec[q_rows],
                      max_radius)
        scanned = 0
        for q in q_rows[:100]:
            for start, stop in zindex.scan_ranges(
                float(catalog.ra[q]), float(catalog.dec[q]), max_radius
            ):
                scanned += stop - start
        height_seconds[label] = timer.stats.elapsed_s
        height_scanned[label] = scanned
        height_rows.append([label, round(timer.stats.elapsed_s * 1e3, 1),
                            scanned])

    rows = [
        ["set-oriented fBCGCandidate",
         round(vec.stats["fBCGCandidate"].elapsed_s, 3)],
        ["cursor fBCGCandidate",
         round(cur.stats["fBCGCandidate"].elapsed_s, 3)],
        ["set-oriented pipeline total", round(vec.total_stats.elapsed_s, 3)],
        ["cursor pipeline total", round(cur.total_stats.elapsed_s, 3)],
        ["neighbor stage, early filter ON",
         round(filtered_timer.stats.elapsed_s, 3)],
        ["neighbor stage, early filter OFF",
         round(unfiltered_timer.stats.elapsed_s, 3)],
    ]
    checks = [
        ShapeCheck("cursor and set-oriented produce identical catalogs",
                   "same algorithm", "identical" if identical else "DIFFER",
                   identical),
        ShapeCheck("cursors are very slow",
                   "'cursors which are very slow'",
                   f"{cursor_gap:.1f}x slower", cursor_gap > 2.0),
        ShapeCheck("early filtering is a big part of the answer",
                   "'discards candidates early'",
                   f"{filter_gain:.1f}x without it", filter_gain > 2.0),
        ShapeCheck("finer stripes scan fewer rows (the SQL cost model)",
                   "30 arcsec beats coarse stripes",
                   f"{height_scanned['0.5 deg'] / height_scanned['30 arcsec (paper)']:.1f}x fewer than 0.5-deg stripes",
                   height_scanned["30 arcsec (paper)"]
                   < height_scanned["0.5 deg"]
                   and height_scanned["30 arcsec (paper)"]
                   < height_scanned["2 arcmin"]),
    ]
    print_report(
        f"Ablation — MaxBCG design choices ({workload.name} scale)",
        [
            format_table("pipeline & filter ablations",
                         ["variant", "elapsed (s)"], rows),
            format_table("zone-height sweep (300 max-radius cones)",
                         ["zone height", "join (ms)", "rows scanned/100"],
                         height_rows),
        ],
        checks,
    )
    assert all(c.holds for c in checks)
