"""Extension: partition-count scaling (the Section 4 'gridify' plan).

The paper ran 1 and 3 servers and plans more sites ("Fermilab ... JHU
... IUCAA Pune").  This bench sweeps the server count and regenerates
the trade-off curve the duplicated skirts impose: elapsed time falls
(up to load imbalance), while total CPU and imported rows climb —
exactly why the paper calls the duplication "insignificant compared to
the total work" only while stripes stay wide.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.cluster.backends import BACKEND_NAMES
from repro.cluster.executor import run_partitioned
from repro.cluster.verify import (
    assert_backends_equivalent,
    assert_union_equals_sequential,
)
from repro.core.pipeline import run_maxbcg

SERVER_COUNTS = (1, 2, 3, 4)


@pytest.mark.benchmark(group="partition-scaling")
def test_partition_count_sweep(benchmark, workload, sky, sql_kcorr):
    holder = {}

    def run_sequential():
        holder["seq"] = run_maxbcg(sky.catalog, workload.target, sql_kcorr,
                                   workload.sql, compute_members=False)
        return holder["seq"]

    benchmark.pedantic(run_sequential, rounds=1, iterations=1)
    seq = holder["seq"]

    rows = []
    elapsed = {}
    io_ops = {}
    duplication = {}
    for n in SERVER_COUNTS:
        result = run_partitioned(sky.catalog, workload.target, sql_kcorr,
                                 workload.sql, n_servers=n,
                                 compute_members=False)
        assert_union_equals_sequential(
            result.candidates, result.clusters,
            seq.candidates, seq.clusters,
        )
        elapsed[n] = result.elapsed_s
        io_ops[n] = result.io_ops
        duplication[n] = result.total_galaxies / sky.n_galaxies
        rows.append([
            n, round(result.elapsed_s, 3), round(result.cpu_s, 3),
            result.io_ops, result.total_galaxies, f"{duplication[n]:.2f}",
            f"{seq.total_stats.elapsed_s / result.elapsed_s:.2f}x",
        ])

    checks = [
        ShapeCheck("answers identical at every server count",
                   "union invariant", "holds", True),
        ShapeCheck("3 servers faster than 1",
                   "~2x (Table 1)",
                   f"{seq.total_stats.elapsed_s / elapsed[3]:.2f}x",
                   elapsed[3] < elapsed[1]),
        # I/O, not CPU seconds, is the robust total-work proxy here:
        # partitioned runs can *win* CPU time per row via cache locality
        # on large catalogs, while pages touched always track the skirts.
        ShapeCheck("total I/O grows with server count (skirts)",
                   "126% at 3",
                   f"{io_ops[SERVER_COUNTS[-1]] / io_ops[1]:.2f}x over 1-server",
                   io_ops[SERVER_COUNTS[-1]] > io_ops[1]),
        ShapeCheck("duplication factor grows with server count",
                   "1.0 -> 1.49 -> ...",
                   " -> ".join(f"{duplication[n]:.2f}" for n in SERVER_COUNTS),
                   all(duplication[a] <= duplication[b] + 1e-9
                       for a, b in zip(SERVER_COUNTS, SERVER_COUNTS[1:]))),
    ]
    print_report(
        f"Extension — partition-count scaling ({workload.name} scale)",
        [format_table(
            "server-count sweep",
            ["servers", "elapsed (s)", "total cpu (s)", "total I/O",
             "rows imported", "dup factor", "speedup"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)


@pytest.mark.benchmark(group="partition-scaling")
def test_backend_sweep(benchmark, workload, sky, sql_kcorr):
    """Measured wall-clock per execution backend at 3 servers.

    The paper's ~2× headline is a *measured* number on 3 machines; this
    sweep produces our measured equivalent: the same partitioned run
    dispatched sequentially, on threads and on worker processes, with
    the backend-equivalence identity asserted before any timing is
    reported.  The ≥1.5× process-backend speedup claim only applies on
    ≥3 cores, so on smaller machines the check is informational.
    """
    n_servers = 3
    cores = os.cpu_count() or 1

    results = {}

    def run_all_backends():
        for name in BACKEND_NAMES:
            results[name] = run_partitioned(
                sky.catalog, workload.target, sql_kcorr, workload.sql,
                n_servers=n_servers, compute_members=False, backend=name,
            )
        return results

    benchmark.pedantic(run_all_backends, rounds=1, iterations=1)

    # identical answers before any performance claim
    assert_backends_equivalent(results)

    modeled = results["sequential"].modeled_elapsed_s
    seq_wall = sum(
        w.wall_s for w in results["sequential"].workers
    )  # true one-after-another wall of the same work
    rows = []
    for name in BACKEND_NAMES:
        result = results[name]
        measured = result.wall_s
        rows.append([
            name,
            "modeled" if measured is None else f"{measured:.3f}",
            round(result.modeled_elapsed_s, 3),
            round(result.cpu_s, 3),
            "-" if measured is None else f"{seq_wall / measured:.2f}x",
        ])

    process_wall = results["processes"].wall_s
    speedup = seq_wall / process_wall if process_wall else 0.0
    checks = [
        ShapeCheck("all backends byte-identical", "identical", "identical",
                   True),
        ShapeCheck("parallel backends record measured wall",
                   "wall_s set",
                   "set" if all(results[n].wall_s is not None
                                for n in ("threads", "processes")) else "missing",
                   all(results[n].wall_s is not None
                       for n in ("threads", "processes"))),
        ShapeCheck(
            f"process backend speedup on {cores} core(s)",
            ">= 1.5x on >= 3 cores (Table 1: ~2x)",
            f"{speedup:.2f}x",
            speedup >= 1.5 if cores >= 3 else True,
        ),
        ShapeCheck("modeled elapsed available on every backend",
                   "max over servers", f"{modeled:.3f} s",
                   all(results[n].modeled_elapsed_s > 0
                       for n in BACKEND_NAMES)),
    ]
    print_report(
        f"Extension — execution-backend sweep ({workload.name} scale, "
        f"{n_servers} servers, {cores} cores)",
        [format_table(
            "backend sweep",
            ["backend", "measured wall (s)", "modeled elapsed (s)",
             "total cpu (s)", "speedup vs sequential wall"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)
