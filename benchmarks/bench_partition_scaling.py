"""Extension: partition-count scaling (the Section 4 'gridify' plan).

The paper ran 1 and 3 servers and plans more sites ("Fermilab ... JHU
... IUCAA Pune").  This bench sweeps the server count and regenerates
the trade-off curve the duplicated skirts impose: elapsed time falls
(up to load imbalance), while total CPU and imported rows climb —
exactly why the paper calls the duplication "insignificant compared to
the total work" only while stripes stay wide.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.cluster.executor import run_partitioned
from repro.cluster.verify import assert_union_equals_sequential
from repro.core.pipeline import run_maxbcg

SERVER_COUNTS = (1, 2, 3, 4)


@pytest.mark.benchmark(group="partition-scaling")
def test_partition_count_sweep(benchmark, workload, sky, sql_kcorr):
    holder = {}

    def run_sequential():
        holder["seq"] = run_maxbcg(sky.catalog, workload.target, sql_kcorr,
                                   workload.sql, compute_members=False)
        return holder["seq"]

    benchmark.pedantic(run_sequential, rounds=1, iterations=1)
    seq = holder["seq"]

    rows = []
    elapsed = {}
    io_ops = {}
    duplication = {}
    for n in SERVER_COUNTS:
        result = run_partitioned(sky.catalog, workload.target, sql_kcorr,
                                 workload.sql, n_servers=n,
                                 compute_members=False)
        assert_union_equals_sequential(
            result.candidates, result.clusters,
            seq.candidates, seq.clusters,
        )
        elapsed[n] = result.elapsed_s
        io_ops[n] = result.io_ops
        duplication[n] = result.total_galaxies / sky.n_galaxies
        rows.append([
            n, round(result.elapsed_s, 3), round(result.cpu_s, 3),
            result.io_ops, result.total_galaxies, f"{duplication[n]:.2f}",
            f"{seq.total_stats.elapsed_s / result.elapsed_s:.2f}x",
        ])

    checks = [
        ShapeCheck("answers identical at every server count",
                   "union invariant", "holds", True),
        ShapeCheck("3 servers faster than 1",
                   "~2x (Table 1)",
                   f"{seq.total_stats.elapsed_s / elapsed[3]:.2f}x",
                   elapsed[3] < elapsed[1]),
        # I/O, not CPU seconds, is the robust total-work proxy here:
        # partitioned runs can *win* CPU time per row via cache locality
        # on large catalogs, while pages touched always track the skirts.
        ShapeCheck("total I/O grows with server count (skirts)",
                   "126% at 3",
                   f"{io_ops[SERVER_COUNTS[-1]] / io_ops[1]:.2f}x over 1-server",
                   io_ops[SERVER_COUNTS[-1]] > io_ops[1]),
        ShapeCheck("duplication factor grows with server count",
                   "1.0 -> 1.49 -> ...",
                   " -> ".join(f"{duplication[n]:.2f}" for n in SERVER_COUNTS),
                   all(duplication[a] <= duplication[b] + 1e-9
                       for a, b in zip(SERVER_COUNTS, SERVER_COUNTS[1:]))),
    ]
    print_report(
        f"Extension — partition-count scaling ({workload.name} scale)",
        [format_table(
            "server-count sweep",
            ["servers", "elapsed (s)", "total cpu (s)", "total I/O",
             "rows imported", "dup factor", "speedup"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)
