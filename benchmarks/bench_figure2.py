"""Figure 2 (and Section 2.2's rates): candidates and BCGs per field.

The paper quantifies the funnel: a 0.25 deg² target holds ~3.5e3
galaxies; "about 3% of the galaxies are candidates to be a BCG"; "the
algorithm finds approximately 4.5 clusters per target area (0.13% of
the galaxies are BCGs)".  The CandidatesT-vs-BufferC comparison of
Figure 2 is the mechanism that turns candidates into BCGs.

We regenerate the funnel on the synthetic sky and check its shape: a
steep candidate cut, a much steeper BCG cut, and a per-0.25 deg²
cluster rate of the right order.  (Absolute rates depend on the color
population model; EXPERIMENTS.md records the deltas.)
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.core.pipeline import run_maxbcg


@pytest.mark.benchmark(group="figure2")
def test_figure2_candidate_funnel(benchmark, workload, sky, sql_kcorr):
    holder = {}

    def run():
        holder["r"] = run_maxbcg(
            sky.catalog, workload.target, sql_kcorr, workload.sql,
            compute_members=False,
        )
        return holder["r"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = holder["r"]

    target_area = workload.target.flat_area()
    n_fields = target_area / 0.25
    galaxies_per_field = sky.n_galaxies * (
        target_area / sky.region.flat_area()
    ) / n_fields
    candidate_fraction = result.candidate_fraction
    bcg_fraction = result.cluster_fraction
    clusters_per_field = len(result.clusters) / n_fields

    rows = [
        ["galaxies per 0.25 deg^2 field", "3,500",
         f"{galaxies_per_field:,.0f}"],
        ["candidate fraction", "3%", f"{100 * candidate_fraction:.1f}%"],
        ["BCG fraction", "0.13%", f"{100 * bcg_fraction:.2f}%"],
        ["clusters per 0.25 deg^2", "4.5", f"{clusters_per_field:.1f}"],
        ["candidates -> BCG survival", "4.3%",
         f"{100 * len(result.clusters) / max(len(result.candidates), 1):.1f}%"],
    ]
    checks = [
        ShapeCheck("filter kills the vast majority", ">= 97% cut",
                   f"{100 * (1 - candidate_fraction):.0f}% cut",
                   candidate_fraction < 0.3),
        ShapeCheck("BCGs are a tiny fraction of galaxies", "0.13%",
                   f"{100 * bcg_fraction:.2f}%", bcg_fraction < 0.02),
        ShapeCheck("BCG cut much steeper than candidate cut",
                   "3% -> 0.13% (x23)",
                   f"x{candidate_fraction / max(bcg_fraction, 1e-9):.0f}",
                   bcg_fraction < candidate_fraction / 5),
        ShapeCheck("clusters per field, right order", "4.5",
                   f"{clusters_per_field:.1f}",
                   0.5 < clusters_per_field < 45.0),
    ]
    print_report(
        f"Figure 2 — the candidate funnel ({workload.name} scale)",
        [format_table("rates",
                      ["quantity", "paper", "measured"], rows)],
        checks,
    )
    assert all(c.holds for c in checks)
