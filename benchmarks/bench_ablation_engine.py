"""Ablation: the engine mechanics behind the paper's Section 2.6 claims.

"Database management systems are designed to do fast searches" — this
bench opens the hood on *our* engine the way the paper's analysis opens
SQL Server's:

* **index vs scan** — a clustered-index range read vs a full scan with
  a residual filter, in logical page reads and wall-clock;
* **hash vs nested-loop join** — the redshift-keyed Kcorr join that
  Section 2.6 credits ("uses the redshift index as the JOIN attribute");
* **buffer pool size** — the paper's nodes had 2 GB; shrink the pool
  below the working set and physical reads explode (why "the required
  data is usually in memory" matters).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.engine.database import Database
from repro.engine.expressions import col
from repro.engine.join import HashJoin, NestedLoopJoin
from repro.engine.operators import SeqScan
from repro.engine.stats import TaskTimer

N_ROWS = 120_000
RANGE_QUERIES = 50


@pytest.mark.benchmark(group="ablation-engine")
def test_engine_mechanics(benchmark):
    rng = np.random.default_rng(8)
    db = Database("mech", pool_pages=200_000)
    db.create_table(
        "galaxy",
        {
            "objid": np.arange(N_ROWS, dtype=np.int64),
            "zoneid": rng.integers(0, 2000, N_ROWS),
            "ra": rng.uniform(0, 360, N_ROWS),
            "zid": rng.integers(0, 300, N_ROWS),
        },
        primary_key="objid",
    )
    db.create_table(
        "kcorr",
        {"zid": np.arange(300, dtype=np.int64),
         "radius": rng.uniform(0.05, 0.3, 300)},
        primary_key="zid",
    )

    # ------------------------------------------------ index vs scan
    def timed_queries():
        with TaskTimer("q", db.pool.counters) as timer:
            for k in range(RANGE_QUERIES):
                lo = (k * 37) % 1900
                db.sql(
                    f"SELECT objid FROM galaxy WHERE zoneid BETWEEN {lo} "
                    f"AND {lo + 20}"
                )
        return timer.stats

    scan_stats = timed_queries()
    db.create_clustered_index("galaxy", "zoneid", "ra")
    index_stats = benchmark.pedantic(timed_queries, rounds=1, iterations=1)
    io_gain = scan_stats.io.logical_reads / max(index_stats.io.logical_reads, 1)
    time_gain = scan_stats.elapsed_s / max(index_stats.elapsed_s, 1e-9)

    # ------------------------------------------------ hash vs nested loop
    galaxy_scan = SeqScan(db.table("galaxy"), "g")
    kcorr_scan = SeqScan(db.table("kcorr"), "k")
    subset = Database("sub")
    subset.create_table(
        "g2",
        {name: arr[:4000] for name, arr in
         db.table("galaxy").columns_dict().items()},
    )
    sub_scan = SeqScan(subset.table("g2"), "g")
    with TaskTimer("hash") as hash_timer:
        hash_rows = len(HashJoin(
            sub_scan, kcorr_scan, col("zid", "g"), col("zid", "k")
        ).execute()["k.radius"])
    from repro.engine.expressions import BinaryOp
    with TaskTimer("loop") as loop_timer:
        loop_rows = len(NestedLoopJoin(
            sub_scan, kcorr_scan,
            BinaryOp("=", col("zid", "g"), col("zid", "k")),
        ).execute()["k.radius"])
    join_gain = loop_timer.stats.elapsed_s / max(hash_timer.stats.elapsed_s, 1e-9)

    # ------------------------------------------------ buffer pool size
    def pool_run(pool_pages):
        small = Database("pool", pool_pages=pool_pages)
        small.create_table(
            "galaxy",
            {name: arr for name, arr in
             db.table("galaxy").columns_dict().items()},
        )
        before = small.pool.counters.snapshot()
        for _ in range(3):
            small.table("galaxy").scan()
        return small.pool.counters.since(before)

    table_pages = db.table("galaxy").page_count
    big_pool = pool_run(table_pages * 4)
    tiny_pool = pool_run(max(2, table_pages // 4))
    thrash = tiny_pool.physical_reads / max(big_pool.physical_reads, 1)

    rows = [
        ["range query, full scan", round(scan_stats.elapsed_s * 1e3, 1),
         scan_stats.io.logical_reads],
        ["range query, clustered index", round(index_stats.elapsed_s * 1e3, 1),
         index_stats.io.logical_reads],
        ["kcorr join, hash", round(hash_timer.stats.elapsed_s * 1e3, 1),
         hash_rows],
        ["kcorr join, nested loop", round(loop_timer.stats.elapsed_s * 1e3, 1),
         loop_rows],
        ["3 scans, ample pool (phys reads)", "", big_pool.physical_reads],
        ["3 scans, tiny pool (phys reads)", "", tiny_pool.physical_reads],
    ]
    checks = [
        ShapeCheck("clustered index cuts page reads",
                   "'indexing is a big part of the answer'",
                   f"{io_gain:.0f}x fewer logical reads", io_gain > 5.0),
        ShapeCheck("index range scans are faster",
                   "seek vs scan", f"{time_gain:.1f}x", time_gain > 1.0),
        ShapeCheck("hash join beats nested loop on the zid key",
                   "'redshift index as the JOIN attribute'",
                   f"{join_gain:.0f}x", join_gain > 3.0),
        ShapeCheck("join strategies agree", "same rows",
                   str(hash_rows == loop_rows), hash_rows == loop_rows),
        ShapeCheck("undersized buffer pool thrashes",
                   "2 GB nodes keep the working set hot",
                   f"{thrash:.1f}x more physical reads", thrash > 2.0),
    ]
    print_report(
        f"Ablation — engine mechanics ({N_ROWS:,} rows)",
        [format_table("micro-measurements",
                      ["operation", "ms", "I/O or rows"], rows)],
        checks,
    )
    assert all(c.holds for c in checks)
