"""Figure 6: data distribution among the 3 SQL Servers.

"Applying a zone strategy, P gets partitioned homogeneously among 3
servers: S1 provides 1 deg buffer on top, S2 on top and bottom, S3 on
bottom.  Total duplicated data = 4 x 13 deg²."

Regenerates the layout for the paper's exact region and for the active
workload: per-server native/imported areas and row counts, the
duplicated total, and Table 1's last column (galaxies per partition sum
to more than the unique catalog).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.cluster.partitioning import make_partitions
from repro.skyserver.regions import PAPER_TARGET


@pytest.mark.benchmark(group="figure6")
def test_figure6_partition_layout(benchmark, workload, sky):
    # the paper's own geometry, exactly
    paper_layout = make_partitions(PAPER_TARGET, 0.5, 3)
    paper_duplicated = paper_layout.duplicated_area()

    # the active workload's layout, with real row counts
    def build():
        return make_partitions(workload.target, workload.sql.buffer_deg, 3)

    layout = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    total_rows = 0
    for partition in layout.partitions:
        local = sky.catalog.select_region(partition.imported)
        total_rows += len(local)
        rows.append([
            f"S{partition.server + 1}",
            f"{partition.target.dec_min:+.2f}..{partition.target.dec_max:+.2f}",
            round(partition.target.flat_area(), 2),
            round(partition.imported.flat_area(), 2),
            len(local),
        ])
    unique_rows = len(sky.catalog.select_region(layout.global_import))
    rows.append(["sum", "", "", "", total_rows])
    rows.append(["unique (global import)", "", "", "", unique_rows])

    middle = layout.partitions[1]
    top = layout.partitions[0]
    checks = [
        ShapeCheck(
            "paper geometry duplicated area",
            "4 x 13 = 52 deg^2", f"{paper_duplicated:.0f} deg^2",
            paper_duplicated == pytest.approx(52.0),
        ),
        ShapeCheck(
            "paper row-duplication factor",
            "2,348,050 / 1,574,656 = 1.49",
            f"{paper_layout.duplication_factor():.2f}",
            abs(paper_layout.duplication_factor() - 1.49) < 0.03,
        ),
        ShapeCheck(
            "S2 (middle) buffered on top AND bottom",
            "both sides",
            f"{middle.imported.height - middle.target.height:.1f} deg extra",
            middle.imported.height - middle.target.height
            == pytest.approx(4 * workload.sql.buffer_deg),
        ),
        ShapeCheck(
            "S1 (top) buffered below + global skirt above",
            "one internal side",
            f"{top.imported.height - top.target.height:.1f} deg extra",
            top.imported.height > top.target.height,
        ),
        ShapeCheck(
            "partition rows sum above unique rows (Table 1 last column)",
            "2.35M > 1.57M", f"{total_rows:,} > {unique_rows:,}",
            total_rows > unique_rows,
        ),
    ]
    print_report(
        f"Figure 6 — partition layout ({workload.name} scale)",
        [format_table(
            "per-server distribution",
            ["server", "native dec stripe", "target deg^2",
             "imported deg^2", "rows"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)
