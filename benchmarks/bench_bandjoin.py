"""Extension: band-join extraction on the hot MaxBCG likelihood join.

Table 1 is dominated by ``fBCGCandidate`` — per candidate, the chi²
likelihood test joins each galaxy against every row of the k-correction
grid.  The chi² filter's i-band term bounds ``|g.i - k.i|`` by
``0.57 * sqrt(7) ≈ 1.508``, so stating that band explicitly
(``ABS(g.i - k.i) < 1.509``) is answer-preserving and lets the planner
replace the nested loop with a :class:`BandJoin`: sort the k-correction
grid on ``i`` once, then per galaxy visit only the grid rows inside the
band and apply the full chi² as a vectorized residual.

Three configurations drive the same SQL:

* ``nested_loop`` — band extraction disabled (the pre-PR plan shape);
* ``band`` — cost mode extracts the band, one worker;
* ``band_morsels`` — same plan, blocks dispatched to 4 morsel workers.

plus a 3-table join chain written big-x-big first where *every* join
predicate is an ``ABS(.) < c`` band — hostile to nested-loop planning,
ideal for extraction.  All configurations must return byte-identical
rows; the band plan must beat the nested loop by >= 3x on the kernel.

Results are written to ``BENCH_bandjoin.json`` at the repo root.  Run
standalone (``python benchmarks/bench_bandjoin.py``) — the CI bench
smoke step does exactly that — or under pytest.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bench.reporting import ShapeCheck, print_report
from repro.core.config import fast_config
from repro.core.kcorrection import build_kcorrection_table
from repro.core.procedures import install_maxbcg
from repro.engine.database import Database
from repro.skyserver.generator import SkyConfig, SkySimulator
from repro.skyserver.regions import RegionBox

#: Required speedup of the band plan over the nested loop on the kernel.
KERNEL_SPEEDUP_FLOOR = 3.0

#: Morsel workers for the parallel configuration.
MORSEL_WORKERS = 4

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_bandjoin.json"

#: The chi^2 acceptance test, with its implied i-band stated explicitly:
#: chi^2 < 7 forces (g.i - k.i)^2 / 0.57^2 < 7, i.e. |g.i - k.i| <
#: 0.57 * sqrt(7) = 1.50808...; adding ABS(..) < 1.509 changes nothing.
KERNEL_QUERY = """
SELECT g.objid AS objid, COUNT(*) AS nz
FROM Zone z
JOIN Galaxy g ON z.objid = g.objid
CROSS JOIN Kcorr k
WHERE z.zoneid BETWEEN 10860 AND 10920
  AND ABS(g.i - k.i) < 1.509
  AND (POWER(g.i - k.i, 2) / POWER(0.57, 2)
       + POWER(g.gr - k.gr, 2) / (POWER(sigmagr, 2) + POWER(0.05, 2))
       + POWER(g.ri - k.ri, 2) / (POWER(sigmari, 2) + POWER(0.06, 2))) < 7
GROUP BY g.objid
"""

#: Every join predicate is a band; written big-x-big first so a planner
#: without extraction pays two full nested-loop cross products.
CHAIN_QUERY = """
SELECT COUNT(*) AS n, SUM(b.v) AS total
FROM pts_a a
JOIN pts_b b ON ABS(a.x - b.x) < 0.05
JOIN pts_c c ON ABS(b.y - c.y) < 0.05
"""


def build_database() -> Database:
    """The demo catalog (MaxBCG installed + zoned) plus band-chain tables."""
    config = fast_config()
    kcorr = build_kcorrection_table(config)
    target = RegionBox(180.0, 182.0, 0.0, 2.0)
    sky = SkySimulator(
        kcorr, config,
        SkyConfig(field_density=700.0, cluster_density=9.0, seed=42),
    ).generate(target.expand(1.0))

    db = Database("bench_bandjoin")
    db.create_table("galaxy_source", sky.catalog.as_columns(),
                    primary_key="objid")
    install_maxbcg(db, kcorr, config)
    box = target.expand(1.0)
    db.sql(f"EXEC spImportGalaxy {box.ra_min}, {box.ra_max}, "
           f"{box.dec_min}, {box.dec_max}")
    db.sql("EXEC spZone")

    rng = np.random.default_rng(42)
    n = 2_000
    for name in ("pts_a", "pts_b", "pts_c"):
        db.create_table(name, {
            "id": np.arange(n, dtype=np.int64),
            "x": rng.uniform(0.0, 100.0, n),
            "y": rng.uniform(0.0, 100.0, n),
            "v": rng.normal(size=n),
        }, primary_key="id")
    db.sql("ANALYZE")
    return db


def _canonical_rows(result) -> list[tuple]:
    names = sorted(result)
    columns = [np.asarray(result[name]) for name in names]
    rows = [
        tuple(round(float(c[i]), 6) for c in columns)
        for i in range(len(columns[0]) if columns else 0)
    ]
    return sorted(rows)


#: name -> (band_joins enabled, intra-query workers)
CONFIGS = {
    "nested_loop": (False, 1),
    "band": (True, 1),
    "band_morsels": (True, MORSEL_WORKERS),
}


#: Timed repetitions per configuration; the fastest run is reported
#: (damps scheduler noise on shared CI runners).
REPEATS = 3


def run_workload(db: Database, sql: str) -> dict:
    """One query under every configuration; metrics + plans per config."""
    out: dict = {}
    for name, (band_joins, workers) in CONFIGS.items():
        db.band_join_enabled = band_joins
        db.intra_query_workers = workers
        try:
            report = min(
                (db.explain_analyze(sql) for _ in range(REPEATS)),
                key=lambda r: r.total_s,
            )
        finally:
            db.band_join_enabled = True
            db.intra_query_workers = 1
        out[name] = {
            "elapsed_s": round(report.total_s, 6),
            "result_rows": report.row_count,
            "plan": [node.description for node in report.nodes],
            "_rows": _canonical_rows(report.result),
        }
    return out


def _speedup(workload: dict, fast: str) -> float:
    return workload["nested_loop"]["elapsed_s"] / max(
        workload[fast]["elapsed_s"], 1e-9
    )


def run_and_check():
    db = build_database()
    kernel = run_workload(db, KERNEL_QUERY)
    chain = run_workload(db, CHAIN_QUERY)

    def has_band(workload, name):
        return any("BandJoin" in d for d in workload[name]["plan"])

    def rows_match(workload):
        return (workload["band"]["_rows"] == workload["nested_loop"]["_rows"]
                and workload["band_morsels"]["_rows"]
                == workload["nested_loop"]["_rows"])

    kernel_speedup = _speedup(kernel, "band")
    kernel_morsel_speedup = _speedup(kernel, "band_morsels")
    chain_speedup = _speedup(chain, "band")

    checks = [
        ShapeCheck(
            claim="band plan replaces the kernel's nested loop",
            paper="likelihood test visits only the k-correction band",
            measured=next((d for d in kernel["band"]["plan"]
                           if "BandJoin" in d), "no BandJoin"),
            holds=(has_band(kernel, "band")
                   and not has_band(kernel, "nested_loop")),
        ),
        ShapeCheck(
            claim="kernel answers byte-identical across all configs",
            paper="the access path changes cost, never answers",
            measured=f"{kernel['band']['result_rows']} rows each",
            holds=rows_match(kernel),
        ),
        ShapeCheck(
            claim=f"kernel band speedup >= {KERNEL_SPEEDUP_FLOOR}x",
            paper="the chi^2 join dominates Table 1; pruning it pays",
            measured=f"{kernel_speedup:.1f}x (morsels: "
                     f"{kernel_morsel_speedup:.1f}x)",
            holds=kernel_speedup >= KERNEL_SPEEDUP_FLOOR,
        ),
        ShapeCheck(
            claim="chain extracts a band on every join step",
            paper="ABS(delta) < c predicates are bands, not theta joins",
            measured=f"{sum(1 for d in chain['band']['plan'] if 'BandJoin' in d)} band joins",
            holds=(sum(1 for d in chain["band"]["plan"]
                       if "BandJoin" in d) == 2
                   and not has_band(chain, "nested_loop")),
        ),
        ShapeCheck(
            claim="chain answers byte-identical, band faster",
            paper="hostile FROM order costs nothing once bands extract",
            measured=f"{chain_speedup:.1f}x",
            holds=rows_match(chain) and chain_speedup > 1.0,
        ),
    ]

    payload = {
        "kernel_speedup_floor": KERNEL_SPEEDUP_FLOOR,
        "morsel_workers": MORSEL_WORKERS,
        "speedups": {
            "kernel_band": round(kernel_speedup, 2),
            "kernel_band_morsels": round(kernel_morsel_speedup, 2),
            "chain_band": round(chain_speedup, 2),
        },
        "workloads": {
            "maxbcg_kernel": {
                name: {k: v for k, v in kernel[name].items()
                       if not k.startswith("_")}
                for name in CONFIGS
            },
            "band_chain": {
                name: {k: v for k, v in chain[name].items()
                       if not k.startswith("_")}
                for name in CONFIGS
            },
        },
        "checks": [
            {"claim": c.claim, "holds": bool(c.holds)} for c in checks
        ],
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload, checks


def _report(payload, checks):
    lines = [
        f"{name} [{config}]: {m['elapsed_s'] * 1e3:.1f} ms, "
        f"{m['result_rows']} rows"
        for name, configs in payload["workloads"].items()
        for config, m in configs.items()
    ]
    lines.append("speedups: " + ", ".join(
        f"{k}={v}x" for k, v in payload["speedups"].items()
    ))
    print_report("Band-join extraction on the MaxBCG kernel", lines, checks)


def test_bandjoin_bench():
    payload, checks = run_and_check()
    _report(payload, checks)
    assert all(c.holds for c in checks), [c.claim for c in checks if not c.holds]


def main() -> int:
    payload, checks = run_and_check()
    _report(payload, checks)
    print(f"wrote {OUTPUT_PATH}")
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
