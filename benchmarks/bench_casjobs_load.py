"""Extension: heavy-traffic CasJobs — the multi-user service under load.

The paper's CasJobs "serves multi-TB data on the Web" to a large
community through quick/long queues; this bench fires ≥100 concurrent
jobs from ≥10 users at the scheduler and regenerates the service-side
shape claims:

* every submitted job reaches exactly one terminal state (no lost or
  duplicated work under concurrency);
* the weighted-fair rotation keeps the quick queue interactive: quick
  p95 *wait* stays below long p95 wait while both queues contend;
* users get even service (Jain fairness index near 1);
* the thread pool sustains the whole burst and reports real
  throughput.

Run standalone (``python benchmarks/bench_casjobs_load.py``) or under
pytest-benchmark (``pytest benchmarks/bench_casjobs_load.py``).
"""

from __future__ import annotations

import pytest

from repro.bench.casjobs_load import (
    LoadSpec,
    check_no_lost_or_duplicated,
    run_load,
)
from repro.bench.reporting import ShapeCheck, print_report
from repro.casjobs.queue import QueueClass

#: ≥100 jobs from ≥10 users — the acceptance floor for this workload.
DEFAULT_SPEC = LoadSpec(n_users=12, n_jobs=150, quick_fraction=0.4,
                        workers=4, seed=2005)


def run_and_check(spec: LoadSpec = DEFAULT_SPEC):
    from repro.bench.casjobs_load import build_demo_site

    service = build_demo_site(spec)
    report = run_load(spec, service=service)
    check_no_lost_or_duplicated(service, spec.n_jobs - report.shed)

    quick_p95 = report.stats.p95_wait(QueueClass.QUICK)
    long_p95 = report.stats.p95_wait(QueueClass.LONG)
    checks = [
        ShapeCheck(
            claim="all jobs terminal (none lost/duplicated)",
            paper="batch service completes every job",
            measured=f"{report.stats.completed}/{spec.n_jobs - report.shed}",
            holds=report.stats.completed == spec.n_jobs - report.shed,
        ),
        ShapeCheck(
            claim="quick queue stays interactive under long-queue load",
            paper="quick p95 wait < long p95 wait",
            measured=f"{quick_p95 * 1e3:.2f} ms vs {long_p95 * 1e3:.2f} ms",
            holds=quick_p95 < long_p95,
        ),
        ShapeCheck(
            claim="users served evenly",
            paper="Jain fairness ~ 1",
            measured=f"{report.user_fairness:.3f}",
            holds=report.user_fairness > 0.7,
        ),
        ShapeCheck(
            claim="service sustains the burst",
            paper="> 0 jobs/s measured throughput",
            measured=f"{report.throughput_jobs_s:,.1f} jobs/s",
            holds=report.throughput_jobs_s > 0,
        ),
    ]
    return report, checks


@pytest.mark.benchmark(group="casjobs-load")
def test_casjobs_load(benchmark):
    holder = {}

    def once():
        holder["out"] = run_and_check()
        return holder["out"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    report, checks = holder["out"]
    print_report("CasJobs scheduler under heavy traffic",
                 [report.render()], checks)
    assert all(c.holds for c in checks), [c.claim for c in checks if not c.holds]


def main() -> int:
    report, checks = run_and_check()
    print_report("CasJobs scheduler under heavy traffic",
                 [report.render()], checks)
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
