"""Extension: the adaptive feedback optimizer closing the q-error loop.

The paper's optimizer story (Section 3) is one-shot: collect statistics,
plan, execute, hope the estimates held.  On shifted data they don't —
a skewed join key breaks the uniformity assumption behind
``|L||R| / max(NDV)`` and the cost-based planner picks a join order
whose intermediate is ~100x its estimate.  This bench runs the same
query set under three optimizer modes on identically shifted data:

* **syntactic** — joins in FROM order (no estimates to be wrong about);
* **cost** — cost-based DP over stale/uniformity-blind estimates,
  re-planned from scratch every execution;
* **cost+feedback** — cost-based DP plus the plan memo and the q-error
  feedback loop: executions are instrumented, a max q-error above the
  ceiling triggers targeted re-ANALYZE and a learned selectivity
  override, and the next execution re-plans against corrected
  estimates.

Each (query, mode) cell runs ``CYCLES`` consecutive executions and the
bench records the per-cycle latency, memo decision and max q-error
trajectory.  Checks:

* **correctness** — every answer is byte-identical across the three
  modes on every cycle (adaptivity must never change a result);
* **convergence** — with feedback on, every breached query's max
  q-error falls below the ceiling within <= 3 re-plan cycles;
* **latency** — the feedback mode's converged latency beats plain cost
  mode on the skew query (the learned override flips the join order);
* **memoization** — repeat executions hit the plan memo (hit count > 0)
  and a hit records zero planning seconds.

Results go to ``BENCH_feedback.json`` at the repo root.  Run standalone
(``python benchmarks/bench_feedback.py``) or under pytest-benchmark.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.reporting import ShapeCheck, print_report
from repro.engine.config import EngineConfig
from repro.engine.database import Database

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_feedback.json"

CYCLES = 4
QERROR_CEILING = 8.0
MAX_CONVERGENCE_CYCLES = 3

MODES = {
    "syntactic": EngineConfig(optimizer="syntactic"),
    "cost": EngineConfig(optimizer="cost"),
    "cost+feedback": EngineConfig(
        optimizer="cost", feedback=True, qerror_ceiling=QERROR_CEILING
    ),
}

#: The workload: a 3-table chain whose middle join key is skewed after
#: the post-ANALYZE shift (the order-flip case), and a band self-join
#: whose values cluster far tighter than the width-based estimate
#: assumes (the band-override case).
QUERIES = {
    "skew_chain": (
        "SELECT COUNT(*) AS n FROM a JOIN b ON a.k1 = b.k1 "
        "JOIN c ON b.k2 = c.k2 WHERE a.grp = 0"
    ),
    "band_cluster": (
        "SELECT COUNT(*) AS n FROM d d1 JOIN d d2 "
        "ON d2.v BETWEEN d1.v - 0.2 AND d1.v + 0.2"
    ),
}


def build_shifted_database(config: EngineConfig) -> Database:
    """Seed, ANALYZE, then shift — so every mode plans on stale truth.

    ``b.k2`` starts uniform over 400 values and is ANALYZEd that way;
    the shift then inserts 19k rows on the single value ``c`` holds, so
    the containment estimate for ``b JOIN c`` is ~360x under reality.
    ``d.v`` clusters 90% of its rows on one value, so the width-based
    band estimate is ~17x under reality even with fresh statistics —
    only a learned override can correct it.
    """
    db = Database("bench_feedback", config=config)
    rng = np.random.default_rng(42)
    n_a = 2000
    db.create_table(
        "a",
        {
            "k1": np.arange(n_a, dtype=np.int64),
            "grp": (np.arange(n_a) % 4).astype(np.int64),
        },
        primary_key="k1",
    )
    n_b = 2000
    db.create_table(
        "b",
        {
            "k1": rng.integers(0, n_a, n_b).astype(np.int64),
            "k2": (np.arange(n_b) % 400 + 1).astype(np.int64),
        },
    )
    db.create_table(
        "c",
        {"k2": np.zeros(50, dtype=np.int64), "w": rng.normal(size=50)},
    )
    n_d = 300
    v = np.where(np.arange(n_d) % 10 < 9, 5.0, rng.uniform(0, 10, n_d))
    db.create_table("d", {"id": np.arange(n_d, dtype=np.int64), "v": v})
    db.sql("ANALYZE")
    n_hot = 19_000
    db.table("b").insert({
        "k1": rng.integers(0, n_a, n_hot).astype(np.int64),
        "k2": np.zeros(n_hot, dtype=np.int64),
    })
    db.invalidate_indexes("b")
    return db


def result_digest(result) -> str:
    h = hashlib.sha256()
    for name in sorted(result.column_names):
        h.update(name.encode())
        h.update(np.ascontiguousarray(result.columns[name]).tobytes())
    return h.hexdigest()


def run_grid() -> dict:
    grid: dict = {}
    for mode, config in MODES.items():
        db = build_shifted_database(config)
        cells: dict = {}
        for qname, sql in QUERIES.items():
            trajectory = []
            for cycle in range(CYCLES):
                start = time.perf_counter()
                result = db.sql(sql)
                elapsed_ms = 1e3 * (time.perf_counter() - start)
                point = {
                    "cycle": cycle,
                    "elapsed_ms": round(elapsed_ms, 3),
                    "digest": result_digest(result),
                    "decision": result.memo_decision,
                    "max_q": None,
                }
                if db.feedback is not None:
                    entry = db.feedback.store.get(result.fingerprint)
                    point["max_q"] = round(entry.last_max_q, 2)
                trajectory.append(point)
            cells[qname] = trajectory
        grid[mode] = {
            "queries": cells,
            "feedback": (db.feedback.summary()
                         if db.feedback is not None else {}),
        }
    return grid


def run_and_check() -> tuple[dict, list[ShapeCheck]]:
    grid = run_grid()
    fb = grid["cost+feedback"]

    digests_match = all(
        len({grid[mode]["queries"][q][cycle]["digest"]
             for mode in MODES}) == 1
        for q in QUERIES
        for cycle in range(CYCLES)
    )

    converged = {}
    for qname in QUERIES:
        trajectory = fb["queries"][qname]
        breached = any(p["max_q"] > QERROR_CEILING for p in trajectory)
        below = [p["cycle"] for p in trajectory
                 if p["max_q"] <= QERROR_CEILING]
        converged[qname] = {
            "breached": breached,
            "first_good_cycle": below[0] if below else None,
            "final_q": trajectory[-1]["max_q"],
        }
    all_converge = all(
        c["first_good_cycle"] is not None
        and c["first_good_cycle"] <= MAX_CONVERGENCE_CYCLES
        and c["final_q"] <= QERROR_CEILING
        for c in converged.values()
    )
    any_breached = any(c["breached"] for c in converged.values())

    skew_cost = grid["cost"]["queries"]["skew_chain"][-1]["elapsed_ms"]
    skew_fb = fb["queries"]["skew_chain"][-1]["elapsed_ms"]

    summary = fb["feedback"]
    memo_exercised = summary.get("memo_hits", 0) > 0
    hit_cycles = [p for q in QUERIES for p in fb["queries"][q]
                  if p["decision"] == "hit"]

    checks = [
        ShapeCheck(
            claim="adaptivity never changes an answer",
            paper="byte-identical results across all three modes",
            measured=f"digests {'match' if digests_match else 'DIFFER'} "
            f"over {len(QUERIES)}x{len(MODES)}x{CYCLES} cells",
            holds=digests_match,
        ),
        ShapeCheck(
            claim="the shifted data actually breaks the estimates",
            paper=f"max q-error above the ceiling ({QERROR_CEILING:g})",
            measured=", ".join(
                f"{q}: worst q="
                f"{max(p['max_q'] for p in fb['queries'][q]):g}"
                for q in QUERIES
            ),
            holds=any_breached,
        ),
        ShapeCheck(
            claim="the feedback loop converges",
            paper=f"q-error below ceiling within "
            f"<= {MAX_CONVERGENCE_CYCLES} cycles",
            measured=", ".join(
                f"{q}: good from cycle {c['first_good_cycle']}, "
                f"final q={c['final_q']:g}"
                for q, c in converged.items()
            ),
            holds=all_converge,
        ),
        ShapeCheck(
            claim="learned overrides win back the latency",
            paper="converged feedback latency < plain cost latency",
            measured=f"skew_chain final cycle: cost {skew_cost:.1f} ms "
            f"-> feedback {skew_fb:.1f} ms",
            holds=skew_fb < skew_cost,
        ),
        ShapeCheck(
            claim="repeat executions skip planning",
            paper="memo hit count > 0; hits plan in ~0 s",
            measured=f"{summary.get('memo_hits', 0)} hits / "
            f"{summary.get('memo_misses', 0)} misses, "
            f"{len(hit_cycles)} hit cycles",
            holds=memo_exercised and len(hit_cycles) > 0,
        ),
    ]
    payload = {
        "cycles": CYCLES,
        "qerror_ceiling": QERROR_CEILING,
        "grid": grid,
        "convergence": converged,
        "checks": [
            {"claim": c.claim, "measured": c.measured, "holds": c.holds}
            for c in checks
        ],
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return grid, checks


def _render(grid: dict) -> list[str]:
    lines = []
    for qname in QUERIES:
        lines.append(f"{qname}:")
        for mode in MODES:
            trajectory = grid[mode]["queries"][qname]
            cells = "  ".join(
                f"c{p['cycle']}={p['elapsed_ms']:7.1f}ms"
                + (f" q={p['max_q']:g}" if p["max_q"] is not None else "")
                + (f" [{p['decision']}]" if p["decision"] else "")
                for p in trajectory
            )
            lines.append(f"  {mode:14s} {cells}")
        lines.append("")
    summary = grid["cost+feedback"]["feedback"]
    lines.append(
        f"feedback: {summary.get('memo_hits', 0)} memo hits, "
        f"{summary.get('replans', 0)} replans, "
        f"{summary.get('overrides', 0)} learned overrides"
    )
    return lines


@pytest.mark.benchmark(group="feedback")
def test_feedback_convergence(benchmark):
    holder = {}

    def once():
        holder["out"] = run_and_check()
        return holder["out"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    grid, checks = holder["out"]
    print_report("Adaptive feedback optimizer on shifted data",
                 _render(grid), checks)
    assert all(c.holds for c in checks), [
        c.claim for c in checks if not c.holds
    ]


def main() -> int:
    grid, checks = run_and_check()
    print_report("Adaptive feedback optimizer on shifted data",
                 _render(grid), checks)
    print(f"results written to {OUTPUT_PATH}")
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
