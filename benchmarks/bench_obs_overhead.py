"""Extension: the observer effect of the tracing subsystem.

Instrumentation is only acceptable if it is free when nobody is
looking.  This bench measures the Table 1 workload (sequential
``run_maxbcg``) twice — tracing disabled vs tracing enabled — with the
arms interleaved and min-of-k per arm so OS noise cancels, and pins:

* the *disabled* path is near-zero cost: a ``span()`` entry/exit with
  tracing off costs well under a microsecond, and the pipeline only
  crosses it a handful of times per run;
* even *enabled*, full tracing stays within the 5% observer budget on
  the Table 1 workload (which bounds the disabled path from above);
* the Query Store arm: recording every fingerprinted SELECT into the
  workload history (``EngineConfig(query_store=True)``) stays within
  the same 5% budget on a SQL batch, measured against an identical
  feedback-only engine.

Run standalone (``python benchmarks/bench_obs_overhead.py``) or under
pytest-benchmark (``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.core.pipeline import run_maxbcg
from repro.obs.trace import get_tracer, set_enabled, span, tracing

#: interleaved rounds per arm; min-of-k suppresses scheduler noise
ROUNDS = 5
#: the acceptance budget: tracing must not add more than 5% wall
BUDGET_RATIO = 1.05
#: absolute slack so sub-second workloads don't fail on timer jitter
BUDGET_SLACK_S = 0.010
#: disabled span() entry/exit must stay under this (generous: it is
#: one global check plus a shared no-op object)
NOOP_BUDGET_S = 5e-6


def _time_run(workload, sky, kcorr) -> float:
    t0 = time.perf_counter()
    run_maxbcg(sky.catalog, workload.target, kcorr, workload.sql,
               compute_members=False)
    return time.perf_counter() - t0


def measure_observer_effect(workload, sky, kcorr, rounds: int = ROUNDS):
    """Interleaved min-of-k wall times: (disabled_s, enabled_s, n_spans)."""
    disabled, enabled = [], []
    n_spans = 0
    for _ in range(rounds):
        set_enabled(False)
        disabled.append(_time_run(workload, sky, kcorr))
        with tracing():
            enabled.append(_time_run(workload, sky, kcorr))
            n_spans = len(get_tracer())
    return min(disabled), min(enabled), n_spans


#: SQL batch for the Query Store arm — varied enough that the store
#: tracks several fingerprints, repeated so cache/memo hits dominate
#: (the worst case for recording overhead, relatively speaking)
QS_BATCH = (
    "SELECT COUNT(*) AS n FROM t JOIN u ON t.grp = u.grp",
    "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp ORDER BY grp",
    "SELECT COUNT(*) AS n FROM t WHERE grp = 2",
    "SELECT COUNT(*) AS n FROM u WHERE grp < 3",
)


def _build_sql_db(query_store: bool):
    import numpy as np

    from repro.engine.config import EngineConfig
    from repro.engine.database import Database

    db = Database(
        "qs_overhead_on" if query_store else "qs_overhead_off",
        config=EngineConfig(feedback=True, query_store=query_store),
    )
    db.create_table(
        "t",
        {"id": np.arange(3000, dtype=np.int64),
         "grp": (np.arange(3000) % 7).astype(np.int64)},
        primary_key="id",
    )
    db.create_table(
        "u",
        {"id": np.arange(800, dtype=np.int64),
         "grp": (np.arange(800) % 7).astype(np.int64)},
    )
    db.sql("ANALYZE")
    return db


def measure_query_store_overhead(rounds: int = ROUNDS):
    """Interleaved min-of-k batch wall: (off_s, on_s, queries_recorded)."""
    db_off = _build_sql_db(query_store=False)
    db_on = _build_sql_db(query_store=True)

    def batch(db) -> float:
        t0 = time.perf_counter()
        for sql in QS_BATCH:
            db.sql(sql)
        return time.perf_counter() - t0

    for db in (db_off, db_on):  # plans memoized before timing starts
        batch(db)
    off, on = [], []
    for _ in range(rounds):
        off.append(batch(db_off))
        on.append(batch(db_on))
    recorded = len(db_on.query_store.queries())
    return min(off), min(on), recorded


#: Batch for the compiled-path arm: fused filter+projection kernels
#: with CSE-heavy expressions — the shapes the expression compiler
#: rewrites — so tracing overhead is pinned on the *new* hot path too.
COMPILED_BATCH = (
    "SELECT id, (v - w) * (v - w) AS chi FROM pts "
    "WHERE v - w > 0.1 AND grp < 5 ORDER BY id",
    "SELECT grp, COUNT(*) AS n FROM pts WHERE v + w < 1.0 "
    "GROUP BY grp ORDER BY grp",
    "SELECT id, ABS(v) + ABS(w) AS l1 FROM pts "
    "WHERE ABS(v) + ABS(w) > 1.5 ORDER BY id",
)


def _build_compiled_db():
    import numpy as np

    from repro.engine.config import EngineConfig
    from repro.engine.database import Database

    db = Database("compiled_overhead", config=EngineConfig())
    rng = np.random.default_rng(11)
    n = 30_000
    db.create_table(
        "pts",
        {"id": np.arange(n, dtype=np.int64),
         "grp": (np.arange(n) % 9).astype(np.int64),
         "v": rng.normal(size=n),
         "w": rng.normal(size=n)},
        primary_key="id",
    )
    db.sql("ANALYZE")
    return db


def measure_compiled_tracing_overhead(rounds: int = ROUNDS):
    """Interleaved min-of-k batch wall on the compiled path:
    (disabled_s, enabled_s)."""
    db = _build_compiled_db()

    def batch() -> float:
        t0 = time.perf_counter()
        for sql in COMPILED_BATCH:
            db.sql(sql)
        return time.perf_counter() - t0

    batch()  # warm the lazily built kernels before timing starts
    disabled, enabled = [], []
    for _ in range(rounds):
        set_enabled(False)
        disabled.append(batch())
        with tracing():
            enabled.append(batch())
    return min(disabled), min(enabled)


def measure_noop_span_cost(calls: int = 200_000) -> float:
    """Seconds per span() entry/exit with tracing disabled."""
    set_enabled(False)
    t0 = time.perf_counter()
    for _ in range(calls):
        with span("noop.probe"):
            pass
    return (time.perf_counter() - t0) / calls


def run_and_check(workload, sky, kcorr):
    disabled_s, enabled_s, n_spans = measure_observer_effect(
        workload, sky, kcorr
    )
    noop_s = measure_noop_span_cost()
    qs_off_s, qs_on_s, qs_recorded = measure_query_store_overhead()
    ck_off_s, ck_on_s = measure_compiled_tracing_overhead()
    overhead = enabled_s / disabled_s - 1.0
    qs_overhead = qs_on_s / qs_off_s - 1.0
    ck_overhead = ck_on_s / ck_off_s - 1.0

    table = format_table(
        "Observer effect on the Table 1 workload (min of "
        f"{ROUNDS} interleaved rounds)",
        ["arm", "wall s", "spans/run"],
        [
            ["tracing disabled", round(disabled_s, 4), 0],
            ["tracing enabled", round(enabled_s, 4), n_spans],
            ["overhead", f"{overhead * 100:+.2f}%", ""],
            ["query store off", round(qs_off_s, 4), ""],
            ["query store on", round(qs_on_s, 4), ""],
            ["store overhead", f"{qs_overhead * 100:+.2f}%", ""],
            ["compiled, tracing off", round(ck_off_s, 4), ""],
            ["compiled, tracing on", round(ck_on_s, 4), ""],
            ["compiled overhead", f"{ck_overhead * 100:+.2f}%", ""],
        ],
    )
    checks = [
        ShapeCheck(
            claim="disabled span() is near-zero cost",
            paper="instrumentation off must be free",
            measured=f"{noop_s * 1e9:.0f} ns/call",
            holds=noop_s < NOOP_BUDGET_S,
        ),
        ShapeCheck(
            claim="tracing stays within the 5% observer budget",
            paper="enabled <= 1.05 x disabled wall",
            measured=f"{enabled_s:.4f} s vs {disabled_s:.4f} s "
                     f"({overhead * 100:+.2f}%)",
            holds=enabled_s <= disabled_s * BUDGET_RATIO + BUDGET_SLACK_S,
        ),
        ShapeCheck(
            claim="enabled run actually recorded the engine spans",
            paper="one span per pipeline task",
            measured=f"{n_spans} spans",
            holds=n_spans >= 3,
        ),
        ShapeCheck(
            claim="query store recording stays within the 5% budget",
            paper="store on <= 1.05 x store off on an SQL batch",
            measured=f"{qs_on_s * 1e3:.2f} ms vs {qs_off_s * 1e3:.2f} ms "
                     f"({qs_overhead * 100:+.2f}%), "
                     f"{qs_recorded} fingerprints tracked",
            holds=(qs_on_s <= qs_off_s * BUDGET_RATIO + BUDGET_SLACK_S
                   and qs_recorded == len(QS_BATCH)),
        ),
        ShapeCheck(
            claim="tracing stays within the 5% budget on the compiled path",
            paper="fused kernels must not make spans relatively expensive",
            measured=f"{ck_on_s * 1e3:.2f} ms vs {ck_off_s * 1e3:.2f} ms "
                     f"({ck_overhead * 100:+.2f}%)",
            holds=ck_on_s <= ck_off_s * BUDGET_RATIO + BUDGET_SLACK_S,
        ),
    ]
    return table, checks


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_overhead(benchmark, workload, sky, sql_kcorr):
    holder = {}

    def once():
        holder["out"] = run_and_check(workload, sky, sql_kcorr)
        return holder["out"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    table, checks = holder["out"]
    print_report("Tracing observer effect", [table], checks)
    assert all(c.holds for c in checks), [c.claim for c in checks if not c.holds]


def main() -> int:
    from repro.bench.timing import warmup
    from repro.bench.workloads import active_workload, kcorr_for, sky_for

    workload = active_workload()
    warmup(workload)
    table, checks = run_and_check(
        workload, sky_for(workload), kcorr_for(workload.sql)
    )
    print_report("Tracing observer effect", [table], checks)
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
