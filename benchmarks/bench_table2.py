"""Table 2: scale factors converting the TAM test case to the SQL case.

The paper's normalization: the two systems solved *different problems*
(0.25 deg² fields vs a 66 deg² area; z-steps 0.01 vs 0.001; 0.25 vs
0.5 deg buffers; 600 MHz vs 2.6 GHz CPUs), and Table 2 multiplies out
the factors — 825x overall.  This benchmark recomputes each factor: the
configuration-derived ones exactly, and the science factor (z-steps +
buffer, the paper's "25") by *measuring* the TAM kernel's cost under
both configurations on the same sky.

Shape contract: CPU count factor 0.5; CPU speed factor ~0.25 (paper
says "about 4 times slower"); field-area factor = area ratio; measured
science factor > 1 and within the right order of magnitude of 25.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.engine.stats import TaskTimer
from repro.skyserver.regions import RegionBox
from repro.tam.astrotools import process_field

#: paper constants
TAM_FIELD_AREA = 0.25
TAM_CPUS, SQL_CPUS = 1, 2
TAM_MHZ, SQL_MHZ = 600.0, 2600.0


def measure_kernel_seconds(sky, region, kcorr, config, repeats: int = 5) -> float:
    """Median cost of the per-field kernel on one region under a config.

    Repeated because a single sub-10ms kernel run at small scale is
    noise-dominated; the median keeps the factor stable.
    """
    import statistics

    target = sky.catalog.select_region(region)
    buffer = sky.catalog.select_region(region.expand(config.buffer_deg))
    samples = []
    for _ in range(repeats):
        with TaskTimer("kernel") as timer:
            process_field(target, buffer, kcorr, config)
        samples.append(timer.stats.elapsed_s)
    return statistics.median(samples)


@pytest.mark.benchmark(group="table2")
def test_table2_scale_factors(benchmark, workload, sky, sql_kcorr, tam_kcorr):
    # a 1 x 1 deg patch at the workload center: 4x the TAM field, large
    # enough for a stable timing at every scale (scaling below is still
    # reported against the true 0.25 deg^2 TAM field)
    ra0, dec0 = workload.target.center
    field = RegionBox(ra0 - 0.5, ra0 + 0.5, dec0 - 0.5, dec0 + 0.5)

    # measured science factor: same field, TAM settings vs SQL settings
    tam_seconds = measure_kernel_seconds(sky, field, tam_kcorr, workload.tam)

    def sql_kernel():
        return measure_kernel_seconds(sky, field, sql_kcorr, workload.sql)

    sql_seconds = benchmark.pedantic(sql_kernel, rounds=1, iterations=1)
    science_factor = sql_seconds / max(tam_seconds, 1e-9)

    # configuration-derived factors (exact)
    cpu_factor = TAM_CPUS / SQL_CPUS                       # 0.5
    speed_factor = TAM_MHZ / SQL_MHZ                       # ~0.23 ("~0.25")
    area_factor = workload.target.flat_area() / TAM_FIELD_AREA
    z_ratio = workload.tam.z_step / workload.sql.z_step    # grid refinement
    buffer_ratio = (workload.sql.buffer_deg / workload.tam.buffer_deg) ** 2
    paper_science = 25.0

    total = cpu_factor * speed_factor * area_factor * science_factor

    rows = [
        ["CPUs used", TAM_CPUS, SQL_CPUS, round(cpu_factor, 3)],
        ["CPU speed (MHz)", TAM_MHZ, SQL_MHZ, round(speed_factor, 3)],
        ["target field (deg^2)", TAM_FIELD_AREA,
         workload.target.flat_area(), round(area_factor, 1)],
        ["z-step", workload.tam.z_step, workload.sql.z_step,
         f"x{z_ratio:.0f} grid"],
        ["buffer (deg)", workload.tam.buffer_deg, workload.sql.buffer_deg,
         f"x{buffer_ratio:.1f} area"],
        ["z-steps + buffer (measured)", f"{tam_seconds * 1000:.0f} ms",
         f"{sql_seconds * 1000:.0f} ms", round(science_factor, 2)],
        ["total scale factor", "", "", round(total, 1)],
    ]
    checks = [
        ShapeCheck("CPU count factor", "0.5", f"{cpu_factor}", cpu_factor == 0.5),
        ShapeCheck("CPU speed factor", "~0.25", f"{speed_factor:.3f}",
                   0.2 < speed_factor < 0.3),
        ShapeCheck(
            "SQL-grade science costs more per field",
            "25x", f"{science_factor:.1f}x",
            1.0 < science_factor < 100.0,
        ),
        ShapeCheck(
            "area factor equals geometry",
            "264", f"{area_factor:.0f}",
            area_factor == pytest.approx(
                workload.target.flat_area() / 0.25
            ),
        ),
    ]
    print_report(
        f"Table 2 — TAM -> SQL scale factors ({workload.name} scale)",
        [format_table(
            "scale factors",
            ["quantity", "TAM", "SQL", "factor"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)
