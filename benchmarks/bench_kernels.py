"""Extension: fused expression kernels + compressed pages — the floor.

``fBCGLikelihood`` evaluates, per redshift step, a chi² acceptance test
whose band terms (``g.i - k.i`` and friends) recur across the predicate
*and* the select list.  The interpreted expression walk materializes
one full-length ndarray temporary per tree node per batch; the compiled
path (``EngineConfig(compiled_expressions=True)``) fuses the whole
filter+projection chain into one kernel with common-subexpression
elimination, short-circuit conjunction over selection vectors, and late
materialization.  Compressed pages (``page_compression=True``) pack
more rows per 8 KiB page wherever ANALYZE statistics show dictionary or
run-length coding beating raw column widths.

Two workloads drive all four mode corners (compiled x compression):

* ``likelihood`` — the MaxBCG chi² test against one k-correction row,
  with the chi² expression repeated in WHERE and SELECT (the CSE case);
* ``wide`` — a hostile scan whose 8-conjunct predicate starts with a
  highly selective clause (the short-circuit case).

Pinned claims: the compiled path allocates >= 2x fewer ndarray
temporary elements than the interpreted walk on the likelihood chain,
runs faster in wall time, compressed pages cost measurably fewer
logical reads, and every corner — at any morsel worker count — returns
byte-identical rows.

Results are written to ``BENCH_kernels.json`` at the repo root.  Run
standalone (``python benchmarks/bench_kernels.py``) — the CI bench
smoke step does exactly that — or under pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import ShapeCheck, print_report
from repro.engine.compile import TALLY
from repro.engine.config import EngineConfig
from repro.engine.database import Database

#: Required ratio of interpreted temporaries to compiled allocations on
#: the likelihood chain (the ISSUE's ">= 2x fewer temporaries" floor).
TEMPORARIES_FLOOR = 2.0

#: Morsel workers for the parallel byte-identity leg.
MORSEL_WORKERS = 4

#: Timed repetitions per arm; the fastest run is reported.
REPEATS = 3

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: Catalog sizes — big enough that morsels really split (> 16384 rows)
#: and ndarray allocation costs dominate Python dispatch.
N_GALAXY = 200_000
N_WIDE = 150_000

#: The chi² likelihood test against one k-correction row (literals are
#: that row's colors — fBCGLikelihood runs exactly this shape once per
#: redshift step).  The full chi² expression appears in the WHERE *and*
#: the SELECT: interpreted, that is two complete tree walks; compiled,
#: CSE evaluates it once over the surviving rows only.
LIKELIHOOD_QUERY = """
SELECT objid,
       i - 17.85 AS iband,
       POWER(i - 17.85, 2) / POWER(0.57, 2)
         + POWER(gr - 1.46, 2) / (POWER(sigmagr, 2) + POWER(0.05, 2))
         + POWER(ri - 0.56, 2) / (POWER(sigmari, 2) + POWER(0.06, 2))
         AS chi2
FROM galaxy
WHERE zoneid BETWEEN 240 AND 280
  AND ABS(i - 17.85) < 1.509
  AND POWER(i - 17.85, 2) / POWER(0.57, 2)
    + POWER(gr - 1.46, 2) / (POWER(sigmagr, 2) + POWER(0.05, 2))
    + POWER(ri - 0.56, 2) / (POWER(sigmari, 2) + POWER(0.06, 2)) < 7
ORDER BY objid
"""

#: Hostile wide-predicate scan: eight conjuncts, the first of which
#: keeps ~3% of rows.  Interpreted, all eight evaluate full-width;
#: compiled, seven of them see only the 3% selection.
WIDE_QUERY = """
SELECT id, c0 + c1 AS s01
FROM wide
WHERE c0 < -1.88
  AND c1 - c2 < 2.5
  AND c2 + c3 > -9.0
  AND c3 * c4 < 40.0
  AND c4 - c5 > -8.0
  AND c5 + c6 < 9.5
  AND c6 - c7 > -7.5
  AND ABS(c7) < 3.5
ORDER BY id
"""


def build_database(page_compression: bool) -> Database:
    """A synthetic SkyServer-style catalog plus the hostile wide table.

    ``galaxy`` is clustered on ``(zoneid, ra)`` like the paper's zone
    table — ``zoneid`` run-length-codes, the quantized measurement
    sigmas dictionary-code, the continuous colors stay raw.
    """
    db = Database(
        "bench_kernels" + ("_z" if page_compression else "_raw"),
        config=EngineConfig(page_compression=page_compression),
    )
    rng = np.random.default_rng(2005)
    order = np.lexsort(
        (rng.uniform(0.0, 360.0, N_GALAXY),
         np.sort(rng.integers(0, 500, N_GALAXY)))
    )
    zone = np.sort(rng.integers(0, 500, N_GALAXY))[order]
    db.create_table("galaxy", {
        "objid": np.arange(N_GALAXY, dtype=np.int64),
        "zoneid": zone,
        "ra": rng.uniform(0.0, 360.0, N_GALAXY),
        "i": rng.normal(18.0, 1.2, N_GALAXY),
        "gr": rng.normal(1.4, 0.3, N_GALAXY),
        "ri": rng.normal(0.55, 0.2, N_GALAXY),
        "sigmagr": rng.choice([0.02, 0.03, 0.05, 0.08], N_GALAXY),
        "sigmari": rng.choice([0.03, 0.04, 0.06], N_GALAXY),
    }, primary_key="objid")
    db.create_table("wide", {
        "id": np.arange(N_WIDE, dtype=np.int64),
        **{f"c{k}": rng.normal(0.0, 1.0, N_WIDE) for k in range(8)},
    }, primary_key="id")
    db.sql("ANALYZE")
    return db


def exact_rows(result) -> list[tuple]:
    """Rows as raw-value tuples, column order fixed — no rounding, so a
    comparison really is byte identity (NaN normalized to one token)."""
    names = sorted(result.columns)
    columns = [np.asarray(result.columns[name]) for name in names]
    n = columns[0].size if columns else 0
    out = []
    for row in range(n):
        out.append(tuple(
            "NaN" if (isinstance(c[row].item(), float)
                      and np.isnan(c[row])) else c[row].item()
            for c in columns
        ))
    return out


def time_query(db: Database, sql: str) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        db.sql(sql)
        best = min(best, time.perf_counter() - t0)
    return best


#: name -> (compiled_expressions, page_compression)
CONFIGS = {
    "interpreted_raw": (False, False),
    "interpreted_z": (False, True),
    "fused_raw": (True, False),
    "fused_z": (True, True),
}


def run_workload(dbs: dict[bool, Database], sql: str) -> dict:
    """One query under every corner; wall time, rows, reads per arm."""
    out: dict = {}
    for name, (compiled, compression) in CONFIGS.items():
        db = dbs[compression]
        db.compiled_expressions = compiled
        try:
            reads0 = db.io_counters.logical_reads
            elapsed = time_query(db, sql)
            result = db.sql(sql)
            reads = (db.io_counters.logical_reads - reads0) // (REPEATS + 1)
        finally:
            db.compiled_expressions = True
        out[name] = {
            "elapsed_s": round(elapsed, 6),
            "result_rows": result.row_count,
            "logical_reads_per_run": int(reads),
            "_rows": exact_rows(result),
        }
    return out


def measure_temporaries(db: Database, sql: str) -> tuple[int, int]:
    """(interpreted_elements, compiled_elements) for one compiled run."""
    db.compiled_expressions = True
    before = TALLY.snapshot()
    db.sql(sql)
    after = TALLY.snapshot()
    return (after["interp_elements"] - before["interp_elements"],
            after["alloc_elements"] - before["alloc_elements"])


def run_and_check():
    dbs = {True: build_database(True), False: build_database(False)}
    likelihood = run_workload(dbs, LIKELIHOOD_QUERY)
    wide = run_workload(dbs, WIDE_QUERY)

    interp_el, compiled_el = measure_temporaries(dbs[True], LIKELIHOOD_QUERY)
    temporaries_ratio = interp_el / max(compiled_el, 1)
    wide_interp_el, wide_compiled_el = measure_temporaries(
        dbs[True], WIDE_QUERY
    )
    wide_ratio = wide_interp_el / max(wide_compiled_el, 1)

    # morsel-parallel byte identity on top of the four corners
    parallel_rows = {}
    for sql, name in ((LIKELIHOOD_QUERY, "likelihood"), (WIDE_QUERY, "wide")):
        par = Database(
            "bench_kernels_par",
            config=EngineConfig(intra_query_workers=MORSEL_WORKERS),
        )
        for table in ("galaxy", "wide"):
            src = dbs[True].table(table)
            par.create_table(table, src.columns_dict(),
                             primary_key=src.schema.primary_key)
        par.sql("ANALYZE")
        parallel_rows[name] = exact_rows(par.sql(sql))

    def corners_identical(workload, parallel) -> bool:
        baseline = workload["interpreted_raw"]["_rows"]
        return all(
            workload[name]["_rows"] == baseline for name in CONFIGS
        ) and parallel == baseline

    def speedup(workload) -> float:
        return workload["interpreted_raw"]["elapsed_s"] / max(
            workload["fused_z"]["elapsed_s"], 1e-9
        )

    read_drop = 1.0 - (
        likelihood["fused_z"]["logical_reads_per_run"]
        / max(likelihood["fused_raw"]["logical_reads_per_run"], 1)
    )

    checks = [
        ShapeCheck(
            claim=f"likelihood chain: >= {TEMPORARIES_FLOOR}x fewer "
                  "ndarray temporaries",
            paper="CSE + selection vectors beat one-temp-per-node",
            measured=f"{temporaries_ratio:.1f}x fewer elements "
                     f"({interp_el:,} -> {compiled_el:,}); "
                     f"wide scan {wide_ratio:.1f}x",
            holds=temporaries_ratio >= TEMPORARIES_FLOOR,
        ),
        ShapeCheck(
            claim="fused kernels reduce wall time on both workloads",
            paper="fewer temporaries, fewer touched rows, same answers",
            measured=f"likelihood {speedup(likelihood):.2f}x, "
                     f"wide {speedup(wide):.2f}x vs interpreted",
            holds=(speedup(likelihood) > 1.0 and speedup(wide) > 1.0),
        ),
        ShapeCheck(
            claim="compressed pages cost fewer logical reads",
            paper="denser pages shrink the scanned working set",
            measured=f"{likelihood['fused_raw']['logical_reads_per_run']} "
                     f"-> {likelihood['fused_z']['logical_reads_per_run']} "
                     f"reads ({read_drop * 100:.0f}% drop)",
            holds=likelihood["fused_z"]["logical_reads_per_run"]
            < likelihood["fused_raw"]["logical_reads_per_run"],
        ),
        ShapeCheck(
            claim="all four corners and the morsel leg are byte-identical",
            paper="kernels and codecs change cost, never answers",
            measured=f"likelihood {likelihood['fused_z']['result_rows']} "
                     f"rows, wide {wide['fused_z']['result_rows']} rows, "
                     f"workers={MORSEL_WORKERS}",
            holds=(corners_identical(likelihood, parallel_rows["likelihood"])
                   and corners_identical(wide, parallel_rows["wide"])),
        ),
    ]

    payload = {
        "temporaries_floor": TEMPORARIES_FLOOR,
        "morsel_workers": MORSEL_WORKERS,
        "temporaries": {
            "likelihood": {
                "interpreted_elements": int(interp_el),
                "compiled_elements": int(compiled_el),
                "ratio": round(temporaries_ratio, 2),
            },
            "wide": {
                "interpreted_elements": int(wide_interp_el),
                "compiled_elements": int(wide_compiled_el),
                "ratio": round(wide_ratio, 2),
            },
        },
        "speedups": {
            "likelihood_fused": round(speedup(likelihood), 2),
            "wide_fused": round(speedup(wide), 2),
        },
        "logical_read_drop": round(read_drop, 3),
        "workloads": {
            "likelihood": {
                name: {k: v for k, v in likelihood[name].items()
                       if not k.startswith("_")}
                for name in CONFIGS
            },
            "wide": {
                name: {k: v for k, v in wide[name].items()
                       if not k.startswith("_")}
                for name in CONFIGS
            },
        },
        "checks": [
            {"claim": c.claim, "holds": bool(c.holds)} for c in checks
        ],
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload, checks


def _report(payload, checks):
    lines = [
        f"{name} [{config}]: {m['elapsed_s'] * 1e3:.1f} ms, "
        f"{m['result_rows']} rows, {m['logical_reads_per_run']} reads"
        for name, configs in payload["workloads"].items()
        for config, m in configs.items()
    ]
    lines.append(
        "temporaries: likelihood "
        f"{payload['temporaries']['likelihood']['ratio']}x fewer, wide "
        f"{payload['temporaries']['wide']['ratio']}x fewer"
    )
    lines.append("speedups: " + ", ".join(
        f"{k}={v}x" for k, v in payload["speedups"].items()
    ))
    print_report("Fused kernels + compressed pages", lines, checks)


def test_kernels_bench():
    payload, checks = run_and_check()
    _report(payload, checks)
    assert all(c.holds for c in checks), [c.claim for c in checks if not c.holds]


def main() -> int:
    payload, checks = run_and_check()
    _report(payload, checks)
    print(f"wrote {OUTPUT_PATH}")
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
