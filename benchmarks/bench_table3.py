"""Table 3: scaled TAM vs measured SQL Server performance.

The paper's bottom line: for a 66 deg² target field,

=========  =====  ========  =====
cluster    nodes  time (s)  ratio
=========  =====  ========  =====
TAM        1      825,000
SQL        1      18,635    44
TAM        5      165,000
SQL        3      8,988     18
=========  =====  ========  =====

We regenerate the analogue: measure the file-based TAM implementation
on a slice of the workload, extrapolate linearly in fields (the paper's
own stated scaling) to the full target, normalize with Table 2's
science factor for the configuration gap, then measure the SQL pipeline
(1 node and a 3-node cluster) on the full target.

Shape contract: SQL beats normalized TAM per node and as a cluster; the
per-node factor is large (paper: 44x — we assert >3x, since our
"Tcl-C" stand-in shares its inner vector math with the pipeline and is
therefore a *conservative* baseline).
"""

from __future__ import annotations

import tempfile

import pytest

import dataclasses

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.cluster.executor import run_partitioned
from repro.core.pipeline import run_maxbcg
from repro.engine.stats import TaskTimer
from repro.grid.resources import ClusterSpec, Node
from repro.grid.scheduler import CondorScheduler
from repro.grid.simulation import jobs_from_tam_run
from repro.grid.transfer import TransferModel
from repro.skyserver.regions import RegionBox
from repro.tam.runner import run_tam


@pytest.mark.benchmark(group="table3")
def test_table3_tam_vs_sql(benchmark, workload, sky, sql_kcorr, tam_kcorr):
    # ---------------------------------------------------------- TAM
    # measure a slice (contained in the target), extrapolate by fields
    ra0, dec0 = workload.target.center
    slice_region = RegionBox(ra0 - 0.5, ra0 + 0.5, dec0 - 0.5, dec0 + 0.5)
    with TaskTimer("tam-slice") as timer:
        tam_run = run_tam(sky.catalog, slice_region, tam_kcorr, workload.tam,
                          tempfile.mkdtemp(prefix="table3_"))
    fields_total = workload.target.flat_area() / 0.25
    fields_measured = len(tam_run.fields)
    tam_1node = timer.stats.elapsed_s * fields_total / fields_measured

    # normalize the configuration gap: the SQL runs do z-step
    # (tam/sql) x finer grids and (sql/tam)^2 x larger buffer areas; the
    # paper prices the equivalent-science TAM run at ~25x (Table 2).
    science_factor = (
        (workload.tam.z_step / workload.sql.z_step)
        * (workload.sql.buffer_deg / workload.tam.buffer_deg) ** 2
    )
    tam_1node_normalized = tam_1node * science_factor

    # 5-node TAM: tile the measured per-field jobs out to the full field
    # count, apply the science factor to their compute demand, and
    # schedule on the TAM topology.  Like the paper's Table 3, CPU
    # speeds are normalized to the SQL-class reference ("we normalize
    # for the fact that the TAM CPU is about 4 times slower"), so the
    # ratios below are pure software factors.
    measured_jobs = jobs_from_tam_run(tam_run, 2600.0, 2600.0)
    full_jobs = []
    for k in range(int(round(fields_total))):
        base = measured_jobs[k % len(measured_jobs)]
        full_jobs.append(dataclasses.replace(
            base, job_id=k, cpu_seconds=base.cpu_seconds * science_factor
        ))
    normalized_beowulf = ClusterSpec(
        "TAM-normalized",
        tuple(Node(f"tam{k}", cpu_mhz=2600.0, n_cpus=2, ram_mb=1024.0)
              for k in range(5)),
    )
    schedule = CondorScheduler(
        normalized_beowulf, TransferModel(), reference_cpu_mhz=2600.0
    ).run(full_jobs)
    tam_5node = schedule.makespan_s

    # ---------------------------------------------------------- SQL
    sql_result = {}

    def run_sql():
        result = run_maxbcg(sky.catalog, workload.target, sql_kcorr,
                            workload.sql, compute_members=False)
        sql_result["r"] = result
        return result

    benchmark.pedantic(run_sql, rounds=1, iterations=1)
    sql_1node = sql_result["r"].total_stats.elapsed_s

    par = run_partitioned(sky.catalog, workload.target, sql_kcorr,
                          workload.sql, n_servers=3, compute_members=False)
    sql_3node = par.elapsed_s

    ratio_1node = tam_1node_normalized / sql_1node
    ratio_cluster = tam_5node / sql_3node

    rows = [
        ["TAM (as-run config)", 1, round(tam_1node, 2), ""],
        ["TAM (SQL-grade science)", 1, round(tam_1node_normalized, 2), ""],
        ["SQL", 1, round(sql_1node, 2), f"{ratio_1node:.1f}"],
        ["TAM (SQL-grade science)", 5, round(tam_5node, 2), ""],
        ["SQL", 3, round(sql_3node, 2), f"{ratio_cluster:.1f}"],
    ]
    checks = [
        ShapeCheck(
            "SQL faster per node (normalized)",
            "44x", f"{ratio_1node:.1f}x", ratio_1node > 3.0,
        ),
        ShapeCheck(
            "3-node SQL beats 5-node TAM",
            "18x", f"{ratio_cluster:.1f}x", ratio_cluster > 2.0,
        ),
        ShapeCheck(
            "as-run TAM already loses per node",
            "~4x (825000/4 vs 18635*... )",
            f"{tam_1node / sql_1node:.1f}x",
            tam_1node > sql_1node,
        ),
    ]
    print_report(
        f"Table 3 — scaled TAM vs measured SQL ({workload.name} scale, "
        f"{workload.target.flat_area():.0f} deg^2 target)",
        [format_table(
            "wall-clock comparison",
            ["system", "nodes", "time (s)", "ratio vs SQL"],
            rows,
        ),
         f"TAM slice measured: {fields_measured} fields, "
         f"{timer.stats.elapsed_s:.2f} s; extrapolated to "
         f"{fields_total:.0f} fields; science factor x{science_factor:.0f}"],
        checks,
    )
    assert all(c.holds for c in checks)
