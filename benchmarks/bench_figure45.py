"""Figures 4 and 5: the region selects of the SQL implementation.

Figure 4: "objects inside T and up to 0.5 deg away from T (buffer area
B) are inspected to decide whether they are candidates" — the
``spMakeCandidates`` select over B within the imported P.
Figure 5: "candidate galaxies inside the target area T are inspected to
decide whether or not they have the maximum likelihood" — the
``fIsCluster`` select over T.

We regenerate the row counts at every geometric stage and assert the
nesting invariants the figures draw, plus the boundary behaviour they
exist to guarantee: candidates outside T influence cluster decisions
inside T.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.core.pipeline import run_maxbcg


@pytest.mark.benchmark(group="figure45")
def test_figure45_region_selects(benchmark, workload, sky, sql_kcorr):
    target = workload.target
    buffer_region = target.expand(workload.sql.buffer_deg)
    import_region = buffer_region.expand(workload.sql.buffer_deg)

    holder = {}

    def run():
        holder["r"] = run_maxbcg(sky.catalog, target, sql_kcorr,
                                 workload.sql, compute_members=False)
        return holder["r"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = holder["r"]

    catalog = sky.catalog
    n_p = int(import_region.contains(catalog.ra, catalog.dec).sum())
    n_b = int(buffer_region.contains(catalog.ra, catalog.dec).sum())
    n_t = int(target.contains(catalog.ra, catalog.dec).sum())
    candidates = result.candidates
    cand_in_t = int(target.contains(candidates.ra, candidates.dec).sum())
    cand_in_b_only = len(candidates) - cand_in_t
    clusters = result.clusters

    rows = [
        ["galaxies in P (imported)", n_p],
        ["galaxies in B (candidate select, Fig. 4)", n_b],
        ["galaxies in T (cluster select, Fig. 5)", n_t],
        ["candidates (evaluated over B)", len(candidates)],
        ["candidates inside T", cand_in_t],
        ["candidates in the B\\T skirt", cand_in_b_only],
        ["clusters (decided over T)", len(clusters)],
    ]

    # the figures' raison d'etre: skirt candidates must exist AND all
    # clusters must lie in T while candidates do not
    all_cands_in_b = bool(
        np.all(buffer_region.contains(candidates.ra, candidates.dec))
    )
    all_clusters_in_t = bool(
        np.all(target.contains(clusters.ra, clusters.dec))
    )
    checks = [
        ShapeCheck("P superset of B superset of T", "nested",
                   f"{n_p} >= {n_b} >= {n_t}", n_p >= n_b >= n_t),
        ShapeCheck("candidates confined to B (Fig. 4 select)",
                   "ra/dec BETWEEN B bounds", str(all_cands_in_b),
                   all_cands_in_b),
        ShapeCheck("clusters confined to T (Fig. 5 select)",
                   "ra/dec BETWEEN T bounds", str(all_clusters_in_t),
                   all_clusters_in_t),
        ShapeCheck("skirt candidates exist (they fuel fair edge rivalry)",
                   "> 0", str(cand_in_b_only), cand_in_b_only > 0),
        ShapeCheck("clusters subset of candidates", "subset",
                   "subset" if set(clusters.objid.tolist())
                   <= set(candidates.objid.tolist()) else "NOT",
                   set(clusters.objid.tolist())
                   <= set(candidates.objid.tolist())),
    ]
    print_report(
        f"Figures 4-5 — region selects ({workload.name} scale)",
        [format_table("row counts per geometric stage",
                      ["stage", "rows"], rows)],
        checks,
    )
    assert all(c.holds for c in checks)
