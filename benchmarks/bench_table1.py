"""Table 1: SQL Server cluster performance, no partitioning vs 3-way.

Regenerates the paper's central table: per-task elapsed seconds, CPU
seconds and I/O operations for ``spZone``, ``fBCGCandidate`` and
``fIsCluster``, first on one server and then on a 3-way zone-partitioned
cluster, with per-partition galaxy counts and the ratio row.

Shape contract (paper values in parentheses):
* partition union identical to the sequential answer — asserted first;
* cluster elapsed below sequential elapsed (48%);
* cluster total CPU and I/O above sequential (127% / 126%);
* ``fBCGCandidate`` dominates elapsed time and has the lowest I/O
  density of the three tasks ("the required data is usually in memory").
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.cluster.executor import run_partitioned
from repro.cluster.verify import assert_union_equals_sequential
from repro.core.pipeline import run_maxbcg

TASKS = ("spZone", "fBCGCandidate", "fIsCluster")
N_SERVERS = 3


@pytest.mark.benchmark(group="table1")
def test_table1_cluster_performance(benchmark, workload, sky, sql_kcorr):
    sequential = {}

    def run_sequential():
        result = run_maxbcg(
            sky.catalog, workload.target, sql_kcorr, workload.sql,
            compute_members=False,
        )
        sequential["result"] = result
        return result

    benchmark.pedantic(run_sequential, rounds=1, iterations=1)
    seq = sequential["result"]

    # Table 1 accounting uses the sequential backend on purpose: the
    # modeled elapsed = max over servers mirrors the paper's physically
    # separate machines; measured-wall backends are benched in
    # bench_partition_scaling.py.
    par = run_partitioned(
        sky.catalog, workload.target, sql_kcorr, workload.sql,
        n_servers=N_SERVERS, compute_members=False, backend="sequential",
    )

    # the invariant comes before any performance claim
    assert_union_equals_sequential(
        par.candidates, par.clusters, seq.candidates, seq.clusters
    )

    rows = []
    for task in TASKS:
        stats = seq.stats[task]
        rows.append(["no partitioning", task, round(stats.elapsed_s, 3),
                     round(stats.cpu_s, 3), stats.io.total, ""])
    total = seq.total_stats
    rows.append(["no partitioning", "total", round(total.elapsed_s, 3),
                 round(total.cpu_s, 3), total.io.total, seq.n_galaxies])
    for run in par.runs:
        for task in TASKS:
            stats = run.result.stats[task]
            rows.append([f"P{run.server + 1}", task,
                         round(stats.elapsed_s, 3), round(stats.cpu_s, 3),
                         stats.io.total, ""])
        part_total = run.total_stats
        rows.append([f"P{run.server + 1}", "total",
                     round(part_total.elapsed_s, 3),
                     round(part_total.cpu_s, 3), part_total.io_ops,
                     run.n_galaxies])
    rows.append(["partitioning total", "", round(par.modeled_elapsed_s, 3),
                 round(par.cpu_s, 3), par.io_ops, par.total_galaxies])
    ratio_elapsed = par.modeled_elapsed_s / total.elapsed_s
    ratio_cpu = par.cpu_s / total.cpu_s
    ratio_io = par.io_ops / total.io.total
    rows.append(["ratio 1node/3node", "",
                 f"{100 * ratio_elapsed:.0f}%", f"{100 * ratio_cpu:.0f}%",
                 f"{100 * ratio_io:.0f}%", ""])

    # I/O density (ops per second) — the paper's in-memory argument
    def density(stats):
        return stats.io.total / max(stats.elapsed_s, 1e-9)

    checks = [
        ShapeCheck("union == sequential", "identical", "identical", True),
        ShapeCheck(
            "cluster elapsed < sequential",
            "48%", f"{100 * ratio_elapsed:.0f}%", ratio_elapsed < 1.0,
        ),
        ShapeCheck(
            "cluster CPU > sequential (duplicated skirts)",
            "127%", f"{100 * ratio_cpu:.0f}%", ratio_cpu > 1.0,
        ),
        ShapeCheck(
            "cluster I/O > sequential",
            "126%", f"{100 * ratio_io:.0f}%", ratio_io > 1.0,
        ),
        ShapeCheck(
            "fBCGCandidate dominates elapsed",
            "85% of total",
            f"{100 * seq.stats['fBCGCandidate'].elapsed_s / total.elapsed_s:.0f}%",
            seq.stats["fBCGCandidate"].elapsed_s
            == max(seq.stats[t].elapsed_s for t in TASKS),
        ),
        ShapeCheck(
            # the paper's contrast: spZone is the I/O-bound task,
            # fBCGCandidate runs from memory ("the required data is
            # usually in memory").  fIsCluster is excluded: at small
            # scale it finishes in milliseconds, making its density a
            # coin flip of timer noise.
            "fBCGCandidate I/O density far below spZone's",
            "562 ops over 15,758 s vs 102,144 over 564 s",
            f"{density(seq.stats['fBCGCandidate']):.0f} vs "
            f"{density(seq.stats['spZone']):.0f} ops/s",
            density(seq.stats["fBCGCandidate"])
            < density(seq.stats["spZone"]),
        ),
    ]
    print_report(
        f"Table 1 — cluster performance ({workload.name} scale, "
        f"{sky.n_galaxies:,} galaxies)",
        [format_table(
            "per-task execution statistics",
            ["config", "task", "elapsed(s)", "cpu(s)", "I/O", "galaxies"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)
