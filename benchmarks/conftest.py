"""Shared fixtures for the benchmark suite.

Scale is selected with ``REPRO_BENCH_SCALE=small|medium|paper`` (default
small, seconds per bench).  Each benchmark regenerates one table or
figure of the paper: it prints a paper-vs-measured report and asserts
the *shape* claims (who wins, direction of every ratio), never absolute
2004 numbers.
"""

from __future__ import annotations

import pytest

from repro.bench.timing import warmup
from repro.bench.workloads import active_workload, kcorr_for, sky_for


@pytest.fixture(scope="session")
def workload():
    return active_workload()


@pytest.fixture(scope="session")
def sky(workload):
    return sky_for(workload)


@pytest.fixture(scope="session")
def sql_kcorr(workload):
    return kcorr_for(workload.sql)


@pytest.fixture(scope="session")
def tam_kcorr(workload):
    return kcorr_for(workload.tam)


@pytest.fixture(scope="session", autouse=True)
def _warm(workload):
    """One tiny pipeline run before any measurement (first-touch costs)."""
    warmup(workload)
