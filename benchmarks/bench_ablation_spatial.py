"""Ablation (Section 2.3): zone join vs HTM vs brute force.

"We tried both the Hierarchical Triangular Mesh (HTM) and the
zone-based neighbor techniques ... the Zone index was chosen to perform
the neighbor counts because it offered better performance."

Measures the three strategies on the same cone-search workload — the
exact query mix MaxBCG's neighbor counts issue (per-candidate cones at
1 Mpc radii) — and asserts the paper's ordering: zone < HTM < brute.
Also measures the batched zone join against the per-point loop, the
"relational algebra" advantage inside the zone strategy itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.engine.stats import TaskTimer
from repro.spatial.conesearch import build_index
from repro.spatial.zonejoin import zone_join

N_QUERIES = 400


@pytest.mark.benchmark(group="ablation-spatial")
def test_spatial_strategy_ablation(benchmark, workload, sky, sql_kcorr):
    rng = np.random.default_rng(4)
    catalog = sky.catalog
    query_rows = rng.integers(0, len(catalog), N_QUERIES)
    qra = catalog.ra[query_rows]
    qdec = catalog.dec[query_rows]
    radii = sql_kcorr.radius[
        rng.integers(0, len(sql_kcorr), N_QUERIES)
    ]

    timings: dict[str, float] = {}
    builds: dict[str, float] = {}
    counts: dict[str, int] = {}
    for strategy in ("zone", "htm", "brute"):
        with TaskTimer(f"build-{strategy}") as build_timer:
            index = build_index(catalog.ra, catalog.dec, strategy)
        builds[strategy] = build_timer.stats.elapsed_s

        def run_queries(index=index):
            total = 0
            for k in range(N_QUERIES):
                hits, _ = index.query(
                    float(qra[k]), float(qdec[k]), float(radii[k])
                )
                total += hits.size
            return total

        if strategy == "zone":
            counts[strategy] = benchmark.pedantic(
                run_queries, rounds=1, iterations=1
            )
            timings[strategy] = benchmark.stats.stats.mean
        else:
            with TaskTimer(strategy) as timer:
                counts[strategy] = run_queries()
            timings[strategy] = timer.stats.elapsed_s

    # the batched zone join (the set-oriented form)
    zone_index = build_index(catalog.ra, catalog.dec, "zone")
    with TaskTimer("zone-join") as join_timer:
        pairs = zone_join(zone_index, qra, qdec, radii)
    timings["zone join (batched)"] = join_timer.stats.elapsed_s
    counts["zone join (batched)"] = len(pairs)

    rows = [
        [name, round(builds.get(name, 0.0) * 1e3, 1),
         round(seconds * 1e3, 1), counts[name]]
        for name, seconds in timings.items()
    ]
    same_answers = (
        counts["zone"] == counts["htm"] == counts["brute"]
        == counts["zone join (batched)"]
    )
    checks = [
        ShapeCheck("all strategies return identical neighbor sets",
                   "identical", "identical" if same_answers else "DIFFER",
                   same_answers),
        ShapeCheck("zone faster than HTM", "'better performance'",
                   f"{timings['htm'] / timings['zone']:.1f}x",
                   timings["zone"] < timings["htm"]),
        ShapeCheck(
            # The strategy the paper actually runs is the batched
            # self-join; a per-point Python loop pays interpreter
            # overhead a full vectorized scan does not, so the honest
            # zone-vs-scan comparison is join vs brute.
            "zone join faster than brute-force scanning",
            "index vs scan",
            f"{timings['brute'] / timings['zone join (batched)']:.1f}x",
            timings["zone join (batched)"] < timings["brute"]),
        ShapeCheck("batched join beats the per-point loop",
                   "'joining a Zone with itself'",
                   f"{timings['zone'] / timings['zone join (batched)']:.1f}x",
                   timings["zone join (batched)"] < timings["zone"]),
    ]
    print_report(
        f"Ablation — spatial strategies ({workload.name} scale, "
        f"{len(catalog):,} objects, {N_QUERIES} cones)",
        [format_table(
            "cone-search timing",
            ["strategy", "build (ms)", "query (ms)", "pairs"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)
