"""Extension: cost-based optimizer vs syntactic planning.

The paper's 40x SQL-over-TAM win presupposes an optimizer that picks
index access paths and sensible join orders from statistics.  This
bench drives the same SQL through both planner modes and regenerates
the shape claims:

* on the MaxBCG kernel (zone join + k-correction chi^2 filter) the cost
  plan uses the Zone clustered index and pushes the chi^2 test into the
  join, processing strictly fewer intermediate rows than the syntactic
  plan's cross-product-then-filter;
* on a 3-table join chain written in a hostile FROM order (big x big
  first), the join-order search joins the filtered dimension early and
  defers the expensive fact-fact join, shrinking every intermediate;
* both modes return identical rows (the optimizer changes cost, never
  answers);
* with ANALYZE'd statistics, the worst per-operator q-error on the
  golden kernel run stays under a pinned ceiling.

Results are written to ``BENCH_optimizer.json`` at the repo root.  Run
standalone (``python benchmarks/bench_optimizer.py``) — the CI
plan-quality smoke step does exactly that — or under pytest.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bench.reporting import ShapeCheck, print_report
from repro.core.config import fast_config
from repro.core.kcorrection import build_kcorrection_table
from repro.core.procedures import install_maxbcg
from repro.engine.database import Database
from repro.skyserver.generator import SkyConfig, SkySimulator
from repro.skyserver.regions import RegionBox

#: Pinned ceiling for the worst per-operator q-error on the golden
#: kernel run (with statistics).  The chi^2 conjunct is a complex
#: expression the estimator prices with a default selectivity, so the
#: ceiling is loose; the point is to catch regressions to nonsense
#: (orders of magnitude), not to demand perfection.
Q_ERROR_CEILING = 64.0

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_optimizer.json"

#: The appendix's k-correction chi^2 acceptance test (Galaxy g x Kcorr k).
CHI2_FILTER = (
    "(POWER(g.i - k.i, 2) / POWER(0.57, 2) "
    "+ POWER(g.gr - k.gr, 2) / (POWER(sigmagr, 2) + POWER(0.05, 2)) "
    "+ POWER(g.ri - k.ri, 2) / (POWER(sigmari, 2) + POWER(0.06, 2))) < 7"
)

#: Zone ids covering dec in [0.5, 1.0] at the default 30-arcsec height.
KERNEL_QUERY = f"""
SELECT g.objid AS objid, COUNT(*) AS nz
FROM Zone z
JOIN Galaxy g ON z.objid = g.objid
CROSS JOIN Kcorr k
WHERE z.zoneid BETWEEN 10860 AND 10920 AND {CHI2_FILTER}
GROUP BY g.objid
"""

#: Join chain written big-x-big first — hostile to syntactic planning:
#: taken literally it materializes the fact-returns join (~1M rows)
#: before the selective dimension filter ever applies.
CHAIN_QUERY = """
SELECT COUNT(*) AS n, SUM(f.v) AS total
FROM fact f
JOIN returns r ON f.k = r.k
JOIN dim1 a ON f.d1 = a.id
WHERE a.cat = 7
"""


def build_database() -> Database:
    """The demo catalog (MaxBCG installed + zoned) plus star-join tables."""
    config = fast_config()
    kcorr = build_kcorrection_table(config)
    target = RegionBox(180.0, 182.0, 0.0, 2.0)
    sky = SkySimulator(
        kcorr, config,
        SkyConfig(field_density=700.0, cluster_density=9.0, seed=42),
    ).generate(target.expand(1.0))

    db = Database("bench_optimizer")
    db.create_table("galaxy_source", sky.catalog.as_columns(),
                    primary_key="objid")
    install_maxbcg(db, kcorr, config)
    box = target.expand(1.0)
    db.sql(f"EXEC spImportGalaxy {box.ra_min}, {box.ra_max}, "
           f"{box.dec_min}, {box.dec_max}")
    db.sql("EXEC spZone")

    rng = np.random.default_rng(42)
    n_fact, n_dim1, n_keys = 10_000, 1_000, 100
    db.create_table("dim1", {
        "id": np.arange(n_dim1, dtype=np.int64),
        "cat": np.arange(n_dim1, dtype=np.int64) % 100,
    }, primary_key="id")
    db.create_table("fact", {
        "id": np.arange(n_fact, dtype=np.int64),
        "d1": rng.integers(0, n_dim1, n_fact),
        "k": rng.integers(0, n_keys, n_fact),
        "v": rng.normal(size=n_fact),
    }, primary_key="id")
    db.create_table("returns", {
        "id": np.arange(n_fact, dtype=np.int64),
        "k": rng.integers(0, n_keys, n_fact),
        "w": rng.normal(size=n_fact),
    }, primary_key="id")
    db.sql("ANALYZE")
    return db


def _canonical_rows(result) -> list[tuple]:
    names = sorted(result)
    columns = [np.asarray(result[name]) for name in names]
    rows = [
        tuple(round(float(c[i]), 6) for c in columns)
        for i in range(len(columns[0]) if columns else 0)
    ]
    return sorted(rows)


def run_workload(db: Database, sql: str) -> dict:
    """One query under both modes; returns per-mode metrics + plans."""
    out: dict = {}
    for mode in ("cost", "syntactic"):
        report = db.explain_analyze(sql, optimizer=mode)
        out[mode] = {
            "elapsed_s": round(report.total_s, 6),
            "rows_scanned": int(sum(node.rows for node in report.nodes)),
            "max_q_error": round(report.max_q_error, 3),
            "result_rows": report.row_count,
            "plan": [node.description for node in report.nodes],
            "_rows": _canonical_rows(report.result),
        }
    return out


def run_and_check():
    db = build_database()
    kernel = run_workload(db, KERNEL_QUERY)
    chain = run_workload(db, CHAIN_QUERY)

    kernel_plan = " | ".join(kernel["cost"]["plan"])
    chain_plan = chain["cost"]["plan"]
    chain_order_ok = (chain_plan.index("SeqScan(dim1 AS a)")
                      < chain_plan.index("SeqScan(returns AS r)"))

    checks = [
        ShapeCheck(
            claim="kernel answers identical across modes",
            paper="the optimizer changes cost, never answers",
            measured=f"{kernel['cost']['result_rows']} rows both modes",
            holds=kernel["cost"]["_rows"] == kernel["syntactic"]["_rows"],
        ),
        ShapeCheck(
            claim="chain answers identical across modes",
            paper="the optimizer changes cost, never answers",
            measured=f"{chain['cost']['result_rows']} rows both modes",
            holds=chain["cost"]["_rows"] == chain["syntactic"]["_rows"],
        ),
        ShapeCheck(
            claim="kernel cost plan uses the zone clustered index",
            paper="neighborhood searches ride the (zoneid, ra) index",
            measured=kernel_plan[:70] + "...",
            holds=any("IndexRangeScan(zone.zoneid" in d
                      for d in kernel["cost"]["plan"]),
        ),
        ShapeCheck(
            claim="kernel cost plan avoids the full cross-product",
            paper="chi^2 test joins, not filter-after-cross-join",
            measured=(f"{kernel['cost']['rows_scanned']:,} vs "
                      f"{kernel['syntactic']['rows_scanned']:,} rows"),
            holds=(kernel["cost"]["rows_scanned"]
                   < kernel["syntactic"]["rows_scanned"]),
        ),
        ShapeCheck(
            claim="chain joins the filtered dimension before the big join",
            paper="join-order DP beats syntactic FROM order",
            measured=(f"{chain['cost']['rows_scanned']:,} vs "
                      f"{chain['syntactic']['rows_scanned']:,} rows"),
            holds=chain_order_ok and (chain["cost"]["rows_scanned"]
                                      < chain["syntactic"]["rows_scanned"]),
        ),
        ShapeCheck(
            claim="kernel q-error under the pinned ceiling",
            paper="statistics keep estimates honest",
            measured=f"max q = {kernel['cost']['max_q_error']}",
            holds=kernel["cost"]["max_q_error"] <= Q_ERROR_CEILING,
        ),
    ]

    payload = {
        "q_error_ceiling": Q_ERROR_CEILING,
        "workloads": {
            "maxbcg_kernel": {
                mode: {k: v for k, v in kernel[mode].items()
                       if not k.startswith("_")}
                for mode in ("cost", "syntactic")
            },
            "join_chain": {
                mode: {k: v for k, v in chain[mode].items()
                       if not k.startswith("_")}
                for mode in ("cost", "syntactic")
            },
        },
        "checks": [
            {"claim": c.claim, "holds": bool(c.holds)} for c in checks
        ],
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload, checks


def test_optimizer_bench():
    payload, checks = run_and_check()
    lines = [
        f"{name} [{mode}]: {m['elapsed_s'] * 1e3:.1f} ms, "
        f"{m['rows_scanned']:,} rows, max q {m['max_q_error']}"
        for name, modes in payload["workloads"].items()
        for mode, m in modes.items()
    ]
    print_report("Cost-based optimizer vs syntactic planning", lines, checks)
    assert all(c.holds for c in checks), [c.claim for c in checks if not c.holds]


def main() -> int:
    payload, checks = run_and_check()
    lines = [
        f"{name} [{mode}]: {m['elapsed_s'] * 1e3:.1f} ms, "
        f"{m['rows_scanned']:,} rows, max q {m['max_q_error']}"
        for name, modes in payload["workloads"].items()
        for mode, m in modes.items()
    ]
    print_report("Cost-based optimizer vs syntactic planning", lines, checks)
    print(f"wrote {OUTPUT_PATH}")
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
