"""Extension: science quality against ground truth.

The paper validates by identity with the original implementation; the
synthetic sky lets us also measure *detection quality* — completeness
and purity against injected clusters, as a function of richness.  Not a
paper figure, but the natural companion: the performance tables only
matter if the fast implementation still finds clusters.

Shape contract: completeness rises with richness (rich clusters are
easy), overall purity is solid, and recovered redshifts are accurate to
a few grid steps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.core.pipeline import run_maxbcg
from repro.core.scoring import match_clusters

RICHNESS_BINS = ((8, 15), (16, 25), (26, 40))


@pytest.mark.benchmark(group="science-quality")
def test_science_quality(benchmark, workload, sky, sql_kcorr):
    holder = {}

    def run():
        holder["r"] = run_maxbcg(sky.catalog, workload.target, sql_kcorr,
                                 workload.sql, compute_members=False)
        return holder["r"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    detected = holder["r"].clusters
    truth = [c for c in sky.clusters
             if workload.target.contains(c.ra, c.dec)]

    overall = match_clusters(detected, truth, sql_kcorr, workload.sql)

    rows = []
    by_bin = {}
    for lo, hi in RICHNESS_BINS:
        subset = [c for c in truth if lo <= c.richness <= hi]
        if not subset:
            continue
        report = match_clusters(detected, subset, sql_kcorr, workload.sql)
        by_bin[(lo, hi)] = report.completeness
        rows.append([
            f"{lo}-{hi}", len(subset),
            f"{100 * report.completeness:.0f}%",
            f"{report.median_offset_deg() * 60:.2f}'",
            f"{report.median_delta_z():.3f}",
        ])
    rows.append([
        "all", len(truth), f"{100 * overall.completeness:.0f}%",
        f"{overall.median_offset_deg() * 60:.2f}'",
        f"{overall.median_delta_z():.3f}",
    ])

    completenesses = [by_bin[b] for b in sorted(by_bin)]
    rises = all(a <= b + 0.10 for a, b in
                zip(completenesses, completenesses[1:]))
    # Purity degrades at survey density: the synthetic field-color model
    # (an uncorrelated Gaussian, not the real galaxy locus) lets more
    # faint interlopers onto the BCG ridge than real SDSS photometry
    # did, so at 14k gal/deg^2 false overdensities outnumber the truth
    # (EXPERIMENTS.md discusses the delta).  The floor is scale-aware.
    purity_floor = 0.6 if workload.field_density < 10_000 else 0.2
    # Redshift accuracy bottoms out at the physics (the BCG magnitude
    # scatter maps to ~0.006 in z), not the grid spacing.
    dz_budget = max(4 * sql_kcorr.z_step, 0.008)
    checks = [
        ShapeCheck("overall completeness", ">= 75%",
                   f"{100 * overall.completeness:.0f}%",
                   overall.completeness >= 0.75),
        ShapeCheck("purity", f">= {100 * purity_floor:.0f}% at this density",
                   f"{100 * overall.purity:.0f}%",
                   overall.purity >= purity_floor),
        ShapeCheck("completeness rises with richness (within noise)",
                   "monotone-ish",
                   " -> ".join(f"{100 * c:.0f}%" for c in completenesses),
                   rises),
        ShapeCheck("redshift accuracy", f"<= {dz_budget:.3f}",
                   f"median |dz| = {overall.median_delta_z():.3f}",
                   overall.median_delta_z() <= dz_budget),
        ShapeCheck("centers often sit on a bright member, not the BCG",
                   "miscentering is expected",
                   f"exact-BCG {100 * overall.exact_bcg_fraction:.0f}%",
                   0.0 < overall.exact_bcg_fraction <= 1.0),
    ]
    print_report(
        f"Extension — science quality ({workload.name} scale)",
        [format_table(
            "completeness by richness",
            ["richness", "truth clusters", "completeness",
             "median offset", "median |dz|"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)
