"""Ablation: the shared archive link throttles file-based grids.

"It is a mistake to move large amounts of data to the query" — this
bench makes that quantitative on the scheduler simulation: sweep the
node count for a fixed TAM field workload under (a) per-node parallel
fetches and (b) the realistic single shared archive link, and watch the
second curve flatten once the link saturates — added nodes then buy
nothing, while the database cluster's code-to-data pattern keeps
scaling (Table 1's partitioned speedup needed no data motion at all).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.grid.jobs import field_job
from repro.grid.resources import ClusterSpec, Node
from repro.grid.scheduler import CondorScheduler
from repro.grid.transfer import TransferModel

N_FIELDS = 120
CPU_SECONDS = 4.0           # per-field compute on the reference CPU
FIELD_BYTES = 14_000 * 44.0  # survey-density 1 deg^2 buffer file

NODE_COUNTS = (1, 2, 5, 10, 20)


def make_jobs():
    return [
        field_job(k, f"f{k}", CPU_SECONDS, FIELD_BYTES / 4, FIELD_BYTES)
        for k in range(N_FIELDS)
    ]


def cluster_of(n: int) -> ClusterSpec:
    return ClusterSpec(
        f"grid{n}", tuple(Node(f"n{k}", 2600.0) for k in range(n))
    )


@pytest.mark.benchmark(group="ablation-grid")
def test_shared_archive_saturation(benchmark):
    transfer = TransferModel(
        bandwidth_bytes_per_s=100e6 / 8.0, per_file_overhead_s=0.25
    )

    def sweep(serialize: bool) -> dict[int, float]:
        makespans = {}
        for n in NODE_COUNTS:
            scheduler = CondorScheduler(
                cluster_of(n), transfer, serialize_transfers=serialize
            )
            makespans[n] = scheduler.run(make_jobs()).makespan_s
        return makespans

    parallel = sweep(serialize=False)
    serialized = benchmark.pedantic(
        lambda: sweep(serialize=True), rounds=1, iterations=1
    )

    rows = [
        [n, round(parallel[n], 1), round(serialized[n], 1),
         f"{parallel[1] / parallel[n]:.1f}x",
         f"{serialized[1] / serialized[n]:.1f}x"]
        for n in NODE_COUNTS
    ]

    # scaling efficiency at the largest cluster
    ideal = NODE_COUNTS[-1]
    parallel_speedup = parallel[1] / parallel[ideal]
    serialized_speedup = serialized[1] / serialized[ideal]
    checks = [
        ShapeCheck("both configurations speed up with nodes",
                   "monotone", "monotone",
                   all(serialized[a] >= serialized[b] - 1e-9
                       for a, b in zip(NODE_COUNTS, NODE_COUNTS[1:]))),
        ShapeCheck(
            "shared archive link caps the scaling",
            "'moving hundreds of thousands of files' saturates",
            f"{serialized_speedup:.1f}x vs {parallel_speedup:.1f}x at "
            f"{ideal} nodes",
            serialized_speedup < parallel_speedup,
        ),
        ShapeCheck(
            "saturated curve flattens between 10 and 20 nodes",
            "diminishing returns",
            f"{serialized[10] / serialized[20]:.2f}x from doubling",
            serialized[10] / serialized[20] < 1.5,
        ),
    ]
    print_report(
        f"Ablation — grid transfer saturation ({N_FIELDS} field jobs)",
        [format_table(
            "makespan vs node count",
            ["nodes", "parallel fetch (s)", "shared link (s)",
             "parallel speedup", "shared speedup"],
            rows,
        )],
        checks,
    )
    assert all(c.holds for c in checks)
