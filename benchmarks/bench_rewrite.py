"""Extension: the logical rewrite pass, measured.

Four rewrite-sensitive queries run twice on the same catalog — logical
rewrites on and off — under EXPLAIN ANALYZE.  The claims:

* answers are **byte-identical** in both modes (same columns, dtypes,
  values, order): rewrites change plans, never results;
* on at least two of the queries the rewritten plan touches **2x or
  fewer** rows (summed over all operators) — predicate pushdown turns a
  full scan + late filter into a clustered-index range scan, and
  LEFT-join elimination never reads the joined table at all;
* every rewritten plan's EXPLAIN names the rule(s) that fired.

Results are written to ``BENCH_rewrite.json`` at the repo root.  Run
standalone (``python benchmarks/bench_rewrite.py``) — the CI rewrite
smoke step does exactly that — or under pytest.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bench.reporting import ShapeCheck, print_report
from repro.engine.config import EngineConfig
from repro.engine.database import Database

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_rewrite.json"

#: Queries eligible for the >=2x rows-scanned claim must clear this.
REDUCTION_FLOOR = 2.0
#: ... on at least this many of the benchmarked queries.
MIN_QUERIES_REDUCED = 2

N_FACT = 50_000
N_DIM = 50_000


def build_database() -> Database:
    """A fact table with a clustered PK and a large joinable dimension."""
    db = Database("bench_rewrite", config=EngineConfig(rewrites=True))
    rng = np.random.default_rng(2005)
    db.create_table("fact", {
        "id": np.arange(N_FACT, dtype=np.int64),
        "k": rng.integers(0, N_DIM, N_FACT).astype(np.int64),
        "grp": rng.integers(0, 200, N_FACT).astype(np.int64),
        "v": rng.uniform(-10.0, 10.0, N_FACT),
    }, primary_key="id")
    db.create_table("dim", {
        "k": np.arange(N_DIM, dtype=np.int64),
        "w": rng.uniform(1.0, 5.0, N_DIM),
    }, primary_key="k")
    db.create_table("tags", {
        "k": rng.integers(0, 200, 400).astype(np.int64),
        "c": rng.uniform(0.0, 100.0, 400),
    })
    db.sql("ANALYZE")
    return db


#: name -> (sql, rules expected in the rewritten EXPLAIN)
QUERIES = {
    "derived_pushdown_index": (
        "SELECT * FROM (SELECT id, grp, v FROM fact) d "
        "WHERE d.id BETWEEN 1000 AND 1999 ORDER BY id",
        ("predicate_pushdown",),
    ),
    "cte_pushdown_index": (
        "WITH f AS (SELECT id, v FROM fact) "
        "SELECT id, v FROM f WHERE id BETWEEN 2000 AND 2499 ORDER BY id",
        ("cte_inline", "derived_table_merge"),
    ),
    "left_join_elimination": (
        "SELECT fact.id, fact.v FROM fact LEFT JOIN dim ON dim.k = fact.k "
        "WHERE fact.grp < 20 ORDER BY fact.id",
        ("redundant_join_elimination",),
    ),
    "in_decorrelation": (
        "SELECT id, grp FROM fact "
        "WHERE grp IN (SELECT k FROM tags WHERE c > 90) ORDER BY id",
        ("decorrelate_subquery",),
    ),
}


def byte_identical(left, right) -> bool:
    if list(left) != list(right):
        return False
    for name in left:
        lhs, rhs = np.asarray(left[name]), np.asarray(right[name])
        if lhs.dtype != rhs.dtype or not np.array_equal(lhs, rhs):
            return False
    return True


def run_workload(db: Database, sql: str) -> dict:
    """The query under both rewrite modes; rows summed over operators."""
    out: dict = {}
    for mode, enabled in (("rewritten", True), ("baseline", False)):
        db.rewrites_enabled = enabled
        report = db.explain_analyze(sql)
        out[mode] = {
            "elapsed_s": round(report.total_s, 6),
            "rows_scanned": int(sum(node.rows for node in report.nodes)),
            "result_rows": report.row_count,
            "rewrite_trace": list(report.rewrite_trace),
            "plan": [node.description for node in report.nodes],
            "_result": report.result,
        }
    db.rewrites_enabled = True
    rewritten, baseline = out["rewritten"], out["baseline"]
    out["reduction_x"] = round(
        baseline["rows_scanned"] / max(rewritten["rows_scanned"], 1), 2
    )
    out["byte_identical"] = byte_identical(
        rewritten["_result"], baseline["_result"]
    )
    return out


def run_and_check():
    db = build_database()
    results = {name: run_workload(db, sql)
               for name, (sql, _) in QUERIES.items()}

    reduced = [name for name, r in results.items()
               if r["reduction_x"] >= REDUCTION_FLOOR]
    checks = [
        ShapeCheck(
            claim="answers byte-identical with rewrites on and off",
            paper="rewrites change plans, never results",
            measured=", ".join(
                f"{name}={r['byte_identical']}"
                for name, r in results.items()
            ),
            holds=all(r["byte_identical"] for r in results.values()),
        ),
        ShapeCheck(
            claim=(f">={REDUCTION_FLOOR:.0f}x fewer rows touched on "
                   f">={MIN_QUERIES_REDUCED} queries"),
            paper="pushdown reaches the clustered index; elimination "
                  "never reads the joined table",
            measured=", ".join(
                f"{name}={r['reduction_x']}x" for name, r in results.items()
            ),
            holds=len(reduced) >= MIN_QUERIES_REDUCED,
        ),
        ShapeCheck(
            claim="every rewritten plan names its fired rules",
            paper="EXPLAIN carries the rewrite audit trail",
            measured=", ".join(
                f"{name}:{len(r['rewritten']['rewrite_trace'])}"
                for name, r in results.items()
            ),
            holds=all(
                all(any(rule in line for line in r["rewritten"]["rewrite_trace"])
                    for rule in QUERIES[name][1])
                and not r["baseline"]["rewrite_trace"]
                for name, r in results.items()
            ),
        ),
    ]

    payload = {
        "reduction_floor": REDUCTION_FLOOR,
        "min_queries_reduced": MIN_QUERIES_REDUCED,
        "queries": {
            name: {
                "sql": QUERIES[name][0],
                "reduction_x": r["reduction_x"],
                "byte_identical": r["byte_identical"],
                **{mode: {k: v for k, v in r[mode].items()
                          if not k.startswith("_")}
                   for mode in ("rewritten", "baseline")},
            }
            for name, r in results.items()
        },
        "checks": [
            {"claim": c.claim, "holds": bool(c.holds)} for c in checks
        ],
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload, checks


def _report(payload, checks) -> None:
    lines = [
        f"{name}: {q['baseline']['rows_scanned']:,} -> "
        f"{q['rewritten']['rows_scanned']:,} rows "
        f"({q['reduction_x']}x), byte-identical={q['byte_identical']}"
        for name, q in payload["queries"].items()
    ]
    print_report("Logical rewrites: rows touched, answers unchanged",
                 lines, checks)


def test_rewrite_bench():
    payload, checks = run_and_check()
    _report(payload, checks)
    assert all(c.holds for c in checks), \
        [c.claim for c in checks if not c.holds]


def main() -> int:
    payload, checks = run_and_check()
    _report(payload, checks)
    print(f"wrote {OUTPUT_PATH}")
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
