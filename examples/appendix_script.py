#!/usr/bin/env python3
"""Run the paper's appendix driver script, statement for statement.

The appendix ends with a demo for MySkyServerDr1 ("covers about
2.5 x 2.5 deg² centered in 195.163 and 2.5"):

    EXEC spImportGalaxy 190, 200, 0, 5
    EXEC spMakeCandidates 194, 196, 1.5, 3.5
    EXEC spMakeClusters
    EXEC spMakeGalaxiesMetric

This example deploys the MaxBCG SQL application (schema + functions +
stored procedures) onto the engine, generates a synthetic stand-in for
MySkyServerDr1, and runs exactly that script — then pokes at the result
tables with ad-hoc SQL, the way a CasJobs user would.

Run:  python examples/appendix_script.py
"""

from __future__ import annotations

from repro import (
    Database,
    SkyConfig,
    build_kcorrection_table,
    fast_config,
    make_sky,
)
from repro.core.procedures import install_maxbcg
from repro.skyserver.regions import DEMO_IMPORT, DEMO_TARGET

#: the appendix's statements (spZone added explicitly; the paper's MyDB
#: pre-zoned its data through the shared Zone table)
SCRIPT = """
EXEC spImportGalaxy 190, 200, 0, 5;
EXEC spZone;
EXEC spMakeCandidates 194, 196, 1.5, 3.5;
EXEC spMakeClusters;
EXEC spMakeGalaxiesMetric;
"""


def main() -> None:
    config = fast_config()
    kcorr = build_kcorrection_table(config)

    # a synthetic MySkyServerDr1: the demo footprint at modest density
    sky = make_sky(
        DEMO_IMPORT, config, kcorr,
        SkyConfig(field_density=450.0, cluster_density=9.0, seed=23),
    )
    print(f"MySkyServerDr1 stand-in: {sky.n_galaxies:,} galaxies over "
          f"{DEMO_IMPORT.flat_area():.0f} deg^2 "
          f"(demo target {DEMO_TARGET.flat_area():.0f} deg^2)\n")

    db = Database("myskyserver")
    db.create_table("galaxy_source", sky.catalog.as_columns(),
                    primary_key="objid")
    install_maxbcg(db, kcorr, config)

    print("running the appendix script:")
    for statement, result in zip(
        [s.strip() for s in SCRIPT.strip().split(";") if s.strip()],
        db.run_script(SCRIPT),
    ):
        print(f"  {statement:45s} -> {result.rows_affected:,} rows")

    print("\nresult tables:")
    for table in ("Galaxy", "Candidates", "Clusters", "ClusterGalaxiesMetric"):
        count = db.sql(f"SELECT COUNT(*) AS c FROM {table}").scalar()
        print(f"  {table:22s} {count:8,d} rows")

    print("\nthe richest detected clusters (ad-hoc SQL):")
    rows = db.sql(
        "SELECT objid, ra, dec, z, ngal FROM Clusters "
        "ORDER BY ngal DESC LIMIT 5"
    ).rows()
    for row in rows:
        print(f"  {row['objid']}  ra={row['ra']:8.4f} dec={row['dec']:+7.4f} "
              f"z={row['z']:.3f} ngal={row['ngal']}")

    print("\nmembership profile of the richest cluster:")
    if rows:
        best = rows[0]["objid"]
        profile = db.sql(
            f"SELECT COUNT(*) AS n, MAX(distance) AS extent "
            f"FROM ClusterGalaxiesMetric WHERE clusterobjid = {best}"
        ).rows()[0]
        print(f"  {profile['n']} members within {profile['extent']:.4f} deg")

    # and the neighbor TVF is live for interactive use:
    if rows:
        near = db.sql(
            f"SELECT COUNT(*) AS c FROM "
            f"fGetNearbyObjEqZd({rows[0]['ra']}, {rows[0]['dec']}, 0.25) n"
        ).scalar()
        print(f"  {near} galaxies within 0.25 deg of its center "
              "(fGetNearbyObjEqZd from SQL)")


if __name__ == "__main__":
    main()
