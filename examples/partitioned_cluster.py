#!/usr/bin/env python3
"""Section 2.4: MaxBCG on a cluster of database servers.

Partitions the sky into declination stripes with duplicated buffer
skirts (Figure 6), runs each partition on its own simulated server,
verifies the paper's invariant — the union of partition answers is
*identical* to the one-node answer — and prints a Table 1-style report.

Run:  python examples/partitioned_cluster.py
"""

from __future__ import annotations

from repro import (
    RegionBox,
    SkyConfig,
    build_kcorrection_table,
    fast_config,
    make_sky,
    run_maxbcg,
    run_partitioned,
)
from repro.cluster.verify import assert_union_equals_sequential

N_SERVERS = 3


def main() -> None:
    config = fast_config()
    kcorr = build_kcorrection_table(config)
    target = RegionBox(179.0, 183.0, -1.0, 3.0)
    sky = make_sky(
        target.expand(1.0), config, kcorr,
        SkyConfig(field_density=800.0, cluster_density=10.0, seed=3),
    )
    print(f"{sky.n_galaxies:,} galaxies over "
          f"{sky.region.flat_area():.0f} deg^2; target "
          f"{target.flat_area():.0f} deg^2\n")

    # warm-up so the first measured run does not pay first-touch costs
    run_maxbcg(sky.catalog, RegionBox(180.9, 181.1, 0.9, 1.1), kcorr, config,
               compute_members=False)

    sequential = run_maxbcg(sky.catalog, target, kcorr, config,
                            compute_members=False)
    partitioned = run_partitioned(sky.catalog, target, kcorr, config,
                                  n_servers=N_SERVERS, compute_members=False)

    # the paper's invariant, checked before any performance claim
    assert_union_equals_sequential(
        partitioned.candidates, partitioned.clusters,
        sequential.candidates, sequential.clusters,
    )
    print("invariant OK: union(partitions) == sequential answer\n")

    print("      task            elapsed(s)  cpu(s)   I/O     galaxies")
    seq = sequential.total_stats
    print("No partitioning")
    for name in ("spZone", "fBCGCandidate", "fIsCluster"):
        s = sequential.stats[name]
        print(f"      {name:15s} {s.elapsed_s:9.3f} {s.cpu_s:7.3f} "
              f"{s.io.total:7,d}")
    print(f"      {'total':15s} {seq.elapsed_s:9.3f} {seq.cpu_s:7.3f} "
          f"{seq.io.total:7,d} {sequential.n_galaxies:10,d}")

    print(f"{N_SERVERS}-node partitioning")
    for run in partitioned.runs:
        total = run.total_stats
        print(f"  P{run.server + 1}  {'total':15s} {total.elapsed_s:9.3f} "
              f"{total.cpu_s:7.3f} {total.io_ops:7,d} {run.n_galaxies:10,d}")
    print(f"      {'cluster total':15s} {partitioned.elapsed_s:9.3f} "
          f"{partitioned.cpu_s:7.3f} {partitioned.io_ops:7,d} "
          f"{partitioned.total_galaxies:10,d}")

    ratio_elapsed = partitioned.elapsed_s / seq.elapsed_s
    ratio_cpu = partitioned.cpu_s / seq.cpu_s
    ratio_io = partitioned.io_ops / seq.io.total
    print(f"\nratio 1node/{N_SERVERS}node   elapsed {100 * ratio_elapsed:.0f}%"
          f"   cpu {100 * ratio_cpu:.0f}%   io {100 * ratio_io:.0f}%")
    print("(paper's Table 1: 48% / 127% / 126% — a ~2x speedup bought with")
    print(" ~25% duplicated work from the buffer skirts)")
    print(f"\nduplicated sky area: {partitioned.layout.duplicated_area():.0f} "
          f"deg^2 (duplication factor "
          f"{partitioned.layout.duplication_factor():.2f})")


if __name__ == "__main__":
    main()
