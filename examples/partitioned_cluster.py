#!/usr/bin/env python3
"""Section 2.4: MaxBCG on a cluster of database servers.

Partitions the sky into declination stripes with duplicated buffer
skirts (Figure 6), runs each partition on its own simulated server —
through a selectable execution backend — verifies the paper's
invariant (the union of partition answers is *identical* to the
one-node answer), and prints a Table 1-style report.

Run:  python examples/partitioned_cluster.py
      python examples/partitioned_cluster.py --backend processes
      python examples/partitioned_cluster.py --backend threads --servers 4
"""

from __future__ import annotations

import argparse

from repro import (
    BACKEND_NAMES,
    RegionBox,
    SkyConfig,
    build_kcorrection_table,
    fast_config,
    make_sky,
    run_maxbcg,
    run_partitioned,
)
from repro.cluster.verify import assert_union_equals_sequential


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=BACKEND_NAMES,
                        default="sequential",
                        help="how the partitions execute (default: "
                        "sequential, the paper's modeled cluster)")
    parser.add_argument("--servers", type=int, default=3)
    args = parser.parse_args()

    config = fast_config()
    kcorr = build_kcorrection_table(config)
    target = RegionBox(179.0, 183.0, -1.0, 3.0)
    sky = make_sky(
        target.expand(1.0), config, kcorr,
        SkyConfig(field_density=800.0, cluster_density=10.0, seed=3),
    )
    print(f"{sky.n_galaxies:,} galaxies over "
          f"{sky.region.flat_area():.0f} deg^2; target "
          f"{target.flat_area():.0f} deg^2; backend {args.backend}\n")

    # warm-up so the first measured run does not pay first-touch costs
    run_maxbcg(sky.catalog, RegionBox(180.9, 181.1, 0.9, 1.1), kcorr, config,
               compute_members=False)

    sequential = run_maxbcg(sky.catalog, target, kcorr, config,
                            compute_members=False)
    partitioned = run_partitioned(sky.catalog, target, kcorr, config,
                                  n_servers=args.servers,
                                  compute_members=False,
                                  backend=args.backend)

    # the paper's invariant, checked before any performance claim
    assert_union_equals_sequential(
        partitioned.candidates, partitioned.clusters,
        sequential.candidates, sequential.clusters,
    )
    print("invariant OK: union(partitions) == sequential answer\n")

    print("      task            elapsed(s)  cpu(s)   I/O     galaxies")
    seq = sequential.total_stats
    print("No partitioning")
    for name in ("spZone", "fBCGCandidate", "fIsCluster"):
        s = sequential.stats[name]
        print(f"      {name:15s} {s.elapsed_s:9.3f} {s.cpu_s:7.3f} "
              f"{s.io.total:7,d}")
    print(f"      {'total':15s} {seq.elapsed_s:9.3f} {seq.cpu_s:7.3f} "
          f"{seq.io.total:7,d} {sequential.n_galaxies:10,d}")

    print(f"{args.servers}-node partitioning ({partitioned.backend} backend)")
    for run in partitioned.runs:
        total = run.total_stats
        worker = f"  [{run.worker}]" if run.worker else ""
        print(f"  P{run.server + 1}  {'total':15s} {total.elapsed_s:9.3f} "
              f"{total.cpu_s:7.3f} {total.io_ops:7,d} "
              f"{run.n_galaxies:10,d}{worker}")
    print(f"      {'cluster total':15s} {partitioned.modeled_elapsed_s:9.3f} "
          f"{partitioned.cpu_s:7.3f} {partitioned.io_ops:7,d} "
          f"{partitioned.total_galaxies:10,d}")

    ratio_elapsed = partitioned.modeled_elapsed_s / seq.elapsed_s
    ratio_cpu = partitioned.cpu_s / seq.cpu_s
    ratio_io = partitioned.io_ops / seq.io.total
    print(f"\nratio 1node/{args.servers}node   elapsed "
          f"{100 * ratio_elapsed:.0f}%   cpu {100 * ratio_cpu:.0f}%   "
          f"io {100 * ratio_io:.0f}%")
    print("(paper's Table 1: 48% / 127% / 126% — a ~2x speedup bought with")
    print(" ~25% duplicated work from the buffer skirts)")
    if partitioned.wall_s is not None:
        print(f"\nmeasured wall-clock ({partitioned.backend}): "
              f"{partitioned.wall_s:.3f} s — "
              f"{seq.elapsed_s / partitioned.wall_s:.2f}x vs the one-node "
              f"run (hardware-dependent: needs >= {args.servers} cores to "
              f"approach the modeled number)")
    print(f"\nduplicated sky area: {partitioned.layout.duplicated_area():.0f} "
          f"deg^2 (duplication factor "
          f"{partitioned.layout.duplication_factor():.2f})")


if __name__ == "__main__":
    main()
