#!/usr/bin/env python3
"""Section 4: CasJobs, MyDB, and the federated code-to-the-data MaxBCG.

Walks the workflow the paper sketches for the gridified implementation:

1. a CasJobs site hosts a CAS catalog context and *serves*: a
   background scheduler drains the quick/long queues through a worker
   pool with weighted-fair rotation while astronomers submit batch SQL
   and spool results into personal MyDBs;
2. a collaboration group shares MyDB tables between users;
3. the MaxBCG "application" (its configuration — the paper's ~500 lines
   of SQL) is deployed to a federation of autonomous sites (Fermilab,
   JHU, IUCAA Pune), runs against each site's stripe of the sky, and
   only the result catalogs travel back.

Run:  python examples/casjobs_workflow.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    RegionBox,
    SkyConfig,
    build_kcorrection_table,
    fast_config,
    make_sky,
)
from repro.casjobs.federation import DataGridFederation
from repro.casjobs.queue import QueueClass
from repro.casjobs.scheduler import SchedulerConfig
from repro.casjobs.server import CasJobsService


def main() -> None:
    config = fast_config()
    kcorr = build_kcorrection_table(config)
    target = RegionBox(179.0, 183.0, -1.0, 3.0)
    sky = make_sky(
        target.expand(1.0), config, kcorr,
        SkyConfig(field_density=500.0, cluster_density=9.0, seed=5),
    )

    # ------------------------------------------------ a CasJobs site
    # Two workers, quick queue weighted 3:1 over long, at most two
    # in-flight jobs per user: the multi-user service configuration.
    service = CasJobsService(
        "skyserver.sdss.org",
        SchedulerConfig(pool="threads", max_workers=2,
                        quick_weight=3, long_weight=1, per_user_limit=2),
    )
    cas = Database("dr1")
    cas.create_table("galaxy", sky.catalog.as_columns(), primary_key="objid")
    service.add_context("dr1", cas)

    service.register_user("maria")
    service.register_user("jim")

    # the site serves in the background; submissions run concurrently
    service.serve()

    # maria: long-running batch query with output into MyDB
    job = service.submit(
        "maria",
        "SELECT objid, ra, dec, i FROM galaxy WHERE i < 17.5",
        context="dr1",
        output_table="bright_galaxies",
    )
    # jim: interactive-grade count rides the quick queue meanwhile
    quick = service.submit(
        "jim",
        "SELECT COUNT(*) AS n FROM galaxy WHERE i < 19.0",
        context="dr1",
        queue_class=QueueClass.QUICK,
    )
    service.process_queue()  # wait for the scheduler to go idle
    result = service.fetch("maria", job.job_id)
    print(f"batch job {job.job_id} finished: {result.row_count:,} bright "
          f"galaxies spooled into maria's MyDB")
    print(f"quick job {quick.job_id} finished alongside: "
          f"{service.fetch('jim', quick.job_id).scalar():,} galaxies "
          f"(waited {quick.queue_seconds * 1e3:.1f} ms)")

    # correlate inside MyDB (users "can correlate data inside MyDB")
    followup = service.submit(
        "maria",
        "SELECT COUNT(*) AS n, AVG(i) AS mean_i FROM bright_galaxies",
        context="mydb",
    )
    service.process_queue()
    row = service.fetch("maria", followup.job_id).rows()[0]
    print(f"MyDB follow-up: n={row['n']:,} mean_i={row['mean_i']:.2f}")

    snapshot = service.status()
    print(f"site status: {snapshot['finished']} finished, "
          f"{snapshot['failed']} failed, {snapshot['running']} running, "
          f"{snapshot['pending_quick'] + snapshot['pending_long']} pending")
    service.shutdown()

    # groups and sharing
    service.create_group("cluster-hunters", "maria")
    service.join_group("cluster-hunters", "jim")
    service.share_table("maria", "bright_galaxies", "cluster-hunters")
    shared = service.read_shared("jim", "cluster-hunters", "maria",
                                 "bright_galaxies")
    print(f"jim reads maria's shared table: {len(shared['objid']):,} rows\n")

    # ------------------------------------------------ the federation
    print("deploying MaxBCG to the data grid ...")
    federation = DataGridFederation(kcorr, config)
    federation.deploy_sites(["fermilab", "jhu", "iucaa"], sky.catalog, target)
    for site in federation.sites:
        print(f"  {site.service.site_name:10s} hosts "
              f"{len(site.catalog):,} galaxies "
              f"(dec {site.partition.target.dec_min:+.2f}"
              f"..{site.partition.target.dec_max:+.2f})")

    report = federation.submit_maxbcg("maria")
    print(f"\nfederated run: {len(report.clusters)} clusters, "
          f"slowest site {report.elapsed_s:.2f} s")
    for name, seconds in report.per_site_elapsed_s.items():
        print(f"  {name:10s} {seconds:6.2f} s")

    print("\nmove-the-code vs move-the-data (WAN transfer model):")
    print(f"  code + results shipped : "
          f"{report.code_bytes_moved + report.result_bytes_moved:,.0f} bytes "
          f"-> {report.code_to_data_seconds:.1f} s")
    print(f"  galaxy files avoided   : {report.data_bytes_avoided:,.0f} bytes "
          f"in {report.data_files_avoided:,} files "
          f"-> {report.data_to_code_seconds:.1f} s")
    factor = report.data_to_code_seconds / max(report.code_to_data_seconds, 1e-9)
    print(f"  advantage              : {factor:.1f}x "
          "(grows with survey size; 'it is a mistake to move large")
    print("                            amounts of data to the query')")


if __name__ == "__main__":
    main()
