#!/usr/bin/env python3
"""Replay a measured TAM run on the paper's 2004 grid hardware.

Measures a real file-based MaxBCG run on this machine, converts the
per-field costs into grid jobs, and schedules them on simulated
clusters — the 5-node TAM Beowulf and the 3-node SQL-era Xeon cluster —
through the Condor-like scheduler with an explicit archive-transfer
model.  Also demonstrates the Chimera virtual-data view of the same
pipeline: derivations, provenance, lazy materialization.

Run:  python examples/grid_replay.py
"""

from __future__ import annotations

import tempfile

from repro import (
    RegionBox,
    SkyConfig,
    build_kcorrection_table,
    make_sky,
    run_tam,
    tam_config,
)
from repro.grid.chimera import Derivation, Transformation, VirtualDataCatalog
from repro.grid.resources import sql_cluster, tam_cluster
from repro.grid.simulation import simulate_tam_on_grid
from repro.grid.transfer import TransferModel


def main() -> None:
    config = tam_config()
    kcorr = build_kcorrection_table(config)
    target = RegionBox(180.0, 182.0, 0.0, 2.0)
    sky = make_sky(
        target.expand(1.0), config, kcorr,
        SkyConfig(field_density=800.0, cluster_density=10.0, seed=17),
    )

    # ------------------------------------------------ measure locally
    run = run_tam(sky.catalog, target, kcorr, config,
                  tempfile.mkdtemp(prefix="grid_"))
    print(f"measured TAM run: {len(run.fields)} fields, "
          f"{run.elapsed_s:.2f} s single-CPU "
          f"({run.mean_field_s * 1000:.0f} ms/field), "
          f"{run.file_stats.files_written} files written")

    # ------------------------------------------------ replay on 2004 HW
    print("\nreplaying on simulated clusters (archive link serialized):")
    for cluster in (tam_cluster(), sql_cluster(3)):
        report = simulate_tam_on_grid(run, cluster,
                                      host_cpu_mhz=2600.0)
        util = report.schedule.node_utilization()
        print(f"  {cluster.name:4s}: makespan {report.makespan_s:8.2f} s, "
              f"{report.schedule.completed}/{report.n_fields} jobs, "
              f"transfer share {100 * report.transfer_fraction:.0f}%, "
              f"mean node utilization "
              f"{100 * sum(util.values()) / max(len(util), 1):.0f}%")

    # the Figure 1 story: ideal buffer files do not fit 1 GB TAM nodes
    from repro.grid.jobs import Job
    from repro.grid.scheduler import CondorScheduler
    from repro.tam.fields import IDEAL_BUFFER_DEG, buffer_file_bytes

    ideal_bytes = buffer_file_bytes(14_000.0, IDEAL_BUFFER_DEG)
    # at survey density an in-RAM working set is ~25x the file (vectors,
    # k-correction grids, intermediates) — the paper's stated blocker
    working_set = ideal_bytes * 800
    job = Job(job_id=0, name="ideal-buffer-field", cpu_seconds=1000.0,
              ram_bytes=working_set)
    result = CondorScheduler(tam_cluster(), TransferModel()).run([job])
    print(f"\nideal 1.5x1.5 deg buffer at survey density: "
          f"{ideal_bytes / 1e6:.1f} MB file, ~{working_set / 1e9:.1f} GB "
          f"working set")
    print(f"  on 1 GB TAM nodes: "
          f"{'UNSCHEDULABLE' if result.unschedulable else 'fits'} "
          "-> the paper's 0.25 deg compromise (Figure 1)")

    # ------------------------------------------------ Chimera view
    print("\nChimera virtual-data view of one field:")
    vdc = VirtualDataCatalog()
    cut = Transformation("cutField", "1.0")
    find = Transformation("maxBCG", "1.0")
    vdc.add_input_file("sdss.archive", sky.catalog)
    vdc.register_executor(cut, lambda inputs, params: {
        "field0.target": inputs["sdss.archive"].select_region(
            RegionBox(*params["target"])),
        "field0.buffer": inputs["sdss.archive"].select_region(
            RegionBox(*params["buffer"])),
    })
    from repro.tam.astrotools import process_field
    vdc.register_executor(find, lambda inputs, params: {
        "field0.candidates": process_field(
            inputs["field0.target"], inputs["field0.buffer"], kcorr, config),
    })
    vdc.add_derivation(Derivation(
        cut, ("sdss.archive",), ("field0.target", "field0.buffer"),
        parameters={"target": (180.0, 180.5, 0.0, 0.5),
                    "buffer": (179.75, 180.75, -0.25, 0.75)},
    ))
    vdc.add_derivation(Derivation(
        find, ("field0.target", "field0.buffer"), ("field0.candidates",),
    ))

    candidates = vdc.materialize("field0.candidates")
    print(f"  materialized field0.candidates: {len(candidates)} rows")
    chain = vdc.provenance("field0.candidates")
    print("  provenance:", " -> ".join(d.transformation.name for d in chain))
    print(f"  cached logical files: {vdc.materialized_count()} "
          "(re-requests are free)")


if __name__ == "__main__":
    main()
