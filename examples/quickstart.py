#!/usr/bin/env python3
"""Quickstart: find galaxy clusters in a synthetic SDSS sky.

Generates a few square degrees of sky with injected galaxy clusters,
runs the MaxBCG pipeline (the paper's SQL implementation), and prints
the cluster catalog with completeness against the known ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MaxBCGConfig,
    RegionBox,
    SkyConfig,
    build_kcorrection_table,
    make_sky,
    run_maxbcg,
)


def main() -> None:
    # 1. Configure the algorithm.  z_step=0.005 is a coarsened grid that
    #    keeps this demo fast; the paper's SQL run used 0.001.
    config = MaxBCGConfig(z_step=0.005)
    kcorr = build_kcorrection_table(config)
    print(f"k-correction table: {len(kcorr)} redshifts "
          f"({config.z_min:.3f}..{config.z_max:.3f})")

    # 2. Generate a synthetic sky.  The catalog must cover the target
    #    plus two search radii (the paper's P ⊃ B ⊃ T geometry).
    target = RegionBox(180.0, 182.0, 0.0, 2.0)
    sky = make_sky(
        target.expand(2 * config.buffer_deg),
        config,
        kcorr,
        SkyConfig(field_density=900.0, cluster_density=12.0, seed=7),
    )
    print(f"sky: {sky.n_galaxies:,} galaxies, "
          f"{sky.n_clusters} injected clusters over "
          f"{sky.region.flat_area():.0f} deg^2")

    # 3. Run MaxBCG.
    result = run_maxbcg(sky.catalog, target, kcorr, config)
    print(f"\ncandidates: {len(result.candidates):,} "
          f"({100 * result.candidate_fraction:.1f}% of galaxies)")
    print(f"clusters:   {len(result.clusters):,} "
          f"({100 * result.cluster_fraction:.2f}% of galaxies)")
    print(f"members:    {len(result.members):,} membership links")

    # 4. Task statistics — the observables of the paper's Table 1.
    print("\ntask             elapsed(s)   cpu(s)   I/O ops   rows")
    for name, stats in result.stats.items():
        print(f"{name:16s} {stats.elapsed_s:9.3f} {stats.cpu_s:8.3f} "
              f"{stats.io.total:9,d} {stats.rows:7,d}")

    # 5. Score against ground truth: a truth cluster counts as recovered
    #    when a detected center lies within its 1 Mpc aperture at a
    #    compatible redshift (centers may sit on a bright member).
    truth = [c for c in sky.clusters if target.contains(c.ra, c.dec)]
    recovered = 0
    for cluster in truth:
        radius = kcorr.radius_at(cluster.z)
        d = np.hypot(
            (result.clusters.ra - cluster.ra) * np.cos(np.deg2rad(cluster.dec)),
            result.clusters.dec - cluster.dec,
        )
        close = (d < radius) & (np.abs(result.clusters.z - cluster.z) <= 0.05)
        recovered += bool(np.any(close))
    print(f"\ncompleteness: {recovered}/{len(truth)} injected clusters "
          f"recovered ({100 * recovered / len(truth):.0f}%)")

    # 6. Peek at the five richest clusters.
    order = np.argsort(result.clusters.ngal)[::-1][:5]
    print("\nrichest clusters (objid, ra, dec, z, ngal, likelihood):")
    for k in order:
        print(f"  {result.clusters.objid[k]}  "
              f"ra={result.clusters.ra[k]:8.4f} "
              f"dec={result.clusters.dec[k]:+8.4f} "
              f"z={result.clusters.z[k]:.3f} "
              f"ngal={result.clusters.ngal[k]:3d} "
              f"chi2={result.clusters.chi2[k]:+.3f}")


if __name__ == "__main__":
    main()
