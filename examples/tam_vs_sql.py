#!/usr/bin/env python3
"""The paper's core comparison: file-based TAM vs the database pipeline.

Runs the same MaxBCG search twice over one region:

* **TAM**: tile into 0.25 deg² fields, write Target/Buffer flat files,
  brute-force each field in RAM (Section 2.2) — with the TAM science
  compromise (0.25 deg buffer, z-step 0.01);
* **SQL**: the set-oriented pipeline on the relational engine with zone
  indexing (Section 2.3) — full 0.5 deg buffer, fine z grid.

Prints side-by-side timings, the file traffic only the baseline pays,
and the science difference the TAM compromise causes.

Run:  python examples/tam_vs_sql.py
"""

from __future__ import annotations

import tempfile

from repro import (
    RegionBox,
    SkyConfig,
    build_kcorrection_table,
    make_sky,
    run_maxbcg,
    run_tam,
    sql_config,
    tam_config,
)
from repro.engine.stats import TaskTimer


def main() -> None:
    sql_cfg = sql_config().with_(z_step=0.005)   # coarsened for demo speed
    tam_cfg = tam_config()                       # the paper's TAM settings
    kcorr_sql = build_kcorrection_table(sql_cfg)
    kcorr_tam = build_kcorrection_table(tam_cfg)

    target = RegionBox(180.0, 182.0, 0.0, 2.0)
    sky = make_sky(
        target.expand(1.0), sql_cfg, kcorr_sql,
        SkyConfig(field_density=900.0, cluster_density=12.0, seed=11),
    )
    print(f"region: {target.flat_area():.0f} deg^2 target, "
          f"{sky.n_galaxies:,} galaxies\n")

    # ------------------------------------------------------------ TAM
    with TaskTimer("tam") as timer:
        tam = run_tam(sky.catalog, target, kcorr_tam, tam_cfg,
                      tempfile.mkdtemp(prefix="tam_"))
    tam_elapsed = timer.stats.elapsed_s
    print("TAM (file-based, Tcl-C style):")
    print(f"  fields processed : {len(tam.fields)}")
    print(f"  files written    : {tam.file_stats.files_written}")
    print(f"  files read       : {tam.file_stats.files_read}")
    print(f"  bytes moved      : "
          f"{tam.file_stats.bytes_read + tam.file_stats.bytes_written:,}")
    print(f"  elapsed          : {tam_elapsed:.2f} s "
          f"({tam.mean_field_s * 1000:.0f} ms/field)")
    print(f"  clusters found   : {len(tam.clusters)}")

    # ------------------------------------------------------------ SQL
    sql = run_maxbcg(sky.catalog, target, kcorr_sql, sql_cfg,
                     compute_members=False)
    print("\nSQL (set-oriented, zone-indexed):")
    for name, stats in sql.stats.items():
        print(f"  {name:16s}: {stats.elapsed_s:6.2f} s, "
              f"{stats.io.total:,} I/O ops")
    print(f"  elapsed          : {sql.total_stats.elapsed_s:.2f} s")
    print(f"  clusters found   : {len(sql.clusters)}")

    # ------------------------------------------------------------ verdict
    speedup = tam_elapsed / sql.total_stats.elapsed_s
    print(f"\nspeedup (SQL over TAM): {speedup:.1f}x")
    print("note: the TAM run also used its compromised science settings")
    print(f"  (buffer {tam_cfg.buffer_deg} deg vs {sql_cfg.buffer_deg} deg; "
          f"z-step {tam_cfg.z_step} vs {sql_cfg.z_step}),")
    print("  so cluster counts differ — Table 2 of the paper prices that")
    print("  gap at a further ~25x of TAM compute.")


if __name__ == "__main__":
    main()
