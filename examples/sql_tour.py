#!/usr/bin/env python3
"""A tour of the relational engine with the paper's schema and queries.

Creates the appendix's tables, loads the synthetic catalog, and runs
the paper-shaped SQL — the zone assignment, the chi² Filter join, and
analysis queries over the results — showing plans (EXPLAIN) and the
buffer-pool I/O counters that back Table 1's statistics.

Run:  python examples/sql_tour.py
"""

from __future__ import annotations

from repro import (
    Database,
    RegionBox,
    SkyConfig,
    build_kcorrection_table,
    fast_config,
    make_sky,
)

SCHEMA = """
CREATE TABLE Kcorr (
    zid int PRIMARY KEY NOT NULL,
    z real, i real, ilim real,
    ug real, gr real, ri real, iz real, radius float
);
CREATE TABLE Galaxy (
    objid bigint PRIMARY KEY,
    ra float, dec float, i real, gr real, ri real,
    sigmagr float, sigmari float
);
"""

FILTER_QUERY = """
SELECT g.objid AS objid, COUNT(*) AS passing_redshifts
FROM Galaxy g CROSS JOIN Kcorr k
WHERE g.i < 18.0
  AND (POWER(g.i - k.i, 2) / POWER(0.57, 2)
     + POWER(g.gr - k.gr, 2) / (POWER(sigmagr, 2) + POWER(0.05, 2))
     + POWER(g.ri - k.ri, 2) / (POWER(sigmari, 2) + POWER(0.06, 2))) < 7
GROUP BY g.objid
ORDER BY passing_redshifts DESC
LIMIT 5
"""


def main() -> None:
    config = fast_config()
    kcorr = build_kcorrection_table(config)
    sky = make_sky(
        RegionBox(180.0, 181.0, 0.0, 1.0), config, kcorr,
        SkyConfig(field_density=700.0, cluster_density=10.0, seed=13),
    )

    db = Database("tour")
    db.run_script(SCHEMA)
    db.table("kcorr").insert(kcorr.as_columns())
    db.table("galaxy").insert(sky.catalog.as_columns())
    print(f"loaded {db.table('galaxy').row_count:,} galaxies and "
          f"{db.table('kcorr').row_count} Kcorr rows")
    print(f"storage: {db.stats_summary()['pages']:,} pages of 8 KiB\n")

    # -------- the zone assignment (spZone's first half), in SQL
    db.sql(
        "CREATE TABLE Zone (objid bigint PRIMARY KEY, zoneid int, "
        "ra float, dec float)"
    )
    db.sql(
        "INSERT INTO Zone SELECT objid, "
        "FLOOR((dec + 90.0) / 0.00833333333333333333), ra, dec FROM Galaxy"
    )
    db.create_clustered_index("zone", "zoneid", "ra")
    print("zone table built; clustered index on (zoneid, ra)")

    # an indexed range scan vs a full scan, in the optimizer's own words
    ranged = "SELECT objid FROM Zone WHERE zoneid BETWEEN 10850 AND 10860"
    print("\nEXPLAIN", ranged)
    print(db.explain(ranged))
    before = db.pool.counters.snapshot()
    db.sql(ranged)
    delta = db.pool.counters.since(before)
    print(f"-> {delta.logical_reads} logical reads (vs "
          f"{db.table('zone').page_count} pages for a full scan)\n")

    # -------- the Filter step: early filtering via the Kcorr join
    print("the chi^2 Filter join (bright galaxies only, top 5):")
    before = db.pool.counters.snapshot()
    result = db.sql(FILTER_QUERY)
    delta = db.pool.counters.since(before)
    for row in result.rows():
        print(f"  objid {row['objid']}  passes at "
              f"{row['passing_redshifts']} redshifts")
    print(f"(query cost: {delta.logical_reads} logical reads, "
          f"{delta.physical_reads} physical)\n")

    # -------- ad-hoc analysis the way a CAS user would
    print("galaxy counts by magnitude bin:")
    histogram = db.sql(
        "SELECT FLOOR(i) AS mag_bin, COUNT(*) AS n FROM Galaxy "
        "GROUP BY FLOOR(i) ORDER BY mag_bin"
    )
    for row in histogram.rows():
        bar = "#" * max(1, int(50 * row["n"] / len(sky.catalog)))
        print(f"  i ~ {row['mag_bin']:4.0f}: {row['n']:6,d} {bar}")


if __name__ == "__main__":
    main()
