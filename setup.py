"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in offline environments where pip cannot bootstrap a
PEP 517 build backend (no network, no `wheel`).
"""

from setuptools import setup

setup()
