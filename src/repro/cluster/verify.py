"""The partitioning invariant: union(partitions) == sequential answer.

"The union of the answers from the three partitions is identical to the
BCG candidates and clusters returned by the sequential (one node)
implementation."  This module checks that claim exactly — same objids,
same redshifts, same neighbor counts, same likelihood values — and is
used both by the test suite and by the Table 1 benchmark before it
reports any timing.

It also checks the *backend* flavor of the same identity
(:func:`assert_backends_equivalent`): however the partitions execute —
sequentially, on threads, or in worker processes — the merged
candidate, cluster and member catalogs must be byte-identical to the
sequential backend's answer.  Only the clocks may differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.results import CandidateCatalog, MemberTable
from repro.errors import PartitionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (executor imports us)
    from repro.cluster.executor import ClusterRunResult


@dataclass(frozen=True)
class CatalogComparison:
    """Outcome of comparing two candidate/cluster catalogs."""

    equal: bool
    only_left: int
    only_right: int
    value_mismatches: int

    def __bool__(self) -> bool:
        return self.equal


def compare_catalogs(
    left: CandidateCatalog,
    right: CandidateCatalog,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> CatalogComparison:
    """Row-for-row comparison keyed by objid."""
    left = left.dedup_by_objid().sort_by_objid()
    right = right.dedup_by_objid().sort_by_objid()
    left_ids = set(left.objid.tolist())
    right_ids = set(right.objid.tolist())
    only_left = len(left_ids - right_ids)
    only_right = len(right_ids - left_ids)

    value_mismatches = 0
    if only_left == 0 and only_right == 0 and len(left) == len(right):
        for column in ("z", "i", "chi2"):
            close = np.isclose(
                getattr(left, column), getattr(right, column),
                rtol=rtol, atol=atol,
            )
            value_mismatches += int((~close).sum())
        value_mismatches += int((left.ngal != right.ngal).sum())
    equal = only_left == 0 and only_right == 0 and value_mismatches == 0
    return CatalogComparison(equal, only_left, only_right, value_mismatches)


def assert_union_equals_sequential(
    partitioned_candidates: CandidateCatalog,
    partitioned_clusters: CandidateCatalog,
    sequential_candidates: CandidateCatalog,
    sequential_clusters: CandidateCatalog,
) -> None:
    """Raise :class:`PartitionError` unless both unions match exactly."""
    for name, merged, sequential in (
        ("candidates", partitioned_candidates, sequential_candidates),
        ("clusters", partitioned_clusters, sequential_clusters),
    ):
        comparison = compare_catalogs(merged, sequential)
        if not comparison:
            raise PartitionError(
                f"partition union differs from sequential {name}: "
                f"{comparison.only_left} extra, {comparison.only_right} missing, "
                f"{comparison.value_mismatches} value mismatches"
            )


def _catalogs_identical(left: CandidateCatalog, right: CandidateCatalog) -> bool:
    """Byte-identical candidate catalogs: every column exactly equal."""
    return len(left) == len(right) and all(
        np.array_equal(getattr(left, c), getattr(right, c))
        for c in ("objid", "ra", "dec", "z", "i", "ngal", "chi2")
    )


def _sorted_members(members: MemberTable) -> MemberTable:
    order = np.lexsort((members.galaxy_objid, members.cluster_objid))
    return MemberTable(
        members.cluster_objid[order],
        members.galaxy_objid[order],
        members.distance[order],
    )


def members_identical(left: MemberTable, right: MemberTable) -> bool:
    """Byte-identical member tables, insensitive to partition arrival order."""
    if len(left) != len(right):
        return False
    left, right = _sorted_members(left), _sorted_members(right)
    return (
        np.array_equal(left.cluster_objid, right.cluster_objid)
        and np.array_equal(left.galaxy_objid, right.galaxy_objid)
        and np.array_equal(left.distance, right.distance)
    )


#: Columns fingerprinted per catalog (order matters: it is hashed).
_FINGERPRINT_COLUMNS = ("objid", "ra", "dec", "z", "i", "ngal", "chi2")


def run_fingerprint(
    candidates: CandidateCatalog,
    clusters: CandidateCatalog,
    members: MemberTable,
) -> dict[str, object]:
    """A compact, exact fingerprint of one MaxBCG answer.

    Counts plus a SHA-256 over the raw little-endian bytes of every
    column — byte-identity, not approximate equality, in a form small
    enough to commit as a golden file.  Members are sorted by
    (cluster, galaxy) first so the fingerprint is insensitive to
    partition/completion arrival order, same as
    :func:`members_identical`.
    """
    import hashlib

    def _catalog_digest(catalog: CandidateCatalog) -> str:
        digest = hashlib.sha256()
        for column in _FINGERPRINT_COLUMNS:
            array = np.ascontiguousarray(getattr(catalog, column))
            digest.update(array.astype(array.dtype.newbyteorder("<")).tobytes())
        return digest.hexdigest()

    ordered = _sorted_members(members)
    member_digest = hashlib.sha256()
    for array in (ordered.cluster_objid, ordered.galaxy_objid, ordered.distance):
        array = np.ascontiguousarray(array)
        member_digest.update(array.astype(array.dtype.newbyteorder("<")).tobytes())

    return {
        "n_candidates": int(len(candidates)),
        "n_clusters": int(len(clusters)),
        "n_members": int(len(members)),
        "candidates_sha256": _catalog_digest(candidates),
        "clusters_sha256": _catalog_digest(clusters),
        "members_sha256": member_digest.hexdigest(),
    }


def assert_matches_golden(
    fingerprint: Mapping[str, object],
    golden: Mapping[str, object],
    label: str = "run",
) -> None:
    """Raise :class:`PartitionError` on any golden-fingerprint drift.

    The error names every divergent field — a count drift and a digest
    drift point at very different bugs.
    """
    divergent = [
        f"{key}: got {fingerprint.get(key)!r}, golden {expected!r}"
        for key, expected in golden.items()
        if fingerprint.get(key) != expected
    ]
    if divergent:
        raise PartitionError(
            f"{label} diverged from the golden fingerprint — "
            + "; ".join(divergent)
        )


def assert_backends_equivalent(
    results: Mapping[str, "ClusterRunResult"],
    reference: str = "sequential",
) -> None:
    """Every backend's merged catalogs must match the sequential answer.

    ``results`` maps backend names to their :class:`ClusterRunResult`
    over the *same* catalog/target/layout; ``reference`` names the
    entry the others are compared against (byte-identical, not merely
    numerically close — all backends run the identical per-partition
    code, so any drift is an execution bug, not roundoff).  Raises
    :class:`PartitionError` naming the first divergent backend and
    catalog.
    """
    if reference not in results:
        raise PartitionError(
            f"reference backend '{reference}' missing from results "
            f"({sorted(results)})"
        )
    base = results[reference]
    for name, result in results.items():
        if name == reference:
            continue
        for what, same in (
            ("candidates", _catalogs_identical(result.candidates, base.candidates)),
            ("clusters", _catalogs_identical(result.clusters, base.clusters)),
            ("members", members_identical(result.members, base.members)),
        ):
            if not same:
                raise PartitionError(
                    f"backend '{name}' produced {what} that differ from "
                    f"the '{reference}' backend's answer"
                )
