"""The partitioning invariant: union(partitions) == sequential answer.

"The union of the answers from the three partitions is identical to the
BCG candidates and clusters returned by the sequential (one node)
implementation."  This module checks that claim exactly — same objids,
same redshifts, same neighbor counts, same likelihood values — and is
used both by the test suite and by the Table 1 benchmark before it
reports any timing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CandidateCatalog
from repro.errors import PartitionError


@dataclass(frozen=True)
class CatalogComparison:
    """Outcome of comparing two candidate/cluster catalogs."""

    equal: bool
    only_left: int
    only_right: int
    value_mismatches: int

    def __bool__(self) -> bool:
        return self.equal


def compare_catalogs(
    left: CandidateCatalog,
    right: CandidateCatalog,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> CatalogComparison:
    """Row-for-row comparison keyed by objid."""
    left = left.dedup_by_objid().sort_by_objid()
    right = right.dedup_by_objid().sort_by_objid()
    left_ids = set(left.objid.tolist())
    right_ids = set(right.objid.tolist())
    only_left = len(left_ids - right_ids)
    only_right = len(right_ids - left_ids)

    value_mismatches = 0
    if only_left == 0 and only_right == 0 and len(left) == len(right):
        for column in ("z", "i", "chi2"):
            close = np.isclose(
                getattr(left, column), getattr(right, column),
                rtol=rtol, atol=atol,
            )
            value_mismatches += int((~close).sum())
        value_mismatches += int((left.ngal != right.ngal).sum())
    equal = only_left == 0 and only_right == 0 and value_mismatches == 0
    return CatalogComparison(equal, only_left, only_right, value_mismatches)


def assert_union_equals_sequential(
    partitioned_candidates: CandidateCatalog,
    partitioned_clusters: CandidateCatalog,
    sequential_candidates: CandidateCatalog,
    sequential_clusters: CandidateCatalog,
) -> None:
    """Raise :class:`PartitionError` unless both unions match exactly."""
    for name, merged, sequential in (
        ("candidates", partitioned_candidates, sequential_candidates),
        ("clusters", partitioned_clusters, sequential_clusters),
    ):
        comparison = compare_catalogs(merged, sequential)
        if not comparison:
            raise PartitionError(
                f"partition union differs from sequential {name}: "
                f"{comparison.only_left} extra, {comparison.only_right} missing, "
                f"{comparison.value_mismatches} value mismatches"
            )
