"""Zone-range partitioning across servers (Section 2.4, Figure 6).

"Applying a zone strategy, P gets partitioned homogeneously among 3
servers: S1 provides 1 deg buffer on top, S2 on top and bottom, S3 on
bottom."  The declination-striped layout makes every server *completely
independent*: each gets its native stripe of the target plus a
duplicated skirt wide enough that all of its candidate evaluations and
cluster competitions can be answered locally.

The skirt must be **two** search radii (1 deg for the paper's 0.5 deg
buffer): a candidate at the native-stripe edge competes with candidates
up to one radius away (fIsCluster), and those rivals need *their* full
neighborhoods — another radius — to produce exactly the chi² values the
sequential run would.  This is why the union of partition answers is
bit-identical to the one-node answer (the invariant
:mod:`repro.cluster.verify` checks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.skyserver.regions import RegionBox


@dataclass(frozen=True)
class Partition:
    """One server's share of the work.

    Attributes
    ----------
    server:
        0-based server number (top stripe first, like Figure 6's S1).
    target:
        The native declination stripe of the global target T — the
        region whose clusters this server owns.
    buffer:
        ``target`` expanded by the search radius: the candidate
        evaluation region of this server.
    imported:
        ``buffer`` expanded once more (clipped to the global import
        region): every galaxy this server must hold, duplicated skirt
        included.
    """

    server: int
    target: RegionBox
    buffer: RegionBox
    imported: RegionBox

    @property
    def skirt_area(self) -> float:
        """Flat-sky area imported beyond the native target stripe (deg²)."""
        return self.imported.flat_area() - self.target.flat_area()


@dataclass(frozen=True)
class PartitionLayout:
    """A full layout: the global regions plus one Partition per server."""

    target: RegionBox
    buffer_deg: float
    partitions: tuple[Partition, ...]

    @property
    def n_servers(self) -> int:
        return len(self.partitions)

    @property
    def global_buffer(self) -> RegionBox:
        return self.target.expand(self.buffer_deg)

    @property
    def global_import(self) -> RegionBox:
        return self.target.expand(2.0 * self.buffer_deg)

    def duplicated_area(self) -> float:
        """Total flat-sky area imported more than once (deg²).

        The paper's Figure 6 caption: "Total duplicated data =
        4 × 13 deg²" for 3 servers over the 13-deg-wide region — each
        internal stripe boundary contributes two skirts of one search
        radius... here computed exactly from the layout.
        """
        total_imported = sum(p.imported.flat_area() for p in self.partitions)
        return total_imported - self.global_import.flat_area()

    def duplication_factor(self) -> float:
        """Imported rows per unique row (area proxy), >= 1."""
        base = self.global_import.flat_area()
        if base <= 0:
            raise PartitionError("degenerate global import region")
        return sum(p.imported.flat_area() for p in self.partitions) / base


def make_partitions(
    target: RegionBox, buffer_deg: float, n_servers: int
) -> PartitionLayout:
    """Split a target into ``n_servers`` declination stripes + skirts.

    Stripes are equal-height in declination (the paper's homogeneous
    zone split; zones are dec stripes, so a contiguous zone range *is* a
    dec interval).  Stripes thinner than the duplication skirt remain
    *correct* — every server still imports everything within two search
    radii of its stripe — they just duplicate progressively more data,
    which is exactly the diminishing-returns curve the partition-count
    ablation benchmark measures.
    """
    if n_servers <= 0:
        raise PartitionError(f"need at least 1 server, got {n_servers}")
    if buffer_deg <= 0:
        raise PartitionError(f"buffer must be positive, got {buffer_deg}")
    global_import = target.expand(2.0 * buffer_deg)
    partitions = []
    # Figure 6 numbers stripes from the top (S1 = highest declination).
    stripes = list(reversed(target.split_dec(n_servers)))
    for server, stripe in enumerate(stripes):
        buffer_region = stripe.expand(buffer_deg).intersect(
            target.expand(buffer_deg)
        )
        assert buffer_region is not None
        imported = stripe.expand(2.0 * buffer_deg).intersect(global_import)
        assert imported is not None
        partitions.append(
            Partition(
                server=server,
                target=stripe,
                buffer=buffer_region,
                imported=imported,
            )
        )
    return PartitionLayout(
        target=target, buffer_deg=buffer_deg, partitions=tuple(partitions)
    )
