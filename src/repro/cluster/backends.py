"""Execution backends: how a cluster run's partitions actually execute.

The paper ran MaxBCG on three *physically separate* SQL Servers; this
module supplies the execution models under one small API so
:class:`~repro.cluster.executor.SqlServerCluster` can swap them freely:

* :class:`SequentialBackend` — partitions run one after another in the
  calling process and the cluster elapsed time is *modeled* as the max
  over servers (the paper's own aggregation rule).  Deterministic, and
  the accounting reference everything else is verified against.
* :class:`ThreadBackend` — partitions run on concurrent threads.
  Correct everywhere (each server owns a private database); *faster*
  only where the GIL releases, so it exists mainly for free-threaded
  builds and for measuring the honest number on stock CPython.
* :class:`ProcessBackend` — partitions run in worker processes, one
  per server up to ``max_workers``, with a per-worker timeout, bounded
  retries with exponential backoff, and graceful degradation: a
  partition whose retries are exhausted is re-run sequentially in the
  parent so one flaky worker cannot take down the whole run.

Every backend executes the *identical* per-partition code path
(:func:`~repro.cluster.workunit.execute_workunit`), which is what makes
the backend-equivalence check in :mod:`repro.cluster.verify` meaningful:
same inputs, same answer, byte for byte — only the wall clock differs.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.cluster.workunit import (
    PartitionWorkUnit,
    WorkUnitOutcome,
    execute_workunit,
)
from repro.errors import ClusterExecutionError, ConfigError

#: Names accepted wherever a backend can be chosen (CLI, ``backend=``).
BACKEND_NAMES = ("sequential", "threads", "processes")

#: Callable invoked with short event strings ("server0", "server1:retry1")
#: as a run progresses.
ProgressHook = Callable[[str], None]


@dataclass
class WorkerReport:
    """Per-partition execution provenance, reported by every backend.

    ``wall_s`` is the dispatcher-side wall-clock of the *successful*
    attempt; ``cpu_s`` is the worker's own CPU total for the unit (its
    process clock in a child, its thread clock on a pool thread).
    """

    server: int
    worker: str
    attempts: int = 1
    wall_s: float = 0.0
    cpu_s: float = 0.0
    degraded: bool = False
    failures: list[str] = field(default_factory=list)


@dataclass
class BackendRun:
    """Everything a backend hands back to the cluster executor."""

    outcomes: list[WorkUnitOutcome]  # ordered by server number
    workers: list[WorkerReport]  # same order
    wall_s: float | None  # measured end-to-end wall; None when modeled


@runtime_checkable
class ExecutionBackend(Protocol):
    """The pluggable execution strategy for a cluster run."""

    #: Stable name ("sequential", "threads", "processes", ...).
    name: str
    #: True when ``BackendRun.wall_s`` is a measured concurrent wall-clock.
    measured: bool

    def run(
        self,
        units: list[PartitionWorkUnit],
        progress: ProgressHook | None = None,
    ) -> BackendRun: ...


def _unit_cpu_s(outcome: WorkUnitOutcome) -> float:
    return sum(s.cpu_s for s in outcome.result.stats.values())


def _sorted_run(
    outcomes: Iterable[WorkUnitOutcome],
    workers: Iterable[WorkerReport],
    wall_s: float | None,
) -> BackendRun:
    outcomes = sorted(outcomes, key=lambda o: o.server)
    workers = sorted(workers, key=lambda w: w.server)
    _record_run_metrics(outcomes, workers)
    return BackendRun(outcomes=outcomes, workers=workers, wall_s=wall_s)


def _record_run_metrics(
    outcomes: list[WorkUnitOutcome], workers: list[WorkerReport]
) -> None:
    """Feed the metrics registry from the one funnel every backend exits
    through, so per-partition observables need no per-backend wiring."""
    from repro.obs.metrics import get_metrics

    metrics = get_metrics()
    metrics.counter("cluster.partitions").inc(len(outcomes))
    metrics.counter("cluster.attempts").inc(
        sum(max(w.attempts, 1) for w in workers)
    )
    degraded = sum(1 for w in workers if w.degraded)
    if degraded:
        metrics.counter("cluster.degraded").inc(degraded)
    wall = metrics.histogram("cluster.partition.wall_s")
    cpu = metrics.histogram("cluster.partition.cpu_s")
    io_ops = metrics.counter("cluster.partition.io_ops")
    for worker, outcome in zip(workers, outcomes):
        wall.observe(worker.wall_s)
        cpu.observe(worker.cpu_s)
        io_ops.inc(outcome.result.total_stats.io_ops)


class SequentialBackend:
    """Run partitions one after another in the calling process.

    The reference backend: no measured concurrency, so the cluster's
    elapsed time is modeled as max-over-servers downstream.
    """

    name = "sequential"
    measured = False

    def run(
        self,
        units: list[PartitionWorkUnit],
        progress: ProgressHook | None = None,
    ) -> BackendRun:
        outcomes: list[WorkUnitOutcome] = []
        workers: list[WorkerReport] = []
        for unit in units:
            started = time.perf_counter()
            outcome = execute_workunit(unit, cpu_clock="process")
            outcomes.append(outcome)
            workers.append(
                WorkerReport(
                    server=unit.server,
                    worker=outcome.worker,
                    wall_s=time.perf_counter() - started,
                    cpu_s=_unit_cpu_s(outcome),
                )
            )
            if progress is not None:
                progress(f"server{unit.server}")
        return _sorted_run(outcomes, workers, wall_s=None)


class ThreadBackend:
    """Run partitions on concurrent threads (one pool thread each).

    Every server owns its private database and read-only inputs, so
    this is always *correct*; on GIL-bound CPython it is usually not
    *faster* (the counting kernels hold the GIL).  Per-task CPU is
    billed with ``time.thread_time`` so a task never absorbs the other
    threads' work.
    """

    name = "threads"
    measured = True

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run(
        self,
        units: list[PartitionWorkUnit],
        progress: ProgressHook | None = None,
    ) -> BackendRun:
        from concurrent.futures import ThreadPoolExecutor, as_completed

        outcomes: list[WorkUnitOutcome] = []
        workers: list[WorkerReport] = []
        started = time.perf_counter()
        pool_size = self.max_workers or len(units) or 1
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            futures = {}
            for unit in units:
                unit_started = time.perf_counter()
                future = pool.submit(execute_workunit, unit, "thread")
                futures[future] = (unit, unit_started)
            for future in as_completed(futures):
                unit, unit_started = futures[future]
                outcome = future.result()  # worker exceptions propagate
                outcomes.append(outcome)
                workers.append(
                    WorkerReport(
                        server=unit.server,
                        worker=outcome.worker,
                        wall_s=time.perf_counter() - unit_started,
                        cpu_s=_unit_cpu_s(outcome),
                    )
                )
                if progress is not None:
                    progress(f"server{unit.server}")
        return _sorted_run(
            outcomes, workers, wall_s=time.perf_counter() - started
        )


def _process_entry(conn, unit: PartitionWorkUnit) -> None:
    """Child-process main: run the unit, ship the outcome back."""
    try:
        outcome = execute_workunit(unit, cpu_clock="process")
        conn.send(("ok", outcome))
    except BaseException as exc:  # report *any* worker failure upstream
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Attempt:
    """One in-flight worker process."""

    unit: PartitionWorkUnit
    number: int  # 1-based attempt counter
    process: multiprocessing.process.BaseProcess
    conn: object  # parent end of the pipe
    started: float


class ProcessBackend:
    """Run partitions in worker processes — real parallelism on CPython.

    Each partition ships to a dedicated child process as a picklable
    :class:`~repro.cluster.workunit.PartitionWorkUnit`; at most
    ``max_workers`` children run at once.  Failure handling:

    * a worker that raises, dies, or exceeds ``timeout_s`` is retried
      up to ``max_retries`` times, waiting ``backoff_s * 2**(n-1)``
      before attempt ``n+1``;
    * a partition whose retries are exhausted *degrades gracefully*:
      it is re-run sequentially in the parent process (with a
      :class:`RuntimeWarning`), so the run still completes — merged
      catalogs are never corrupted or duplicated because a partition's
      outcome is only ever recorded once;
    * if the in-parent fallback fails too, the run aborts with a
      :class:`~repro.errors.ClusterExecutionError` naming the partition
      and chaining the worker failure.
    """

    name = "processes"
    measured = True

    def __init__(
        self,
        max_workers: int | None = None,
        timeout_s: float | None = None,
        max_retries: int = 2,
        backoff_s: float = 0.25,
        mp_context: str | None = None,
    ):
        if max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
        self.max_workers = max_workers
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.mp_context = mp_context

    def _context(self):
        if self.mp_context is not None:
            return multiprocessing.get_context(self.mp_context)
        # fork is cheapest where available (no re-import of numpy);
        # spawn everywhere else.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def run(
        self,
        units: list[PartitionWorkUnit],
        progress: ProgressHook | None = None,
    ) -> BackendRun:
        ctx = self._context()
        capacity = self.max_workers or len(units) or 1
        started = time.perf_counter()

        pending: deque[tuple[PartitionWorkUnit, int, float]] = deque(
            (unit, 1, 0.0) for unit in units
        )  # (unit, attempt number, not-before timestamp)
        running: list[_Attempt] = []
        outcomes: dict[int, WorkUnitOutcome] = {}
        reports: dict[int, WorkerReport] = {
            unit.server: WorkerReport(server=unit.server, worker="", attempts=0)
            for unit in units
        }
        exhausted: list[tuple[PartitionWorkUnit, str]] = []

        def fail(attempt: _Attempt, reason: str) -> None:
            report = reports[attempt.unit.server]
            report.failures.append(f"attempt {attempt.number}: {reason}")
            if attempt.number <= self.max_retries:
                delay = self.backoff_s * (2 ** (attempt.number - 1))
                pending.append(
                    (attempt.unit, attempt.number + 1, time.perf_counter() + delay)
                )
                if progress is not None:
                    progress(f"server{attempt.unit.server}:retry{attempt.number}")
            else:
                exhausted.append((attempt.unit, reason))

        def succeed(attempt: _Attempt, outcome: WorkUnitOutcome) -> None:
            outcomes[outcome.server] = outcome
            report = reports[outcome.server]
            report.worker = outcome.worker
            report.wall_s = time.perf_counter() - attempt.started
            report.cpu_s = _unit_cpu_s(outcome)
            if progress is not None:
                progress(f"server{outcome.server}")

        while pending or running:
            now = time.perf_counter()
            # launch everything eligible, up to capacity
            blocked: list[tuple[PartitionWorkUnit, int, float]] = []
            while pending and len(running) < capacity:
                unit, number, not_before = pending.popleft()
                if not_before > now:
                    blocked.append((unit, number, not_before))
                    continue
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_process_entry, args=(child_conn, unit), daemon=True
                )
                process.start()
                child_conn.close()
                reports[unit.server].attempts = number
                running.append(
                    _Attempt(unit, number, process, parent_conn, now)
                )
            pending.extendleft(reversed(blocked))

            if not running:
                time.sleep(0.005)  # waiting out a backoff window
                continue

            multiprocessing.connection.wait(
                [attempt.process.sentinel for attempt in running], timeout=0.05
            )
            still_running: list[_Attempt] = []
            for attempt in running:
                if attempt.conn.poll():
                    try:
                        kind, payload = attempt.conn.recv()
                    except (EOFError, OSError):
                        # pipe closed without a message: the worker died
                        attempt.process.join()
                        attempt.conn.close()
                        fail(
                            attempt,
                            f"worker died (exitcode {attempt.process.exitcode})",
                        )
                        continue
                    attempt.process.join()
                    attempt.conn.close()
                    if kind == "ok":
                        succeed(attempt, payload)
                    else:
                        fail(attempt, payload)
                elif not attempt.process.is_alive():
                    attempt.process.join()
                    attempt.conn.close()
                    fail(
                        attempt,
                        f"worker died (exitcode {attempt.process.exitcode})",
                    )
                elif (
                    self.timeout_s is not None
                    and time.perf_counter() - attempt.started > self.timeout_s
                ):
                    attempt.process.terminate()
                    attempt.process.join()
                    attempt.conn.close()
                    fail(attempt, f"timed out after {self.timeout_s:g} s")
                else:
                    still_running.append(attempt)
            running = still_running

        # graceful degradation: run exhausted partitions in-parent
        for unit, reason in exhausted:
            report = reports[unit.server]
            warnings.warn(
                f"partition {unit.server} failed {report.attempts} worker "
                f"attempt(s) (last: {reason}); degrading to sequential "
                f"in-parent execution",
                RuntimeWarning,
                stacklevel=2,
            )
            fallback_started = time.perf_counter()
            try:
                outcome = execute_workunit(unit, cpu_clock="process")
            except Exception as exc:
                raise ClusterExecutionError(
                    f"partition {unit.server} failed on every worker attempt "
                    f"({reason}) and in the sequential fallback: {exc}",
                    server=unit.server,
                ) from exc
            report.attempts += 1
            report.degraded = True
            report.worker = outcome.worker
            report.wall_s = time.perf_counter() - fallback_started
            report.cpu_s = _unit_cpu_s(outcome)
            outcomes[outcome.server] = outcome
            if progress is not None:
                progress(f"server{outcome.server}:degraded")

        return _sorted_run(
            outcomes.values(),
            reports.values(),
            wall_s=time.perf_counter() - started,
        )


class JobPool(Protocol):
    """A pool that runs arbitrary callables — the job-level sibling of
    :class:`ExecutionBackend`.

    ``ExecutionBackend`` runs *partition work units* (picklable, batch,
    run-to-completion); a :class:`JobPool` runs *jobs* — opaque
    callables submitted one at a time by a long-lived dispatcher such
    as the CasJobs :class:`~repro.casjobs.scheduler.Scheduler`.  The
    extra surface a service needs and a batch run does not:
    ``submit`` returns a :class:`concurrent.futures.Future` the caller
    can poll, and ``cancel`` is the hook for revoking work that has not
    started (a running thread cannot be killed — the scheduler handles
    that by abandoning the future and ignoring its eventual result).
    """

    name: str

    def submit(self, fn: Callable, /, *args, **kwargs): ...

    def cancel(self, future) -> bool: ...

    def shutdown(self, wait: bool = True) -> None: ...


class InlineJobPool:
    """Run each job synchronously at submit time (the reference pool).

    Deterministic single-worker execution: ``submit`` runs the callable
    in the calling thread and returns an already-resolved Future.  The
    scheduler on this pool reproduces ``JobQueue.drain`` ordering
    exactly, which is what makes scheduler-driven runs comparable to
    sequential golden runs byte for byte.
    """

    name = "sequential"

    def submit(self, fn: Callable, /, *args, **kwargs):
        from concurrent.futures import Future

        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - ferried to the caller
            future.set_exception(exc)
        return future

    def cancel(self, future) -> bool:
        return False  # already ran

    def shutdown(self, wait: bool = True) -> None:
        pass


class ThreadJobPool:
    """Run jobs on a shared thread pool.

    The service default: CasJobs jobs close over shared in-process
    state (context databases, MyDBs), which threads share for free.
    Real concurrency wherever the engine releases the GIL; correct
    everywhere.
    """

    name = "threads"

    def __init__(self, max_workers: int = 4):
        from concurrent.futures import ThreadPoolExecutor

        if max_workers <= 0:
            raise ConfigError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="casjobs"
        )

    def submit(self, fn: Callable, /, *args, **kwargs):
        return self._pool.submit(fn, *args, **kwargs)

    def cancel(self, future) -> bool:
        return future.cancel()

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=True)


class ProcessJobPool:
    """Run jobs in worker processes.

    Only for jobs that are *picklable and self-contained* — a CasJobs
    job that mutates shared service state (MyDB spooling) must not use
    this pool directly; the scheduler keeps finalization in the parent
    for exactly that reason.  Exposed for callers whose jobs are pure
    functions of their arguments (e.g. federated per-site pipelines
    built from picklable configs).
    """

    name = "processes"

    def __init__(self, max_workers: int = 4, mp_context: str | None = None):
        from concurrent.futures import ProcessPoolExecutor

        if max_workers <= 0:
            raise ConfigError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context(mp_context),
        )

    def submit(self, fn: Callable, /, *args, **kwargs):
        return self._pool.submit(fn, *args, **kwargs)

    def cancel(self, future) -> bool:
        return future.cancel()

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=True)


def resolve_job_pool(
    spec: "str | JobPool", max_workers: int = 4
) -> "JobPool":
    """Accept a pool name or instance; return the instance.

    Names map to default-configured pools: ``"sequential"`` (inline),
    ``"threads"``, ``"processes"``.  Anything with the
    :class:`JobPool` surface passes through untouched.
    """
    if isinstance(spec, str):
        if spec == "sequential":
            return InlineJobPool()
        if spec == "threads":
            return ThreadJobPool(max_workers=max_workers)
        if spec == "processes":
            return ProcessJobPool(max_workers=max_workers)
        raise ConfigError(
            f"unknown job pool '{spec}'; expected one of {BACKEND_NAMES} "
            f"or a JobPool instance"
        )
    if all(hasattr(spec, a) for a in ("submit", "cancel", "shutdown")):
        return spec
    raise ConfigError(
        f"pool must be a name or a JobPool, got {type(spec).__name__}"
    )


def default_worker_count(n_units: int) -> int:
    """Workers to use when the caller does not say: min(units, cores)."""
    return max(1, min(n_units, os.cpu_count() or 1))


def resolve_backend(spec: str | ExecutionBackend) -> ExecutionBackend:
    """Accept a backend name or instance; return the instance.

    Names map to default-configured backends: ``"sequential"``,
    ``"threads"``, ``"processes"``.  Anything satisfying the
    :class:`ExecutionBackend` protocol passes through untouched.
    """
    if isinstance(spec, str):
        if spec == "sequential":
            return SequentialBackend()
        if spec == "threads":
            return ThreadBackend()
        if spec == "processes":
            return ProcessBackend()
        raise ConfigError(
            f"unknown execution backend '{spec}'; expected one of "
            f"{BACKEND_NAMES} or an ExecutionBackend instance"
        )
    if isinstance(spec, ExecutionBackend):
        return spec
    raise ConfigError(
        f"backend must be a name or an ExecutionBackend, got {type(spec).__name__}"
    )
