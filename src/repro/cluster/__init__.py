"""SQL Server cluster: zone-range partitioning + parallel execution."""

from repro.cluster.executor import (
    ClusterRunResult,
    PartitionRun,
    SqlServerCluster,
    run_partitioned,
)
from repro.cluster.partitioning import (
    Partition,
    PartitionLayout,
    make_partitions,
)
from repro.cluster.verify import (
    assert_union_equals_sequential,
    compare_catalogs,
)

__all__ = [
    "ClusterRunResult",
    "Partition",
    "PartitionLayout",
    "PartitionRun",
    "SqlServerCluster",
    "assert_union_equals_sequential",
    "compare_catalogs",
    "make_partitions",
    "run_partitioned",
]
