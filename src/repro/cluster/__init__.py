"""SQL Server cluster: zone-range partitioning + pluggable execution.

Partition layout (:mod:`repro.cluster.partitioning`), per-partition
work units (:mod:`repro.cluster.workunit`), execution backends —
sequential, threads, processes (:mod:`repro.cluster.backends`) — the
cluster executor (:mod:`repro.cluster.executor`) and the equivalence
checks (:mod:`repro.cluster.verify`).
"""

from repro.cluster.backends import (
    BACKEND_NAMES,
    BackendRun,
    ExecutionBackend,
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    WorkerReport,
    resolve_backend,
)
from repro.cluster.executor import (
    ClusterRunResult,
    PartitionRun,
    SqlServerCluster,
    run_partitioned,
)
from repro.cluster.partitioning import (
    Partition,
    PartitionLayout,
    make_partitions,
)
from repro.cluster.verify import (
    assert_backends_equivalent,
    assert_union_equals_sequential,
    compare_catalogs,
)
from repro.cluster.workunit import (
    FaultSpec,
    PartitionWorkUnit,
    WorkUnitOutcome,
    execute_workunit,
)

__all__ = [
    "BACKEND_NAMES",
    "BackendRun",
    "ClusterRunResult",
    "ExecutionBackend",
    "FaultSpec",
    "Partition",
    "PartitionLayout",
    "PartitionRun",
    "PartitionWorkUnit",
    "ProcessBackend",
    "SequentialBackend",
    "SqlServerCluster",
    "ThreadBackend",
    "WorkUnitOutcome",
    "WorkerReport",
    "assert_backends_equivalent",
    "assert_union_equals_sequential",
    "compare_catalogs",
    "execute_workunit",
    "make_partitions",
    "resolve_backend",
    "run_partitioned",
]
