"""Parallel MaxBCG on a cluster of database servers (Section 2.4).

Each partition runs the full single-node pipeline against its own
:class:`~repro.engine.database.Database` instance ("when running in
parallel, the data distribution is arranged so each server is
completely independent from the others").  Partitions are executed one
after another in this process — what matters for Table 1 is the paper's
own aggregation rule:

* cluster **elapsed** time = the *maximum* over servers (they run
  concurrently; the slowest one gates the answer — exactly how the
  paper's "Partitioning Total" row equals P2's 8,988 s);
* cluster **CPU** and **I/O** = the *sums* over servers (total work,
  which exceeds the one-node run by the duplicated skirts — the
  paper's 127% / 126% ratios).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.partitioning import PartitionLayout, make_partitions
from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.pipeline import MaxBCGPipeline, MaxBCGResult
from repro.core.results import CandidateCatalog, ClusterCatalog, MemberTable
from repro.engine.database import Database
from repro.engine.stats import TaskStats, sum_stats
from repro.skyserver.catalog import GalaxyCatalog

#: Task names aggregated into Table 1 totals.
TABLE1_TASKS = ("spZone", "fBCGCandidate", "fIsCluster")


@dataclass
class PartitionRun:
    """One server's result plus its workload size."""

    server: int
    result: MaxBCGResult
    n_galaxies: int  # galaxies imported on this server (skirt included)

    @property
    def total_stats(self) -> TaskStats:
        return self.result.total_stats


@dataclass
class ClusterRunResult:
    """A full partitioned run: per-server results and merged catalogs."""

    layout: PartitionLayout
    runs: list[PartitionRun]
    candidates: CandidateCatalog
    clusters: ClusterCatalog
    members: MemberTable
    wall_s: float | None = None  # measured wall-clock when run in parallel

    @property
    def elapsed_s(self) -> float:
        """Cluster wall-clock: the slowest server (the paper's rule)."""
        return max(r.total_stats.elapsed_s for r in self.runs)

    @property
    def cpu_s(self) -> float:
        """Total CPU burned across servers."""
        return sum(r.total_stats.cpu_s for r in self.runs)

    @property
    def io_ops(self) -> int:
        """Total I/O operations across servers."""
        return sum(r.total_stats.io_ops for r in self.runs)

    @property
    def total_galaxies(self) -> int:
        """Sum of per-server imports — exceeds the unique count by the
        duplicated skirts (Table 1's 2,348,050 vs 1,574,656)."""
        return sum(r.n_galaxies for r in self.runs)

    def task_stats(self, server: int) -> dict[str, TaskStats]:
        return self.runs[server].result.stats


class SqlServerCluster:
    """A simulated cluster of independent database servers."""

    def __init__(
        self,
        kcorr: KCorrectionTable,
        config: MaxBCGConfig,
        n_servers: int = 3,
        method: str = "vectorized",
        compute_members: bool = True,
        parallel: bool = False,
    ):
        self.kcorr = kcorr
        self.config = config
        self.n_servers = n_servers
        self.method = method
        self.compute_members = compute_members
        #: when True, partitions execute on concurrent threads — every
        #: server owns its private Database and read-only inputs, so
        #: this is *correct*, but on GIL-bound CPython it is typically
        #: NOT faster (the counting kernels' fancy indexing holds the
        #: GIL; measured ~0.7x at medium scale).  The default sequential
        #: mode with elapsed = max over servers models the paper's
        #: physically separate machines; the flag exists for free-threaded
        #: builds and for callers who want the measured number anyway.
        self.parallel = parallel

    def _run_partition(self, catalog: GalaxyCatalog, partition) -> PartitionRun:
        local_catalog = catalog.select_region(partition.imported)
        database = Database(f"server{partition.server}")
        pipeline = MaxBCGPipeline(
            self.kcorr,
            self.config,
            method=self.method,
            database=database,
            compute_members=self.compute_members,
        )
        result = pipeline.run(local_catalog, partition.target, partition.buffer)
        return PartitionRun(
            server=partition.server,
            result=result,
            n_galaxies=len(local_catalog),
        )

    def run(self, catalog: GalaxyCatalog, target) -> ClusterRunResult:
        """Distribute, run every partition, merge the answers."""
        import time

        layout = make_partitions(target, self.config.buffer_deg, self.n_servers)
        wall: float | None = None
        if self.parallel:
            from concurrent.futures import ThreadPoolExecutor

            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=self.n_servers) as pool:
                runs = list(pool.map(
                    lambda p: self._run_partition(catalog, p),
                    layout.partitions,
                ))
            wall = time.perf_counter() - started
        else:
            runs = [
                self._run_partition(catalog, partition)
                for partition in layout.partitions
            ]

        candidates = CandidateCatalog.empty()
        clusters = CandidateCatalog.empty()
        members = MemberTable.empty()
        for run in runs:
            candidates = candidates.concat(run.result.candidates)
            clusters = clusters.concat(run.result.clusters)
            members = members.concat(run.result.members)

        return ClusterRunResult(
            layout=layout,
            runs=runs,
            candidates=candidates.dedup_by_objid().sort_by_objid(),
            clusters=clusters.dedup_by_objid().sort_by_objid(),
            members=members,
            wall_s=wall,
        )


def run_partitioned(
    catalog: GalaxyCatalog,
    target,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
    n_servers: int = 3,
    compute_members: bool = True,
    parallel: bool = False,
) -> ClusterRunResult:
    """Convenience wrapper: build a cluster and run one target region.

    ``parallel=True`` executes the servers on concurrent threads and
    records the measured ``wall_s``.  Note that per-task *CPU* seconds
    are then inflated (``process_time`` spans all threads), so the
    Table 1 accounting benches keep the default sequential mode, where
    elapsed = max over servers models the concurrency instead.
    """
    cluster = SqlServerCluster(
        kcorr, config, n_servers, compute_members=compute_members,
        parallel=parallel,
    )
    return cluster.run(catalog, target)
