"""Parallel MaxBCG on a cluster of database servers (Section 2.4).

Each partition runs the full single-node pipeline against its own
:class:`~repro.engine.database.Database` instance ("when running in
parallel, the data distribution is arranged so each server is
completely independent from the others").  *How* the partitions execute
is delegated to an :class:`~repro.cluster.backends.ExecutionBackend`:

* ``"sequential"`` (default) — partitions run one after another and the
  cluster's elapsed time is *modeled* by the paper's own aggregation
  rule: elapsed = the *maximum* over servers (they run concurrently on
  separate machines; the slowest one gates the answer — exactly how the
  paper's "Partitioning Total" row equals P2's 8,988 s), while CPU and
  I/O are the *sums* over servers (total work, which exceeds the
  one-node run by the duplicated skirts — the paper's 127% / 126%
  ratios);
* ``"threads"`` / ``"processes"`` — partitions genuinely run
  concurrently and the cluster records the *measured* wall-clock,
  per-worker attempts and honest per-worker CPU.

Whatever the backend, the merged candidate/cluster/member catalogs are
identical — :func:`repro.cluster.verify.assert_backends_equivalent`
checks that byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.backends import (
    BackendRun,
    ExecutionBackend,
    WorkerReport,
    resolve_backend,
)
from repro.cluster.partitioning import PartitionLayout, make_partitions
from repro.cluster.workunit import FaultSpec, PartitionWorkUnit
from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.pipeline import MaxBCGResult
from repro.core.results import CandidateCatalog, MemberTable
from repro.engine.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.engine.stats import TaskStats
from repro.obs.trace import current_context, enabled, get_tracer, span
from repro.skyserver.catalog import GalaxyCatalog

#: Task names aggregated into Table 1 totals.
TABLE1_TASKS = ("spZone", "fBCGCandidate", "fIsCluster")


@dataclass
class PartitionRun:
    """One server's result plus its workload size and provenance."""

    server: int
    result: MaxBCGResult
    n_galaxies: int  # galaxies imported on this server (skirt included)
    worker: str = ""  # who executed it ("pid:.." / "pid:../thread:..")
    attempts: int = 1  # worker attempts consumed (retries included)
    #: This worker's feedback-optimizer summary (plan-memo hit rates,
    #: replans, learned overrides) when its EngineConfig enables
    #: feedback; empty otherwise.
    feedback: dict = field(default_factory=dict)

    @property
    def total_stats(self) -> TaskStats:
        return self.result.total_stats


@dataclass
class ClusterRunResult:
    """A full partitioned run: per-server results and merged catalogs.

    The elapsed story, in one place: :attr:`elapsed_s` is the *measured*
    end-to-end wall-clock when a parallel backend ran (``wall_s`` is
    then set), and the *modeled* max-over-servers otherwise;
    :attr:`modeled_elapsed_s` is always available for the paper's
    Table 1 accounting regardless of backend.
    """

    layout: PartitionLayout
    runs: list[PartitionRun]
    candidates: CandidateCatalog
    clusters: CandidateCatalog
    members: MemberTable
    wall_s: float | None = None  # measured wall-clock (parallel backends)
    backend: str = "sequential"  # name of the backend that executed
    workers: list[WorkerReport] = field(default_factory=list)

    @property
    def modeled_elapsed_s(self) -> float:
        """The slowest server's pipeline time (the paper's rule)."""
        return max(r.total_stats.elapsed_s for r in self.runs)

    @property
    def elapsed_s(self) -> float:
        """Cluster wall-clock: measured when parallel, modeled otherwise."""
        if self.wall_s is not None:
            return self.wall_s
        return self.modeled_elapsed_s

    @property
    def cpu_s(self) -> float:
        """Total CPU burned across servers."""
        return sum(r.total_stats.cpu_s for r in self.runs)

    @property
    def io_ops(self) -> int:
        """Total I/O operations across servers."""
        return sum(r.total_stats.io_ops for r in self.runs)

    @property
    def total_galaxies(self) -> int:
        """Sum of per-server imports — exceeds the unique count by the
        duplicated skirts (Table 1's 2,348,050 vs 1,574,656)."""
        return sum(r.n_galaxies for r in self.runs)

    def task_stats(self, server: int) -> dict[str, TaskStats]:
        return self.runs[server].result.stats


class SqlServerCluster:
    """A simulated cluster of independent database servers.

    Parameters
    ----------
    kcorr, config:
        The k-correction table and algorithm parameters.
    n_servers:
        Partition count (declination stripes, Figure 6).
    method:
        Pipeline method, ``"vectorized"`` or ``"cursor"``.
    compute_members:
        Skip membership retrieval when False (Table 1 excludes it).
    backend:
        ``"sequential"`` | ``"threads"`` | ``"processes"`` or any
        :class:`~repro.cluster.backends.ExecutionBackend` instance.
        (The retired boolean parallel flag is gone; pass
        ``backend="threads"`` / ``"sequential"`` explicitly.)
    fault:
        Optional :class:`~repro.cluster.workunit.FaultSpec` injected
        into every work unit — used by the fault-tolerance tests.
    engine_config:
        :class:`~repro.engine.config.EngineConfig` for each partition's
        database — one object carries every engine knob across the
        process boundary.
    intra_query_workers:
        Convenience override of ``engine_config.intra_query_workers``
        (orthogonal to the partition backend; results are identical
        at any value).
    """

    def __init__(
        self,
        kcorr: KCorrectionTable,
        config: MaxBCGConfig,
        n_servers: int = 3,
        method: str = "vectorized",
        compute_members: bool = True,
        backend: str | ExecutionBackend = "sequential",
        *,
        fault: FaultSpec | None = None,
        engine_config: EngineConfig | None = None,
        intra_query_workers: int | None = None,
    ):
        self.kcorr = kcorr
        self.config = config
        self.n_servers = n_servers
        self.method = method
        self.compute_members = compute_members
        self.backend = resolve_backend(backend)
        self.fault = fault
        engine_config = engine_config or DEFAULT_ENGINE_CONFIG
        if intra_query_workers is not None:
            engine_config = engine_config.replace(
                intra_query_workers=intra_query_workers
            )
        self.engine_config = engine_config

    @property
    def intra_query_workers(self) -> int:
        return self.engine_config.intra_query_workers

    def make_workunits(
        self, catalog: GalaxyCatalog, layout: PartitionLayout
    ) -> list[PartitionWorkUnit]:
        """Slice the catalog per partition into shippable work units."""
        return [
            PartitionWorkUnit(
                server=partition.server,
                catalog=catalog.select_region(partition.imported),
                target=partition.target,
                buffer=partition.buffer,
                kcorr=self.kcorr,
                config=self.config,
                method=self.method,
                compute_members=self.compute_members,
                fault=self.fault,
                engine_config=self.engine_config,
            )
            for partition in layout.partitions
        ]

    def run(
        self,
        catalog: GalaxyCatalog,
        target,
        progress: Callable[[str], None] | None = None,
    ) -> ClusterRunResult:
        """Distribute, run every partition, merge the answers."""
        layout = make_partitions(target, self.config.buffer_deg, self.n_servers)
        units = self.make_workunits(catalog, layout)
        with span(
            "cluster.run",
            layer="cluster",
            attrs={"backend": self.backend.name, "n_servers": self.n_servers},
        ):
            if enabled():
                # Stamp the dispatch context on every unit so worker-side
                # cluster.partition spans parent under this cluster.run —
                # across pool threads and child processes alike.
                ctx = current_context()
                for unit in units:
                    unit.trace = ctx
            executed: BackendRun = self.backend.run(units, progress=progress)
        # Child processes can't reach our tracer; they ship their spans
        # home inside the outcome and we absorb them here.
        tracer = get_tracer()
        for outcome in executed.outcomes:
            if outcome.spans:
                tracer.absorb(outcome.spans)
                outcome.spans = []

        runs = [
            PartitionRun(
                server=outcome.server,
                result=outcome.result,
                n_galaxies=outcome.n_galaxies,
                worker=outcome.worker,
                attempts=report.attempts,
                feedback=outcome.feedback,
            )
            for outcome, report in zip(executed.outcomes, executed.workers)
        ]

        candidates = CandidateCatalog.empty()
        clusters = CandidateCatalog.empty()
        members = MemberTable.empty()
        for run in runs:
            candidates = candidates.concat(run.result.candidates)
            clusters = clusters.concat(run.result.clusters)
            members = members.concat(run.result.members)

        return ClusterRunResult(
            layout=layout,
            runs=runs,
            candidates=candidates.dedup_by_objid().sort_by_objid(),
            clusters=clusters.dedup_by_objid().sort_by_objid(),
            members=members,
            wall_s=executed.wall_s if self.backend.measured else None,
            backend=self.backend.name,
            workers=executed.workers,
        )


def run_partitioned(
    catalog: GalaxyCatalog,
    target,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
    n_servers: int = 3,
    method: str = "vectorized",
    compute_members: bool = True,
    backend: str | ExecutionBackend = "sequential",
    *,
    progress: Callable[[str], None] | None = None,
    engine_config: EngineConfig | None = None,
    intra_query_workers: int | None = None,
) -> ClusterRunResult:
    """Convenience wrapper: build a cluster and run one target region.

    ``backend`` selects how partitions execute (see
    :mod:`repro.cluster.backends`): ``"sequential"`` models the paper's
    separate machines (elapsed = max over servers), ``"threads"`` and
    ``"processes"`` really run concurrently and record the measured
    ``wall_s``.  Per-task CPU stays honest in every mode: thread workers
    bill ``thread_time``, process workers their own ``process_time``.
    ``engine_config`` carries every per-partition engine knob.
    """
    cluster = SqlServerCluster(
        kcorr,
        config,
        n_servers,
        method=method,
        compute_members=compute_members,
        backend=backend,
        engine_config=engine_config,
        intra_query_workers=intra_query_workers,
    )
    return cluster.run(catalog, target, progress=progress)
