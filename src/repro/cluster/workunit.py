"""Per-partition work units: what crosses the process boundary.

A :class:`PartitionWorkUnit` is the complete, self-contained description
of one server's share of a cluster run — its catalog slice, the
algorithm configuration, the k-correction table and the partition
geometry.  Everything in it is plain dataclasses over numpy arrays, so
a unit pickles cleanly into a worker process; :func:`execute_workunit`
is a module-level function for the same reason (bound methods and
closures do not survive ``spawn``).

The worker ships back a :class:`WorkUnitOutcome`: the full
:class:`~repro.core.pipeline.MaxBCGResult` (catalogs + per-task
:class:`~repro.engine.stats.TaskStats`) plus provenance — which worker
ran it and which CPU clock billed its tasks — so the parent can report
honest per-worker accounting.

Fault injection (:class:`FaultSpec`) lives here too: the
fault-tolerance tests need a deterministic way to make the *n*-th
attempt of a specific server raise or die mid-run, across process
boundaries.  Attempts are counted in small files under a
caller-supplied directory because a plain module global would reset in
every freshly spawned worker.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.pipeline import MaxBCGPipeline, MaxBCGResult
from repro.engine.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.engine.database import Database
from repro.errors import ClusterExecutionError
from repro.obs.trace import TraceContext
from repro.skyserver.catalog import GalaxyCatalog
from repro.skyserver.regions import RegionBox


class InjectedWorkerFault(ClusterExecutionError):
    """The failure raised by a :class:`FaultSpec` in ``"raise"`` mode."""


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault injection for backend fault-tolerance tests.

    Attributes
    ----------
    servers:
        Partition numbers whose work units fail.
    mode:
        ``"raise"`` — raise :class:`InjectedWorkerFault`;
        ``"exit"`` — kill the worker with ``os._exit`` (simulates a
        crashed process; only ever triggers in a worker process, never
        in the parent, so the sequential fallback survives it).
    max_failures:
        Fail this many attempts per server, then behave normally.
    counter_dir:
        Directory holding one attempt-counter file per server.
    parent_pid:
        PID of the dispatching process, recorded at construction.
    worker_only:
        When True (default), the fault only fires in a process other
        than ``parent_pid`` — i.e. the in-parent sequential fallback is
        exempt.  ``"exit"`` mode ignores this flag and is *always*
        worker-only: a fault must never kill the caller's process.
    """

    servers: tuple[int, ...]
    mode: str = "raise"
    max_failures: int = 1
    counter_dir: str = "."
    parent_pid: int = field(default_factory=os.getpid)
    worker_only: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "exit"):
            raise ValueError(f"unknown fault mode '{self.mode}'")

    def _counter_path(self, server: int) -> Path:
        return Path(self.counter_dir) / f"server{server}.attempts"

    def failures_so_far(self, server: int) -> int:
        try:
            return int(self._counter_path(server).read_text() or 0)
        except (FileNotFoundError, ValueError):
            return 0

    def maybe_fail(self, server: int) -> None:
        """Fail this attempt if the spec says so (called by the worker)."""
        if server not in self.servers:
            return
        in_parent = os.getpid() == self.parent_pid
        if in_parent and (self.worker_only or self.mode == "exit"):
            return
        so_far = self.failures_so_far(server)
        if so_far >= self.max_failures:
            return
        self._counter_path(server).write_text(str(so_far + 1))
        if self.mode == "exit":
            os._exit(17)
        raise InjectedWorkerFault(
            f"injected fault on server {server} (attempt {so_far + 1})",
            server=server,
        )


@dataclass
class PartitionWorkUnit:
    """One server's job, ready to ship to any execution backend."""

    server: int
    catalog: GalaxyCatalog  # this partition's slice, skirt included
    target: RegionBox
    buffer: RegionBox
    kcorr: KCorrectionTable
    config: MaxBCGConfig
    method: str = "vectorized"
    compute_members: bool = True
    fault: FaultSpec | None = None
    #: Engine knobs for this partition's database — a frozen
    #: :class:`~repro.engine.config.EngineConfig`, so the whole knob set
    #: (morsel workers, optimizer mode, cache settings, ...) pickles
    #: across the process boundary as one object.
    engine_config: EngineConfig | None = None
    #: Trace context of the dispatching cluster run.  When set, the
    #: worker opens a ``cluster.partition`` span parented here, so the
    #: partition's engine-layer spans land in the caller's trace even
    #: across a process boundary (the context is a picklable triple).
    trace: TraceContext | None = None


@dataclass
class WorkUnitOutcome:
    """What a worker sends back: the science + provenance."""

    server: int
    result: MaxBCGResult
    n_galaxies: int
    worker: str  # "pid:<n>" or "pid:<n>/thread:<name>"
    cpu_clock: str  # which clock billed the per-task cpu_s
    #: Spans recorded in a *child process* (where the parent's tracer is
    #: unreachable), shipped home for the dispatcher to absorb.  Empty
    #: for in-process execution — those spans land in the shared tracer
    #: directly.
    spans: list = field(default_factory=list)
    #: Feedback-loop counters from this worker's database (plan-memo
    #: hits/misses, replans, learned overrides) when the unit's
    #: EngineConfig enables feedback; empty otherwise.  Memo state is
    #: per worker — only the observable summary crosses the boundary.
    feedback: dict = field(default_factory=dict)


def worker_label() -> str:
    """Identify the executing worker for per-worker reports."""
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid:{os.getpid()}"
    return f"pid:{os.getpid()}/thread:{thread.name}"


def execute_workunit(
    unit: PartitionWorkUnit, cpu_clock: str = "process"
) -> WorkUnitOutcome:
    """Run one partition's full pipeline and package the outcome.

    Module-level and argument-complete so every backend — in-process,
    thread pool, or child process — executes the identical code path.
    The caller picks the honest ``cpu_clock`` for its concurrency model
    (see :mod:`repro.engine.stats`).
    """
    from contextlib import ExitStack

    from repro.engine.stats import use_cpu_clock
    from repro.obs.trace import activate, get_tracer, set_enabled, span

    if unit.fault is not None:
        unit.fault.maybe_fail(unit.server)
    in_child = unit.trace is not None and os.getpid() != unit.trace.pid
    if unit.trace is not None:
        # A spawn-started child resets module globals: re-enable tracing
        # so the partition span below actually records.  Harmless when
        # already enabled (thread pool / fork).
        set_enabled(True)
    database = Database(
        f"server{unit.server}",
        config=unit.engine_config or DEFAULT_ENGINE_CONFIG,
    )
    pipeline = MaxBCGPipeline(
        unit.kcorr,
        unit.config,
        method=unit.method,
        database=database,
        compute_members=unit.compute_members,
    )
    with ExitStack() as stack:
        stack.enter_context(use_cpu_clock(cpu_clock))
        if unit.trace is not None:
            # Re-parent under the dispatcher's cluster.run span: pool
            # threads don't inherit the dispatcher's contextvars and
            # child processes have none, so activation is explicit.
            stack.enter_context(activate(unit.trace))
            stack.enter_context(span(
                "cluster.partition",
                layer="cluster",
                counters=database.pool.counters,
                attrs={"server": unit.server,
                       "galaxies": len(unit.catalog)},
            ))
        result = pipeline.run(unit.catalog, unit.target, unit.buffer)
    spans = get_tracer().drain() if in_child else []
    return WorkUnitOutcome(
        server=unit.server,
        result=result,
        n_galaxies=len(unit.catalog),
        worker=worker_label(),
        cpu_clock=cpu_clock,
        spans=spans,
        feedback=(
            database.feedback.summary()
            if database.feedback is not None else {}
        ),
    )
