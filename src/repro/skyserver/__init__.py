"""Synthetic SDSS: cosmology, photometry, regions, sky generation."""

from repro.skyserver.catalog import GALAXY_COLUMNS, GalaxyCatalog
from repro.skyserver.cosmology import Cosmology, DEFAULT_COSMOLOGY
from repro.skyserver.generator import (
    ClusterTruth,
    SkyConfig,
    SkySimulator,
    SyntheticSky,
    make_sky,
)
from repro.skyserver.photometry import sigma_gr, sigma_ri
from repro.skyserver.regions import (
    DEMO_IMPORT,
    DEMO_TARGET,
    PAPER_BUFFER,
    PAPER_IMPORT,
    PAPER_TARGET,
    RegionBox,
    buffer_overhead,
)

__all__ = [
    "ClusterTruth",
    "Cosmology",
    "DataArchiveServer",
    "DEFAULT_COSMOLOGY",
    "DEMO_IMPORT",
    "DEMO_TARGET",
    "GALAXY_COLUMNS",
    "GalaxyCatalog",
    "PAPER_BUFFER",
    "PAPER_IMPORT",
    "PAPER_TARGET",
    "RegionBox",
    "SkyConfig",
    "SkySimulator",
    "SyntheticSky",
    "buffer_overhead",
    "make_sky",
    "sigma_gr",
    "sigma_ri",
]


def __getattr__(name):
    # DataArchiveServer pulls in repro.tam (which imports repro.core);
    # resolve it lazily to keep the core <-> skyserver import DAG acyclic.
    if name == "DataArchiveServer":
        from repro.skyserver.das import DataArchiveServer

        return DataArchiveServer
    raise AttributeError(f"module 'repro.skyserver' has no attribute {name!r}")
