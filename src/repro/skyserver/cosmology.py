"""Flat ΛCDM cosmology: the distances behind the k-correction table.

The MaxBCG Kcorr table maps each redshift to (a) the apparent i-band
magnitude of a canonical BCG, which needs the luminosity distance, and
(b) the angular radius subtended by 1 Mpc, which needs the angular
diameter distance.  The paper took these from the SDSS pipeline; we
compute them from a standard flat ΛCDM model (H0 = 70, Ωm = 0.3 — the
concordance values of the SDSS era) so the synthetic catalog and the
algorithm share one internally consistent geometry.

Distances are evaluated on a dense redshift grid once per
:class:`Cosmology` instance and interpolated afterwards, so building a
1000-row Kcorr table is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.integrate import cumulative_trapezoid

from repro.errors import ConfigError

#: Speed of light in km/s.
C_KM_S = 299792.458

#: Degrees per radian.
_RAD2DEG = 180.0 / np.pi


@dataclass
class Cosmology:
    """Flat ΛCDM cosmology (Ωm + ΩΛ = 1, no radiation, no curvature).

    Parameters
    ----------
    h0:
        Hubble constant in km/s/Mpc.
    omega_m:
        Matter density parameter; dark energy is ``1 - omega_m``.
    z_max:
        Upper edge of the internal interpolation grid.  Queries beyond
        ``z_max`` raise :class:`~repro.errors.ConfigError`.
    grid_points:
        Resolution of the internal grid.
    """

    h0: float = 70.0
    omega_m: float = 0.3
    z_max: float = 2.0
    grid_points: int = 4096
    _z_grid: np.ndarray = field(init=False, repr=False)
    _dc_grid: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.h0 <= 0:
            raise ConfigError(f"h0 must be positive, got {self.h0}")
        if not (0.0 < self.omega_m <= 1.0):
            raise ConfigError(f"omega_m must be in (0, 1], got {self.omega_m}")
        if self.z_max <= 0:
            raise ConfigError(f"z_max must be positive, got {self.z_max}")
        if self.grid_points < 16:
            raise ConfigError("grid_points must be at least 16")
        z = np.linspace(0.0, self.z_max, self.grid_points)
        e_z = np.sqrt(self.omega_m * (1.0 + z) ** 3 + (1.0 - self.omega_m))
        hubble_distance = C_KM_S / self.h0  # Mpc
        integrand = 1.0 / e_z
        dc = cumulative_trapezoid(integrand, z, initial=0.0) * hubble_distance
        self._z_grid = z
        self._dc_grid = dc

    # ------------------------------------------------------------------
    def _check_z(self, z: np.ndarray) -> None:
        if z.size and (np.min(z) < 0.0 or np.max(z) > self.z_max):
            raise ConfigError(
                f"redshift out of range [0, {self.z_max}] for this cosmology"
            )

    def comoving_distance(self, z):
        """Line-of-sight comoving distance in Mpc (vectorized)."""
        z = np.asarray(z, dtype=np.float64)
        self._check_z(z)
        return np.interp(z, self._z_grid, self._dc_grid)

    def angular_diameter_distance(self, z):
        """Angular diameter distance in Mpc: D_A = D_C / (1 + z) (flat)."""
        z = np.asarray(z, dtype=np.float64)
        return self.comoving_distance(z) / (1.0 + z)

    def luminosity_distance(self, z):
        """Luminosity distance in Mpc: D_L = D_C * (1 + z) (flat)."""
        z = np.asarray(z, dtype=np.float64)
        return self.comoving_distance(z) * (1.0 + z)

    def distance_modulus(self, z):
        """``m - M = 5 log10(D_L / 10 pc)``; undefined at z = 0."""
        dl = self.luminosity_distance(z)
        dl = np.maximum(dl, 1e-12)
        return 5.0 * np.log10(dl * 1.0e5)  # 1 Mpc = 10^5 * 10 pc

    def arcdeg_per_mpc(self, z):
        """Angular size, in degrees, of a transverse ruler of 1 Mpc at z.

        This is the Kcorr ``radius`` column: the on-sky search radius that
        corresponds to a fixed 1 Mpc physical aperture around a BCG.
        Diverges as z -> 0; callers should not query below z ~ 0.01.
        """
        da = self.angular_diameter_distance(z)
        da = np.maximum(da, 1e-12)
        return (1.0 / da) * _RAD2DEG


#: Default cosmology used throughout the reproduction.
DEFAULT_COSMOLOGY = Cosmology()
