"""Galaxy catalogs: the 5-space MaxBCG consumes.

A :class:`GalaxyCatalog` is a column-oriented bundle of the exact columns
the paper's ``Galaxy`` table carries after ``spImportGalaxy``:
``objid, ra, dec, i, gr, ri, sigmagr, sigmari``.  It supports region
cuts (the SQL ``WHERE ra BETWEEN ... AND dec BETWEEN ...``),
concatenation, sorting, and round-tripping through both the relational
engine and the TAM flat-file store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CatalogError
from repro.skyserver.regions import RegionBox

#: Column names of the MaxBCG galaxy 5-space (+ identifiers and errors).
GALAXY_COLUMNS = ("objid", "ra", "dec", "i", "gr", "ri", "sigmagr", "sigmari")

_FLOAT_COLUMNS = GALAXY_COLUMNS[1:]


@dataclass
class GalaxyCatalog:
    """Column arrays for a set of galaxies; all arrays share one length."""

    objid: np.ndarray
    ra: np.ndarray
    dec: np.ndarray
    i: np.ndarray
    gr: np.ndarray
    ri: np.ndarray
    sigmagr: np.ndarray
    sigmari: np.ndarray

    def __post_init__(self) -> None:
        self.objid = np.asarray(self.objid, dtype=np.int64)
        for name in _FLOAT_COLUMNS:
            setattr(self, name, np.asarray(getattr(self, name), dtype=np.float64))
        n = self.objid.size
        for name in _FLOAT_COLUMNS:
            if getattr(self, name).size != n:
                raise CatalogError(f"column '{name}' length != objid length ({n})")
        if n and np.unique(self.objid).size != n:
            raise CatalogError("objid values must be unique")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.objid.size)

    @classmethod
    def empty(cls) -> "GalaxyCatalog":
        return cls(*[np.empty(0, dtype=np.int64)]
                   + [np.empty(0, dtype=np.float64) for _ in _FLOAT_COLUMNS])

    @classmethod
    def from_columns(cls, columns: dict[str, np.ndarray]) -> "GalaxyCatalog":
        """Build from a column dict; raises if any required column is absent."""
        missing = [c for c in GALAXY_COLUMNS if c not in columns]
        if missing:
            raise CatalogError(f"missing galaxy columns: {missing}")
        return cls(*[columns[c] for c in GALAXY_COLUMNS])

    def as_columns(self) -> dict[str, np.ndarray]:
        return {c: getattr(self, c) for c in GALAXY_COLUMNS}

    # ------------------------------------------------------------------
    def take(self, indices) -> "GalaxyCatalog":
        """Row subset by integer indices or boolean mask."""
        indices = np.asarray(indices)
        if indices.dtype == bool and indices.size != len(self):
            raise CatalogError("boolean mask length mismatch")
        return GalaxyCatalog(*[getattr(self, c)[indices] for c in GALAXY_COLUMNS])

    def select_region(self, region: RegionBox) -> "GalaxyCatalog":
        """Galaxies inside a box — the ``spImportGalaxy`` region cut."""
        return self.take(region.contains(self.ra, self.dec))

    def sort_by(self, *keys: str) -> "GalaxyCatalog":
        """Stable sort by one or more columns (last key is primary...);

        keys are applied in :func:`numpy.lexsort` order: the *last* key
        listed is the most significant, matching a SQL ORDER BY read
        right-to-left.
        """
        for key in keys:
            if key not in GALAXY_COLUMNS:
                raise CatalogError(f"unknown sort column '{key}'")
        order = np.lexsort([getattr(self, k) for k in keys])
        return self.take(order)

    def concat(self, other: "GalaxyCatalog") -> "GalaxyCatalog":
        """Concatenate two catalogs (objids must remain unique)."""
        return GalaxyCatalog(
            *[np.concatenate([getattr(self, c), getattr(other, c)])
              for c in GALAXY_COLUMNS]
        )

    @classmethod
    def concat_all(cls, parts: list["GalaxyCatalog"]) -> "GalaxyCatalog":
        """Concatenate many catalogs in one pass.

        O(total rows), unlike a fold over :meth:`concat` which copies
        the accumulated catalog once per part.
        """
        if not parts:
            return cls.empty()
        return cls(
            *[np.concatenate([getattr(p, c) for p in parts])
              for c in GALAXY_COLUMNS]
        )

    def row(self, index: int) -> dict[str, float]:
        """One galaxy as a plain dict."""
        if not (-len(self) <= index < len(self)):
            raise CatalogError(f"row index {index} out of range")
        return {c: getattr(self, c)[index].item() for c in GALAXY_COLUMNS}

    def index_of(self, objid: int) -> int:
        """Position of an objid; raises :class:`CatalogError` if absent."""
        hits = np.flatnonzero(self.objid == objid)
        if hits.size == 0:
            raise CatalogError(f"objid {objid} not in catalog")
        return int(hits[0])

    def bounding_box(self) -> RegionBox:
        """Smallest RegionBox containing every galaxy."""
        if not len(self):
            raise CatalogError("empty catalog has no bounding box")
        return RegionBox(
            float(self.ra.min()), float(self.ra.max()),
            float(self.dec.min()), float(self.dec.max()),
        )
