"""Synthetic SDSS sky: the data substrate of the reproduction.

The paper ran against the real SDSS DR1 catalog, which we cannot ship.
:class:`SkySimulator` generates a statistically similar stand-in with a
crucial extra property — *known ground truth*:

* a **field population**: spatially uniform galaxies with power-law
  magnitude counts and broad field colors; the paper's test region held
  ~1.5 M galaxies over 104 deg² ≈ 14,000 per deg² (:data:`PAPER_DENSITY`);
* an **injected cluster population**: ~18 clusters per deg² (the paper's
  "approximately 4.5 clusters per [0.25 deg²] target area"), each with a
  BCG drawn *from the k-correction ridge* at the cluster redshift plus
  population scatter, and richness-many member galaxies packed inside
  the 1 Mpc aperture with red-sequence colors.

Ground truth (:class:`ClusterTruth`) records every injected BCG so tests
can score completeness, and the densities are dialed down for unit tests
via :class:`SkyConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # imported lazily to avoid a core <-> skyserver cycle
    from repro.core.config import MaxBCGConfig
    from repro.core.kcorrection import KCorrectionTable
from repro.skyserver.catalog import GalaxyCatalog
from repro.skyserver.photometry import (
    FieldColorModel,
    MagnitudeDistribution,
    observed_colors,
    sigma_gr,
    sigma_ri,
)
from repro.skyserver.regions import RegionBox

#: SDSS-like field galaxy surface density, galaxies per deg^2
#: (1.5M galaxies / 104 deg^2, Section 2.6).
PAPER_DENSITY = 14_000.0

#: Cluster surface density: 4.5 clusters per 0.25 deg^2 target field.
PAPER_CLUSTER_DENSITY = 18.0

#: objid space: synthetic ids start here (SDSS objids are huge bigints).
OBJID_BASE = 587_722_981_741_000_000


@dataclass(frozen=True)
class SkyConfig:
    """Knobs of the synthetic sky.

    ``field_density`` and ``cluster_density`` are per deg²; tests use
    much smaller values than :data:`PAPER_DENSITY` so suites stay fast.
    ``richness_min/max`` bound the member count of injected clusters and
    ``member_concentration`` squeezes members toward the center (the
    radial CDF is ``r^concentration``... higher = tighter).
    """

    field_density: float = 900.0
    cluster_density: float = 18.0
    richness_min: int = 8
    richness_max: int = 40
    member_concentration: float = 2.0
    bcg_mag_scatter: float = 0.15
    member_color_scatter: float = 0.4  # intrinsic scatter / popSigma
    field_gr_mean: float = 0.70
    field_gr_sigma: float = 0.50
    field_ri_mean: float = 0.35
    field_ri_sigma: float = 0.28
    magnitude_slope: float = 0.45
    z_margin: float = 0.01
    seed: int = 20040801  # the technical report's date
    holes: tuple = ()  # RegionBoxes excluded from the footprint (masks)

    def __post_init__(self) -> None:
        if self.field_density < 0 or self.cluster_density < 0:
            raise ConfigError("densities must be non-negative")
        if not (0 < self.richness_min <= self.richness_max):
            raise ConfigError("need 0 < richness_min <= richness_max")
        if self.member_concentration <= 0:
            raise ConfigError("member_concentration must be positive")
        if self.member_color_scatter <= 0:
            raise ConfigError("member_color_scatter must be positive")

    def field_colors(self) -> FieldColorModel:
        return FieldColorModel(
            self.field_gr_mean,
            self.field_gr_sigma,
            self.field_ri_mean,
            self.field_ri_sigma,
        )


@dataclass(frozen=True)
class ClusterTruth:
    """Ground truth for one injected cluster."""

    bcg_objid: int
    ra: float
    dec: float
    z: float
    richness: int
    member_objids: tuple[int, ...] = field(default=(), repr=False)


@dataclass(frozen=True)
class SyntheticSky:
    """A generated catalog plus its ground truth."""

    catalog: GalaxyCatalog
    clusters: tuple[ClusterTruth, ...]
    region: RegionBox

    @property
    def n_galaxies(self) -> int:
        return len(self.catalog)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def truth_bcg_objids(self) -> set[int]:
        return {c.bcg_objid for c in self.clusters}


class SkySimulator:
    """Deterministic generator of :class:`SyntheticSky` instances.

    One simulator can stamp out many independent regions; the stream of
    object ids is monotone across calls so concatenated catalogs keep
    unique ids.

    When :attr:`SkyConfig.holes` is non-empty, the footprint has masked
    rectangles (bright stars, bad columns — real surveys are never
    rectangles): no field galaxy or cluster *center* lands in a hole,
    and cluster members that scatter into one are removed, exactly the
    partial-cluster situation a real catalog hands the algorithm.
    """

    def __init__(
        self,
        kcorr: KCorrectionTable,
        config: MaxBCGConfig,
        sky: SkyConfig | None = None,
    ):
        self.kcorr = kcorr
        self.config = config
        self.sky = sky or SkyConfig()
        self._rng = np.random.default_rng(self.sky.seed)
        self._next_objid = OBJID_BASE

    # ------------------------------------------------------------------
    def _claim_objids(self, n: int) -> np.ndarray:
        ids = np.arange(self._next_objid, self._next_objid + n, dtype=np.int64)
        self._next_objid += n
        return ids

    def _in_hole(self, ra, dec) -> np.ndarray:
        """Mask of positions falling inside any footprint hole."""
        ra = np.asarray(ra, dtype=np.float64)
        inside = np.zeros(ra.shape, dtype=bool)
        for hole in self.sky.holes:
            inside |= hole.contains(ra, dec)
        return inside

    def _uniform_positions(
        self, region: RegionBox, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Positions uniform *on the sphere* within the box, avoiding holes."""
        ra = self._rng.uniform(region.ra_min, region.ra_max, n)
        sin_lo = np.sin(np.deg2rad(region.dec_min))
        sin_hi = np.sin(np.deg2rad(region.dec_max))
        dec = np.rad2deg(np.arcsin(self._rng.uniform(sin_lo, sin_hi, n)))
        if self.sky.holes:
            for _ in range(64):  # rejection-sample the masked positions
                bad = self._in_hole(ra, dec)
                if not bad.any():
                    break
                k = int(bad.sum())
                ra[bad] = self._rng.uniform(region.ra_min, region.ra_max, k)
                dec[bad] = np.rad2deg(np.arcsin(
                    self._rng.uniform(sin_lo, sin_hi, k)
                ))
        return ra, dec

    # ------------------------------------------------------------------
    def _generate_field(self, region: RegionBox) -> GalaxyCatalog:
        n = int(self._rng.poisson(self.sky.field_density * region.area()))
        ra, dec = self._uniform_positions(region, n)
        mags = MagnitudeDistribution(slope=self.sky.magnitude_slope).sample(
            n, self._rng
        )
        true_gr, true_ri = self.sky.field_colors().sample(n, self._rng)
        gr, ri = observed_colors(true_gr, true_ri, mags, self._rng)
        return GalaxyCatalog(
            objid=self._claim_objids(n),
            ra=ra, dec=dec, i=mags, gr=gr, ri=ri,
            sigmagr=sigma_gr(mags), sigmari=sigma_ri(mags),
        )

    def _generate_cluster(
        self, ra0: float, dec0: float, z: float
    ) -> tuple[GalaxyCatalog, ClusterTruth]:
        rng = self._rng
        cfg, sky, kc = self.config, self.sky, self.kcorr
        zid = kc.nearest_zid(z)
        z_grid = float(kc.z[zid])
        richness = int(rng.integers(sky.richness_min, sky.richness_max + 1))

        # BCG: on the ridge at this redshift, scattered within the
        # population dispersions the chi^2 statistic assumes.
        bcg_i = float(kc.i[zid] + rng.normal(0.0, sky.bcg_mag_scatter))
        bcg_gr = float(kc.gr[zid] + rng.normal(0.0, cfg.gr_pop_sigma))
        bcg_ri = float(kc.ri[zid] + rng.normal(0.0, cfg.ri_pop_sigma))

        # Members: inside the 1 Mpc aperture, red-sequence colors, fainter
        # than the BCG down to ilim.  Radial profile r ~ U^(1/conc) packs
        # them toward the center like a real cluster.
        radius = float(kc.radius[zid])
        r = radius * rng.random(richness) ** (1.0 / sky.member_concentration)
        theta = rng.uniform(0.0, 2.0 * np.pi, richness)
        dec = dec0 + r * np.sin(theta)
        ra = ra0 + r * np.cos(theta) / np.cos(np.deg2rad(dec0))
        if sky.holes:
            keep = ~self._in_hole(ra, dec)
            ra, dec, r = ra[keep], dec[keep], r[keep]
            richness = int(keep.sum())
        ilim = float(kc.ilim[zid])
        member_i = rng.uniform(min(bcg_i + 0.1, ilim), ilim, richness)
        scatter = sky.member_color_scatter
        true_gr = kc.gr[zid] + rng.normal(0.0, scatter * cfg.gr_pop_sigma, richness)
        true_ri = kc.ri[zid] + rng.normal(0.0, scatter * cfg.ri_pop_sigma, richness)
        member_gr, member_ri = observed_colors(true_gr, true_ri, member_i, rng)

        all_ra = np.concatenate([[ra0], ra])
        all_dec = np.concatenate([[dec0], dec])
        all_i = np.concatenate([[bcg_i], member_i])
        all_gr = np.concatenate([[bcg_gr], member_gr])
        all_ri = np.concatenate([[bcg_ri], member_ri])
        objids = self._claim_objids(richness + 1)
        catalog = GalaxyCatalog(
            objid=objids,
            ra=all_ra, dec=all_dec, i=all_i, gr=all_gr, ri=all_ri,
            sigmagr=sigma_gr(all_i), sigmari=sigma_ri(all_i),
        )
        truth = ClusterTruth(
            bcg_objid=int(objids[0]),
            ra=ra0, dec=dec0, z=z_grid, richness=richness,
            member_objids=tuple(int(o) for o in objids[1:]),
        )
        return catalog, truth

    # ------------------------------------------------------------------
    def generate(self, region: RegionBox) -> SyntheticSky:
        """Generate a region: field + injected clusters + ground truth."""
        parts = [self._generate_field(region)]
        n_clusters = int(self._rng.poisson(self.sky.cluster_density * region.area()))
        ras, decs = self._uniform_positions(region, n_clusters)
        zs = self._rng.uniform(
            self.config.z_min + self.sky.z_margin,
            self.config.z_max - self.sky.z_margin,
            n_clusters,
        )
        truths = []
        for ra0, dec0, z in zip(ras, decs, zs):
            cluster_cat, truth = self._generate_cluster(
                float(ra0), float(dec0), float(z)
            )
            parts.append(cluster_cat)
            truths.append(truth)
        return SyntheticSky(
            catalog=GalaxyCatalog.concat_all(parts),
            clusters=tuple(truths),
            region=region,
        )


def make_sky(
    region: RegionBox,
    config: MaxBCGConfig,
    kcorr: KCorrectionTable,
    sky: SkyConfig | None = None,
) -> SyntheticSky:
    """One-shot convenience wrapper around :class:`SkySimulator`."""
    return SkySimulator(kcorr, config, sky).generate(region)
