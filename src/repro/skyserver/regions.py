"""Rectangular sky regions and the target/buffer algebra of the paper.

MaxBCG operates on axis-aligned (ra, dec) boxes: a *target* area T whose
galaxies are classified, inside a *buffer* area B = T expanded by the
search radius (0.5 deg in the SQL implementation, 0.25 deg on TAM), inside
an *import* area P that guarantees every object in B has its full
neighborhood available (Figures 1, 4, 5).  :class:`RegionBox` implements
that algebra plus the area bookkeeping behind Figure 3's buffer-overhead
curve.

Areas are computed on the sphere (the exact integral of a ra/dec box),
so the 66 deg² / 104 deg² numbers of the paper come out right near the
equator and stay correct at higher declinations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import RegionError
from repro.spatial.geometry import DEG2RAD, RAD2DEG


@dataclass(frozen=True)
class RegionBox:
    """An axis-aligned region of sky: ``ra in [ra_min, ra_max]``, likewise dec.

    The paper's regions never straddle the ra = 0/360 seam (its test areas
    are ra 172–185), so ``ra_min <= ra_max`` is required; crossing the seam
    raises :class:`RegionError` rather than silently mis-selecting.
    """

    ra_min: float
    ra_max: float
    dec_min: float
    dec_max: float

    def __post_init__(self) -> None:
        if not (self.ra_min <= self.ra_max):
            raise RegionError(
                f"ra_min ({self.ra_min}) must not exceed ra_max ({self.ra_max}); "
                "seam-crossing regions are not supported"
            )
        if not (self.dec_min <= self.dec_max):
            raise RegionError(
                f"dec_min ({self.dec_min}) must not exceed dec_max ({self.dec_max})"
            )
        if self.dec_min < -90.0 or self.dec_max > 90.0:
            raise RegionError("declination bounds must lie in [-90, 90]")

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """RA extent in degrees (coordinate width, not arc length)."""
        return self.ra_max - self.ra_min

    @property
    def height(self) -> float:
        """Dec extent in degrees."""
        return self.dec_max - self.dec_min

    @property
    def center(self) -> tuple[float, float]:
        return (
            (self.ra_min + self.ra_max) / 2.0,
            (self.dec_min + self.dec_max) / 2.0,
        )

    def area(self) -> float:
        """Exact spherical area of the box in square degrees.

        ``A = (ra_max - ra_min) * (sin dec_max - sin dec_min)`` in radians,
        converted to deg².  Near the equator this is ~ width × height,
        matching the paper's flat-sky arithmetic (11×6 = 66 deg²).
        """
        dra = self.width * DEG2RAD
        dsin = math.sin(self.dec_max * DEG2RAD) - math.sin(self.dec_min * DEG2RAD)
        return dra * dsin * RAD2DEG * RAD2DEG

    def flat_area(self) -> float:
        """width × height in deg² — the paper's flat-sky approximation."""
        return self.width * self.height

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def expand(self, margin_deg: float) -> "RegionBox":
        """Grow the box by ``margin_deg`` on every side (buffer construction).

        Dec is clipped to the poles; RA is *not* wrapped (see class note).
        """
        if margin_deg < 0:
            raise RegionError(f"margin must be non-negative, got {margin_deg}")
        return RegionBox(
            self.ra_min - margin_deg,
            self.ra_max + margin_deg,
            max(-90.0, self.dec_min - margin_deg),
            min(90.0, self.dec_max + margin_deg),
        )

    def shrink(self, margin_deg: float) -> "RegionBox":
        """Inverse of :meth:`expand`; raises if the box would invert."""
        if margin_deg < 0:
            raise RegionError(f"margin must be non-negative, got {margin_deg}")
        return RegionBox(
            self.ra_min + margin_deg,
            self.ra_max - margin_deg,
            self.dec_min + margin_deg,
            self.dec_max - margin_deg,
        )

    def contains(self, ra, dec):
        """Vectorized point-in-box test (inclusive bounds, like SQL BETWEEN)."""
        ra = np.asarray(ra, dtype=np.float64)
        dec = np.asarray(dec, dtype=np.float64)
        return (
            (ra >= self.ra_min)
            & (ra <= self.ra_max)
            & (dec >= self.dec_min)
            & (dec <= self.dec_max)
        )

    def contains_box(self, other: "RegionBox") -> bool:
        return (
            self.ra_min <= other.ra_min
            and self.ra_max >= other.ra_max
            and self.dec_min <= other.dec_min
            and self.dec_max >= other.dec_max
        )

    def intersect(self, other: "RegionBox") -> "RegionBox | None":
        """Intersection box, or None when the boxes are disjoint."""
        ra_min = max(self.ra_min, other.ra_min)
        ra_max = min(self.ra_max, other.ra_max)
        dec_min = max(self.dec_min, other.dec_min)
        dec_max = min(self.dec_max, other.dec_max)
        if ra_min > ra_max or dec_min > dec_max:
            return None
        return RegionBox(ra_min, ra_max, dec_min, dec_max)

    def overlaps(self, other: "RegionBox") -> bool:
        return self.intersect(other) is not None

    # ------------------------------------------------------------------
    # tiling (the TAM divide-and-conquer strategy, Section 2.2)
    # ------------------------------------------------------------------
    def tiles(self, tile_deg: float) -> Iterator["RegionBox"]:
        """Yield ``tile_deg``-square tiles covering the box, row-major.

        Edge tiles are clipped to the box, so the union of tiles is exactly
        this region and tiles never overlap.
        """
        if tile_deg <= 0:
            raise RegionError(f"tile size must be positive, got {tile_deg}")
        n_ra = max(1, math.ceil(self.width / tile_deg - 1e-12))
        n_dec = max(1, math.ceil(self.height / tile_deg - 1e-12))
        for j in range(n_dec):
            dec_lo = self.dec_min + j * tile_deg
            dec_hi = min(self.dec_max, dec_lo + tile_deg)
            for i in range(n_ra):
                ra_lo = self.ra_min + i * tile_deg
                ra_hi = min(self.ra_max, ra_lo + tile_deg)
                yield RegionBox(ra_lo, ra_hi, dec_lo, dec_hi)

    def split_dec(self, n: int) -> list["RegionBox"]:
        """Split into ``n`` equal-height dec stripes (Figure 6 partitioning)."""
        if n <= 0:
            raise RegionError(f"stripe count must be positive, got {n}")
        edges = np.linspace(self.dec_min, self.dec_max, n + 1)
        return [
            RegionBox(self.ra_min, self.ra_max, float(lo), float(hi))
            for lo, hi in zip(edges[:-1], edges[1:])
        ]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegionBox(ra [{self.ra_min}, {self.ra_max}], "
            f"dec [{self.dec_min}, {self.dec_max}])"
        )


def buffer_overhead(target: RegionBox, buffer_deg: float) -> float:
    """Relative buffer overhead: (area(B) - area(T)) / area(T).

    This is the quantity Figure 3 argues shrinks as the target grows —
    the motivation for processing "much larger pieces of the sky all at
    once" in the SQL implementation.
    """
    t_area = target.flat_area()
    if t_area <= 0:
        raise RegionError("target region has zero area")
    b_area = target.expand(buffer_deg).flat_area()
    return (b_area - t_area) / t_area


#: The paper's SQL test case: 11 x 6 = 66 deg^2 target (Figure 5's select:
#: ra between 173 and 184, dec between -2 and 4) ...
PAPER_TARGET = RegionBox(173.0, 184.0, -2.0, 4.0)
#: ... candidates are built over B = T + 0.5 deg (spMakeCandidates
#: 172.5-184.5, -2.5..4.5) ...
PAPER_BUFFER = PAPER_TARGET.expand(0.5)
#: ... and galaxies are imported over P = B + 0.5 deg = 13 x 8 = 104 deg^2
#: (spImportGalaxy 172-185, -3..5), so every search stays inside P.
PAPER_IMPORT = PAPER_BUFFER.expand(0.5)
#: The MySkyServerDr1 demo region from the appendix (~2.5 x 2.5 deg^2).
DEMO_TARGET = RegionBox(194.0, 196.0, 1.5, 3.5)
DEMO_IMPORT = RegionBox(190.0, 200.0, 0.0, 5.0)
