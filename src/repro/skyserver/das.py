"""The Data Archive Server: where the baseline's files come from.

"The TAM and Chimera implementations use hundreds of thousands of files
fetched from the SDSS Data Archive Server (DAS) to the computing
nodes."  :class:`DataArchiveServer` models that service: a flat-file
archive (backed by a real on-disk :class:`~repro.tam.files.FileStore`)
fronted by a network transfer model, so every fetch is priced in both
bytes and simulated seconds.

The inventory report quantifies the paper's criticism directly: staging
a survey region as per-field files costs a file *count* proportional to
area, and the per-file protocol overhead comes to dominate the transfer
budget — the "move the code, not the data" argument in numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import MaxBCGConfig
from repro.errors import GridError
from repro.skyserver.catalog import GalaxyCatalog
from repro.skyserver.regions import RegionBox
from repro.tam.fields import Field, tile_fields
from repro.tam.files import FileStore
from repro.grid.transfer import TransferModel


@dataclass
class FetchLog:
    """Aggregate fetch statistics of one archive server."""

    requests: int = 0
    bytes_served: int = 0
    simulated_seconds: float = 0.0

    @property
    def overhead_fraction(self) -> float:
        """Share of simulated time that is per-file overhead, not bytes."""
        if self.simulated_seconds <= 0:
            return 0.0
        return 1.0 - min(1.0, self._bandwidth_seconds / self.simulated_seconds)

    _bandwidth_seconds: float = 0.0


class DataArchiveServer:
    """A flat-file archive with priced fetches."""

    def __init__(
        self,
        root: str | Path,
        transfer: TransferModel | None = None,
    ):
        self.store = FileStore(root)
        self.transfer = transfer or TransferModel()
        self.log = FetchLog()
        self._fields: list[Field] = []

    # ------------------------------------------------------------------
    def publish_region(
        self,
        catalog: GalaxyCatalog,
        target: RegionBox,
        config: MaxBCGConfig,
        field_size: float = 0.5,
    ) -> list[Field]:
        """Cut a survey region into per-field Target/Buffer files.

        This is the archive-side staging the DAS performs once; clients
        then fetch fields at will.
        """
        self._fields = tile_fields(target, field_size,
                                   buffer_margin=config.buffer_deg)
        for one_field in self._fields:
            self.store.write_catalog(
                one_field, "target", catalog.select_region(one_field.target)
            )
            self.store.write_catalog(
                one_field, "buffer", catalog.select_region(one_field.buffer)
            )
        return self._fields

    @property
    def fields(self) -> list[Field]:
        return self._fields

    def file_inventory(self) -> int:
        """Files the archive holds (2 per field)."""
        return self.store.file_count()

    # ------------------------------------------------------------------
    def fetch(self, one_field: Field, kind: str) -> tuple[GalaxyCatalog, float]:
        """Serve one file; returns the catalog and the simulated seconds."""
        bytes_before = self.store.stats.bytes_read
        catalog = self.store.read_catalog(one_field, kind)
        served = self.store.stats.bytes_read - bytes_before
        seconds = self.transfer.seconds(served, n_files=1)
        self.log.requests += 1
        self.log.bytes_served += served
        self.log.simulated_seconds += seconds
        self.log._bandwidth_seconds += served / self.transfer.bandwidth_bytes_per_s
        return catalog, seconds

    def fetch_field_inputs(
        self, one_field: Field
    ) -> tuple[GalaxyCatalog, GalaxyCatalog, float]:
        """The per-job DAS traffic: one Target + one Buffer file."""
        target, t_seconds = self.fetch(one_field, "target")
        buffer, b_seconds = self.fetch(one_field, "buffer")
        return target, buffer, t_seconds + b_seconds

    # ------------------------------------------------------------------
    def staging_report(self) -> dict[str, float]:
        """Archive-side summary for the move-the-code argument."""
        if not self._fields:
            raise GridError("publish_region() first")
        return {
            "fields": float(len(self._fields)),
            "files": float(self.file_inventory()),
            "requests_served": float(self.log.requests),
            "bytes_served": float(self.log.bytes_served),
            "simulated_seconds": self.log.simulated_seconds,
            "overhead_fraction": self.log.overhead_fraction,
        }
