"""SDSS-style photometric model: magnitudes, colors, and their errors.

The paper's ``spImportGalaxy`` derives per-object color errors from the
dereddened i magnitude with two empirical formulas::

    sigmagr = 2.089 * 10^(0.228 * i - 6.0)
    sigmari = 4.266 * 10^(0.206 * i - 6.0)

Those exact formulas are reproduced here (:func:`sigma_gr`,
:func:`sigma_ri`) and used both when *generating* the synthetic catalog
(to scatter observed colors) and when *importing* it into the engine
(to populate the ``sigmagr``/``sigmari`` columns MaxBCG's chi² needs).

The field-galaxy magnitude distribution follows the classic Euclidean
number-count slope ``N(<m) ∝ 10^(0.6 (m - m*))`` truncated at the survey
limit, which is what makes faint galaxies dominate — the reason MaxBCG's
early chi² filter pays off so dramatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: SDSS i-band completeness limit used as the default faint cutoff.
SDSS_I_LIMIT = 21.0

#: Bright cutoff for the synthetic field population.
SDSS_I_BRIGHT = 14.0


def sigma_gr(i_mag):
    """Standard error of the g-r color as a function of i magnitude.

    Exactly the paper's ``CAST(2.089 * POWER(10.000, 0.228*i - 6.0) AS float)``.
    """
    i_mag = np.asarray(i_mag, dtype=np.float64)
    return 2.089 * np.power(10.0, 0.228 * i_mag - 6.0)


def sigma_ri(i_mag):
    """Standard error of the r-i color as a function of i magnitude.

    Exactly the paper's ``CAST(4.266 * POWER(10.0000, 0.206*i - 6.0) AS float)``.
    """
    i_mag = np.asarray(i_mag, dtype=np.float64)
    return 4.266 * np.power(10.0, 0.206 * i_mag - 6.0)


@dataclass(frozen=True)
class MagnitudeDistribution:
    """Power-law differential number counts for field galaxies.

    ``dN/dm ∝ 10^(slope * m)`` on [bright, faint].  ``slope = 0.6`` is the
    Euclidean value; SDSS counts flatten slightly but the qualitative
    faint-dominated shape is all MaxBCG's workload depends on.
    """

    bright: float = SDSS_I_BRIGHT
    faint: float = SDSS_I_LIMIT
    slope: float = 0.45

    def __post_init__(self) -> None:
        if self.bright >= self.faint:
            raise ConfigError(
                f"bright limit ({self.bright}) must be brighter (smaller) "
                f"than faint limit ({self.faint})"
            )
        if self.slope <= 0:
            raise ConfigError(f"count slope must be positive, got {self.slope}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` magnitudes by inverse-CDF sampling."""
        if n < 0:
            raise ConfigError(f"sample size must be non-negative, got {n}")
        u = rng.random(n)
        a = 10.0 ** (self.slope * self.bright)
        b = 10.0 ** (self.slope * self.faint)
        return np.log10(a + u * (b - a)) / self.slope


@dataclass(frozen=True)
class FieldColorModel:
    """Broad color distribution of non-cluster (field) galaxies.

    Field galaxies span blue spirals to red ellipticals; a wide bivariate
    Gaussian in (g-r, r-i) is enough to provide realistic contamination
    for the chi² filter: a small fraction of field galaxies lands on the
    BCG ridge line by chance (the paper's ~3% candidate rate).
    """

    gr_mean: float = 0.9
    gr_sigma: float = 0.45
    ri_mean: float = 0.45
    ri_sigma: float = 0.25

    def sample(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        gr = rng.normal(self.gr_mean, self.gr_sigma, n)
        ri = rng.normal(self.ri_mean, self.ri_sigma, n)
        return gr, ri


def observed_colors(
    true_gr: np.ndarray,
    true_ri: np.ndarray,
    i_mag: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter true colors by the magnitude-dependent measurement errors.

    The same :func:`sigma_gr`/:func:`sigma_ri` model is later quoted to
    the algorithm, so the chi² statistic is correctly normalized — this
    is what makes the <7 threshold meaningful on synthetic data.
    """
    gr = true_gr + rng.normal(0.0, 1.0, true_gr.shape) * sigma_gr(i_mag)
    ri = true_ri + rng.normal(0.0, 1.0, true_ri.shape) * sigma_ri(i_mag)
    return gr, ri
