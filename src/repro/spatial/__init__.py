"""Spatial indexing: zones (the winner), HTM, and brute force."""

from repro.spatial.conesearch import STRATEGIES, BruteForceIndex, build_index
from repro.spatial.geometry import (
    chord_distance_deg,
    great_circle_distance_deg,
    unit_vectors,
)
from repro.spatial.htm import HTMIndex, cone_cover, htm_id
from repro.spatial.zonejoin import NeighborPairs, neighbor_counts, zone_join
from repro.spatial.zones import ZoneIndex, zone_id

__all__ = [
    "BruteForceIndex",
    "HTMIndex",
    "NeighborPairs",
    "STRATEGIES",
    "ZoneIndex",
    "build_index",
    "chord_distance_deg",
    "cone_cover",
    "great_circle_distance_deg",
    "htm_id",
    "neighbor_counts",
    "unit_vectors",
    "zone_id",
    "zone_join",
]
