"""Zone indexing: the paper's winning spatial-search strategy.

The celestial sphere is sliced into declination stripes ("zones") of
fixed height — 30 arcsec in the SDSS Zone table::

    ZoneID = floor((dec + 90) / zoneHeight)

Objects sorted by ``(ZoneID, ra)`` form a clustered index: a cone search
touches only the zones overlapping the cone's declination range, and
within each zone only a contiguous RA interval.  This module provides

* :func:`zone_id` — the zone formula;
* :class:`ZoneIndex` — the sorted structure (the ``spZone`` task of
  Table 1 is precisely the construction of this index);
* :meth:`ZoneIndex.query` — a port of the paper's ``fGetNearbyObjEqZd``
  table-valued function: the same zone loop and per-zone RA-narrowing
  ``@x``, with one deliberate fix — the RA window uses the exact
  spherical-cap half-width instead of the paper's linear
  ``r / cos(dec)`` approximation, which undershoots at high declination
  (see :func:`repro.spatial.geometry.cap_ra_halfwidth`).

The batched, fully vectorized variant used by the set-oriented pipeline
lives in :mod:`repro.spatial.zonejoin`.

Fidelity notes
--------------
* Distances are the paper's chord-degrees measure
  (:func:`repro.spatial.geometry.chord_distance_deg`).
* The paper's SQL contains the predicate ``dec BETWEEN dec - @r AND
  dec + @r`` — a tautology (it compares the column with itself; clearly a
  typo for ``@dec``).  We implement the evident intent: the zone loop
  already restricts dec to within ``@r`` of the query up to one zone
  height, and the final squared-chord test is exact either way.
* RA wraparound at 0/360 is not handled, exactly like the original
  (``ra BETWEEN @ra - @x AND @ra + @x``); the survey regions of the paper
  never straddle the seam, and :class:`~repro.skyserver.regions.RegionBox`
  enforces the same restriction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DEFAULT_ZONE_HEIGHT_DEG
from repro.errors import SpatialError
from repro.spatial.geometry import (
    cap_ra_halfwidth,
    cap_ra_halfwidth_at_dec,
    chord_sq,
    chord_sq_to_deg,
    radius_to_chord_sq,
    unit_vectors,
    validate_dec,
)


def zone_id(dec_deg, zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG):
    """``floor((dec + 90) / h)`` — the paper's zone assignment (vectorized)."""
    if zone_height_deg <= 0:
        raise SpatialError(f"zone height must be positive, got {zone_height_deg}")
    dec = np.asarray(dec_deg, dtype=np.float64)
    validate_dec(dec)
    return np.floor((dec + 90.0) / zone_height_deg).astype(np.int64)


@dataclass(frozen=True)
class ZoneStats:
    """Bookkeeping produced while building a :class:`ZoneIndex`."""

    n_objects: int
    n_zones: int
    zone_height_deg: float
    max_zone_population: int


class ZoneIndex:
    """Objects sorted by ``(ZoneID, ra)`` with per-zone RA search.

    Parameters
    ----------
    ra, dec:
        Object positions in degrees.
    zone_height_deg:
        Zone stripe height (default 30 arcsec).

    Notes
    -----
    Query results are *indices into the original input arrays* plus
    chord-degree distances, so callers can join back to any payload
    columns they carry.
    """

    def __init__(self, ra, dec, zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG):
        ra = np.asarray(ra, dtype=np.float64)
        dec = np.asarray(dec, dtype=np.float64)
        if ra.shape != dec.shape or ra.ndim != 1:
            raise SpatialError("ra and dec must be 1-D arrays of equal length")
        validate_dec(dec)
        if zone_height_deg <= 0:
            raise SpatialError("zone height must be positive")

        self.zone_height_deg = float(zone_height_deg)
        zones = zone_id(dec, zone_height_deg) if ra.size else np.empty(0, np.int64)
        order = np.lexsort((ra, zones))
        #: positions of the sorted rows in the caller's original arrays
        self.source_index = order
        self.ra = ra[order]
        self.dec = dec[order]
        self.zone = zones[order]
        self.cx, self.cy, self.cz = unit_vectors(self.ra, self.dec)
        # RA is in [0, 360) and zone height >= ~arcsec scales, so
        # zone * 512 + ra is monotone over the sorted order: a single
        # sorted key array supports vectorized range lookups per zone.
        self._key = self.zone.astype(np.float64) * 512.0 + self.ra

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.ra.size)

    def stats(self) -> ZoneStats:
        if len(self) == 0:
            return ZoneStats(0, 0, self.zone_height_deg, 0)
        _, counts = np.unique(self.zone, return_counts=True)
        return ZoneStats(
            n_objects=len(self),
            n_zones=int(counts.size),
            zone_height_deg=self.zone_height_deg,
            max_zone_population=int(counts.max()),
        )

    def zone_slice(self, zid: int) -> slice:
        """Contiguous range of the sorted arrays holding zone ``zid``."""
        lo = float(zid) * 512.0
        hi = float(zid + 1) * 512.0
        start, stop = np.searchsorted(self._key, [lo, hi])
        return slice(int(start), int(stop))

    def ra_range_in_zone(self, zid: int, ra_lo: float, ra_hi: float) -> slice:
        """Rows of zone ``zid`` with ``ra in [ra_lo, ra_hi]`` (clustered scan)."""
        # Clamp the window so the composite key stays within this zone's
        # key band (zones are 512 wide, RA occupies [0, 360)); a wider
        # window than that means "the whole zone" anyway.
        ra_lo = max(ra_lo, -76.0)
        ra_hi = min(ra_hi, 436.0)
        base = float(zid) * 512.0
        start, stop = np.searchsorted(
            self._key, [base + ra_lo, base + ra_hi], side="left"
        )
        # side='left' on the upper bound excludes ra == ra_hi; nudge to
        # inclusive semantics (SQL BETWEEN) with a right-side search.
        stop = np.searchsorted(self._key, base + ra_hi, side="right")
        return slice(int(start), int(stop))

    # ------------------------------------------------------------------
    def query(
        self, ra: float, dec: float, radius_deg: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Faithful ``fGetNearbyObjEqZd``: neighbors within a cone.

        Returns ``(source_indices, distances_deg)`` — indices into the
        arrays the index was built from, and chord-degree distances.
        Includes the query object itself if it is in the index (the SQL
        callers exclude it with ``n.objid != @objid``).
        """
        if radius_deg < 0:
            raise SpatialError(f"radius must be non-negative, got {radius_deg}")
        h = self.zone_height_deg
        r2 = radius_to_chord_sq(radius_deg)
        qx, qy, qz = unit_vectors(ra, dec)

        max_zone = int(np.floor((min(dec + radius_deg, 90.0) + 90.0) / h))
        min_zone = int(np.floor((max(dec - radius_deg, -90.0) + 90.0) / h))

        hit_chunks: list[np.ndarray] = []
        dist_chunks: list[np.ndarray] = []
        for zid in range(min_zone, max_zone + 1):
            # Per-zone RA narrowing, as in the paper's @x computation —
            # but with the exact cap geometry rather than the paper's
            # linear approximation (see geometry.cap_ra_halfwidth).
            x = cap_ra_halfwidth_at_dec(
                radius_deg, dec, zid * h - 90.0, (zid + 1) * h - 90.0
            )
            sl = self.ra_range_in_zone(zid, ra - x, ra + x)
            if sl.start == sl.stop:
                continue
            c2 = chord_sq(
                self.cx[sl], self.cy[sl], self.cz[sl], qx, qy, qz
            )
            inside = c2 < r2
            if not np.any(inside):
                continue
            rows = np.arange(sl.start, sl.stop)[inside]
            hit_chunks.append(self.source_index[rows])
            dist_chunks.append(chord_sq_to_deg(c2[inside]))

        if not hit_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64)
        return np.concatenate(hit_chunks), np.concatenate(dist_chunks)

    def scan_ranges(
        self, ra: float, dec: float, radius_deg: float
    ) -> list[tuple[int, int]]:
        """Sorted-row ranges a cone query scans (one per touched zone).

        Used for I/O accounting: when an engine table shares this
        index's physical order, these are exactly the clustered-index
        ranges a DBMS would read for the query.
        """
        if radius_deg < 0:
            raise SpatialError(f"radius must be non-negative, got {radius_deg}")
        h = self.zone_height_deg
        max_zone = int(np.floor((min(dec + radius_deg, 90.0) + 90.0) / h))
        min_zone = int(np.floor((max(dec - radius_deg, -90.0) + 90.0) / h))
        ranges: list[tuple[int, int]] = []
        for zid in range(min_zone, max_zone + 1):
            # per-zone narrowing, as in query(): fine stripes hug the
            # circle instead of scanning its bounding box
            x = cap_ra_halfwidth_at_dec(
                radius_deg, dec, zid * h - 90.0, (zid + 1) * h - 90.0
            )
            sl = self.ra_range_in_zone(zid, ra - x, ra + x)
            if sl.stop > sl.start:
                ranges.append((sl.start, sl.stop))
        return ranges

    def count(self, ra: float, dec: float, radius_deg: float) -> int:
        """Number of indexed objects within the cone."""
        hits, _ = self.query(ra, dec, radius_deg)
        return int(hits.size)
