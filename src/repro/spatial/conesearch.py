"""Unified cone-search API over the three search strategies.

The paper compares spatial access methods for the MaxBCG neighbor
counts; this module gives them one interface so the pipeline, the tests
and the ablation benchmark (`bench_ablation_spatial`) can swap
strategies with a string:

* ``"zone"``  — :class:`~repro.spatial.zones.ZoneIndex` (the winner);
* ``"htm"``   — :class:`~repro.spatial.htm.HTMIndex` (the C-library
  approach the paper moved away from);
* ``"brute"`` — full-scan distance computation (ground truth for tests,
  and the cost model of the TAM per-field kernel).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DEFAULT_ZONE_HEIGHT_DEG
from repro.errors import SpatialError
from repro.spatial.geometry import (
    chord_sq,
    chord_sq_to_deg,
    radius_to_chord_sq,
    unit_vectors,
)
from repro.spatial.htm import HTMIndex
from repro.spatial.zones import ZoneIndex

#: Recognized strategy names.
STRATEGIES = ("zone", "htm", "brute")


class BruteForceIndex:
    """No index at all: every query scans every object.

    This is the cost model of the TAM implementation's in-RAM searches
    ("each one searches the Buffer file") and the correctness oracle for
    the indexed strategies.
    """

    def __init__(self, ra, dec):
        self.ra = np.asarray(ra, dtype=np.float64)
        self.dec = np.asarray(dec, dtype=np.float64)
        if self.ra.shape != self.dec.shape or self.ra.ndim != 1:
            raise SpatialError("ra and dec must be 1-D arrays of equal length")
        self.cx, self.cy, self.cz = unit_vectors(self.ra, self.dec)

    def __len__(self) -> int:
        return int(self.ra.size)

    def query(
        self, ra: float, dec: float, radius_deg: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """All objects with chord distance strictly below the radius."""
        if radius_deg < 0:
            raise SpatialError("radius must be non-negative")
        qx, qy, qz = unit_vectors(ra, dec)
        c2 = chord_sq(self.cx, self.cy, self.cz, qx, qy, qz)
        inside = c2 < radius_to_chord_sq(radius_deg)
        hits = np.flatnonzero(inside)
        return hits, chord_sq_to_deg(c2[hits])


def build_index(
    ra,
    dec,
    strategy: str = "zone",
    zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG,
    htm_level: int = 10,
):
    """Build a cone-search index with the requested strategy.

    All returned objects expose ``query(ra, dec, radius_deg) ->
    (source_indices, distances_deg)`` and ``len()``.
    """
    if strategy == "zone":
        return ZoneIndex(ra, dec, zone_height_deg)
    if strategy == "htm":
        return HTMIndex(ra, dec, htm_level)
    if strategy == "brute":
        return BruteForceIndex(ra, dec)
    raise SpatialError(
        f"unknown strategy '{strategy}'; expected one of {STRATEGIES}"
    )
