"""Spherical geometry primitives shared by all spatial indexes.

The paper's SQL (``fGetNearbyObjEqZd``) measures distances with the chord
length between unit vectors on the celestial sphere, expressed in degrees
by dividing the chord by ``pi/180``.  For the small radii MaxBCG uses
(<= 1.5 deg) the chord in "degrees" is indistinguishable from the arc
length, and — crucially — it is exactly the quantity the paper's SQL
compares against ``radius`` columns.  We reproduce that convention here:
:func:`chord_distance_deg` is the library-wide distance measure, and
:func:`radius_to_chord_sq` converts an angular radius in degrees to the
squared-chord threshold ``4 * sin(r/2)^2`` used in the zone join.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpatialError

DEG2RAD = np.pi / 180.0
RAD2DEG = 180.0 / np.pi

#: Arc-seconds per degree; the paper's zone height is 30 arcsec.
ARCSEC_PER_DEG = 3600.0


def unit_vectors(ra_deg, dec_deg):
    """Convert equatorial coordinates (degrees) to unit vectors.

    Parameters
    ----------
    ra_deg, dec_deg:
        Scalars or arrays of right ascension and declination in degrees.

    Returns
    -------
    tuple of ndarray
        ``(cx, cy, cz)`` components, matching the CAS ``Zone`` table's
        ``cx, cy, cz`` columns.
    """
    ra = np.asarray(ra_deg, dtype=np.float64) * DEG2RAD
    dec = np.asarray(dec_deg, dtype=np.float64) * DEG2RAD
    cos_dec = np.cos(dec)
    return cos_dec * np.cos(ra), cos_dec * np.sin(ra), np.sin(dec)


def chord_distance_deg(ra1, dec1, ra2, dec2):
    """Chord distance between two sky positions, in "degrees".

    This is ``|v1 - v2| / (pi/180)`` — the exact measure used in the
    paper's ``fGetNearbyObjEqZd``.  Vectorized over any broadcastable
    combination of inputs.
    """
    x1, y1, z1 = unit_vectors(ra1, dec1)
    x2, y2, z2 = unit_vectors(ra2, dec2)
    chord = np.sqrt((x1 - x2) ** 2 + (y1 - y2) ** 2 + (z1 - z2) ** 2)
    return chord * RAD2DEG


def great_circle_distance_deg(ra1, dec1, ra2, dec2):
    """Great-circle (arc) distance in degrees, via the haversine formula.

    Used by tests to confirm the chord convention agrees with the true
    arc distance to high accuracy at MaxBCG radii.
    """
    ra1 = np.asarray(ra1, dtype=np.float64) * DEG2RAD
    dec1 = np.asarray(dec1, dtype=np.float64) * DEG2RAD
    ra2 = np.asarray(ra2, dtype=np.float64) * DEG2RAD
    dec2 = np.asarray(dec2, dtype=np.float64) * DEG2RAD
    sin_ddec = np.sin((dec2 - dec1) / 2.0)
    sin_dra = np.sin((ra2 - ra1) / 2.0)
    h = sin_ddec**2 + np.cos(dec1) * np.cos(dec2) * sin_dra**2
    return 2.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0))) * RAD2DEG


def radius_to_chord_sq(radius_deg: float) -> float:
    """Squared-chord threshold for an angular radius in degrees.

    Mirrors the paper's ``@r2 = 4 * POWER(SIN(RADIANS(@r/2)), 2)``.
    """
    if radius_deg < 0:
        raise SpatialError(f"search radius must be non-negative, got {radius_deg}")
    return 4.0 * np.sin(DEG2RAD * radius_deg / 2.0) ** 2


def chord_sq(cx1, cy1, cz1, cx2, cy2, cz2):
    """Squared chord length between unit vectors (vectorized)."""
    return (cx1 - cx2) ** 2 + (cy1 - cy2) ** 2 + (cz1 - cz2) ** 2


def chord_sq_to_deg(chord2):
    """Convert squared chord length to the paper's chord-degrees measure."""
    return np.sqrt(np.maximum(chord2, 0.0)) * RAD2DEG


def adjusted_ra_radius(radius_deg, dec_deg, epsilon: float = 1e-9):
    """RA half-width of a cone of ``radius_deg`` at declination ``dec_deg``.

    Mirrors ``@adjustedRadius = @r / (COS(RADIANS(ABS(@dec))) + @epsilon)``:
    an RA interval shrinks by cos(dec) away from the equator, so the search
    window must widen by the inverse factor.
    """
    dec = np.asarray(dec_deg, dtype=np.float64)
    return np.asarray(radius_deg, dtype=np.float64) / (
        np.cos(np.abs(dec) * DEG2RAD) + epsilon
    )


def cap_ra_halfwidth(radius_deg, dec_deg):
    """Exact maximum |ΔRA| of a spherical cap, in degrees (vectorized).

    The cap of radius ``r`` centered at declination ``d`` spans RA
    offsets up to ``asin(sin r / cos d)`` — *larger* than the paper's
    ``r / cos d`` approximation.  Near the poles (``|d| + r >= 90``) the
    cap wraps all RA, returning 180.

    The paper's ``fGetNearbyObjEqZd`` uses the linear approximation,
    which can miss neighbors at high declination (a ~0.1% window
    shortfall at dec 75° with a 1° radius); our ports use this exact
    form so the indexes agree with brute force everywhere.
    """
    r = np.asarray(radius_deg, dtype=np.float64)
    d = np.asarray(dec_deg, dtype=np.float64)
    sin_r = np.sin(r * DEG2RAD)
    cos_d = np.cos(d * DEG2RAD)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = sin_r / cos_d
    wraps = (np.abs(d) + r) >= 90.0
    ratio = np.where(wraps, 1.0, np.clip(ratio, -1.0, 1.0))
    result = np.arcsin(ratio) * RAD2DEG
    return np.where(wraps, 180.0, result)


def cap_ra_halfwidth_at_dec(radius_deg: float, dec0: float,
                            dec_lo: float, dec_hi: float) -> float:
    """Max |ΔRA| of a cap, restricted to declinations [dec_lo, dec_hi].

    Used for per-zone window narrowing: ``ΔRA(d)`` is unimodal in ``d``
    with its maximum at ``d* = asin(sin dec0 / cos r)``, so the interval
    maximum sits at ``d*`` clipped into the zone's declination range
    (intersected with the cap's own range).
    """
    if radius_deg <= 0:
        return 0.0
    lo = max(dec_lo, dec0 - radius_deg, -90.0)
    hi = min(dec_hi, dec0 + radius_deg, 90.0)
    if lo > hi:
        return 0.0
    cos_r = np.cos(radius_deg * DEG2RAD)
    if cos_r <= 0.0:
        return 180.0
    sin_arg = np.clip(np.sin(dec0 * DEG2RAD) / cos_r, -1.0, 1.0)
    d_star = float(np.arcsin(sin_arg) * RAD2DEG)
    d = min(max(d_star, lo), hi)
    cos_d = np.cos(d * DEG2RAD)
    cos_dec0 = np.cos(dec0 * DEG2RAD)
    denominator = cos_d * cos_dec0
    if denominator <= 1e-12:
        return 180.0
    cos_dra = (cos_r - np.sin(d * DEG2RAD) * np.sin(dec0 * DEG2RAD)) / denominator
    if cos_dra <= -1.0:
        return 180.0
    if cos_dra >= 1.0:
        return 0.0
    return float(np.arccos(cos_dra) * RAD2DEG)


def normalize_ra(ra_deg):
    """Wrap right ascension into [0, 360)."""
    return np.mod(np.asarray(ra_deg, dtype=np.float64), 360.0)


def validate_dec(dec_deg) -> None:
    """Raise :class:`SpatialError` unless all declinations are in [-90, 90]."""
    dec = np.asarray(dec_deg, dtype=np.float64)
    if dec.size and (np.min(dec) < -90.0 or np.max(dec) > 90.0):
        raise SpatialError("declination out of range [-90, 90]")
