"""Hierarchical Triangular Mesh (HTM) spatial index.

The paper tried two spatial access methods for the MaxBCG neighbor
searches — the C-library-backed HTM of the SDSS science archive
(Kunszt et al.) and the pure-SQL zone strategy — and chose zones for
performance.  To reproduce that ablation we need a working HTM, so this
module implements the classic scheme:

* the sphere starts as 8 spherical triangles (the octahedron faces,
  trixels S0–S3 = ids 8–11 and N0–N3 = ids 12–15);
* each trixel splits into 4 children by edge midpoints, child ids being
  ``parent*4 + {0,1,2,3}``;
* a point's trixel at level L is found by descending the tree;
* a cone search computes a *cover* — the set of trixel id ranges at
  level L that can intersect the cone — then exact-filters candidates.

The cover uses a conservative bounding-circle test (a trixel is kept if
its bounding cap can touch the cone), so the search is exact after the
final distance filter: a property test checks HTM results equal brute
force and equal the zone join.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpatialError
from repro.spatial.geometry import (
    RAD2DEG,
    chord_sq,
    chord_sq_to_deg,
    radius_to_chord_sq,
    unit_vectors,
)

#: Maximum supported subdivision depth (ids fit comfortably in int64).
MAX_LEVEL = 20

_V = {
    "v0": np.array([0.0, 0.0, 1.0]),
    "v1": np.array([1.0, 0.0, 0.0]),
    "v2": np.array([0.0, 1.0, 0.0]),
    "v3": np.array([-1.0, 0.0, 0.0]),
    "v4": np.array([0.0, -1.0, 0.0]),
    "v5": np.array([0.0, 0.0, -1.0]),
}

#: Root trixels in id order 8..15 (the canonical S0..S3, N0..N3 layout).
_ROOT_TRIANGLES = [
    (_V["v1"], _V["v5"], _V["v2"]),  # S0 -> 8
    (_V["v2"], _V["v5"], _V["v3"]),  # S1 -> 9
    (_V["v3"], _V["v5"], _V["v4"]),  # S2 -> 10
    (_V["v4"], _V["v5"], _V["v1"]),  # S3 -> 11
    (_V["v1"], _V["v0"], _V["v4"]),  # N0 -> 12
    (_V["v4"], _V["v0"], _V["v3"]),  # N1 -> 13
    (_V["v3"], _V["v0"], _V["v2"]),  # N2 -> 14
    (_V["v2"], _V["v0"], _V["v1"]),  # N3 -> 15
]

_EPS = 1e-12


def _normalize_rows(v: np.ndarray) -> np.ndarray:
    return v / np.linalg.norm(v, axis=-1, keepdims=True)


def _contains(v0, v1, v2, p) -> np.ndarray:
    """Vectorized test: do unit vectors ``p`` (N x 3) lie in the trixel?

    A point is inside when it sits on the inner side of all three great
    circle edges (cross-product sign test with a tolerance so boundary
    points land in exactly one sibling during descent).
    """
    c01 = np.cross(v0, v1)
    c12 = np.cross(v1, v2)
    c20 = np.cross(v2, v0)
    return (
        (np.einsum("...k,...k->...", c01, p) >= -_EPS)
        & (np.einsum("...k,...k->...", c12, p) >= -_EPS)
        & (np.einsum("...k,...k->...", c20, p) >= -_EPS)
    )


def _children(v0, v1, v2):
    """The four child trixels of (v0, v1, v2), in child-id order 0..3."""
    w0 = _normalize_rows(v1 + v2)
    w1 = _normalize_rows(v0 + v2)
    w2 = _normalize_rows(v0 + v1)
    return [(v0, w2, w1), (v1, w0, w2), (v2, w1, w0), (w0, w1, w2)]


def _check_level(level: int) -> None:
    if not (0 <= level <= MAX_LEVEL):
        raise SpatialError(f"HTM level must be in [0, {MAX_LEVEL}], got {level}")


def htm_id(ra, dec, level: int) -> np.ndarray:
    """Trixel ids at ``level`` for positions (vectorized).

    Level 0 returns the root ids 8–15; each extra level appends two bits.
    """
    _check_level(level)
    cx, cy, cz = unit_vectors(ra, dec)
    p = np.stack(
        [np.atleast_1d(cx), np.atleast_1d(cy), np.atleast_1d(cz)], axis=-1
    )
    n = p.shape[0]
    ids = np.zeros(n, dtype=np.int64)
    # Per-point current triangle corners, updated as we descend.
    tri0 = np.zeros((n, 3))
    tri1 = np.zeros((n, 3))
    tri2 = np.zeros((n, 3))
    assigned = np.zeros(n, dtype=bool)
    for root_index, (a, b, c) in enumerate(_ROOT_TRIANGLES):
        inside = _contains(a, b, c, p) & ~assigned
        ids[inside] = 8 + root_index
        tri0[inside], tri1[inside], tri2[inside] = a, b, c
        assigned |= inside
    if not np.all(assigned):
        raise SpatialError("point fell outside all root trixels (bad input?)")

    for _ in range(level):
        w0 = _normalize_rows(tri1 + tri2)
        w1 = _normalize_rows(tri0 + tri2)
        w2 = _normalize_rows(tri0 + tri1)
        child = np.full(n, 3, dtype=np.int64)  # default: center child
        candidates = [(tri0, w2, w1), (tri1, w0, w2), (tri2, w1, w0)]
        undecided = np.ones(n, dtype=bool)
        for k, (a, b, c) in enumerate(candidates):
            inside = undecided & _contains(a, b, c, p)
            child[inside] = k
            undecided &= ~inside
        ids = ids * 4 + child
        # Assemble the next-level corners per point.
        sel = [
            (tri0, w2, w1),
            (tri1, w0, w2),
            (tri2, w1, w0),
            (w0, w1, w2),
        ]
        nxt0 = np.empty_like(tri0)
        nxt1 = np.empty_like(tri1)
        nxt2 = np.empty_like(tri2)
        for k, (a, b, c) in enumerate(sel):
            mask = child == k
            nxt0[mask], nxt1[mask], nxt2[mask] = a[mask], b[mask], c[mask]
        tri0, tri1, tri2 = nxt0, nxt1, nxt2
    return ids


@dataclass(frozen=True)
class TrixelRange:
    """Inclusive id range [lo, hi] of level-L trixels in a cone cover."""

    lo: int
    hi: int


def cone_cover(ra: float, dec: float, radius_deg: float, level: int) -> list[TrixelRange]:
    """Trixel ranges at ``level`` whose union contains the cone.

    Conservative: every trixel intersecting the cone is covered, some
    non-intersecting neighbors may be too (they are removed by the exact
    distance filter in :class:`HTMIndex.query`).
    """
    _check_level(level)
    if radius_deg < 0:
        raise SpatialError("radius must be non-negative")
    qx, qy, qz = unit_vectors(ra, dec)
    axis = np.array([float(qx), float(qy), float(qz)])
    cone_rad = np.deg2rad(radius_deg)

    ranges: list[TrixelRange] = []

    def visit(tid: int, v0, v1, v2, depth: int) -> None:
        centroid = _normalize_rows(v0 + v1 + v2)
        bound = max(
            float(np.arccos(np.clip(np.dot(centroid, v), -1.0, 1.0)))
            for v in (v0, v1, v2)
        )
        sep = float(np.arccos(np.clip(np.dot(centroid, axis), -1.0, 1.0)))
        if sep > cone_rad + bound:
            return  # disjoint
        shift = 2 * (level - depth)
        if sep + bound <= cone_rad or depth == level:
            ranges.append(TrixelRange(tid << shift, ((tid + 1) << shift) - 1))
            return
        for k, (a, b, c) in enumerate(_children(v0, v1, v2)):
            visit(tid * 4 + k, a, b, c, depth + 1)

    for root_index, (a, b, c) in enumerate(_ROOT_TRIANGLES):
        visit(8 + root_index, a, b, c, 0)

    # Merge adjacent/overlapping ranges for tighter searchsorted probes.
    ranges.sort(key=lambda r: r.lo)
    merged: list[TrixelRange] = []
    for r in ranges:
        if merged and r.lo <= merged[-1].hi + 1:
            merged[-1] = TrixelRange(merged[-1].lo, max(merged[-1].hi, r.hi))
        else:
            merged.append(r)
    return merged


class HTMIndex:
    """Catalog sorted by level-L trixel id, supporting exact cone search."""

    def __init__(self, ra, dec, level: int = 10):
        _check_level(level)
        ra = np.asarray(ra, dtype=np.float64)
        dec = np.asarray(dec, dtype=np.float64)
        if ra.shape != dec.shape or ra.ndim != 1:
            raise SpatialError("ra and dec must be 1-D arrays of equal length")
        self.level = level
        ids = htm_id(ra, dec, level) if ra.size else np.empty(0, np.int64)
        order = np.argsort(ids, kind="stable")
        self.source_index = order
        self.htm = ids[order]
        self.ra = ra[order]
        self.dec = dec[order]
        self.cx, self.cy, self.cz = unit_vectors(self.ra, self.dec)

    def __len__(self) -> int:
        return int(self.ra.size)

    def query(
        self, ra: float, dec: float, radius_deg: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact cone search: cover ranges, then chord-distance filter.

        Returns ``(source_indices, distances_deg)`` with the same strict
        ``distance < radius`` semantics as the zone machinery.
        """
        if len(self) == 0:
            return np.empty(0, np.int64), np.empty(0, np.float64)
        cover = cone_cover(ra, dec, radius_deg, self.level)
        qx, qy, qz = unit_vectors(ra, dec)
        r2 = radius_to_chord_sq(radius_deg)
        hits: list[np.ndarray] = []
        dists: list[np.ndarray] = []
        for rng in cover:
            start = int(np.searchsorted(self.htm, rng.lo, side="left"))
            stop = int(np.searchsorted(self.htm, rng.hi, side="right"))
            if start == stop:
                continue
            sl = slice(start, stop)
            c2 = chord_sq(self.cx[sl], self.cy[sl], self.cz[sl], qx, qy, qz)
            inside = c2 < r2
            if np.any(inside):
                rows = np.arange(start, stop)[inside]
                hits.append(self.source_index[rows])
                dists.append(chord_sq_to_deg(c2[inside]))
        if not hits:
            return np.empty(0, np.int64), np.empty(0, np.float64)
        return np.concatenate(hits), np.concatenate(dists)

    def trixels_probed(self, ra: float, dec: float, radius_deg: float) -> int:
        """Number of covered level-L trixel ids (a cost proxy for benches)."""
        cover = cone_cover(ra, dec, radius_deg, self.level)
        return int(sum(r.hi - r.lo + 1 for r in cover))
