"""Vectorized zone join: batched neighbor retrieval for many queries.

The paper's Section 2.3 credits the zone strategy for the SQL speedup:
"using relational algebra the algorithm performs the neighborhood
searches by joining a Zone with itself and discarding those objects
beyond some radius."  :func:`zone_join` is that relational self-join in
array form: given a :class:`~repro.spatial.zones.ZoneIndex` over the
catalog and arrays of query centers/radii, it produces the full
``(query, neighbor, distance)`` pair list in a handful of vectorized
passes — one per zone offset — instead of a per-object cursor loop.

Semantics are identical to calling :meth:`ZoneIndex.query` once per
query point (a property test asserts this); only the evaluation
strategy differs.  This is the set-oriented kernel of the fast pipeline
and the engine of the paper's ~40× win.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpatialError
from repro.spatial.geometry import (
    cap_ra_halfwidth,
    chord_sq,
    chord_sq_to_deg,
    unit_vectors,
)
from repro.spatial.zones import ZoneIndex


@dataclass(frozen=True)
class NeighborPairs:
    """Result of a batched neighbor search.

    ``query_index[k]`` is a position in the caller's query arrays;
    ``catalog_index[k]`` is a position in the arrays the
    :class:`ZoneIndex` was built from; ``distance_deg[k]`` is the
    chord-degree separation.  Pairs are in no guaranteed order.
    """

    query_index: np.ndarray
    catalog_index: np.ndarray
    distance_deg: np.ndarray

    def __len__(self) -> int:
        return int(self.query_index.size)

    @staticmethod
    def empty() -> "NeighborPairs":
        return NeighborPairs(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )


def _expand_ranges(starts: np.ndarray, stops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand row ranges [start, stop) into (owner, row) pair arrays.

    The standard "ragged ranges" trick: owner ``k`` contributes rows
    ``starts[k] .. stops[k]-1``.
    """
    counts = stops - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    owners = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    rows = np.repeat(starts, counts) + offsets
    return owners, rows


def zone_join(
    index: ZoneIndex,
    query_ra,
    query_dec,
    radius_deg,
    chunk_pairs: int = 4_000_000,
) -> NeighborPairs:
    """All (query, catalog) pairs within per-query radii.

    Parameters
    ----------
    index:
        Zone index over the catalog side of the join.
    query_ra, query_dec:
        Query centers in degrees (1-D arrays).
    radius_deg:
        Scalar or per-query array of search radii in degrees.
    chunk_pairs:
        Soft cap on intermediate candidate pairs per zone-offset pass;
        purely a memory guard, does not change results.

    Notes
    -----
    Candidate RA windows use the exact cap half-width (a superset of
    the per-zone narrowed windows); the squared-chord test then applies
    the paper's strict ``distance < r`` predicate, so results match
    :meth:`ZoneIndex.query` row for row.
    """
    qra = np.asarray(query_ra, dtype=np.float64)
    qdec = np.asarray(query_dec, dtype=np.float64)
    if qra.shape != qdec.shape or qra.ndim != 1:
        raise SpatialError("query ra and dec must be 1-D arrays of equal length")
    radii = np.broadcast_to(
        np.asarray(radius_deg, dtype=np.float64), qra.shape
    ).copy()
    if radii.size and radii.min() < 0:
        raise SpatialError("search radii must be non-negative")
    if qra.size == 0 or len(index) == 0:
        return NeighborPairs.empty()

    h = index.zone_height_deg
    qzone = np.floor((qdec + 90.0) / h).astype(np.int64)
    zone_lo = np.floor((np.maximum(qdec - radii, -90.0) + 90.0) / h).astype(np.int64)
    zone_hi = np.floor((np.minimum(qdec + radii, 90.0) + 90.0) / h).astype(np.int64)
    max_span = int(np.max(np.maximum(qzone - zone_lo, zone_hi - qzone)))

    # Exact cap RA half-width per query (a superset of every zone's
    # narrowed window; the chord test below restores exactness).
    x = np.asarray(cap_ra_halfwidth(radii, qdec), dtype=np.float64)

    qx, qy, qz = unit_vectors(qra, qdec)
    r2 = 4.0 * np.sin(np.deg2rad(radii) / 2.0) ** 2
    key = index._key  # sorted (zone, ra) composite key

    out_q: list[np.ndarray] = []
    out_c: list[np.ndarray] = []
    out_d: list[np.ndarray] = []

    for delta in range(-max_span, max_span + 1):
        zone = qzone + delta
        active = (zone >= zone_lo) & (zone <= zone_hi)
        if not np.any(active):
            continue
        act = np.flatnonzero(active)
        base = zone[act].astype(np.float64) * 512.0
        lo = base + (qra[act] - x[act])
        hi = base + (qra[act] + x[act])
        starts = np.searchsorted(key, lo, side="left")
        stops = np.searchsorted(key, hi, side="right")
        # Process in chunks so pathological densities cannot blow memory.
        pos = 0
        counts = stops - starts
        cum = np.cumsum(counts)
        while pos < act.size:
            end = int(
                np.searchsorted(cum, (cum[pos - 1] if pos else 0) + chunk_pairs)
            ) + 1
            end = min(max(end, pos + 1), act.size)
            owners, rows = _expand_ranges(starts[pos:end], stops[pos:end])
            if rows.size:
                q_ids = act[pos + owners]
                c2 = chord_sq(
                    index.cx[rows], index.cy[rows], index.cz[rows],
                    qx[q_ids], qy[q_ids], qz[q_ids],
                )
                inside = c2 < r2[q_ids]
                if np.any(inside):
                    out_q.append(q_ids[inside])
                    out_c.append(index.source_index[rows[inside]])
                    out_d.append(chord_sq_to_deg(c2[inside]))
            pos = end

    if not out_q:
        return NeighborPairs.empty()
    return NeighborPairs(
        np.concatenate(out_q),
        np.concatenate(out_c),
        np.concatenate(out_d),
    )


def neighbor_counts(
    index: ZoneIndex, query_ra, query_dec, radius_deg
) -> np.ndarray:
    """Per-query neighbor counts (including self-matches if present)."""
    pairs = zone_join(index, query_ra, query_dec, radius_deg)
    n = np.asarray(query_ra).size
    counts = np.zeros(n, dtype=np.int64)
    if len(pairs):
        np.add.at(counts, pairs.query_index, 1)
    return counts
