"""repro — reproduction of *When Database Systems Meet the Grid* (CIDR 2005).

The package implements both sides of the paper's comparison over a
synthetic SDSS-like sky:

* the **SQL implementation** of MaxBCG — a set-oriented pipeline on a
  small column-store relational engine with zone spatial indexing
  (:mod:`repro.core`, :mod:`repro.engine`, :mod:`repro.spatial`),
  single-node or partitioned across a simulated SQL Server cluster
  (:mod:`repro.cluster`);
* the **file-based Grid baseline** — per-field flat files brute-forced
  by a Tcl/Astrotools-style kernel (:mod:`repro.tam`) scheduled on a
  Condor-like grid with explicit transfer costs (:mod:`repro.grid`);
* the **CasJobs batch query system** and its federated, code-to-the-data
  MaxBCG deployment (:mod:`repro.casjobs`).

Quick start::

    from repro import (
        MaxBCGConfig, build_kcorrection_table, make_sky, run_maxbcg,
        RegionBox, SkyConfig,
    )

    config = MaxBCGConfig(z_step=0.005)
    kcorr = build_kcorrection_table(config)
    target = RegionBox(180.0, 182.0, 0.0, 2.0)
    sky = make_sky(target.expand(1.0), config, kcorr, SkyConfig())
    result = run_maxbcg(sky.catalog, target, kcorr, config)
    print(len(result.clusters), "galaxy clusters")
"""

from repro.core.config import MaxBCGConfig, fast_config, sql_config, tam_config
from repro.core.kcorrection import KCorrectionTable, build_kcorrection_table
from repro.core.pipeline import MaxBCGPipeline, MaxBCGResult, run_maxbcg
from repro.core.results import CandidateCatalog, ClusterCatalog, MemberTable
from repro.cluster.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.cluster.executor import SqlServerCluster, run_partitioned
from repro.engine.database import Database
from repro.errors import ReproError
from repro.skyserver.catalog import GalaxyCatalog
from repro.skyserver.generator import SkyConfig, SkySimulator, SyntheticSky, make_sky
from repro.skyserver.regions import RegionBox
from repro.tam.runner import TamRunner, run_tam

__version__ = "1.0.0"

__all__ = [
    "BACKEND_NAMES",
    "CandidateCatalog",
    "ClusterCatalog",
    "Database",
    "ExecutionBackend",
    "GalaxyCatalog",
    "KCorrectionTable",
    "MaxBCGConfig",
    "MaxBCGPipeline",
    "MaxBCGResult",
    "MemberTable",
    "ProcessBackend",
    "RegionBox",
    "ReproError",
    "SequentialBackend",
    "SkyConfig",
    "SkySimulator",
    "SqlServerCluster",
    "SyntheticSky",
    "TamRunner",
    "ThreadBackend",
    "__version__",
    "build_kcorrection_table",
    "fast_config",
    "make_sky",
    "resolve_backend",
    "run_maxbcg",
    "run_partitioned",
    "run_tam",
    "sql_config",
    "tam_config",
]
