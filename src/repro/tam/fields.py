"""Field tiling: the TAM divide-and-conquer strategy (Section 2.2).

"The TAM MaxBCG implementation takes advantage of the parallel nature
of the problem by using a divide-and-conquer strategy which breaks the
sky in 0.25 deg² fields.  Each of these tasks require two files: a
0.5 × 0.5 deg² Target file ... and a 1 × 1 deg² Buffer file."

:func:`tile_fields` produces that layout for any target region.  The
RAM compromise is first-class here: the *ideal* buffer is the target
expanded by the full search radius (1.5 × 1.5 deg² for 0.5 deg — the
dashed square of Figure 1); the TAM budget allowed only 0.25 deg.
:func:`buffer_file_rows` lets the Figure 1 benchmark show exactly why —
the ideal file wouldn't fit the 1 GB nodes at survey density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import TamError
from repro.skyserver.regions import RegionBox

#: The TAM field edge: 0.5 deg (0.25 deg² fields).
FIELD_SIZE_DEG = 0.5

#: The TAM compromise buffer margin (0.25 deg -> 1 x 1 deg² buffer files).
TAM_BUFFER_DEG = 0.25

#: The scientifically ideal margin (0.5 deg -> 1.5 x 1.5 deg² files).
IDEAL_BUFFER_DEG = 0.5

#: Bytes per galaxy row in the flat files (the paper's 44-byte rows).
ROW_BYTES = 44


@dataclass(frozen=True)
class Field:
    """One unit of TAM work: a target square and its buffer square."""

    field_id: int
    target: RegionBox
    buffer: RegionBox

    def __post_init__(self) -> None:
        if not self.buffer.contains_box(self.target):
            raise TamError(f"field {self.field_id}: buffer must contain target")

    @property
    def name(self) -> str:
        """Stable file-name stem for this field's Target/Buffer files."""
        return (
            f"field_{self.field_id:06d}_"
            f"ra{self.target.ra_min:+08.3f}_dec{self.target.dec_min:+07.3f}"
        )


def tile_fields(
    region: RegionBox,
    field_size: float = FIELD_SIZE_DEG,
    buffer_margin: float = TAM_BUFFER_DEG,
) -> list[Field]:
    """Tile a target region into TAM fields with buffered squares."""
    if field_size <= 0 or buffer_margin < 0:
        raise TamError("field size must be positive, margin non-negative")
    fields = []
    for field_id, tile in enumerate(region.tiles(field_size)):
        fields.append(
            Field(
                field_id=field_id,
                target=tile,
                buffer=tile.expand(buffer_margin),
            )
        )
    return fields


def neighbor_fields(fields: list[Field], field: Field) -> list[Field]:
    """Fields whose *target* overlaps this field's buffer (BufferC inputs).

    The cluster-decision phase needs candidate files from every field
    that can contribute a rival within the buffer margin (Figure 2).
    """
    return [
        other
        for other in fields
        if other.field_id != field.field_id
        and other.target.overlaps(field.buffer)
    ]


def buffer_file_rows(density_per_deg2: float, buffer_margin: float,
                     field_size: float = FIELD_SIZE_DEG) -> float:
    """Expected rows in one buffer file at a given sky density."""
    edge = field_size + 2.0 * buffer_margin
    return density_per_deg2 * edge * edge


def buffer_file_bytes(density_per_deg2: float, buffer_margin: float,
                      field_size: float = FIELD_SIZE_DEG) -> float:
    """Expected bytes of one buffer file (44-byte rows)."""
    return ROW_BYTES * buffer_file_rows(density_per_deg2, buffer_margin, field_size)
