"""The file-based baseline: TAM field files + Astrotools-style kernel."""

from repro.tam.fields import (
    FIELD_SIZE_DEG,
    IDEAL_BUFFER_DEG,
    TAM_BUFFER_DEG,
    Field,
    buffer_file_bytes,
    neighbor_fields,
    tile_fields,
)
from repro.tam.files import FileStore
from repro.tam.runner import TamRunner, TamRunResult, run_tam

__all__ = [
    "FIELD_SIZE_DEG",
    "Field",
    "FileStore",
    "IDEAL_BUFFER_DEG",
    "TAM_BUFFER_DEG",
    "TamRunResult",
    "TamRunner",
    "buffer_file_bytes",
    "neighbor_fields",
    "run_tam",
    "tile_fields",
]
