"""The TAM driver: stage files, process fields, pick clusters.

Mirrors the end-to-end life of the file-based implementation:

1. **Stage** — cut per-field Target and Buffer files out of the survey
   catalog and write them to the :class:`~repro.tam.files.FileStore`
   (the DAS fetch the grid later prices with its transfer model);
2. **Process** — per field: read the two files back from disk, run the
   Astrotools kernel, write the field's Candidates file (C);
3. **Coalesce** — per field: read the field's own candidates plus its
   neighbors' (the BufferC compilation) and pick cluster centers.

Timing is recorded per field so the grid simulation can replay the run
on arbitrary cluster hardware, and so Table 3 can extrapolate — the
paper's own rule: "TAM performance is expected to scale lineally with
the number of fields."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.results import CandidateCatalog, ClusterCatalog
from repro.engine.stats import TaskTimer
from repro.errors import TamError
from repro.skyserver.catalog import GalaxyCatalog
from repro.skyserver.regions import RegionBox
from repro.tam.astrotools import pick_field_clusters, process_field
from repro.tam.fields import Field, neighbor_fields, tile_fields
from repro.tam.files import FileStore, FileStoreStats


@dataclass
class FieldTiming:
    """Wall-clock cost of one field, split by phase."""

    field_id: int
    stage_s: float = 0.0
    process_s: float = 0.0
    coalesce_s: float = 0.0
    n_target: int = 0
    n_buffer: int = 0
    n_candidates: int = 0

    @property
    def total_s(self) -> float:
        return self.stage_s + self.process_s + self.coalesce_s


@dataclass
class TamRunResult:
    """Science output + cost profile of a full TAM run."""

    candidates: CandidateCatalog
    clusters: ClusterCatalog
    timings: list[FieldTiming]
    file_stats: FileStoreStats
    fields: list[Field]

    @property
    def elapsed_s(self) -> float:
        """Total single-CPU wall-clock (the paper's 1000 s/field regime)."""
        return sum(t.total_s for t in self.timings)

    @property
    def mean_field_s(self) -> float:
        if not self.timings:
            return 0.0
        return self.elapsed_s / len(self.timings)

    def per_field_seconds(self) -> np.ndarray:
        return np.asarray([t.total_s for t in self.timings])


class TamRunner:
    """Sequential single-CPU TAM execution over a target region."""

    def __init__(
        self,
        kcorr: KCorrectionTable,
        config: MaxBCGConfig,
        store: FileStore,
        field_size: float = 0.5,
        progress: Callable[[str], None] | None = None,
    ):
        self.kcorr = kcorr
        self.config = config
        self.store = store
        self.field_size = field_size
        self.progress = progress

    def _report(self, stage: str) -> None:
        if self.progress is not None:
            self.progress(stage)

    # ------------------------------------------------------------------
    def stage(self, catalog: GalaxyCatalog, target: RegionBox) -> list[Field]:
        """Cut and write every field's Target and Buffer files."""
        fields = tile_fields(
            target, self.field_size, buffer_margin=self.config.buffer_deg
        )
        for one_field in fields:
            self.store.write_catalog(
                one_field, "target", catalog.select_region(one_field.target)
            )
            self.store.write_catalog(
                one_field, "buffer", catalog.select_region(one_field.buffer)
            )
        return fields

    def process_one(self, one_field: Field, timing: FieldTiming) -> CandidateCatalog:
        """Read a field's files, run the kernel, write its C file."""
        with TaskTimer(f"field{one_field.field_id}") as timer:
            target_catalog = self.store.read_catalog(one_field, "target")
            buffer_catalog = self.store.read_catalog(one_field, "buffer")
            candidates = process_field(
                target_catalog, buffer_catalog, self.kcorr, self.config
            )
            self.store.write_rows(one_field, "candidates", candidates.as_columns())
        timing.process_s = timer.stats.elapsed_s
        timing.n_target = len(target_catalog)
        timing.n_buffer = len(buffer_catalog)
        timing.n_candidates = len(candidates)
        return candidates

    def coalesce_one(self, fields: list[Field], one_field: Field,
                     timing: FieldTiming) -> ClusterCatalog:
        """Pick the field's cluster centers using the BufferC compilation."""
        with TaskTimer(f"coalesce{one_field.field_id}") as timer:
            own = CandidateCatalog(
                **self.store.read_rows(one_field, "candidates")
            )
            rivals = own
            for neighbor in neighbor_fields(fields, one_field):
                neighbor_rows = self.store.read_rows(neighbor, "candidates")
                rivals = rivals.concat(CandidateCatalog(**neighbor_rows))
            clusters = pick_field_clusters(
                own, rivals, one_field.target, self.kcorr, self.config
            )
        timing.coalesce_s = timer.stats.elapsed_s
        return clusters

    # ------------------------------------------------------------------
    def run(self, catalog: GalaxyCatalog, target: RegionBox) -> TamRunResult:
        """Full sequential run: stage, process all fields, coalesce all."""
        with TaskTimer("stage") as stage_timer:
            fields = self.stage(catalog, target)
        if not fields:
            raise TamError("target region produced no fields")
        self._report("stage")
        stage_each = stage_timer.stats.elapsed_s / len(fields)

        timings = [FieldTiming(f.field_id, stage_s=stage_each) for f in fields]
        candidates = CandidateCatalog.empty()
        for one_field, timing in zip(fields, timings):
            candidates = candidates.concat(self.process_one(one_field, timing))
            self._report(f"field{one_field.field_id}")

        clusters = CandidateCatalog.empty()
        for one_field, timing in zip(fields, timings):
            clusters = clusters.concat(
                self.coalesce_one(fields, one_field, timing)
            )
            self._report(f"coalesce{one_field.field_id}")

        return TamRunResult(
            candidates=candidates.sort_by_objid(),
            clusters=clusters.sort_by_objid(),
            timings=timings,
            file_stats=self.store.stats,
            fields=fields,
        )


def run_tam(
    catalog: GalaxyCatalog,
    target: RegionBox,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
    workdir: str | Path,
    field_size: float = 0.5,
    *,
    progress: Callable[[str], None] | None = None,
) -> TamRunResult:
    """Convenience wrapper: build a store + runner and execute.

    Shares its keyword surface with :func:`repro.core.pipeline.run_maxbcg`
    and :func:`repro.cluster.executor.run_partitioned`: positional
    ``catalog, target, kcorr, config``, then options, with ``progress``
    receiving stage/field names as they complete.
    """
    runner = TamRunner(
        kcorr, config, FileStore(workdir), field_size=field_size,
        progress=progress,
    )
    return runner.run(catalog, target)
