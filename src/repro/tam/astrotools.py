"""The per-field compute kernel: our stand-in for Tcl + Astrotools.

"The CPU intensive computations are done by Astrotools using external
calls to C routines to handle vector math operations."  We mirror that
structure exactly: an outer interpreted per-galaxy loop (the Tcl layer)
whose inner vector math runs in numpy (the C layer), with **brute-force
neighbor searches over the in-RAM Buffer file** — no spatial index, no
early set-oriented filtering across galaxies, which is precisely the
cost profile the SQL implementation beat.

Science-wise the kernel computes the same statistics as
:mod:`repro.core` (same chi², same windows, same per-redshift counts),
so a TAM run with the *SQL* configuration must agree with the database
pipeline — a cross-implementation test — while a TAM run with the TAM
configuration (0.25 deg buffer, z-step 0.01) reproduces the baseline's
compromised science.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.likelihood import chisq_profile, windows_for
from repro.core.neighbors import (
    best_weighted_redshift,
    count_friends_per_redshift,
)
from repro.core.results import CandidateCatalog
from repro.skyserver.catalog import GalaxyCatalog
from repro.spatial.geometry import chord_distance_deg


def brute_force_distances(
    ra0: float, dec0: float, catalog: GalaxyCatalog
) -> np.ndarray:
    """Chord-degree distances from one point to every catalog galaxy."""
    return chord_distance_deg(ra0, dec0, catalog.ra, catalog.dec)


def process_field(
    target: GalaxyCatalog,
    buffer: GalaxyCatalog,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> CandidateCatalog:
    """Filter + Check neighbors for every galaxy of one Target file.

    Candidates whose ideal search radius exceeds the buffer margin are
    still evaluated — against the truncated buffer, as TAM did; that
    truncation is the science compromise Table 2's 25x factor prices.
    """
    rows = []
    for position in range(len(target)):
        chisq = chisq_profile(
            float(target.i[position]),
            float(target.gr[position]),
            float(target.ri[position]),
            float(target.sigmagr[position]),
            float(target.sigmari[position]),
            kcorr,
            config,
        )
        passing = np.flatnonzero(chisq < config.chi2_threshold)
        if passing.size == 0:
            continue
        windows = windows_for(float(target.i[position]), passing, kcorr, config)

        # The brute-force search: every buffer galaxy, every time.
        distances = brute_force_distances(
            float(target.ra[position]), float(target.dec[position]), buffer
        )
        in_window = (
            (distances < windows.radius)
            & (buffer.objid != int(target.objid[position]))
            & (buffer.i >= windows.i_min)
            & (buffer.i <= windows.i_max)
            & (buffer.gr >= windows.gr_min)
            & (buffer.gr <= windows.gr_max)
            & (buffer.ri >= windows.ri_min)
            & (buffer.ri <= windows.ri_max)
        )
        counts = count_friends_per_redshift(
            distances[in_window],
            buffer.i[in_window],
            buffer.gr[in_window],
            buffer.ri[in_window],
            float(target.i[position]),
            passing,
            kcorr,
            config,
        )
        best = best_weighted_redshift(counts, chisq[passing], passing)
        if best is None:
            continue
        zid, ngal, weighted = best
        rows.append(
            {
                "objid": int(target.objid[position]),
                "ra": float(target.ra[position]),
                "dec": float(target.dec[position]),
                "z": float(kcorr.z[zid]),
                "i": float(target.i[position]),
                "ngal": ngal + 1,
                "chi2": weighted,
            }
        )
    return CandidateCatalog.from_rows(rows)


def pick_field_clusters(
    own_candidates: CandidateCatalog,
    rival_candidates: CandidateCatalog,
    target_region,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
    chi_tolerance: float = 1e-5,
) -> CandidateCatalog:
    """The Pick-most-likely step for one field (Figure 2).

    ``rival_candidates`` is the field's own candidates plus the
    BufferC compilation from neighboring fields.  Rivalry is evaluated
    by brute force over that compilation.
    """
    winners = []
    for position in range(len(own_candidates)):
        if not target_region.contains(
            float(own_candidates.ra[position]), float(own_candidates.dec[position])
        ):
            continue
        z = float(own_candidates.z[position])
        radius = kcorr.radius_at(z)
        distances = chord_distance_deg(
            float(own_candidates.ra[position]),
            float(own_candidates.dec[position]),
            rival_candidates.ra,
            rival_candidates.dec,
        )
        near = (distances < radius) & (
            np.abs(rival_candidates.z - z) <= config.z_match_window
        )
        if not near.any():
            continue
        best = float(rival_candidates.chi2[near].max())
        if abs(best - float(own_candidates.chi2[position])) < chi_tolerance:
            winners.append(position)
    return own_candidates.take(np.asarray(winners, dtype=np.int64))
