"""The flat-file store: TAM's (and Chimera's) data substrate.

"As is common in astronomical file-based Grid applications, the TAM and
Chimera implementations use hundreds of thousands of files fetched from
the SDSS Data Archive Server (DAS) to the computing nodes."

:class:`FileStore` plays the DAS: it materializes per-field Target,
Buffer and Candidate files on real disk (one ``.npz`` per file, column
arrays inside) and keeps the inventory statistics — file counts and
bytes written/read — that the grid-transfer cost model consumes.  Going
through an actual filesystem, not an in-memory dict, is deliberate: the
baseline's cost structure *is* its file traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import TamError
from repro.skyserver.catalog import GALAXY_COLUMNS, GalaxyCatalog
from repro.tam.fields import Field


@dataclass
class FileStoreStats:
    """Traffic counters for one store."""

    files_written: int = 0
    files_read: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class FileStore:
    """Per-field flat files rooted at a directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = FileStoreStats()

    # ------------------------------------------------------------------
    def _path(self, field: Field, kind: str) -> Path:
        if kind not in ("target", "buffer", "candidates"):
            raise TamError(f"unknown file kind '{kind}'")
        return self.root / f"{field.name}.{kind}.npz"

    def write_catalog(self, field: Field, kind: str, catalog: GalaxyCatalog) -> Path:
        """Write a galaxy catalog file for one field."""
        path = self._path(field, kind)
        np.savez(path, **catalog.as_columns())
        self.stats.files_written += 1
        self.stats.bytes_written += path.stat().st_size
        return path

    def read_catalog(self, field: Field, kind: str) -> GalaxyCatalog:
        """Read a galaxy catalog file (counted as a DAS fetch)."""
        path = self._path(field, kind)
        if not path.exists():
            raise TamError(f"missing {kind} file for field {field.field_id}")
        self.stats.files_read += 1
        self.stats.bytes_read += path.stat().st_size
        with np.load(path) as bundle:
            return GalaxyCatalog.from_columns(
                {name: bundle[name] for name in GALAXY_COLUMNS}
            )

    # ------------------------------------------------------------------
    def write_rows(self, field: Field, kind: str, rows: dict[str, np.ndarray]) -> Path:
        """Write an arbitrary column bundle (candidate files)."""
        path = self._path(field, kind)
        np.savez(path, **rows)
        self.stats.files_written += 1
        self.stats.bytes_written += path.stat().st_size
        return path

    def read_rows(self, field: Field, kind: str) -> dict[str, np.ndarray]:
        path = self._path(field, kind)
        if not path.exists():
            raise TamError(f"missing {kind} file for field {field.field_id}")
        self.stats.files_read += 1
        self.stats.bytes_read += path.stat().st_size
        with np.load(path) as bundle:
            return {name: bundle[name] for name in bundle.files}

    def has_file(self, field: Field, kind: str) -> bool:
        return self._path(field, kind).exists()

    def file_count(self) -> int:
        """Files currently in the store (the DAS inventory size)."""
        return sum(1 for _ in self.root.glob("*.npz"))
