"""Benchmark harness utilities: workloads, timing, reporting."""

from repro.bench.reporting import ShapeCheck, format_table, print_report
from repro.bench.timing import warmup
from repro.bench.workloads import (
    WORKLOADS,
    Workload,
    active_workload,
    kcorr_for,
    sky_for,
)

__all__ = [
    "ShapeCheck",
    "WORKLOADS",
    "Workload",
    "active_workload",
    "format_table",
    "kcorr_for",
    "print_report",
    "sky_for",
    "warmup",
]
