"""Timing helpers shared by the benchmark harness."""

from __future__ import annotations

from repro.bench.workloads import Workload, kcorr_for, sky_for
from repro.core.pipeline import MaxBCGPipeline
from repro.skyserver.regions import RegionBox


def warmup(workload: Workload) -> None:
    """Run one tiny pipeline so first-touch costs (allocator, BLAS
    thread pools, import side effects) do not pollute the first
    measured run — the simulated cluster's servers would otherwise look
    faster than the sequential run for the wrong reason."""
    sky = sky_for(workload)
    center = workload.target.center
    tiny = RegionBox(
        center[0] - 0.25, center[0] + 0.25, center[1] - 0.25, center[1] + 0.25
    )
    pipeline = MaxBCGPipeline(
        kcorr_for(workload.sql), workload.sql, compute_members=False
    )
    pipeline.run(sky.catalog, tiny)
