"""Heavy-traffic CasJobs workload: many users, both queue classes.

The ROADMAP's north star is "heavy traffic from millions of users";
this module is the measuring stick.  It stands up one CasJobs site
hosting a synthetic catalog context, registers ``n_users`` users, and
fires ``n_jobs`` real SQL jobs at the scheduler — a mix of quick
(single-pass filter/count) and long (group/aggregate/sort over the
whole table) queries — while the service runs in the background.  The
report carries throughput, per-class p50/p95 wait and run latency, and
fairness across users and classes.

Used three ways: ``benchmarks/bench_casjobs_load.py`` (the shape
checks), ``repro casjobs serve`` (the CLI front door), and the
TUTORIAL's measured table.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.casjobs.queue import JobStatus, QueueClass
from repro.casjobs.scheduler import SchedulerConfig, SchedulerStats
from repro.casjobs.server import CasJobsService
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import CasJobsError, QueueFullError, QuotaExceededError


@dataclass
class LoadSpec:
    """One load experiment, fully seeded."""

    n_users: int = 10
    n_jobs: int = 120
    quick_fraction: float = 0.4  # share of jobs on the quick queue
    workers: int = 4
    pool: str = "threads"
    quick_weight: int = 3
    long_weight: int = 1
    per_user_limit: int = 2
    high_water: int | None = None
    timeout_s: float | None = None
    max_retries: int = 1
    catalog_rows: int = 20_000
    seed: int = 2005
    spool_every: int = 5  # every Nth job spools INTO MyDB
    #: Enable the shared semantic result cache on the catalog context
    #: (every user's repeated query is answered from the first run).
    result_cache: bool = False
    #: >0 draws jobs zipfian from a fixed pool of this many distinct
    #: queries (popularity ∝ 1/rank^``zipf_s``) — the "millions of
    #: users re-run the same cone searches" traffic shape.  0 keeps the
    #: original fresh-random-query behavior.
    zipf_queries: int = 0
    zipf_s: float = 1.1

    def scheduler_config(self) -> SchedulerConfig:
        return SchedulerConfig(
            pool=self.pool,
            max_workers=self.workers,
            quick_weight=self.quick_weight,
            long_weight=self.long_weight,
            per_user_limit=self.per_user_limit,
            high_water=self.high_water,
            timeout_s=self.timeout_s,
            max_retries=self.max_retries,
        )

    def engine_config(self) -> EngineConfig:
        """Engine knobs for the shared catalog context."""
        return EngineConfig(result_cache=self.result_cache)


@dataclass
class LoadReport:
    """What one :func:`run_load` measured."""

    spec: LoadSpec
    stats: SchedulerStats
    wall_s: float
    finished: int
    failed: int
    shed: int
    per_user_finished: dict[str, int]
    per_class_submitted: dict[QueueClass, int] = field(default_factory=dict)
    quota_rejected: int = 0  # refused at admission: MyDB already at quota
    #: Result-cache counters of the catalog context (empty = cache off).
    cache: dict[str, float] = field(default_factory=dict)

    @property
    def accepted(self) -> int:
        """Submissions that became jobs (not shed, not quota-refused)."""
        return sum(self.per_class_submitted.values())

    @property
    def throughput_jobs_s(self) -> float:
        return self.stats.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def user_fairness(self) -> float:
        """Jain's fairness index over per-user finished counts (1 = even)."""
        counts = np.asarray(list(self.per_user_finished.values()), dtype=float)
        if counts.size == 0 or counts.sum() == 0:
            return 1.0
        return float(counts.sum() ** 2 / (counts.size * (counts**2).sum()))

    def latency_rows(self) -> list[list]:
        rows = []
        for cls in QueueClass:
            rows.append([
                cls.value,
                self.per_class_submitted.get(cls, 0),
                round(self.stats.p50_wait(cls) * 1e3, 2),
                round(self.stats.p95_wait(cls) * 1e3, 2),
                round(self.stats.p50_run(cls) * 1e3, 2),
                round(self.stats.p95_run(cls) * 1e3, 2),
            ])
        return rows

    def render(self) -> str:
        from repro.bench.reporting import format_table

        lines = [
            format_table(
                f"casjobs load: {self.spec.n_jobs} jobs, "
                f"{self.spec.n_users} users, {self.spec.workers} workers "
                f"({self.spec.pool})",
                ["class", "jobs", "p50 wait ms", "p95 wait ms",
                 "p50 run ms", "p95 run ms"],
                self.latency_rows(),
            ),
            "",
            f"wall {self.wall_s:.3f} s  "
            f"throughput {self.throughput_jobs_s:,.1f} jobs/s  "
            f"finished {self.finished}  failed {self.failed}  "
            f"shed {self.shed}  quota-refused {self.quota_rejected}",
            f"user fairness (Jain) {self.user_fairness:.3f}  "
            f"dead-lettered {self.stats.dead_lettered}  "
            f"retries {self.stats.retries}",
        ]
        if self.cache:
            lines.append(
                f"result cache: hits {self.cache.get('hits', 0):.0f}  "
                f"misses {self.cache.get('misses', 0):.0f}  "
                f"hit rate {self.cache.get('hit_rate', 0.0):.1%}  "
                f"evictions {self.cache.get('evictions', 0):.0f}  "
                f"invalidations {self.cache.get('invalidations', 0):.0f}"
            )
        return "\n".join(lines)


def build_demo_catalog(
    rows: int, seed: int, engine_config: EngineConfig | None = None
) -> Database:
    """A seeded synthetic catalog database (the shared ``dr1`` context)."""
    rng = np.random.default_rng(seed)
    catalog = (
        Database("dr1")
        if engine_config is None
        else Database("dr1", config=engine_config)
    )
    catalog.create_table(
        "galaxy",
        {
            "objid": np.arange(rows, dtype=np.int64),
            "ra": rng.uniform(180.0, 190.0, rows),
            "dec": rng.uniform(-5.0, 5.0, rows),
            "i": rng.uniform(14.0, 22.0, rows),
            "z": rng.uniform(0.05, 0.35, rows),
            "stripe": rng.integers(0, 12, rows),
        },
        primary_key="objid",
    )
    return catalog


def build_demo_site(
    spec: LoadSpec, scheduler_config: SchedulerConfig | None = None
) -> CasJobsService:
    """One site hosting a seeded synthetic catalog context ``dr1``."""
    service = CasJobsService(
        "bench",
        scheduler_config or spec.scheduler_config(),
        engine_config=spec.engine_config(),
    )
    service.add_context(
        "dr1",
        build_demo_catalog(spec.catalog_rows, spec.seed,
                           engine_config=spec.engine_config()),
    )
    for user in (f"user{u:02d}" for u in range(spec.n_users)):
        service.register_user(user)
    return service


def _zipf_weights(n: int, s: float) -> np.ndarray:
    """Popularity ∝ 1/rank^s, normalized."""
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** s
    return weights / weights.sum()


def build_query_pool(spec: LoadSpec) -> list[tuple[str, QueueClass]]:
    """The fixed query pool a zipfian run draws from (fully seeded)."""
    rng = np.random.default_rng(spec.seed + 7)
    pool: list[tuple[str, QueueClass]] = []
    for _ in range(spec.zipf_queries):
        quick = rng.random() < spec.quick_fraction
        query = _quick_query(rng) if quick else _long_query(rng)
        pool.append(
            (query, QueueClass.QUICK if quick else QueueClass.LONG)
        )
    return pool


def results_digest(service: CasJobsService) -> str:
    """Order-independent digest of every finished job's (query, answer).

    Byte-identical across cache-on and cache-off runs of the same spec:
    the differential check that caching never changes an answer.
    """
    parts = []
    for job in service.queue.jobs():
        if job.status is not JobStatus.FINISHED or job.result is None:
            continue
        digest = hashlib.sha256(job.query.encode())
        for name in job.result.column_names:
            arr = np.asarray(job.result.columns[name])
            digest.update(name.encode())
            if arr.dtype == object:
                digest.update(
                    "\x00".join(str(v) for v in arr.tolist()).encode()
                )
            else:
                digest.update(arr.tobytes())
        parts.append(digest.hexdigest())
    return hashlib.sha256("\n".join(sorted(parts)).encode()).hexdigest()


def _quick_query(rng: np.random.Generator) -> str:
    """Single-pass filter + count: the interactive-grade shape."""
    cut = rng.uniform(15.0, 21.0)
    return f"SELECT COUNT(*) AS n, AVG(i) AS mean_i FROM galaxy WHERE i < {cut:.3f}"


def _long_query(rng: np.random.Generator) -> str:
    """Whole-table group/aggregate/sort: the batch-grade shape."""
    zcut = rng.uniform(0.1, 0.3)
    return (
        "SELECT stripe, COUNT(*) AS n, AVG(i) AS mean_i, MIN(z) AS zmin, "
        f"MAX(z) AS zmax FROM galaxy WHERE z < {zcut:.3f} "
        "GROUP BY stripe ORDER BY stripe"
    )


def run_load(
    spec: LoadSpec, service: CasJobsService | None = None
) -> LoadReport:
    """Fire the workload at a (background-serving) site and measure it."""
    service = service or build_demo_site(spec)
    rng = np.random.default_rng(spec.seed + 1)
    users = [f"user{u:02d}" for u in range(spec.n_users)]
    per_class: dict[QueueClass, int] = {cls: 0 for cls in QueueClass}
    shed = 0
    quota_rejected = 0
    pool_queries = build_query_pool(spec) if spec.zipf_queries else None
    pool_weights = (
        _zipf_weights(spec.zipf_queries, spec.zipf_s)
        if pool_queries is not None
        else None
    )

    service.serve()
    began = time.perf_counter()
    try:
        for k in range(spec.n_jobs):
            user = users[int(rng.integers(0, len(users)))]
            if pool_queries is not None:
                query, cls = pool_queries[
                    int(rng.choice(len(pool_queries), p=pool_weights))
                ]
            else:
                quick = rng.random() < spec.quick_fraction
                cls = QueueClass.QUICK if quick else QueueClass.LONG
                query = _quick_query(rng) if quick else _long_query(rng)
            output = (
                f"spool_{k}" if spec.spool_every and k % spec.spool_every == 0
                else None
            )
            try:
                service.submit(user, query, "dr1", output_table=output,
                               queue_class=cls)
            except QueueFullError:
                shed += 1
                continue
            except QuotaExceededError:
                quota_rejected += 1
                continue
            per_class[cls] += 1
        service.shutdown(drain=True, timeout_s=120.0)
    finally:
        if service.scheduler.serving:
            service.shutdown(drain=False)
    wall = time.perf_counter() - began

    finished_per_user = {
        user: sum(
            1
            for job in service.queue.jobs_of(user)
            if job.status is JobStatus.FINISHED
        )
        for user in users
    }
    stats = service.scheduler.stats
    cache_summary: dict[str, float] = {}
    try:
        context_db = service.context("dr1")
        if context_db.result_cache is not None:
            cache_summary = context_db.result_cache.summary()
    except CasJobsError:
        pass
    return LoadReport(
        spec=spec,
        stats=stats,
        wall_s=wall,
        finished=stats.finished,
        failed=stats.failed,
        shed=shed,
        per_user_finished=finished_per_user,
        per_class_submitted=per_class,
        quota_rejected=quota_rejected,
        cache=cache_summary,
    )


@dataclass
class CacheComparison:
    """The same zipfian workload run twice: cache off, then cache on."""

    off: LoadReport
    on: LoadReport
    digest_off: str
    digest_on: str

    @property
    def identical(self) -> bool:
        """Did caching change any answer byte?  (It must not.)"""
        return self.digest_off == self.digest_on

    @property
    def speedup(self) -> float:
        """Throughput ratio, cache on over cache off."""
        if self.off.throughput_jobs_s == 0:
            return float("inf")
        return self.on.throughput_jobs_s / self.off.throughput_jobs_s

    def p95_run_ms(self, report: LoadReport) -> float:
        """Worst per-class p95 run latency of a report, in ms."""
        return 1e3 * max(
            report.stats.p95_run(cls) for cls in QueueClass
        )

    def as_dict(self) -> dict:
        """JSON-ready summary (written to ``BENCH_cache.json`` by CI)."""
        return {
            "jobs": self.off.spec.n_jobs,
            "users": self.off.spec.n_users,
            "distinct_queries": self.off.spec.zipf_queries,
            "zipf_s": self.off.spec.zipf_s,
            "catalog_rows": self.off.spec.catalog_rows,
            "identical_answers": self.identical,
            "speedup": round(self.speedup, 3),
            "throughput_off_jobs_s": round(self.off.throughput_jobs_s, 2),
            "throughput_on_jobs_s": round(self.on.throughput_jobs_s, 2),
            "p95_run_off_ms": round(self.p95_run_ms(self.off), 3),
            "p95_run_on_ms": round(self.p95_run_ms(self.on), 3),
            "cache": self.on.cache,
        }


def run_zipf_cache_comparison(spec: LoadSpec) -> CacheComparison:
    """A/B the cache on one zipfian workload; checks answers byte-match.

    Spooling is disabled for both runs so the workload is pure reads
    and the two job ledgers are comparable query-for-query.
    """
    import dataclasses

    if not spec.zipf_queries:
        raise ValueError(
            "run_zipf_cache_comparison needs spec.zipf_queries > 0"
        )
    base = dataclasses.replace(spec, spool_every=0)
    service_off = build_demo_site(
        dataclasses.replace(base, result_cache=False)
    )
    off = run_load(dataclasses.replace(base, result_cache=False),
                   service=service_off)
    digest_off = results_digest(service_off)
    service_on = build_demo_site(
        dataclasses.replace(base, result_cache=True)
    )
    on = run_load(dataclasses.replace(base, result_cache=True),
                  service=service_on)
    digest_on = results_digest(service_on)
    return CacheComparison(
        off=off, on=on, digest_off=digest_off, digest_on=digest_on
    )


def check_no_lost_or_duplicated(service: CasJobsService, submitted: int) -> None:
    """Invariant: every submitted job is terminal exactly once.

    Raised as :class:`CasJobsError` on violation; the stress test and
    the CI smoke step both call this after a run.
    """
    jobs = service.queue.jobs()
    if len(jobs) != submitted:
        raise CasJobsError(
            f"job ledger has {len(jobs)} entries for {submitted} submissions"
        )
    ids = [j.job_id for j in jobs]
    if len(set(ids)) != len(ids):
        raise CasJobsError("duplicate job ids in the ledger")
    non_terminal = [j.job_id for j in jobs if not j.status.is_terminal]
    if non_terminal:
        raise CasJobsError(
            f"{len(non_terminal)} jobs not terminal after drain: "
            f"{non_terminal[:10]}"
        )
    if service.queue.pending_count() != 0:
        raise CasJobsError("pending queue not empty after drain")
