"""Paper-vs-measured reporting for the benchmark harness.

Each table/figure benchmark prints its rows through these helpers so
the output reads like the paper's tables next to our measurements.
Absolute numbers are not expected to match 2004 hardware; the *shape*
column comparisons (who wins, by what factor) are the contract.
"""

from __future__ import annotations

from dataclasses import dataclass


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Fixed-width text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim being reproduced, with its verdict."""

    claim: str
    paper: str
    measured: str
    holds: bool

    def line(self) -> str:
        mark = "OK " if self.holds else "FAIL"
        return f"[{mark}] {self.claim}: paper={self.paper} measured={self.measured}"


def print_report(title: str, tables: list[str], checks: list[ShapeCheck]) -> None:
    """Emit one benchmark's full report to stdout."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}")
    for table in tables:
        print(f"\n{table}")
    if checks:
        print("\nShape checks (paper vs measured):")
        for check in checks:
            print("  " + check.line())
