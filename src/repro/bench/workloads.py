"""Standard workloads for the benchmark suite.

Every table/figure benchmark draws its data from here so the whole
suite shares one deterministic sky per scale.  Three scales:

* ``small``  — seconds-long; used by default so ``pytest benchmarks/``
  finishes quickly;
* ``medium`` — a few minutes; closer densities, better statistics;
* ``paper``  — the paper's geometry (66 deg² target at ~14k gal/deg²);
  hours in pure Python — run it deliberately, not by default.

Select with ``REPRO_BENCH_SCALE=small|medium|paper`` in the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.core.config import MaxBCGConfig, sql_config, tam_config
from repro.core.kcorrection import KCorrectionTable, build_kcorrection_table
from repro.errors import ConfigError
from repro.skyserver.generator import SkyConfig, SkySimulator, SyntheticSky
from repro.skyserver.regions import RegionBox

#: Environment variable that selects the scale.
SCALE_ENV = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class Workload:
    """One benchmark scenario: regions, sky density, configs."""

    name: str
    target: RegionBox
    field_density: float
    cluster_density: float
    sql: MaxBCGConfig
    tam: MaxBCGConfig
    seed: int = 2005  # CIDR 2005

    @property
    def import_region(self) -> RegionBox:
        """P = T + 2 x the *largest* buffer either config needs."""
        margin = 2.0 * max(self.sql.buffer_deg, self.tam.buffer_deg)
        return self.target.expand(margin)

    def sky_config(self) -> SkyConfig:
        return SkyConfig(
            field_density=self.field_density,
            cluster_density=self.cluster_density,
            seed=self.seed,
        )


def _scaled_sql_config(z_step: float) -> MaxBCGConfig:
    return sql_config().with_(z_step=z_step)


def _scaled_tam_config(z_step: float) -> MaxBCGConfig:
    return tam_config().with_(z_step=z_step)


WORKLOADS: dict[str, Workload] = {
    # ~25k galaxies; every bench in seconds.
    "small": Workload(
        name="small",
        target=RegionBox(180.0, 183.0, 0.0, 3.0),
        field_density=700.0,
        cluster_density=10.0,
        sql=_scaled_sql_config(0.005),
        tam=_scaled_tam_config(0.01),
    ),
    # ~250k galaxies; minutes.
    "medium": Workload(
        name="medium",
        target=RegionBox(178.0, 184.0, -1.0, 4.0),
        field_density=4_000.0,
        cluster_density=14.0,
        sql=_scaled_sql_config(0.002),
        tam=_scaled_tam_config(0.01),
    ),
    # the paper's 66 deg^2 at survey density; run deliberately.
    "paper": Workload(
        name="paper",
        target=RegionBox(173.0, 184.0, -2.0, 4.0),
        field_density=14_000.0,
        cluster_density=18.0,
        sql=_scaled_sql_config(0.001),
        tam=_scaled_tam_config(0.01),
    ),
}


def active_scale() -> str:
    scale = os.environ.get(SCALE_ENV, "small").lower()
    if scale not in WORKLOADS:
        raise ConfigError(
            f"{SCALE_ENV}={scale!r}; expected one of {sorted(WORKLOADS)}"
        )
    return scale


def active_workload() -> Workload:
    """The workload selected by the environment (default: small)."""
    return WORKLOADS[active_scale()]


@lru_cache(maxsize=4)
def _kcorr_cached(z_min: float, z_max: float, z_step: float) -> KCorrectionTable:
    return build_kcorrection_table(
        MaxBCGConfig(z_min=z_min, z_max=z_max, z_step=z_step)
    )


def kcorr_for(config: MaxBCGConfig) -> KCorrectionTable:
    """Cached k-correction table for a config's grid."""
    return _kcorr_cached(config.z_min, config.z_max, config.z_step)


@lru_cache(maxsize=4)
def _sky_cached(name: str) -> SyntheticSky:
    workload = WORKLOADS[name]
    simulator = SkySimulator(
        kcorr_for(workload.sql), workload.sql, workload.sky_config()
    )
    return simulator.generate(workload.import_region)


def sky_for(workload: Workload) -> SyntheticSky:
    """The (cached) synthetic sky of a workload."""
    return _sky_cached(workload.name)
