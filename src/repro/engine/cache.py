"""The semantic result cache: repeated statements skip the engine.

"Batch is back: CasJobs" exists because millions of SkyServer users
re-run near-identical cone searches and cutouts; the server-side answer
is to cache.  A :class:`ResultCache` stores finished SELECT results
keyed on ``(fingerprint, table versions)``:

* the **fingerprint** hashes the *normalized* statement (re-rendered
  through the one true printer, so formatting and alias spelling don't
  fragment the cache) together with the planner mode;
* the **versions** tuple snapshots the version counter of every base
  table the statement touches (views and materialized views are
  resolved down to their sources), so any DML or load since the entry
  was stored makes the key miss — invalidation is structural, not
  best-effort.

Entries carry byte-size accounting, optional TTL, and are evicted LRU
when the cache exceeds its byte or entry budget.  Hits return deep
copies, so callers can mutate results without poisoning the cache.
Hit/miss/eviction/invalidation counters feed the process-wide obs
metrics registry.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields, is_dataclass

import numpy as np

from repro.engine.expressions import Expr
from repro.engine.sql.ast import (
    Exists,
    InSubquery,
    SelectStatement,
    TableRef,
    UnionStatement,
)
from repro.engine.sql.printer import statement_to_sql
from repro.obs.metrics import get_metrics

#: Fully-qualified cache key: (statement fingerprint, table versions).
CacheKey = tuple[str, tuple[tuple[str, int], ...]]


def normalize_statement(stmt: SelectStatement | UnionStatement) -> str:
    """Canonical SQL text of a statement (whitespace/case-insensitive)."""
    return statement_to_sql(stmt)


def statement_fingerprint(
    stmt: SelectStatement | UnionStatement, optimizer_mode: str = "cost"
) -> str:
    """Hash of the normalized statement plus the planner mode.

    The mode is part of the key because the cached entry carries the
    plan text that produced it; two modes give identical rows but
    different EXPLAIN output.
    """
    normalized = normalize_statement(stmt)
    digest = hashlib.sha256(
        f"{optimizer_mode}\x00{normalized}".encode()
    ).hexdigest()
    return digest[:32]


def plan_fingerprint(stmt, database) -> tuple[str, str, set[str]] | None:
    """``(fingerprint, normalized_sql, tables)`` for a trackable SELECT.

    The one keying rule shared by the result cache, the plan memo and
    the Query Store: the fingerprint hashes the printer-normalized,
    *post-rewrite* statement under a mode tag (``cost+rewrite`` etc.),
    so rewrite-equivalent spellings share one identity while
    rewrites-on and rewrites-off instances never cross-match.  Returns
    None for statements that must not be tracked: non-SELECTs, TVF or
    unknown-name readers, anything planned while a matview is
    (re)materializing, and unrewritable shapes.
    """
    if not isinstance(stmt, SelectStatement):
        return None
    if getattr(database, "_matview_plan_depth", 0):
        return None
    tables = referenced_tables(stmt, database)
    if tables is None:
        return None
    mode = database.optimizer_mode
    fingerprint_stmt = stmt
    if database.rewrites_enabled:
        from repro.engine.optimizer.rewrite import rewrite_statement

        try:
            fingerprint_stmt, _ = rewrite_statement(stmt, database,
                                                    price=False)
        except Exception:
            return None  # unrewritable shape: plan it fresh every time
        mode = f"{mode}+rewrite"
    if getattr(database, "compiled_expressions", False):
        mode = f"{mode}+compiled"
    return (
        statement_fingerprint(fingerprint_stmt, mode),
        normalize_statement(fingerprint_stmt),
        tables,
    )


def referenced_tables(
    stmt: SelectStatement | UnionStatement, database
) -> set[str] | None:
    """Lowercased base tables a statement reads, views resolved.

    Returns ``None`` when the statement is not safely cacheable: it
    references a table-valued function (whose callable may close over
    state the version counters can't see) or a name the catalog doesn't
    know (the statement would error anyway — don't cache the attempt).
    """
    tables: set[str] = set()
    if _collect_tables(stmt, database, tables, depth=0):
        return tables
    return None


def _expr_subselects(expr):
    """Yield SELECT bodies of subquery predicates nested in an expression.

    ``EXISTS (SELECT ...)`` and ``x IN (SELECT ...)`` read tables that
    never appear in the outer FROM/JOIN clauses; invalidation must still
    cover them or a cached result would survive DML on the inner table.
    """
    if not isinstance(expr, Expr):
        return
    if isinstance(expr, Exists):
        yield expr.select
        return
    if isinstance(expr, InSubquery):
        yield expr.select
        yield from _expr_subselects(expr.value)
        return
    if not is_dataclass(expr):
        return
    for f in fields(expr):
        value = getattr(expr, f.name)
        if isinstance(value, Expr):
            yield from _expr_subselects(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Expr):
                    yield from _expr_subselects(item)
                elif isinstance(item, tuple):  # Case whens pairs
                    for leaf in item:
                        yield from _expr_subselects(leaf)


def _statement_exprs(stmt: SelectStatement):
    for item in stmt.items:
        if item.expr is not None:
            yield item.expr
    for join in stmt.joins:
        if join.condition is not None:
            yield join.condition
    if stmt.where is not None:
        yield stmt.where
    yield from stmt.group_by
    if stmt.having is not None:
        yield stmt.having
    for order in stmt.order_by:
        yield order.expr


def _collect_tables(
    stmt, database, out: set[str], depth: int, ctes: frozenset = frozenset()
) -> bool:
    if depth > 16:  # pathological view nesting: refuse to cache
        return False
    if isinstance(stmt, UnionStatement):
        return all(
            _collect_tables(s, database, out, depth, ctes)
            for s in stmt.selects
        )
    local = set(ctes)
    for cte_name, body in stmt.ctes:
        if not _collect_tables(
            body, database, out, depth + 1, frozenset(local)
        ):
            return False
        local.add(cte_name.lower())
    scope = frozenset(local)
    refs: list[TableRef] = []
    if stmt.source is not None:
        refs.append(stmt.source)
    refs.extend(join.table for join in stmt.joins)
    for ref in refs:
        if ref.is_function:
            return False
        if ref.is_subquery:
            if not _collect_tables(
                ref.subquery, database, out, depth + 1, scope
            ):
                return False
            continue
        name = ref.table.lower()
        if name in scope:
            continue  # CTE body tables were collected above
        if database.has_view(name):
            if not _collect_tables(
                database.view(name), database, out, depth + 1
            ):
                return False
            continue
        if database.has_matview(name):
            # a matview reads like a base table; its data table version
            # bumps on every REFRESH, which is exactly the dependency
            out.add(name)
            continue
        if not database.has_table(name):
            return False
        out.add(name)
    for expr in _statement_exprs(stmt):
        for sub in _expr_subselects(expr):
            if not _collect_tables(sub, database, out, depth + 1, scope):
                return False
    return True


def batch_nbytes(columns: dict[str, np.ndarray]) -> int:
    """Byte size of a result batch (object columns priced per element)."""
    total = 0
    for arr in columns.values():
        arr = np.asarray(arr)
        if arr.dtype == object:
            total += sum(len(str(v)) for v in arr.tolist()) + 8 * arr.size
        else:
            total += int(arr.nbytes)
    return total


def _copy_batch(columns: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {k: np.asarray(v).copy() for k, v in columns.items()}


@dataclass
class CacheEntry:
    """One stored result."""

    key: CacheKey
    columns: dict[str, np.ndarray]
    plan: str
    tables: frozenset[str]
    nbytes: int
    stored_at: float = field(default_factory=time.monotonic)
    hits: int = 0


@dataclass
class CacheStats:
    """Monotonic counters, mirrored into the obs metrics registry."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Bounded, thread-safe LRU of query results shared across users.

    One instance hangs off each cache-enabled
    :class:`~repro.engine.database.Database`; CasJobs contexts are
    shared Database objects, so every user querying a context shares
    its cache — the multi-user win the paper's MyDB design is after.
    """

    def __init__(
        self,
        max_bytes: int = 64 << 20,
        max_entries: int = 512,
        ttl_s: float | None = None,
        metrics_prefix: str = "engine.cache",
    ):
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self.ttl_s = ttl_s
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, CacheEntry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        metrics = get_metrics()
        self._m_hits = metrics.counter(f"{metrics_prefix}.hits")
        self._m_misses = metrics.counter(f"{metrics_prefix}.misses")
        self._m_evictions = metrics.counter(f"{metrics_prefix}.evictions")
        self._m_inserts = metrics.counter(f"{metrics_prefix}.inserts")
        self._m_invalidations = metrics.counter(
            f"{metrics_prefix}.invalidations"
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def get(self, key: CacheKey) -> CacheEntry | None:
        """Look up a key; counts a hit or miss and refreshes LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                self._drop(key)
                self.stats.expirations += 1
                self.stats.invalidations += 1
                self._m_invalidations.inc()
                entry = None
            if entry is None:
                self.stats.misses += 1
                self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.stats.hits += 1
            self._m_hits.inc()
            return CacheEntry(
                key=entry.key,
                columns=_copy_batch(entry.columns),
                plan=entry.plan,
                tables=entry.tables,
                nbytes=entry.nbytes,
                stored_at=entry.stored_at,
                hits=entry.hits,
            )

    def peek(self, key: CacheKey) -> CacheEntry | None:
        """Would this key hit?  No counters, no LRU touch, no copy."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry):
                return None
            return entry

    def put(
        self,
        key: CacheKey,
        columns: dict[str, np.ndarray],
        plan: str,
        tables: set[str],
    ) -> bool:
        """Store a result; returns False when it can never fit."""
        nbytes = batch_nbytes(columns)
        if nbytes > self.max_bytes:
            return False
        entry = CacheEntry(
            key=key,
            columns=_copy_batch(columns),
            plan=plan,
            tables=frozenset(t.lower() for t in tables),
            nbytes=nbytes,
        )
        with self._lock:
            if key in self._entries:
                self._drop(key)
            self._entries[key] = entry
            self._bytes += nbytes
            self.stats.inserts += 1
            self._m_inserts.inc()
            while (
                self._bytes > self.max_bytes
                or len(self._entries) > self.max_entries
            ):
                oldest = next(iter(self._entries))
                self._drop(oldest)
                self.stats.evictions += 1
                self._m_evictions.inc()
        return True

    def invalidate_table(self, table_name: str) -> int:
        """Eagerly drop every entry that read the given table.

        Version-keyed lookups would miss stale entries anyway; eager
        invalidation reclaims their memory immediately and makes the
        invalidation observable in the metrics.
        """
        lowered = table_name.lower()
        with self._lock:
            doomed = [
                key for key, entry in self._entries.items()
                if lowered in entry.tables
            ]
            for key in doomed:
                self._drop(key)
            self.stats.invalidations += len(doomed)
            if doomed:
                self._m_invalidations.inc(len(doomed))
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    def _expired(self, entry: CacheEntry) -> bool:
        return (
            self.ttl_s is not None
            and time.monotonic() - entry.stored_at > self.ttl_s
        )

    def _drop(self, key: CacheKey) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes

    def summary(self) -> dict[str, float]:
        """Counters + occupancy, for reports and ``stats_summary``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "hit_rate": self.stats.hit_rate,
                "inserts": self.stats.inserts,
                "evictions": self.stats.evictions,
                "invalidations": self.stats.invalidations,
                "expirations": self.stats.expirations,
            }
