"""EngineConfig: one object for every engine knob.

The :class:`~repro.engine.database.Database` constructor accreted
kwargs PR by PR — ``optimizer=``, ``band_joins=``,
``intra_query_workers=``, and now the result-cache knobs.  This module
consolidates them into a single frozen dataclass that the cluster,
CasJobs and CLI layers pass through whole instead of re-plumbing each
knob::

    db = Database("dr1", config=EngineConfig(optimizer="cost",
                                             result_cache=True))

The old per-knob kwargs keep working for one release via a mapping shim
in ``Database.__init__`` that emits ``DeprecationWarning``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.engine.pages import DEFAULT_POOL_PAGES
from repro.errors import EngineError

#: Recognized planner modes (mirrors the planner's OPTIMIZER_MODES;
#: duplicated here to avoid importing the SQL layer at config time).
_OPTIMIZER_MODES = ("cost", "syntactic")

#: Default ceiling on cached result bytes per database (64 MiB — a
#: fraction of the paper's 2 GB nodes, like a real plan/result cache).
DEFAULT_CACHE_MAX_BYTES = 64 << 20

#: Default ceiling on cached entries per database.
DEFAULT_CACHE_MAX_ENTRIES = 512


@dataclass(frozen=True)
class EngineConfig:
    """Every knob a :class:`~repro.engine.database.Database` takes.

    Attributes
    ----------
    pool_pages:
        Buffer-pool size in 8 KiB pages (default sized to the paper's
        2 GB nodes).
    optimizer:
        Planner mode, ``"cost"`` (statistics-driven) or ``"syntactic"``.
    intra_query_workers:
        Morsel-parallel workers per operator (1 = sequential; output is
        byte-identical at any setting).
    band_joins:
        Allow the cost planner to extract BandJoin operators from range
        conjuncts.
    rewrites:
        Run the rule-driven logical rewrite pass between parse and
        plan (predicate pushdown into derived tables/views/CTEs,
        constant folding, IN/EXISTS decorrelation, redundant-join
        elimination, ...).  On by default; ``rewrites=False`` restores
        the exact pre-rewrite plans.
    result_cache:
        Enable the shared semantic result cache: SELECTs are answered
        from a prior identical statement's result when every referenced
        table is unchanged since it was stored.  Off by default — the
        CasJobs service and the CLI turn it on for shared catalogs.
    cache_max_bytes / cache_max_entries:
        LRU eviction thresholds for the result cache.
    cache_ttl_s:
        Optional time-to-live for cached results; ``None`` means
        entries live until invalidated or evicted.
    """

    pool_pages: int = DEFAULT_POOL_PAGES
    optimizer: str = "cost"
    intra_query_workers: int = 1
    band_joins: bool = True
    rewrites: bool = True
    result_cache: bool = False
    cache_max_bytes: int = DEFAULT_CACHE_MAX_BYTES
    cache_max_entries: int = DEFAULT_CACHE_MAX_ENTRIES
    cache_ttl_s: float | None = None

    def __post_init__(self) -> None:
        if self.optimizer not in _OPTIMIZER_MODES:
            raise EngineError(
                f"unknown optimizer mode '{self.optimizer}'; "
                f"expected one of {_OPTIMIZER_MODES}"
            )
        if self.pool_pages <= 0:
            raise EngineError("pool_pages must be positive")
        if self.cache_max_bytes <= 0 or self.cache_max_entries <= 0:
            raise EngineError("cache limits must be positive")
        if self.cache_ttl_s is not None and self.cache_ttl_s <= 0:
            raise EngineError("cache_ttl_s must be positive (or None)")

    def replace(self, **changes) -> "EngineConfig":
        """A copy with the given fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)


#: The all-defaults configuration, shared where no knob is overridden.
DEFAULT_ENGINE_CONFIG = EngineConfig()
