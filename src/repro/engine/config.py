"""EngineConfig: one object for every engine knob.

The :class:`~repro.engine.database.Database` constructor accreted
kwargs PR by PR — ``optimizer=``, ``band_joins=``,
``intra_query_workers=``, and now the result-cache knobs.  This module
consolidates them into a single frozen dataclass that the cluster,
CasJobs and CLI layers pass through whole instead of re-plumbing each
knob::

    db = Database("dr1", config=EngineConfig(optimizer="cost",
                                             result_cache=True))

The old per-knob kwargs keep working for one release via a mapping shim
in ``Database.__init__`` that emits ``DeprecationWarning``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.engine.pages import DEFAULT_POOL_PAGES
from repro.errors import EngineError

#: Recognized planner modes (mirrors the planner's OPTIMIZER_MODES;
#: duplicated here to avoid importing the SQL layer at config time).
_OPTIMIZER_MODES = ("cost", "syntactic")

#: Default ceiling on cached result bytes per database (64 MiB — a
#: fraction of the paper's 2 GB nodes, like a real plan/result cache).
DEFAULT_CACHE_MAX_BYTES = 64 << 20

#: Default ceiling on cached entries per database.
DEFAULT_CACHE_MAX_ENTRIES = 512

#: Default q-error ceiling before the feedback loop reacts: one node
#: more than 8x off (in either direction) triggers targeted re-ANALYZE
#: plus learned selectivity overrides and a re-plan.
DEFAULT_QERROR_CEILING = 8.0

#: Default ceiling on memoized plans per database.
DEFAULT_PLAN_MEMO_ENTRIES = 256

#: Default Query Store runtime-stat aggregation interval, seconds.
DEFAULT_QUERY_STORE_INTERVAL_S = 60.0

#: Default ceiling on fingerprints the Query Store tracks.
DEFAULT_QUERY_STORE_MAX_QUERIES = 256


@dataclass(frozen=True)
class EngineConfig:
    """Every knob a :class:`~repro.engine.database.Database` takes.

    Attributes
    ----------
    pool_pages:
        Buffer-pool size in 8 KiB pages (default sized to the paper's
        2 GB nodes).
    optimizer:
        Planner mode, ``"cost"`` (statistics-driven) or ``"syntactic"``.
    intra_query_workers:
        Morsel-parallel workers per operator (1 = sequential; output is
        byte-identical at any setting).
    band_joins:
        Allow the cost planner to extract BandJoin operators from range
        conjuncts.
    rewrites:
        Run the rule-driven logical rewrite pass between parse and
        plan (predicate pushdown into derived tables/views/CTEs,
        constant folding, IN/EXISTS decorrelation, redundant-join
        elimination, ...).  On by default; ``rewrites=False`` restores
        the exact pre-rewrite plans.
    compiled_expressions:
        Lower Filter/Project/join-residual expressions into fused
        single-pass kernels (common-subexpression elimination,
        NaN-aware short-circuit conjunction over selection vectors,
        late materialization of payload columns).  On by default;
        results are byte-identical to the interpreted walk either way.
    page_compression:
        Choose a per-column page codec (dictionary encoding for
        low-NDV columns, run-length encoding for sorted/clustered
        ones) from ANALYZE statistics, packing more rows per 8 KiB
        page so hot working sets cost fewer logical reads.  On by
        default; takes effect at ANALYZE time.
    result_cache:
        Enable the shared semantic result cache: SELECTs are answered
        from a prior identical statement's result when every referenced
        table is unchanged since it was stored.  Off by default — the
        CasJobs service and the CLI turn it on for shared catalogs.
    cache_max_bytes / cache_max_entries:
        LRU eviction thresholds for the result cache.
    cache_ttl_s:
        Optional time-to-live for cached results; ``None`` means
        entries live until invalidated or evicted.
    feedback:
        Enable the adaptive feedback optimizer: chosen plans are
        memoized per statement fingerprint (repeat executions skip
        planning), per-operator actuals are folded back after every
        execution, and a fingerprint whose max q-error exceeds
        ``qerror_ceiling`` triggers targeted re-ANALYZE, learned
        selectivity overrides and a re-plan.  Off by default.
    qerror_ceiling:
        Max per-operator q-error tolerated before the feedback loop
        reacts.  Must be > 1 (a ceiling of 1 would re-plan every
        imperfect estimate forever).
    plan_memo_entries:
        LRU bound on memoized plans per database.
    query_store:
        Enable the Query Store: per-fingerprint runtime-stat intervals,
        full plan history, plan-regression detection and plan forcing,
        exposed as ``sys_query_store_*`` catalog tables and persisted
        by ``save_database``.  Off by default.
    query_store_interval_s:
        Length of one runtime-stat aggregation interval, seconds.
    query_store_max_queries:
        Ceiling on tracked fingerprints (least-recently-seen evicted).
    """

    pool_pages: int = DEFAULT_POOL_PAGES
    optimizer: str = "cost"
    intra_query_workers: int = 1
    band_joins: bool = True
    rewrites: bool = True
    compiled_expressions: bool = True
    page_compression: bool = True
    result_cache: bool = False
    cache_max_bytes: int = DEFAULT_CACHE_MAX_BYTES
    cache_max_entries: int = DEFAULT_CACHE_MAX_ENTRIES
    cache_ttl_s: float | None = None
    feedback: bool = False
    qerror_ceiling: float = DEFAULT_QERROR_CEILING
    plan_memo_entries: int = DEFAULT_PLAN_MEMO_ENTRIES
    query_store: bool = False
    query_store_interval_s: float = DEFAULT_QUERY_STORE_INTERVAL_S
    query_store_max_queries: int = DEFAULT_QUERY_STORE_MAX_QUERIES

    def __post_init__(self) -> None:
        if self.optimizer not in _OPTIMIZER_MODES:
            raise EngineError(
                f"unknown optimizer mode '{self.optimizer}'; "
                f"expected one of {_OPTIMIZER_MODES}"
            )
        if self.pool_pages <= 0:
            raise EngineError("pool_pages must be positive")
        if self.cache_max_bytes <= 0 or self.cache_max_entries <= 0:
            raise EngineError("cache limits must be positive")
        if self.cache_ttl_s is not None and self.cache_ttl_s <= 0:
            raise EngineError("cache_ttl_s must be positive (or None)")
        if self.qerror_ceiling <= 1.0:
            raise EngineError("qerror_ceiling must be > 1")
        if self.plan_memo_entries <= 0:
            raise EngineError("plan_memo_entries must be positive")
        if self.query_store_interval_s <= 0:
            raise EngineError("query_store_interval_s must be positive")
        if self.query_store_max_queries <= 0:
            raise EngineError("query_store_max_queries must be positive")

    def replace(self, **changes) -> "EngineConfig":
        """A copy with the given fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def plan_signature(self) -> str:
        """The planning-relevant knob set, as a stable string.

        Part of every plan-memo key: two databases whose configs differ
        in any knob that changes what the planner produces must never
        cross-serve each other's memoized plans.
        """
        return (
            f"optimizer={self.optimizer}"
            f",band_joins={int(self.band_joins)}"
            f",rewrites={int(self.rewrites)}"
            f",workers={self.intra_query_workers}"
            f",compiled={int(self.compiled_expressions)}"
            f",pages={int(self.page_compression)}"
        )


#: The all-defaults configuration, shared where no knob is overridden.
DEFAULT_ENGINE_CONFIG = EngineConfig()
