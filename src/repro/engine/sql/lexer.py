"""SQL tokenizer.

Produces a flat token stream for the parser: keywords (case-insensitive),
identifiers, numeric and string literals, operators and punctuation.
Comments (``-- ...`` line comments and ``/* ... */`` blocks, both used in
the paper's listing) are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having",
    "order", "asc", "desc", "limit", "as", "join", "inner", "cross",
    "on", "and", "or", "not", "between", "in", "is", "null", "like",
    "case", "when", "then", "else", "end", "create", "table", "primary",
    "key", "insert", "into", "values", "update", "set", "delete",
    "truncate", "drop", "view", "exists", "if", "union", "all", "true",
    "false", "exec", "execute", "top", "offset", "left", "outer",
    "analyze", "materialized", "refresh", "with",
}


class TokenType(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type.value}:{self.value}"


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz_@#")
_IDENT_BODY = _IDENT_START | set("0123456789$")


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        # whitespace
        if ch.isspace():
            i += 1
            continue
        # line comment
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        # block comment
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise SqlSyntaxError("unterminated block comment", i)
            i = end + 2
            continue
        # string literal (single quotes; '' escapes a quote)
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
            continue
        # number
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    # exponent must be followed by digits or sign+digits
                    k = j + 1
                    if k < n and text[k] in "+-":
                        k += 1
                    if k < n and text[k].isdigit():
                        seen_exp = True
                        j = k
                    else:
                        break
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        # identifier / keyword (allow leading @ for SQL-variable flavor,
        # and bracket-quoted [name] identifiers)
        if ch == "[":
            end = text.find("]", i)
            if end < 0:
                raise SqlSyntaxError("unterminated [identifier]", i)
            tokens.append(Token(TokenType.IDENT, text[i + 1:end].lower(), i))
            i = end + 1
            continue
        if ch.lower() in _IDENT_START:
            j = i
            while j < n and text[j].lower() in _IDENT_BODY:
                j += 1
            word = text[i:j].lower()
            if word in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        # operators
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                value = "!=" if op == "<>" else op
                tokens.append(Token(TokenType.OPERATOR, value, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
